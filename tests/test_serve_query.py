"""Query normalization: semantically identical queries → identical cells.

The advisor's whole caching story (hot cache, single-flight, result
store) keys on the content-addressed cell key, so any two spellings of
the same what-if must produce byte-identical cells.  The property test
draws one canonical query and two independently mangled spellings —
reordered keys, axis aliases, default-valued fields supplied or
omitted, integral floats, shuffled/duplicated policy lists, preset vs
spelled-out geometry — and asserts the cells (and their cache keys)
coincide.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import sweep
from repro.serve.query import (
    GEOMETRY_PRESETS,
    PARAM_DEFAULTS,
    POLICIES,
    WORKLOADS,
    QueryError,
    normalize_query,
)

# -- canonical query specs -----------------------------------------------------

_AXES_CANONICAL = {
    "chiplets_per_socket": st.integers(1, 8),
    "cores_per_chiplet": st.integers(1, 12),
    "l3_mib_per_chiplet": st.sampled_from([4, 8, 16, 26, 32]),
    "mem_channels_per_socket": st.integers(1, 8),
    "link_latency_scale": st.sampled_from([0.5, 1.0, 2.0]),
}

_ALIAS = {
    "chiplets_per_socket": "cps",
    "cores_per_chiplet": "cpc",
    "l3_mib_per_chiplet": "l3_mib",
    "mem_channels_per_socket": "channels",
    "link_latency_scale": "link_scale",
}

_PARAM_POOLS = {
    "graph_scale": [8, 10, 12], "edgefactor": [4, 8], "graph_seed": [1, 2],
    "pagerank_iterations": [1, 3],
    "table_bytes": [1 << 20, 4 << 20], "updates_per_worker": [64, 512],
}


@st.composite
def query_specs(draw):
    workload = draw(st.sampled_from(WORKLOADS))
    geometry = {axis: draw(strat) for axis, strat in _AXES_CANONICAL.items()}
    total = 2 * geometry["chiplets_per_socket"] * geometry["cores_per_chiplet"]
    policies = draw(st.sets(st.sampled_from(POLICIES), min_size=1))
    params = {
        key: draw(st.sampled_from(_PARAM_POOLS[key]))
        for key in PARAM_DEFAULTS[workload]
        if draw(st.booleans())
    }
    return {
        "workload": workload,
        "geometry": geometry,
        "policies": sorted(policies),
        "cores": draw(st.integers(1, min(total, 48))),
        "seed": draw(st.integers(0, 99)),
        "params": params,
    }


def _spell(draw_bool, spec):
    """One arbitrary spelling of a canonical spec (key order, aliases,
    default-elision, numeric wobble, policy shapes)."""
    doc = {"workload": spec["workload"]}
    geo = {}
    for axis, value in spec["geometry"].items():
        name = _ALIAS[axis] if draw_bool() else axis
        if isinstance(value, int) and draw_bool():
            value = float(value)  # 8 vs 8.0: same query
        geo[axis if name == axis else name] = value
    doc["geometry"] = geo
    pol = list(spec["policies"])
    if len(pol) == 1 and draw_bool():
        doc["policy"] = pol[0]
    else:
        if draw_bool():
            pol = pol[::-1]
        if draw_bool():
            pol = pol + [pol[0]]  # duplicates collapse
        doc["policies"] = pol
    doc["cores"] = float(spec["cores"]) if draw_bool() else spec["cores"]
    if spec["seed"] != 7 or draw_bool():  # 7 is the default: may elide
        doc["seed"] = spec["seed"]
    params = dict(spec["params"])
    if draw_bool():  # supplying a default-valued param changes nothing
        defaults = PARAM_DEFAULTS[spec["workload"]]
        for key in defaults:
            if key not in params:
                params[key] = defaults[key]
                break
    if params or draw_bool():
        doc["params"] = params
    # reorder keys: JSON object order must never matter
    items = sorted(doc.items(), reverse=draw_bool())
    return dict(items)


@settings(max_examples=60)
@given(spec=query_specs(), bools=st.lists(st.booleans(), min_size=40,
                                          max_size=40))
def test_equivalent_spellings_share_cells(spec, bools):
    it = iter(bools)
    a = _spell(lambda: next(it), spec)
    b = _spell(lambda: next(it), spec)
    qa, qb = normalize_query(a), normalize_query(b)
    assert qa == qb
    assert qa.cells() == qb.cells()
    assert [c.cell_id for c in qa.cells()] == [c.cell_id for c in qb.cells()]


def test_cells_are_content_addressed_identically():
    a = normalize_query({"workload": "gups", "geometry": {"cps": 4.0},
                         "policies": ["ring", "charm", "ring"]})
    b = normalize_query({"seed": 7, "workload": "gups",
                         "policies": ["charm", "ring"],
                         "geometry": {"chiplets_per_socket": 4}})
    assert a == b
    keys_a = [sweep.cache_key(c) for c in a.cells()]
    keys_b = [sweep.cache_key(c) for c in b.cells()]
    assert keys_a == keys_b


def test_preset_equals_spelled_out_axes():
    for name, geo in GEOMETRY_PRESETS.items():
        by_name = normalize_query({"geometry": name})
        by_axes = normalize_query({"geometry": {
            "chiplets_per_socket": geo.chiplets_per_socket,
            "cores_per_chiplet": geo.cores_per_chiplet,
            "l3_mib_per_chiplet": geo.l3_mib_per_chiplet,
            "mem_channels_per_socket": geo.mem_channels_per_socket,
            "link_latency_scale": geo.link_latency_scale,
        }})
        by_preset_key = normalize_query({"geometry": {"preset": name}})
        assert by_name.cells() == by_axes.cells() == by_preset_key.cells()


def test_preset_with_override():
    q = normalize_query({"geometry": {"preset": "milan", "cpc": 4}})
    assert q.geometry.cores_per_chiplet == 4
    assert q.geometry.chiplets_per_socket == 8  # rest from the preset


def test_empty_query_is_fully_defaulted():
    q = normalize_query({})
    assert q.workload == WORKLOADS[0]
    assert q.policies == POLICIES
    assert q.canonical()["params"] == PARAM_DEFAULTS[q.workload]


@pytest.mark.parametrize("doc", [
    "not an object",
    {"bogus_field": 1},
    {"workload": "matmul"},
    {"policy": "charm", "policies": ["ring"]},
    {"policies": []},
    {"policies": ["mystery"]},
    {"geometry": "threadripper"},
    {"geometry": {"cps": 4, "chiplets_per_socket": 4}},  # alias twice
    {"geometry": {"warp_factor": 9}},
    {"geometry": {"cps": 0}},          # fails MachineGeometry.validate
    {"geometry": {"cps": 2.5}},        # non-integral float
    {"geometry": {"cps": True}},       # bool is not a number
    {"cores": 0},
    {"cores": 10_000},
    {"seed": "lucky"},
    {"workload": "gups", "params": {"graph_scale": 12}},  # wrong workload
    {"workload": "gups", "params": {"table_bytes": 1 << 40}},  # ceiling
    {"workload": "gups", "params": {"updates_per_worker": 0}},
])
def test_malformed_queries_raise(doc):
    with pytest.raises(QueryError):
        normalize_query(doc)
