"""Column store: operators and the 22-query suite."""

import numpy as np
import pytest

from repro.baselines.vanilla import VanillaStrategy
from repro.hw.machine import milan
from repro.runtime.policy import CharmStrategy
from repro.workloads.olap import QUERIES, generate, run_query
from repro.workloads.olap.engine import execute_query


@pytest.fixture(scope="module")
def data():
    return generate(sf=0.5, seed=42)


def test_generate_deterministic(data):
    again = generate(sf=0.5, seed=42)
    for table in data.tables:
        for col in data.tables[table]:
            assert np.array_equal(data.col(table, col), again.col(table, col))


def test_schema_shape(data):
    assert data.rows("lineitem") == 30_000
    assert data.rows("orders") == data.rows("lineitem") // 4
    assert data.col("lineitem", "orderkey").max() < data.rows("orders")
    assert data.col("orders", "custkey").max() < data.rows("customer")


def test_scan_filter_operator(data):
    def body(e):
        rows = yield from e.scan_filter("lineitem", lambda c: c["shipdate"] < 100,
                                        ["shipdate"])
        return float(rows.size)

    res = execute_query(milan(scale=64), CharmStrategy(), 4, data, body, name="scan")
    expected = (data.col("lineitem", "shipdate") < 100).sum()
    assert res.value == expected


def test_hash_join_operator(data):
    def body(e):
        build = e.data.col("customer", "custkey")[:50]
        probe = e.data.col("orders", "custkey")
        pi, bi = yield from e.hash_join(build, probe)
        assert np.array_equal(build[bi], probe[pi])
        return float(pi.size)

    res = execute_query(milan(scale=64), CharmStrategy(), 4, data, body, name="join")
    expected = np.isin(data.col("orders", "custkey"), np.arange(50)).sum()
    assert res.value == expected


def test_aggregate_operator(data):
    def body(e):
        groups = e.data.col("lineitem", "returnflag")
        vals = e.data.col("lineitem", "quantity")
        keys, sums = yield from e.aggregate(groups, vals)
        assert np.allclose(sums.sum(), vals.sum())
        return float(keys.size)

    res = execute_query(milan(scale=64), CharmStrategy(), 4, data, body, name="agg")
    assert res.value == 3  # three return flags


@pytest.mark.parametrize("query", sorted(QUERIES))
def test_query_values_strategy_independent(data, query):
    """Every query computes the same value under stock and CHARM."""
    rs = run_query(milan(scale=64), VanillaStrategy(), 4, data, query)
    rc = run_query(milan(scale=64), CharmStrategy(), 4, data, query)
    assert rs.value == pytest.approx(rc.value, rel=1e-9)
    assert rs.wall_ns > 0 and rc.wall_ns > 0


def test_q6_matches_direct_evaluation(data):
    r = run_query(milan(scale=64), CharmStrategy(), 4, data, "q6")
    c = data.tables["lineitem"]
    mask = ((c["shipdate"] >= 365) & (c["shipdate"] < 730)
            & (c["discount"] >= 0.05) & (c["discount"] <= 0.07) & (c["quantity"] < 24))
    assert r.value == pytest.approx((c["extendedprice"][mask] * c["discount"][mask]).sum())


def test_q1_matches_direct_evaluation(data):
    r = run_query(milan(scale=64), CharmStrategy(), 4, data, "q1")
    c = data.tables["lineitem"]
    mask = c["shipdate"] <= 2200
    assert r.value == pytest.approx(
        (c["extendedprice"][mask] * (1 - c["discount"][mask])).sum())


def test_query_kinds_cover_both():
    kinds = {kind for _, kind in QUERIES.values()}
    assert kinds == {"scan", "join"}
    assert len(QUERIES) == 22


def test_q13_matches_direct_evaluation(data):
    r = run_query(milan(scale=64), CharmStrategy(), 4, data, "q13")
    ck = data.col("orders", "custkey")
    counts = np.bincount(ck)
    assert r.value == (counts[counts >= 2]).size


def test_q15_matches_direct_evaluation(data):
    r = run_query(milan(scale=64), CharmStrategy(), 4, data, "q15")
    c = data.tables["lineitem"]
    mask = (c["shipdate"] >= 600) & (c["shipdate"] < 690)
    rev = c["extendedprice"][mask] * (1 - c["discount"][mask])
    sums = np.bincount(c["suppkey"][mask], weights=rev)
    assert r.value == pytest.approx(sums.max())


def test_q19_matches_direct_evaluation(data):
    r = run_query(milan(scale=64), CharmStrategy(), 4, data, "q19")
    c = data.tables["lineitem"]
    mask = (c["quantity"] < 12) & (c["shipinstruct"] == 1)
    brand = data.col("part", "brand")[c["partkey"][mask]]
    assert r.value == pytest.approx(c["extendedprice"][mask][brand < 8].sum())


def test_q22_matches_direct_evaluation(data):
    r = run_query(milan(scale=64), CharmStrategy(), 4, data, "q22")
    bal = data.col("customer", "acctbal")
    pos = bal[bal > 0]
    assert r.value == (bal > pos.mean()).sum()


def test_q4_semi_join_counts_each_order_once(data):
    r = run_query(milan(scale=64), CharmStrategy(), 4, data, "q4")
    c = data.tables["lineitem"]
    late_orders = np.unique(c["orderkey"][c["commitdate"] < c["receiptdate"]])
    odate = data.col("orders", "orderdate")[late_orders]
    assert r.value == (odate < 1200).sum()
