"""Regions, NUMA policies, and queueing servers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.memory import (
    ChannelBank,
    CrossSocketLinks,
    LinkBank,
    MemPolicy,
    RegionTable,
)


def _table():
    return RegionTable(numa_nodes=2, default_block_bytes=4096)


def test_region_block_math():
    r = _table().alloc(10_000, node=0)
    assert r.n_blocks == 3
    assert r.block_of_offset(0) == 0
    assert r.block_of_offset(4096) == 1
    assert r.block_of_offset(9999) == 2
    with pytest.raises(ValueError):
        r.block_of_offset(10_000)


def test_block_keys_unique_across_regions():
    t = _table()
    a = t.alloc(1 << 20)
    b = t.alloc(1 << 20)
    keys_a = {a.block_key(i) for i in range(a.n_blocks)}
    keys_b = {b.block_key(i) for i in range(b.n_blocks)}
    assert not keys_a & keys_b


@given(st.integers(1, 1 << 30), st.integers(64, 1 << 16))
@settings(max_examples=50, deadline=None)
def test_region_covers_all_bytes(size, block):
    t = RegionTable(2, block)
    r = t.alloc(size)
    assert r.n_blocks * r.block_bytes >= size
    assert (r.n_blocks - 1) * r.block_bytes < size
    assert r.block_of_offset(size - 1) == r.n_blocks - 1


def test_policies_node_of_block():
    t = _table()
    bind = t.alloc(1 << 20, node=1, policy=MemPolicy.BIND)
    inter = t.alloc(1 << 20, policy=MemPolicy.INTERLEAVE)
    repl = t.alloc(1 << 20, policy=MemPolicy.REPLICATED)
    assert all(bind.node_of_block(i) == 1 for i in range(4))
    assert [inter.node_of_block(i) for i in range(4)] == [0, 1, 0, 1]
    assert repl.node_of_block(3, requester_node=1) == 1
    assert repl.node_of_block(3, requester_node=0) == 0


def test_alloc_accounting():
    t = _table()
    t.alloc(1000, node=1, policy=MemPolicy.BIND)
    assert t.allocated_bytes_per_node[1] == 1000
    t.alloc(1000, policy=MemPolicy.REPLICATED)
    assert t.allocated_bytes_per_node == [1000, 2000]


def test_invalid_alloc():
    t = _table()
    with pytest.raises(ValueError):
        t.alloc(-1)
    with pytest.raises(ValueError):
        t.alloc(10, node=5)


def test_channel_queueing():
    bank = ChannelBank(sockets=1, channels_per_socket=1, bytes_per_ns_per_channel=1.0)
    d1, w1 = bank.service(0, block_key=0, nbytes=100, now=0.0)
    assert (d1, w1) == (100.0, 0.0)
    d2, w2 = bank.service(0, block_key=0, nbytes=100, now=0.0)
    assert (d2, w2) == (200.0, 100.0)  # queued behind the first
    d3, w3 = bank.service(0, block_key=0, nbytes=100, now=500.0)
    assert (d3, w3) == (100.0, 0.0)  # idle again


def test_channel_interleave_parallelism():
    bank = ChannelBank(1, channels_per_socket=2, bytes_per_ns_per_channel=1.0)
    d1, _ = bank.service(0, block_key=0, nbytes=100, now=0.0)
    d2, _ = bank.service(0, block_key=1, nbytes=100, now=0.0)
    assert d1 == d2 == 100.0  # different channels, no queueing


def test_link_bank_busy_accounting():
    links = LinkBank(chiplets=2, bytes_per_ns_per_link=2.0)
    links.service(0, 100, now=0.0)
    assert links.busy_ns(0) == 50.0
    assert links.busy_ns(1) == 0.0
    assert links.requests(0) == 1


def test_cross_socket_links():
    x = CrossSocketLinks(sockets=2, bytes_per_ns_per_link=1.0)
    assert x.service(0, 0, 100, now=0.0) == (0.0, 0.0)  # same socket free
    d, w = x.service(0, 1, 100, now=0.0)
    assert (d, w) == (100.0, 0.0)
    d, w = x.service(1, 0, 100, now=0.0)  # same unordered pair queues
    assert (d, w) == (200.0, 100.0)


def test_free_returns_bytes_to_node_accounting():
    """Regression: free must undo alloc's per-node accounting (was a leak)."""
    t = _table()
    r_bind = t.alloc(10_000, node=1, policy=MemPolicy.BIND)
    r_il = t.alloc(8_000, policy=MemPolicy.INTERLEAVE)
    r_rep = t.alloc(6_000, policy=MemPolicy.REPLICATED)
    assert t.allocated_bytes_per_node == [4_000 + 6_000, 10_000 + 4_000 + 6_000]
    t.free(r_bind)
    assert t.allocated_bytes_per_node == [4_000 + 6_000, 4_000 + 6_000]
    t.free(r_il)
    assert t.allocated_bytes_per_node == [6_000, 6_000]
    t.free(r_rep)
    assert t.allocated_bytes_per_node == [0, 0]


def test_free_is_idempotent():
    t = _table()
    r = t.alloc(10_000, node=0)
    t.free(r)
    t.free(r)  # double-free must not decrement twice
    assert t.allocated_bytes_per_node == [0, 0]


def test_node_of_block_replicated_without_requester_falls_back_to_home():
    t = _table()
    r = t.alloc(10_000, node=1, policy=MemPolicy.REPLICATED)
    assert r.node_of_block(0, requester_node=0) == 0
    assert r.node_of_block(0, requester_node=None) == 1  # home node fallback
    assert r.node_of_block(0) == 1


@settings(max_examples=50, deadline=None)
@given(
    arrivals=st.lists(
        st.tuples(st.floats(0.0, 1000.0, allow_nan=False),
                  st.floats(0.0, 100.0, allow_nan=False)),
        min_size=1, max_size=50,
    )
)
def test_server_queue_recurrence_properties(arrivals):
    """The recurrence the vector kernels must reproduce: ``free = max(free, t) + s``.

    free_at is monotone non-decreasing, busy_ns is the exact (ordered) sum
    of service times, waits are non-negative, and total delay = wait + s.
    """
    from repro.hw.memory import _Server

    srv = _Server()
    busy_ref = 0.0
    prev_free = srv.free_at
    for now, s in arrivals:
        d, w = srv.service(now, s)
        busy_ref += s
        assert srv.free_at >= prev_free        # monotone
        assert w >= 0.0
        assert d == pytest.approx(w + s)       # delay decomposition
        assert srv.free_at == pytest.approx(now + d)  # finish consistency
        prev_free = srv.free_at
    assert srv.busy_ns == busy_ref             # ordered float sum, bit-equal
    assert srv.requests == len(arrivals)
    stats = srv.stats()
    assert stats["busy_ns"] == busy_ref
    assert stats["requests"] == len(arrivals)
