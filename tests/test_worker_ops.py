"""Worker-level op semantics: MLP, dependent chains, slicing, stealing."""

import pytest

from repro.hw.machine import small_test_machine
from repro.runtime.ops import (
    Access,
    AccessBatch,
    Compute,
    SimLock,
    SpawnOp,
    WaitBarrier,
    WaitFuture,
    YieldPoint,
)
from repro.runtime.policy import StaticSpreadStrategy
from repro.runtime.runtime import Runtime
from repro.runtime.sync import Barrier


def _rt(workers=1, **kw):
    return Runtime(small_test_machine(), workers, StaticSpreadStrategy(1), seed=3, **kw)


def test_batch_overlaps_latency_vs_dependent_chain():
    """The same blocks cost much more as a dependent chain than a batch."""
    def run(dependent):
        rt = _rt()
        region = rt.alloc(64 * 64, node=0)
        blocks = list(range(region.n_blocks))

        def body():
            yield AccessBatch(region, blocks, dependent=dependent)
            return None

        rt.spawn(body, pin_worker=0)
        return rt.run().wall_ns

    assert run(dependent=True) > 2.0 * run(dependent=False)


def test_single_access_equals_dependent_batch_cost_shape():
    rt = _rt()
    region = rt.alloc(64 * 8, node=0)

    def body():
        for b in range(region.n_blocks):
            yield Access(region, b)
        return None

    rt.spawn(body, pin_worker=0)
    serial = rt.run().wall_ns
    rt2 = _rt()
    region2 = rt2.alloc(64 * 8, node=0)

    def body2():
        yield AccessBatch(region2, list(range(region2.n_blocks)))
        return None

    rt2.spawn(body2, pin_worker=0)
    batched = rt2.run().wall_ns
    assert serial > batched


def test_compute_rejects_negative():
    with pytest.raises(ValueError):
        Compute(-1.0)


def test_unknown_op_rejected():
    rt = _rt()

    def body():
        yield "not-an-op"

    rt.spawn(body, pin_worker=0)
    with pytest.raises(TypeError, match="unknown op"):
        rt.run()


def test_non_generator_task_rejected():
    rt = _rt()
    rt.spawn(lambda: 42, pin_worker=0)
    with pytest.raises(TypeError, match="generator"):
        rt.run()


def test_step_slice_bounds_single_turn():
    """A long compute sequence is split across event-loop turns."""
    rt = _rt(step_slice_ns=100.0)

    def body():
        for _ in range(50):
            yield Compute(50.0)
        return None

    rt.spawn(body, pin_worker=0)
    rt.run()
    assert rt.loop.steps > 10  # many slices, not one monolithic step


def test_sim_lock_contention_tracked():
    lock = SimLock("L")
    rt = _rt(workers=2)
    from repro.runtime.ops import CriticalSection

    def body(wid):
        yield CriticalSection(lock, 500.0)
        return wid

    rt.spawn(body, 0, pin_worker=0)
    rt.spawn(body, 1, pin_worker=1)
    rt.run()
    assert lock.acquisitions == 2
    assert lock.contended_ns > 0


def test_barrier_underfilled_deadlocks():
    """A barrier expecting more parties than exist is a detected deadlock."""
    from repro.sim.engine import SimulationError

    rt = _rt(workers=2)
    bar = Barrier(3)

    def body(wid):
        yield WaitBarrier(bar)
        return wid

    rt.spawn(body, 0, pin_worker=0)
    rt.spawn(body, 1, pin_worker=1)
    with pytest.raises(SimulationError, match="deadlock"):
        rt.run()


def test_worker_steals_when_local_empty():
    rt = _rt(workers=4)

    def chunk(i):
        yield Compute(2000.0)
        return i

    def root():
        tasks = []
        for i in range(12):
            t = yield SpawnOp(chunk, (i,))
            tasks.append(t)
        for t in tasks:
            fut = rt.completion_future(t)
            if not fut.done:
                yield WaitFuture(fut)
        return None

    rt.spawn(root, pin_worker=0)
    report = rt.run()
    # rr placement + imbalance means some stealing occurred or all workers busy
    assert sum(1 for b in report.per_worker_busy_ns if b > 0) >= 3


def test_yield_point_requeues_fifo_order():
    rt = _rt(workers=1)
    order = []

    def body(tag):
        order.append(("start", tag))
        yield YieldPoint()
        order.append(("end", tag))
        return tag

    rt.spawn(body, "a", pin_worker=0)
    rt.spawn(body, "b", pin_worker=0)
    rt.run()
    assert order == [("start", "a"), ("start", "b"), ("end", "a"), ("end", "b")]
