"""End-to-end runtime semantics: ops, scheduling, migration, reporting."""

import pytest

from repro.baselines.oslike import OsAsyncStrategy
from repro.hw.machine import milan, small_test_machine
from repro.runtime.ops import (
    Access,
    AccessBatch,
    Compute,
    CriticalSection,
    SimLock,
    SpawnOp,
    WaitBarrier,
    WaitFuture,
    YieldPoint,
)
from repro.runtime.policy import CharmStrategy, StaticSpreadStrategy
from repro.runtime.runtime import Runtime
from repro.runtime.sync import Barrier
from repro.sim.engine import SimulationError


def _runtime(workers=4, machine=None, strategy=None, **kw):
    machine = machine or small_test_machine()
    return Runtime(machine, workers, strategy or StaticSpreadStrategy(1), seed=3, **kw)


def test_compute_advances_time():
    rt = _runtime(1)

    def body():
        yield Compute(1234.0)
        return "done"

    t = rt.spawn(body, pin_worker=0)
    report = rt.run()
    assert t.result == "done"
    assert report.wall_ns >= 1234.0


def test_spawn_and_futures():
    rt = _runtime(2)

    def child(x):
        yield Compute(10.0)
        return x * 2

    def parent():
        c = yield SpawnOp(child, (21,))
        fut = rt.completion_future(c)
        value = yield WaitFuture(fut)
        return value

    p = rt.spawn(parent, pin_worker=0)
    rt.run()
    assert p.result == 42


def test_barrier_synchronizes_tasks():
    rt = _runtime(4)
    bar = Barrier(4)
    finish_times = {}

    def body(wid):
        yield Compute(100.0 * (wid + 1))
        yield WaitBarrier(bar)
        yield Compute(1.0)
        finish_times[wid] = True
        return wid

    for w in range(4):
        rt.spawn(body, w, pin_worker=w)
    rt.run()
    assert len(finish_times) == 4
    assert bar.releases == 1


def test_work_stealing_distributes_load():
    rt = _runtime(4)

    def chunk(i):
        yield Compute(5000.0)
        return i

    def root():
        tasks = []
        for i in range(16):
            t = yield SpawnOp(chunk, (i,), pin_worker=None)
            tasks.append(t)
        for t in tasks:
            fut = rt.completion_future(t)
            if not fut.done:
                yield WaitFuture(fut)
        return len(tasks)

    rt.spawn(root, pin_worker=0)
    report = rt.run()
    assert report.tasks_completed == 17
    busy = report.per_worker_busy_ns
    assert sum(1 for b in busy if b > 0) >= 3  # several workers participated


def test_critical_section_serialises():
    rt = _runtime(2)
    lock = SimLock("L")

    def body(wid):
        yield CriticalSection(lock, 1000.0)
        return wid

    rt.spawn(body, 0, pin_worker=0)
    rt.spawn(body, 1, pin_worker=1)
    report = rt.run()
    assert lock.acquisitions == 2
    assert report.wall_ns >= 2000.0  # fully serialised


def test_access_updates_counters():
    rt = _runtime(1)
    region = rt.alloc(4096, node=0)

    def body():
        yield Access(region, 0)
        yield AccessBatch(region, list(range(region.n_blocks)))
        return None

    rt.spawn(body, pin_worker=0)
    report = rt.run()
    assert report.counters.dram >= 1
    assert report.total_accesses == 1 + region.n_blocks


def test_migration_via_policy():
    machine = milan(scale=64)
    rt = Runtime(machine, 8, CharmStrategy(), seed=3)
    big = rt.alloc_shared(8 << 20, name="big")

    def body(wid):
        for rounds in range(40):
            yield AccessBatch(big, list(range(rounds * 16, rounds * 16 + 16)))
            yield YieldPoint()
        return wid

    for w in range(8):
        rt.spawn(body, w, pin_worker=w)
    report = rt.run()
    # The working set exceeds one chiplet: workers must have spread out.
    assert report.migrations > 0
    occupied = {machine.topo.chiplet_of_core(w.core) for w in rt.workers}
    assert len(occupied) > 1


def test_migration_denied_when_core_held():
    rt = _runtime(2)
    w0, w1 = rt.workers
    assert not rt.request_migration(w0, w1.core)
    assert rt.request_migration(w0, w0.core)  # self is a no-op grant


def test_run_twice_rejected():
    rt = _runtime(1)
    rt.spawn(lambda: iter(()), pin_worker=0)

    def body():
        yield Compute(1.0)

    rt2 = _runtime(1)
    rt2.spawn(body, pin_worker=0)
    rt2.run()
    with pytest.raises(SimulationError):
        rt2.run()


def test_run_without_tasks_rejected():
    with pytest.raises(SimulationError):
        _runtime(1).run()


def test_too_many_workers_rejected():
    with pytest.raises(ValueError):
        _runtime(workers=100)


def test_task_exception_propagates():
    rt = _runtime(1)

    def bad():
        yield Compute(1.0)
        raise RuntimeError("boom")

    rt.spawn(bad, pin_worker=0)
    with pytest.raises(RuntimeError, match="boom"):
        rt.run()


def test_blocking_strategy_runs_to_completion():
    rt = _runtime(2, machine=small_test_machine(), strategy=OsAsyncStrategy())
    bar = Barrier(2)

    def body(wid):
        yield Compute(50.0)
        yield WaitBarrier(bar)
        return wid

    rt.spawn(body, 0, pin_worker=0)
    rt.spawn(body, 1, pin_worker=1)
    report = rt.run()
    assert report.tasks_completed == 2


def test_deterministic_given_seed():
    def make():
        rt = _runtime(4, machine=small_test_machine())
        region = rt.alloc(8192, node=0)

        def body(wid):
            yield AccessBatch(region, list(range(wid, wid + 4)))
            yield YieldPoint()
            yield Compute(10.0)
            return wid

        for w in range(4):
            rt.spawn(body, w, pin_worker=w)
        return rt.run()

    r1, r2 = make(), make()
    assert r1.wall_ns == r2.wall_ns
    assert r1.counters.as_row() == r2.counters.as_row()


def test_report_throughput_and_concurrency():
    rt = _runtime(2, collect_timeline=True)

    def body(wid):
        yield Compute(1000.0)
        return wid

    rt.spawn(body, 0, pin_worker=0)
    rt.spawn(body, 1, pin_worker=1)
    report = rt.run()
    assert report.throughput(100) > 0
    assert 0 < report.avg_concurrency() <= 2.0
