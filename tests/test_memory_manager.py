"""NUMA-aware allocation helpers and partitioning."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.machine import small_test_machine
from repro.hw.memory import MemPolicy
from repro.runtime.memory_manager import MemoryManager, chunk_ranges, partition_blocks
from repro.runtime.policy import StaticSpreadStrategy
from repro.runtime.runtime import Runtime


def test_partition_blocks_exact():
    parts = partition_blocks(10, 3)
    assert parts == [(0, 4), (4, 7), (7, 10)]


@given(st.integers(0, 10_000), st.integers(1, 64))
@settings(max_examples=80, deadline=None)
def test_partition_blocks_properties(n, k):
    parts = partition_blocks(n, k)
    assert len(parts) == k
    assert parts[0][0] == 0 and parts[-1][1] == n
    sizes = [e - s for s, e in parts]
    assert sum(sizes) == n
    assert max(sizes) - min(sizes) <= 1
    for (s1, e1), (s2, e2) in zip(parts, parts[1:]):
        assert e1 == s2


def test_partition_invalid():
    with pytest.raises(ValueError):
        partition_blocks(4, 0)


def test_chunk_ranges():
    assert chunk_ranges(0, 10, 4) == [(0, 4), (4, 8), (8, 10)]
    with pytest.raises(ValueError):
        chunk_ranges(0, 10, 0)


def test_memory_manager_policies():
    rt = Runtime(small_test_machine(), 2, StaticSpreadStrategy(1), seed=1)
    mm = MemoryManager(rt)
    local = mm.alloc_local(4096, rt.workers[1])
    assert local.home_node == rt.workers[1].mem_node
    assert mm.alloc_bind(4096, 1).home_node == 1
    assert mm.alloc_interleave(4096).policy is MemPolicy.INTERLEAVE
    assert mm.alloc_replicated(4096).policy is MemPolicy.REPLICATED
