"""Experiment registry smoke checks (fast ones only; the heavy ones are
exercised by benchmarks/)."""

from repro.bench import experiments
from repro.cli import EXPERIMENT_ORDER


def test_all_experiments_return_text():
    for name in ("fig03_latency_cdf", "fig04_channels"):
        rows, text = getattr(experiments, name)()
        assert rows and isinstance(text, str) and text


def test_channel_trend_is_historical():
    years = [y for y, _, _ in experiments.CHANNEL_TREND]
    assert years == sorted(years)
    assert years[0] == 2010


def test_registry_complete():
    for name in EXPERIMENT_ORDER:
        assert callable(getattr(experiments, name))


def test_graph_algos_list():
    assert set(experiments.GRAPH_ALGOS) == {"bfs", "pagerank", "cc", "sssp", "graph500"}


def test_cores_axis_pinned():
    assert experiments._cores(True) == [8, 32, 64]
    assert experiments._cores(False) == [8, 16, 32, 48, 64, 96, 128]


def test_cores_caps_clamp_and_dedupe():
    # entries above the cap clamp to it (the largest config is still
    # swept) and the resulting duplicates collapse
    assert experiments._cores(True, cap=48) == [8, 32, 48]
    assert experiments._cores(False, cap=96) == [8, 16, 32, 48, 64, 96]
    assert experiments._cores(False, cap=40) == [8, 16, 32, 40]
    assert experiments._cores(True, cap=8) == [8]


def test_every_experiment_is_registered_as_cells():
    from repro.bench.cells import REGISTRY

    for name in EXPERIMENT_ORDER:
        assert name in REGISTRY
        cells = REGISTRY[name].cells(True)
        assert cells and all(c.experiment == name for c in cells)
        assert len({c.cell_id for c in cells}) == len(cells)  # unique ids
