"""Experiment registry smoke checks (fast ones only; the heavy ones are
exercised by benchmarks/)."""

from repro.bench import experiments
from repro.cli import EXPERIMENT_ORDER


def test_all_experiments_return_text():
    for name in ("fig03_latency_cdf", "fig04_channels"):
        rows, text = getattr(experiments, name)()
        assert rows and isinstance(text, str) and text


def test_channel_trend_is_historical():
    years = [y for y, _, _ in experiments.CHANNEL_TREND]
    assert years == sorted(years)
    assert years[0] == 2010


def test_registry_complete():
    for name in EXPERIMENT_ORDER:
        assert callable(getattr(experiments, name))


def test_graph_algos_list():
    assert set(experiments.GRAPH_ALGOS) == {"bfs", "pagerank", "cc", "sssp", "graph500"}
