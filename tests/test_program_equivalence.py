"""Bit-identity of compiled op programs vs the forced-generator twin.

PR 9's compiled-execution fast path hands whole :class:`OpProgram`
columns to the worker (``Worker._run_program``) instead of yielding one
op dataclass per generator ``send()``.  The contract is the same one the
vector kernels obey: the compiled walk must be *bit-identical* to the
per-op dispatch path — every virtual time, every worker clock, the
event-loop step count, fill counters, LRU contents and order, the
sharing directory, and channel / fabric-link / cross-socket server
state.

The forced twin is :data:`repro.runtime.program.FORCE_GENERATOR`: when
set, a worker receiving a program splices ``program.to_ops()`` into the
task's generator and interprets every row through the ordinary per-op
``send()`` dispatch.  Both paths see the same post-fusion rows, so any
divergence is an interpreter bug, not a fusion artifact.

Covered producers: hypothesis-generated mixed programs (batch / run /
access / compute / critical / yield rows, plus program -> plain-op ->
program splice transitions), the perf-suite batched and run-compressed
stream tasks, and the six real workload emitters (gups, streamcluster,
OLAP scan-filter, SGD, graph owner-rounds) on all three machine presets.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.runtime.program as program_mod
from repro.hw.machine import milan, sapphire_rapids, small_test_machine
from repro.runtime.ops import Compute, SimLock
from repro.runtime.policy import CharmStrategy
from repro.runtime.program import OpProgram
from repro.runtime.runtime import Runtime

MACHINES = {
    "small_test_machine": small_test_machine,
    "milan32": lambda: milan(scale=32),
    "sapphire_rapids32": lambda: sapphire_rapids(scale=32),
}

SEED = 7


def server_state(m):
    """free_at / busy_ns / wait_ns / requests of every bandwidth server."""
    rows = []
    for socket_servers in m.channels._servers:
        for s in socket_servers:
            rows.append((s.free_at, s.busy_ns, s.wait_ns, s.requests))
    for s in m.links._servers:
        rows.append((s.free_at, s.busy_ns, s.wait_ns, s.requests))
    for pair in sorted(m.xlinks._servers):
        s = m.xlinks._servers[pair]
        rows.append((s.free_at, s.busy_ns, s.wait_ns, s.requests))
    return rows


def machine_state(m):
    """Everything the equivalence contract covers, as comparable values."""
    return {
        "directory": {k: frozenset(v) for k, v in m.caches.directory.items()},
        "lru": [list(c._lru.items()) for c in m.caches.caches],
        "cache_stats": [
            (c.hits, c.misses, c.evictions, c.used_bytes) for c in m.caches.caches
        ],
        "servers": server_state(m),
        "counters": [m.counters.core(c).v for c in range(m.topo.total_cores)],
        "fill_latency": m.fill_latency_histogram(),
        "total_accesses": m.total_accesses,
    }


def run_twin(run_fn):
    """Run ``run_fn()`` on the program path and the forced-generator twin.

    ``run_fn`` must build a fresh machine + runtime each call and return
    ``(report, machine, runtime_or_None)``.  Asserts full bit-identity.
    """
    assert not program_mod.FORCE_GENERATOR
    rep_p, m_p, rt_p = run_fn()
    program_mod.FORCE_GENERATOR = True
    try:
        rep_g, m_g, rt_g = run_fn()
    finally:
        program_mod.FORCE_GENERATOR = False
    assert rep_p.wall_ns == rep_g.wall_ns, "virtual end time diverged"
    assert rep_p.tasks_completed == rep_g.tasks_completed
    assert rep_p.tasks_created == rep_g.tasks_created
    assert rep_p.migrations == rep_g.migrations
    assert rep_p.steals == rep_g.steals
    assert rep_p.counters.as_row() == rep_g.counters.as_row()
    assert rep_p.per_worker_busy_ns == rep_g.per_worker_busy_ns
    assert rep_p.total_accesses == rep_g.total_accesses
    assert rep_p.fill_totals == rep_g.fill_totals
    sp, sg = machine_state(m_p), machine_state(m_g)
    for k in sp:
        assert sp[k] == sg[k], f"machine state mismatch in {k}"
    assert m_p.caches.check_directory_consistent()
    if rt_p is not None and rt_g is not None:
        assert rt_p.loop.steps == rt_g.loop.steps, "event-loop step count diverged"
        assert rt_p.loop.now == rt_g.loop.now
        assert [w.clock for w in rt_p.workers] == [w.clock for w in rt_g.workers]
        assert [w.busy_ns for w in rt_p.workers] == [w.busy_ns for w in rt_g.workers]
    return rep_p


def _n_workers(machine) -> int:
    return min(4, machine.topo.total_cores)


# --- hypothesis: arbitrary mixed programs with splice transitions ---------

def _mixed_task(region, lock, rows, second_rows):
    """Emit a program, a plain op (splice passthrough), then a second program."""
    program = OpProgram()
    for row in rows:
        _append_row(program, region, lock, row)
    yield program
    yield Compute(5.0)
    if second_rows:
        second = OpProgram()
        for row in second_rows:
            _append_row(second, region, lock, row)
        yield second
    return len(rows)


def _append_row(program, region, lock, row):
    kind = row[0]
    if kind == "compute":
        program.compute(row[1])
    elif kind == "access":
        program.access(region, row[1], write=row[2])
    elif kind == "batch":
        program.batch(region, list(row[1]), write=row[2])
    elif kind == "run":
        start, count, stride, write = row[1:]
        program.run(region, start, count, stride=stride, write=write)
    elif kind == "critical":
        program.critical(lock, row[1])
    else:
        program.yield_()


def _row_strategy(n_blocks):
    block = st.integers(0, n_blocks - 1)
    return st.one_of(
        st.tuples(st.just("compute"), st.floats(0.0, 500.0, allow_nan=False)),
        st.tuples(st.just("access"), block, st.booleans()),
        st.tuples(st.just("batch"),
                  st.lists(block, min_size=1, max_size=24), st.booleans()),
        st.tuples(st.just("run"), st.integers(0, n_blocks // 2),
                  st.integers(1, min(16, n_blocks // 2)), st.integers(1, 2),
                  st.booleans()),
        st.tuples(st.just("critical"), st.floats(0.0, 200.0, allow_nan=False)),
        st.tuples(st.just("yield")),
    )


@pytest.mark.parametrize("mk", MACHINES.values(), ids=MACHINES.keys())
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_mixed_programs_match_generator_twin(mk, data):
    n_blocks = 64
    n_tasks = data.draw(st.integers(1, 3))
    tasks = []
    for _ in range(n_tasks):
        rows = data.draw(st.lists(_row_strategy(n_blocks), min_size=1,
                                  max_size=12))
        second = data.draw(st.lists(_row_strategy(n_blocks), min_size=0,
                                    max_size=6))
        tasks.append((rows, second))

    def run():
        machine = mk()
        runtime = Runtime(machine, _n_workers(machine), CharmStrategy(),
                          seed=SEED)
        region = runtime.alloc_shared(n_blocks * machine.block_bytes,
                                      name="peq")
        lock = SimLock("peq-lock")
        for i, (rows, second) in enumerate(tasks):
            runtime.spawn(_mixed_task, region, lock, rows, second,
                          pin_worker=i % len(runtime.workers), name=f"peq-{i}")
        report = runtime.run()
        return report, machine, runtime

    run_twin(run)


# --- the perf-suite stream producers (batched + run-compressed) -----------

@pytest.mark.parametrize("mk", MACHINES.values(), ids=MACHINES.keys())
def test_perf_batched_task_matches_twin(mk):
    from repro.bench.perf import _batched_task

    def run():
        machine = mk()
        nw = _n_workers(machine)
        runtime = Runtime(machine, nw, CharmStrategy(), seed=SEED)
        region = runtime.alloc_shared(nw * 128 * machine.block_bytes,
                                      name="peq-stream")
        for wid in range(nw):
            base = wid * 128
            seq = list(range(base, base + 128))
            batches = [seq[s:s + 32] for s in range(0, 128, 32)]
            runtime.spawn(_batched_task, region, batches, False, None,
                          pin_worker=wid, name=f"peq-{wid}")
        report = runtime.run()
        return report, machine, runtime

    run_twin(run)


@pytest.mark.parametrize("mk", MACHINES.values(), ids=MACHINES.keys())
def test_perf_run_task_matches_twin(mk):
    from repro.bench.perf import _run_task

    def run():
        machine = mk()
        nw = _n_workers(machine)
        runtime = Runtime(machine, nw, CharmStrategy(), seed=SEED)
        region = runtime.alloc_shared(nw * 128 * machine.block_bytes,
                                      name="peq-stream")
        for wid in range(nw):
            base = wid * 128
            runs = [(base + s, 32) for s in range(0, 128, 32)]
            runtime.spawn(_run_task, region, runs, False, None,
                          pin_worker=wid, name=f"peq-{wid}")
        report = runtime.run()
        return report, machine, runtime

    run_twin(run)


# --- the real workload producers ------------------------------------------

@pytest.mark.parametrize("mk", MACHINES.values(), ids=MACHINES.keys())
def test_gups_matches_twin(mk):
    from repro.workloads.gups import run_gups

    def run():
        machine = mk()
        res = run_gups(machine, CharmStrategy(), _n_workers(machine),
                       table_bytes=64 * 1024, updates_per_worker=256,
                       seed=SEED)
        return res.report, machine, None

    rep = run_twin(run)
    assert rep.total_accesses > 0


@pytest.mark.parametrize("mk", MACHINES.values(), ids=MACHINES.keys())
def test_streamcluster_matches_twin(mk):
    from repro.workloads.streamcluster import make_points, run_streamcluster

    points = make_points(64, 8, 4, seed=3)

    def run():
        machine = mk()
        res = run_streamcluster(machine, CharmStrategy(), _n_workers(machine),
                                points, n_centers=4, search_iterations=1,
                                seed=SEED)
        return res.report, machine, None

    run_twin(run)


@pytest.mark.parametrize("mk", MACHINES.values(), ids=MACHINES.keys())
def test_olap_scan_filter_matches_twin(mk):
    from repro.workloads.olap.data import generate
    from repro.workloads.olap.engine import execute_query
    from repro.workloads.olap.queries import q6

    data = generate(sf=0.05, seed=42)

    def run():
        machine = mk()
        res = execute_query(machine, CharmStrategy(), _n_workers(machine),
                            data, q6, name="q6", seed=SEED)
        return res.report, machine, None

    run_twin(run)


@pytest.mark.parametrize("mk", MACHINES.values(), ids=MACHINES.keys())
def test_sgd_matches_twin(mk):
    from repro.workloads.sgd.engine import make_dataset, run_sgd

    dataset = make_dataset(n_samples=96, n_features=32, seed=11)

    def run():
        machine = mk()
        res = run_sgd(machine, "charm", _n_workers(machine), dataset,
                      epochs=1, chunk_rows=32, seed=SEED)
        return res.report, machine, None

    run_twin(run)


@pytest.mark.parametrize("mk", MACHINES.values(), ids=MACHINES.keys())
def test_graph_pagerank_matches_twin(mk):
    from repro.workloads.graph.generator import kronecker
    from repro.workloads.graph.runner import run_graph_algorithm

    graph = kronecker(8, edgefactor=4, seed=5)

    def run():
        machine = mk()
        res = run_graph_algorithm(machine, CharmStrategy(), "pagerank", graph,
                                  _n_workers(machine), seed=SEED,
                                  pagerank_iterations=2)
        return res.report, machine, None

    run_twin(run)
