"""Virtual-time event loop semantics."""

import pytest

from repro.sim.engine import Actor, EventLoop, SimulationError, StepOutcome


class Stepper(Actor):
    """Advances its clock by `step_ns` for `n` steps, recording order."""

    def __init__(self, actor_id, step_ns, n, log):
        super().__init__(actor_id)
        self.step_ns = step_ns
        self.n = n
        self.log = log

    def step(self, loop):
        self.log.append((self.actor_id, self.clock))
        self.n -= 1
        if self.n <= 0:
            return StepOutcome.FINISHED
        self.clock += self.step_ns
        return StepOutcome.RESCHEDULE


def test_min_clock_first_ordering():
    log = []
    loop = EventLoop()
    loop.add(Stepper(0, 10.0, 5, log))
    loop.add(Stepper(1, 25.0, 3, log))
    loop.run()
    times = [t for _, t in log]
    assert times == sorted(times)


def test_tie_break_deterministic():
    log = []
    loop = EventLoop()
    loop.add(Stepper(1, 10.0, 2, log))
    loop.add(Stepper(0, 10.0, 2, log))
    loop.run()
    assert log[0][0] == 0  # lower actor id first on equal clocks


def test_final_time_is_max_clock():
    loop = EventLoop()
    loop.add(Stepper(0, 7.0, 4, []))
    assert loop.run() == pytest.approx(21.0)


class Parker(Actor):
    def step(self, loop):
        return StepOutcome.PARKED


def test_deadlock_detected():
    loop = EventLoop()
    loop.add(Parker(0))
    with pytest.raises(SimulationError, match="deadlock"):
        loop.run()


def test_deadlock_error_names_parked_actors():
    loop = EventLoop()
    loop.add(Parker(3))
    loop.add(Parker(11))
    loop.add(Stepper(5, 10.0, 2, []))  # finishes fine; must not be listed
    with pytest.raises(SimulationError, match=r"parked actor ids: \[3, 11\]"):
        loop.run()


def test_wake_advances_clock():
    class WakeOnce(Actor):
        def __init__(self):
            super().__init__(0)
            self.phase = 0

        def step(self, loop):
            if self.phase == 0:
                self.phase = 1
                return StepOutcome.PARKED
            return StepOutcome.FINISHED

    class Waker(Actor):
        def __init__(self, target):
            super().__init__(1)
            self.target = target

        def step(self, loop):
            loop.wake(self.target, at_time=500.0)
            return StepOutcome.FINISHED

    sleeper = WakeOnce()
    loop = EventLoop()
    loop.add(sleeper)
    loop.add(Waker(sleeper))
    loop.run()
    assert sleeper.clock == 500.0


def test_wake_finished_actor_rejected():
    loop = EventLoop()
    a = Stepper(0, 1.0, 1, [])
    loop.add(a)
    loop.run()
    with pytest.raises(SimulationError):
        loop.wake(a)


def test_max_steps_livelock_guard():
    loop = EventLoop()
    loop.max_steps = 10
    loop.add(Stepper(0, 1.0, 1000, []))
    with pytest.raises(SimulationError, match="max_steps"):
        loop.run()
