"""Virtual-time event loop semantics."""

import pytest

from repro.sim.engine import Actor, EventLoop, SimulationError, StepOutcome


class Stepper(Actor):
    """Advances its clock by `step_ns` for `n` steps, recording order."""

    def __init__(self, actor_id, step_ns, n, log):
        super().__init__(actor_id)
        self.step_ns = step_ns
        self.n = n
        self.log = log

    def step(self, loop):
        self.log.append((self.actor_id, self.clock))
        self.n -= 1
        if self.n <= 0:
            return StepOutcome.FINISHED
        self.clock += self.step_ns
        return StepOutcome.RESCHEDULE


def test_min_clock_first_ordering():
    log = []
    loop = EventLoop()
    loop.add(Stepper(0, 10.0, 5, log))
    loop.add(Stepper(1, 25.0, 3, log))
    loop.run()
    times = [t for _, t in log]
    assert times == sorted(times)


def test_tie_break_deterministic():
    log = []
    loop = EventLoop()
    loop.add(Stepper(1, 10.0, 2, log))
    loop.add(Stepper(0, 10.0, 2, log))
    loop.run()
    assert log[0][0] == 0  # lower actor id first on equal clocks


def test_final_time_is_max_clock():
    loop = EventLoop()
    loop.add(Stepper(0, 7.0, 4, []))
    assert loop.run() == pytest.approx(21.0)


class Parker(Actor):
    def step(self, loop):
        return StepOutcome.PARKED


def test_deadlock_detected():
    loop = EventLoop()
    loop.add(Parker(0))
    with pytest.raises(SimulationError, match="deadlock"):
        loop.run()


def test_deadlock_error_names_parked_actors():
    loop = EventLoop()
    loop.add(Parker(3))
    loop.add(Parker(11))
    loop.add(Stepper(5, 10.0, 2, []))  # finishes fine; must not be listed
    with pytest.raises(SimulationError, match=r"parked actor ids: \[3, 11\]"):
        loop.run()


def test_wake_advances_clock():
    class WakeOnce(Actor):
        def __init__(self):
            super().__init__(0)
            self.phase = 0

        def step(self, loop):
            if self.phase == 0:
                self.phase = 1
                return StepOutcome.PARKED
            return StepOutcome.FINISHED

    class Waker(Actor):
        def __init__(self, target):
            super().__init__(1)
            self.target = target

        def step(self, loop):
            loop.wake(self.target, at_time=500.0)
            return StepOutcome.FINISHED

    sleeper = WakeOnce()
    loop = EventLoop()
    loop.add(sleeper)
    loop.add(Waker(sleeper))
    loop.run()
    assert sleeper.clock == 500.0


def test_wake_finished_actor_rejected():
    loop = EventLoop()
    a = Stepper(0, 1.0, 1, [])
    loop.add(a)
    loop.run()
    with pytest.raises(SimulationError):
        loop.wake(a)


def test_max_steps_livelock_guard():
    loop = EventLoop()
    loop.max_steps = 10
    loop.add(Stepper(0, 1.0, 1000, []))
    with pytest.raises(SimulationError, match="max_steps"):
        loop.run()


# --- error paths: message content and the cohort-drain variants -----------


class BackwardsStepper(Actor):
    """Advances once, then moves its clock backwards past ``now``."""

    def __init__(self, actor_id, jump_back):
        super().__init__(actor_id)
        self.jump_back = jump_back
        self.phase = 0

    def step(self, loop):
        if self.phase == 0:
            self.phase = 1
            self.clock += 100.0
            return StepOutcome.RESCHEDULE
        self.clock -= self.jump_back
        return StepOutcome.RESCHEDULE


def test_backwards_time_raises():
    loop = EventLoop()
    loop.add(BackwardsStepper(0, 250.0))
    with pytest.raises(SimulationError, match="virtual time went backwards"):
        loop.run()


def test_backwards_time_raises_inside_wide_cohort():
    # Two actors share every clock, so the faulty re-pop happens on the
    # cohort-drain path, not the singleton fast path.
    loop = EventLoop()
    loop.add(BackwardsStepper(0, 250.0))
    loop.add(BackwardsStepper(1, 250.0))
    with pytest.raises(SimulationError, match="virtual time went backwards"):
        loop.run()


def test_max_steps_message_names_limit_live_and_now():
    loop = EventLoop()
    loop.max_steps = 7
    loop.add(Stepper(0, 10.0, 1000, []))
    with pytest.raises(
        SimulationError,
        match=r"exceeded max_steps=7; likely a livelock \(live=1, now=\d+ ns\)",
    ):
        loop.run()


def test_max_steps_enforced_inside_wide_cohort():
    # 4 lockstep actors: every drain is a 4-wide cohort, and the step
    # budget must still bind inside the drain loop.
    loop = EventLoop()
    loop.max_steps = 9
    for i in range(4):
        loop.add(Stepper(i, 10.0, 1000, []))
    with pytest.raises(SimulationError, match="exceeded max_steps=9"):
        loop.run()
    assert loop.steps == 10  # raised on the first step past the budget


def test_deadlock_message_truncates_parked_ids_at_16():
    loop = EventLoop()
    for i in range(20):
        loop.add(Parker(i))
    loop.add(Stepper(99, 1.0, 2, []))  # finishes; must not be listed
    with pytest.raises(SimulationError) as err:
        loop.run()
    msg = str(err.value)
    assert "deadlock: 20 actor(s) parked" in msg
    ids = ", ".join(str(i) for i in range(16))
    assert f"[{ids}, ... (4 more)]" in msg
    assert "16" not in msg.split("...")[0]  # 17th id truncated away
    assert "99" not in msg  # the finished actor is never listed


def test_cohort_counters_track_wide_drains():
    loop = EventLoop()
    for i in range(8):
        loop.add(Stepper(i, 10.0, 3, []))
    loop.run()
    # All 8 actors share every clock: 3 cohorts of width 8.
    assert loop.cohorts == 3
    assert loop.cohort_max == 8
    assert loop.cohort_actors == 24
    assert loop.heap_pops == loop.heap_pushes
