"""Streamcluster kernel correctness and scaling mechanics."""

import numpy as np

from repro.baselines import ShoalStrategy
from repro.baselines.vanilla import VanillaStrategy
from repro.hw.machine import milan
from repro.runtime.policy import CharmStrategy
from repro.workloads.streamcluster import assign_reference, make_points, run_streamcluster


def test_assignment_matches_reference():
    pts = make_points(4096, 16, 6, seed=4)
    res = run_streamcluster(milan(scale=64), CharmStrategy(), 8, pts, n_centers=6,
                            batch_points=1024)
    ref_assign, ref_cost = assign_reference(pts, pts[:6].copy())
    assert np.array_equal(res.assignment, ref_assign)
    assert abs(res.cost - ref_cost) / ref_cost < 1e-5


def test_points_deterministic():
    a = make_points(128, 8, 3, seed=1)
    b = make_points(128, 8, 3, seed=1)
    assert np.array_equal(a, b)


def test_assignment_independent_of_strategy():
    pts = make_points(4096, 16, 6, seed=4)
    r1 = run_streamcluster(milan(scale=64), CharmStrategy(), 8, pts, n_centers=6)
    r2 = run_streamcluster(milan(scale=64), ShoalStrategy(), 8, pts, n_centers=6)
    assert np.array_equal(r1.assignment, r2.assignment)
    assert r1.cost == r2.cost


def test_parallel_speedup_then_fragmentation():
    pts = make_points(16384, 32, 8, seed=4)
    kw = dict(n_centers=8, batch_points=8192)
    t1 = run_streamcluster(milan(scale=32), VanillaStrategy(), 1, pts, **kw).wall_ns
    t16 = run_streamcluster(milan(scale=32), CharmStrategy(), 16, pts, **kw).wall_ns
    t128 = run_streamcluster(milan(scale=32), CharmStrategy(), 128, pts, **kw).wall_ns
    assert t1 / t16 > 3.0          # parallel speedup exists
    assert t1 / t128 < t1 / t16    # fragmentation erodes it
