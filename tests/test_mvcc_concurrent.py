"""Snapshot-isolation invariants under randomised interleavings."""

from hypothesis import given, settings, strategies as st

from repro.workloads.oltp.mvcc import MvccStore, Transaction, TxnAborted

KEYS = [0, 1, 2]


@st.composite
def _schedules(draw):
    """A random interleaving of begin/read/write/commit over 3 txn slots."""
    ops = draw(st.lists(
        st.tuples(st.integers(0, 2),
                  st.sampled_from(["begin", "read", "write", "commit"]),
                  st.sampled_from(KEYS)),
        min_size=4, max_size=40))
    return ops


@given(_schedules())
@settings(max_examples=120, deadline=None)
def test_no_lost_updates_and_monotone_counters(schedule):
    """Counters only ever increase by exactly the committed increments.

    Each write increments the snapshot-read value by 1.  Under first-
    committer-wins SI, every committed transaction's increment is applied
    exactly once: the final counter value equals the number of committed
    increments to that key, regardless of interleaving.
    """
    store = MvccStore()
    for k in KEYS:
        store.load(k, 0)
    slots = {}
    committed_increments = {k: 0 for k in KEYS}
    pending = {}

    for slot, op, key in schedule:
        if op == "begin":
            slots[slot] = Transaction(store)
            pending[slot] = {}
        elif slot not in slots:
            continue
        elif op == "read":
            slots[slot].read(key)
        elif op == "write":
            base = slots[slot].read(key)
            slots[slot].write(key, base + 1)
            # read-your-writes: each write adds exactly one on top of the
            # previous buffered value, so count every write.
            pending[slot][key] = pending[slot].get(key, 0) + 1
        else:  # commit
            txn = slots.pop(slot)
            writes = pending.pop(slot)
            try:
                txn.commit()
                for k, n in writes.items():
                    committed_increments[k] += n
            except TxnAborted:
                pass

    for k in KEYS:
        final = Transaction(store).read(k)
        assert final == committed_increments[k], (k, final, committed_increments)


@given(_schedules())
@settings(max_examples=80, deadline=None)
def test_snapshots_are_stable(schedule):
    """A transaction's reads never change over its lifetime."""
    store = MvccStore()
    for k in KEYS:
        store.load(k, 0)
    slots = {}
    first_reads = {}

    for slot, op, key in schedule:
        if op == "begin":
            slots[slot] = Transaction(store)
            first_reads[slot] = {}
        elif slot not in slots:
            continue
        elif op == "read":
            v = slots[slot].read(key)
            if key in first_reads[slot]:
                assert v == first_reads[slot][key]
            elif key not in slots[slot].writes:
                first_reads[slot][key] = v
        elif op == "write":
            slots[slot].write(key, 99)
            first_reads[slot].pop(key, None)  # read-your-writes takes over
        else:
            txn = slots.pop(slot)
            first_reads.pop(slot)
            try:
                txn.commit()
            except TxnAborted:
                pass
