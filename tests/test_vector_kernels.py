"""Bit-identity of the vectorized access kernels vs the scalar path.

``Machine.access_batch``/``access_run`` route vectorizable segments
through :mod:`repro.hw.vector`; everything else falls back to the scalar
loop.  The contract is that both paths are **bit-identical**: virtual
times, fill counters, per-slice LRU contents *and order*, the sharing
directory, hit/miss/eviction statistics, and the bandwidth-server state
(free_at/busy_ns/wait_ns/requests) must match exactly.

The property tests here force the scalar path on a twin machine (by
raising ``VECTOR_MIN`` beyond any batch size) and compare full machine
state after pathological batch sequences: duplicates, capacity-overflow
runs, mixed hit/miss, cross-socket holders, writes with sharers, and
strided runs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.hw.machine as machine_mod
from repro.hw.machine import milan, sapphire_rapids, small_test_machine
from repro.hw.memory import MemPolicy, _Server
from repro.hw.vector import serve_constant

MACHINES = {
    "small_test_machine": small_test_machine,
    "milan32": lambda: milan(scale=32),
    "sapphire_rapids32": lambda: sapphire_rapids(scale=32),
}


def scalar_batch(machine, core, region, blocks, now, **kw):
    """Service a batch with the vector kernels disabled (reference path)."""
    saved = machine_mod.VECTOR_MIN
    machine_mod.VECTOR_MIN = 1 << 60
    try:
        return machine.access_batch(core, region, list(blocks), now, **kw)
    finally:
        machine_mod.VECTOR_MIN = saved


def machine_state(m):
    """Everything the equivalence contract covers, as comparable values."""
    return {
        "directory": {k: frozenset(v) for k, v in m.caches.directory.items()},
        "lru": [list(c._lru.items()) for c in m.caches.caches],
        "cache_stats": [
            (c.hits, c.misses, c.evictions, c.used_bytes) for c in m.caches.caches
        ],
        "bandwidth": m.bandwidth_stats(),
        "counters": [m.counters.core(c).v for c in range(m.topo.total_cores)],
        "total_accesses": m.total_accesses,
    }


def assert_same_state(m_vec, m_ref):
    sv, sr = machine_state(m_vec), machine_state(m_ref)
    for k in sv:
        assert sv[k] == sr[k], f"state mismatch in {k}"
    assert m_vec.caches.check_directory_consistent()


# -- Full-machine equivalence: vector path vs forced-scalar twin -------------

@st.composite
def batch_spec(draw, n_blocks):
    """One batch: pathological shapes with explicit generators."""
    shape = draw(st.sampled_from(
        ["run", "strided", "random", "duplicates", "overflow", "reversed"]
    ))
    if shape == "run":
        start = draw(st.integers(0, n_blocks - 1))
        count = draw(st.integers(0, n_blocks - start))
        blocks = list(range(start, start + count))
    elif shape == "strided":
        stride = draw(st.integers(2, 5))
        start = draw(st.integers(0, n_blocks - 1))
        blocks = list(range(start, n_blocks, stride))[: draw(st.integers(1, 60))]
    elif shape == "random":
        blocks = draw(st.lists(st.integers(0, n_blocks - 1), max_size=40))
    elif shape == "duplicates":
        base = draw(st.lists(st.integers(0, n_blocks - 1), min_size=1, max_size=20))
        blocks = base + base[: draw(st.integers(1, len(base)))]
    elif shape == "overflow":
        # Longer than any tiny slice: forces bulk evictions mid-run.
        blocks = list(range(min(n_blocks, draw(st.integers(20, 120)))))
    else:  # reversed: distinct but unsorted
        count = draw(st.integers(2, 40))
        blocks = list(range(min(count, n_blocks)))[::-1]
    write = draw(st.booleans())
    mlp = draw(st.sampled_from([1.0, 10.0]))
    per_issue = draw(st.sampled_from([0.0, 4.0]))
    nbytes = draw(st.sampled_from([None, 64]))
    return blocks, write, mlp, per_issue, nbytes


@pytest.mark.parametrize("mk", MACHINES.values(), ids=MACHINES.keys())
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_vector_path_bit_identical_to_scalar(mk, data):
    m_vec = mk()
    m_ref = mk()
    policy = data.draw(st.sampled_from(
        [MemPolicy.BIND, MemPolicy.INTERLEAVE, MemPolicy.REPLICATED]
    ))
    size = 200 * m_vec.block_bytes
    r_vec = m_vec.alloc_region(size, node=0, policy=policy, name="eq")
    r_ref = m_ref.alloc_region(size, node=0, policy=policy, name="eq")
    n_blocks = r_vec.n_blocks
    total_cores = m_vec.topo.total_cores

    now = 0.0
    for _ in range(data.draw(st.integers(1, 4))):
        # Varying the issuing core across iterations plants cross-socket
        # holders and mixed hit/miss residency for later batches.
        core = data.draw(st.integers(0, total_cores - 1))
        blocks, write, mlp, per_issue, nbytes = data.draw(batch_spec(n_blocks))
        as_array = data.draw(st.booleans())
        issued = np.asarray(blocks, dtype=np.int64) if as_array else blocks

        res_v = m_vec.access_batch(
            core, r_vec, issued, now=now, nbytes=nbytes, write=write,
            per_issue_ns=per_issue, mlp=mlp,
        )
        res_r = scalar_batch(
            m_ref, core, r_ref, blocks, now, nbytes=nbytes, write=write,
            per_issue_ns=per_issue, mlp=mlp,
        )
        assert res_v.ns == res_r.ns
        assert res_v.finish == res_r.finish
        assert res_v.fill_counts == res_r.fill_counts
        assert res_v.invalidations == res_r.invalidations
        now += res_v.ns

    assert_same_state(m_vec, m_ref)


@pytest.mark.parametrize("mk", MACHINES.values(), ids=MACHINES.keys())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_access_run_bit_identical_to_batch(mk, data):
    m_run = mk()
    m_ref = mk()
    policy = data.draw(st.sampled_from([MemPolicy.BIND, MemPolicy.INTERLEAVE]))
    size = 300 * m_run.block_bytes
    r_run = m_run.alloc_region(size, node=0, policy=policy, name="eq")
    r_ref = m_ref.alloc_region(size, node=0, policy=policy, name="eq")
    n_blocks = r_run.n_blocks

    now = 0.0
    for _ in range(data.draw(st.integers(1, 3))):
        core = data.draw(st.integers(0, m_run.topo.total_cores - 1))
        stride = data.draw(st.integers(1, 4))
        start = data.draw(st.integers(0, n_blocks - 1))
        count = data.draw(st.integers(0, (n_blocks - 1 - start) // stride + 1))
        write = data.draw(st.booleans())
        mlp = data.draw(st.sampled_from([1.0, 10.0]))

        res_v = m_run.access_run(
            core, r_run, start, count, now=now, stride=stride, write=write,
            per_issue_ns=4.0, mlp=mlp,
        )
        res_r = scalar_batch(
            m_ref, core, r_ref, range(start, start + count * stride, stride),
            now, write=write, per_issue_ns=4.0, mlp=mlp,
        )
        assert res_v.ns == res_r.ns
        assert res_v.finish == res_r.finish
        assert res_v.fill_counts == res_r.fill_counts
        now += res_v.ns

    assert_same_state(m_run, m_ref)


def test_access_run_validates_bounds(tiny):
    r = tiny.alloc_region(64 * tiny.block_bytes, node=0)
    with pytest.raises(ValueError, match="outside region"):
        tiny.access_run(0, r, r.n_blocks - 2, 5, now=0.0)
    with pytest.raises(ValueError, match="outside region"):
        tiny.access_run(0, r, -1, 2, now=0.0)
    with pytest.raises(ValueError, match="non-negative"):
        tiny.access_run(0, r, 0, -1, now=0.0)
    with pytest.raises(ValueError, match="stride"):
        tiny.access_run(0, r, 0, 4, now=0.0, stride=0)


def test_access_run_empty_is_noop(tiny):
    r = tiny.alloc_region(1024, node=0)
    res = tiny.access_run(0, r, 0, 0, now=50.0)
    assert res.ns == 0.0 and res.finish == 50.0
    assert tiny.total_accesses == 0


# -- serve_constant vs sequential _Server.service ----------------------------

@settings(max_examples=60, deadline=None)
@given(
    gaps=st.lists(st.floats(0.0, 50.0, allow_nan=False), min_size=1, max_size=40),
    s=st.floats(0.1, 30.0, allow_nan=False),
    free0=st.floats(0.0, 100.0, allow_nan=False),
    t0=st.floats(0.0, 100.0, allow_nan=False),
)
def test_serve_constant_replays_scalar_server(gaps, s, free0, t0):
    t = np.cumsum(np.concatenate(([t0], gaps)))[:-1] if len(gaps) > 1 else \
        np.array([t0])
    ref = _Server()
    vec = _Server()
    ref.free_at = vec.free_at = free0
    exp_d = np.empty(t.size)
    exp_w = np.empty(t.size)
    for i, ti in enumerate(t):
        exp_d[i], exp_w[i] = ref.service(float(ti), s)
    got_d, got_w = serve_constant(vec, t, s)
    assert np.array_equal(got_d, exp_d)
    assert np.array_equal(got_w, exp_w)
    assert vec.free_at == ref.free_at
    assert vec.busy_ns == ref.busy_ns
    assert vec.wait_ns == ref.wait_ns
    assert vec.requests == ref.requests


def test_serve_constant_empty():
    srv = _Server()
    d, w = serve_constant(srv, np.empty(0), 5.0)
    assert d.size == 0 and w.size == 0
    assert srv.requests == 0 and srv.free_at == 0.0


# -- fill_run vs sequential fill ---------------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    capacity_blocks=st.integers(1, 12),
    pre=st.integers(0, 12),
    k=st.integers(1, 30),
    nbytes=st.integers(1, 200),
)
def test_fill_run_equivalent_to_sequential_fill(capacity_blocks, pre, k, nbytes):
    from repro.hw.cache import CacheSystem
    from repro.hw.topology import Topology

    topo = Topology(sockets=1, chiplets_per_socket=2, cores_per_chiplet=1,
                    name="t")
    cap = capacity_blocks * 64
    a = CacheSystem(topo, cap)
    b = CacheSystem(topo, cap)
    # Pre-populate with mixed-size residents so eviction prefixes cross
    # entry boundaries at odd byte counts.
    for i in range(pre):
        a.fill(0, 1000 + i, 64 if i % 2 else 32)
        b.fill(0, 1000 + i, 64 if i % 2 else 32)
    blocks = list(range(k))
    evictions_before = b.caches[0].evictions  # prefill may itself evict
    for blk in blocks:
        a.fill(0, blk, nbytes)
    evicted = b.fill_run(0, blocks, nbytes)
    ca, cb = a.caches[0], b.caches[0]
    assert list(ca._lru.items()) == list(cb._lru.items())
    assert ca.used_bytes == cb.used_bytes
    assert ca.evictions == cb.evictions
    assert evicted == cb.evictions - evictions_before
    assert {k2: frozenset(v) for k2, v in a.directory.items()} == \
        {k2: frozenset(v) for k2, v in b.directory.items()}
    assert b.check_directory_consistent()


def test_fill_run_rejects_nonpositive_bytes():
    from repro.hw.cache import CacheSystem
    from repro.hw.topology import Topology

    cs = CacheSystem(Topology(1, 1, 1, name="t"), 1024)
    with pytest.raises(ValueError, match="positive"):
        cs.fill_run(0, [0, 1], 0)
