"""Sweep engine: cells, content-addressed cache, resume, sharding."""

import json

import pytest

from repro.bench import sweep
from repro.bench.cells import REGISTRY, ExperimentCell
from repro.bench.experiments import fig04_channels  # noqa: F401 - registers


@pytest.fixture()
def cache(tmp_path, monkeypatch):
    d = tmp_path / "sweep-cache"
    monkeypatch.setenv("REPRO_SWEEP_CACHE", str(d))
    return d


def _cell(**kw):
    base = dict(experiment="fig04_channels", machine_preset="milan",
                strategy="charm", cores=8, seed=7)
    base.update(kw)
    return ExperimentCell.make(**base)


def test_cell_id_is_stable_and_param_order_free():
    a = ExperimentCell.make("e", machine_preset="milan", strategy="charm",
                            cores=8, seed=7, algo="bfs", scale=14)
    b = ExperimentCell.make("e", machine_preset="milan", strategy="charm",
                            cores=8, seed=7, scale=14, algo="bfs")
    assert a == b
    assert a.cell_id == b.cell_id == "e/milan/charm/c8/algo=bfs,scale=14/s7"


def test_cell_id_distinguishes_every_field():
    base = _cell()
    assert base.cell_id != _cell(cores=16).cell_id
    assert base.cell_id != _cell(strategy="ring").cell_id
    assert base.cell_id != _cell(seed=8).cell_id
    assert base.cell_id != _cell(machine_preset="genoa").cell_id


def test_cache_key_depends_on_config_and_code_version(monkeypatch):
    k1 = sweep.cache_key(_cell())
    assert k1 == sweep.cache_key(_cell())        # deterministic
    assert k1 != sweep.cache_key(_cell(cores=16))
    monkeypatch.setattr(sweep, "_CODE_VERSION", "different")
    assert sweep.cache_key(_cell()) != k1        # code change invalidates


def test_cache_round_trip_preserves_result_exactly(cache):
    cell = _cell()
    result = {"metric": 0.1 + 0.2, "counters": {"dram": 12345}, "xs": [1, 2.5]}
    sweep.store_cached(cell, result)
    hit, loaded = sweep.load_cached(cell)
    assert hit and loaded == result
    assert isinstance(loaded["metric"], float) and loaded["metric"] == 0.30000000000000004


def test_corrupt_store_file_is_a_miss_and_recovers(cache):
    cell = _cell()
    sweep.store_cached(cell, {"v": 1})
    # trash the SQLite file behind the store's back, drop the open handle
    sweep.get_store().close()
    sweep._STORE = None
    (cache / "store.sqlite").write_text("this is not a database")
    hit, _ = sweep.load_cached(cell)
    assert not hit
    # the store recreated itself: writes work again
    sweep.store_cached(cell, {"v": 2})
    hit, loaded = sweep.load_cached(cell)
    assert hit and loaded == {"v": 2}


def test_run_cells_executes_caches_and_resumes(cache):
    cells = REGISTRY["fig04_channels"].cells(True)
    results, stats = sweep.run_cells(cells, jobs=1)
    assert stats.executed == len(cells) and stats.cache_hits == 0
    # a second (resumed) sweep takes everything from cache
    results2, stats2 = sweep.run_cells(cells, jobs=1)
    assert stats2.executed == 0 and stats2.cache_hits == len(cells)
    assert results2 == results


def test_run_cells_partial_resume(cache):
    cells = REGISTRY["fig05_local_vs_distributed"].cells(True)
    half = cells[: len(cells) // 2]
    _, s1 = sweep.run_cells(half, jobs=1)
    assert s1.executed == len(half)
    # interrupted sweep: the rest executes, the first half is reused
    _, s2 = sweep.run_cells(cells, jobs=1)
    assert s2.cache_hits == len(half)
    assert s2.executed == len(cells) - len(half)


def test_run_cells_dedupes_by_cell_id(cache):
    cells = REGISTRY["fig04_channels"].cells(True)
    _, stats = sweep.run_cells(cells * 3, jobs=1, use_cache=False)
    assert stats.total == len(cells) == stats.executed


def test_no_cache_mode_writes_nothing(cache):
    cells = REGISTRY["fig04_channels"].cells(True)
    sweep.run_cells(cells, jobs=1, use_cache=False)
    assert not cache.exists()


def test_resolve_jobs():
    assert sweep.resolve_jobs(3) == 3
    assert sweep.resolve_jobs(0) >= 1
    with pytest.raises(ValueError):
        sweep.resolve_jobs(-1)


def test_resolve_jobs_uses_cpu_affinity(monkeypatch):
    # cgroup-pinned host: 16 installed CPUs but only 4 runnable — the
    # auto pool must size from affinity, not cpu_count
    monkeypatch.setattr(sweep.os, "sched_getaffinity",
                        lambda pid: {0, 1, 2, 3}, raising=False)
    monkeypatch.setattr(sweep.os, "cpu_count", lambda: 16)
    assert sweep.resolve_jobs(0) == 3


def test_resolve_jobs_falls_back_without_affinity(monkeypatch):
    monkeypatch.delattr(sweep.os, "sched_getaffinity", raising=False)
    monkeypatch.setattr(sweep.os, "cpu_count", lambda: 5)
    assert sweep.resolve_jobs(0) == 4


def test_resolve_jobs_falls_back_when_affinity_raises(monkeypatch):
    # some platforms ship the symbol but the syscall fails (e.g. emulated
    # or restricted kernels raise OSError) — same cpu_count fallback
    def _raises(pid):
        raise OSError("sched_getaffinity not supported")

    monkeypatch.setattr(sweep.os, "sched_getaffinity", _raises, raising=False)
    monkeypatch.setattr(sweep.os, "cpu_count", lambda: 5)
    assert sweep.resolve_jobs(0) == 4


def test_resolve_jobs_survives_unknown_cpu_count(monkeypatch):
    # cpu_count() may return None; auto mode must still yield >= 1
    monkeypatch.delattr(sweep.os, "sched_getaffinity", raising=False)
    monkeypatch.setattr(sweep.os, "cpu_count", lambda: None)
    assert sweep.resolve_jobs(0) >= 1


def test_ljf_orders_by_estimated_cost():
    from repro.bench.cost import CostModel

    small = _cell(cores=2)
    big = _cell(cores=64)
    model = CostModel()  # uncalibrated: falls back to the work hint
    ordered = sweep._order_cells([small, big], model, "ljf")
    assert ordered == [big, small]
    # fifo keeps caller order
    assert sweep._order_cells([small, big], model, "fifo") == [small, big]
    with pytest.raises(ValueError):
        sweep._order_cells([small], model, "sjf")


def test_chunk_packing_covers_all_cells_once():
    from repro.bench.cost import CostModel

    cells = [_cell(cores=c) for c in range(1, 41)]
    model = CostModel()
    ordered = sweep._order_cells(cells, model, "ljf")
    chunks = sweep._pack_chunks(ordered, model, jobs=4)
    flat = [c.cell_id for chunk in chunks for c in chunk]
    assert sorted(flat) == sorted(c.cell_id for c in cells)
    assert len(chunks) > 1
    assert all(len(chunk) <= sweep.MAX_CHUNK_CELLS for chunk in chunks)


def test_parallel_chunked_matches_serial(cache):
    cells = REGISTRY["fig04_channels"].cells(True) + \
        REGISTRY["fig03_latency_cdf"].cells(True)
    serial, s_stats = sweep.run_cells(cells, jobs=1, use_cache=False)
    parallel, p_stats = sweep.run_cells(cells, jobs=2, use_cache=False)
    assert parallel == serial
    assert p_stats.chunks >= 1
    fifo, _ = sweep.run_cells(cells, jobs=2, use_cache=False,
                              order="fifo", chunked=False)
    assert fifo == serial


def test_stats_throughput_properties():
    stats = sweep.SweepStats(total=10, executed=8, cache_hits=2, jobs=2,
                             wall_s=4.0, busy_s=6.0)
    assert stats.cells_per_sec == 2.0
    assert stats.efficiency == 0.75
    assert stats.cache_hit_ratio == 0.2
    d = stats.as_dict()
    assert d["cells_per_sec"] == 2.0 and d["pool_efficiency"] == 0.75


def test_legacy_json_cache_migrates_into_store(cache, tmp_path):
    import json as _json

    # fabricate a PR 2-era cache: one <key>.json per cell
    cell = _cell()
    key = sweep.cache_key(cell)
    cache.mkdir(parents=True)
    legacy_doc = {"cell_id": cell.cell_id, "cell": cell.config(),
                  "code_version": sweep.code_version(),
                  "result": {"metric": 1.25}}
    (cache / f"{key}.json").write_text(_json.dumps(legacy_doc))
    (cache / "garbage.json").write_text("{not json")
    sweep._STORE = None  # force a fresh open → migration
    hit, result = sweep.load_cached(cell)
    assert hit and result == {"metric": 1.25}
    assert not (cache / f"{key}.json").exists()  # imported and removed
    assert (cache / "garbage.json").exists()     # unparsable: left alone
    assert sweep.get_store().migrated == 1


def test_run_many_pools_cells_across_experiments(cache):
    out, stats = sweep.run_many(["fig04_channels", "fig03_latency_cdf"], jobs=1)
    assert [name for name, _, _ in out] == ["fig04_channels", "fig03_latency_cdf"]
    assert stats.total == stats.executed == 2
    assert stats.experiments == ["fig04_channels", "fig03_latency_cdf"]


def test_cache_stats_reports_entries(cache, capsys):
    sweep.run_cells(REGISTRY["fig04_channels"].cells(True), jobs=1)
    info = sweep.cache_stats()
    assert info["entries"] == 1 and info["stale_entries"] == 0
    assert info["by_experiment"] == {"fig04_channels": 1}
    assert sweep.main(["--cache-stats"]) == 0
    assert json.loads(capsys.readouterr().out)["entries"] == 1


def test_fmt_eta_compact_labels():
    assert sweep._fmt_eta(2.34) == "2.3s"
    assert sweep._fmt_eta(90.0) == "1.5m"
    assert sweep._fmt_eta(5400.0) == "1.5h"


def test_progress_lines_carry_cost_model_eta(cache):
    cells = REGISTRY["fig05_local_vs_distributed"].cells(True)
    assert len(cells) >= 2
    lines = []
    sweep.run_cells(cells, jobs=1, progress=lines.append)
    assert len(lines) == len(cells)
    # every line but the last projects remaining work from the cost
    # model; the final one has nothing left to predict
    for line in lines[:-1]:
        assert ", eta ~" in line, line
    assert "eta ~" not in lines[-1]
    # cached resume never shows an ETA: nothing executes
    lines2 = []
    sweep.run_cells(cells, jobs=1, progress=lines2.append)
    assert not any("eta ~" in line for line in lines2)
