"""Exported Chrome-trace JSON: schema and content validation.

Drives the real CLI verb (``repro trace``) end to end on a CHARM cell of
the Fig. 7 experiment and validates the merged trace document the way
Perfetto's loader would: well-formed JSON, required fields per event
phase, monotonic counter-series timestamps, and the PR's content floor —
task events, at least one Alg. 1 decision with its counter-vs-threshold
operands, and at least three metric counter series.
"""

import json
from collections import defaultdict

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def trace_doc(tmp_path_factory):
    out = tmp_path_factory.mktemp("trace") / "trace.json"
    assert main(["trace", "fig07_amd_scalability", "--out", str(out)]) == 0
    with open(out) as fh:
        return json.load(fh)


def test_trace_loads_with_events(trace_doc):
    assert "traceEvents" in trace_doc
    assert trace_doc["displayTimeUnit"] == "ns"
    assert len(trace_doc["traceEvents"]) > 0


def test_every_event_is_well_formed(trace_doc):
    for ev in trace_doc["traceEvents"]:
        assert isinstance(ev.get("name"), str) and ev["name"]
        assert ev.get("ph") in ("X", "i", "C", "s", "f", "M")
        if ev["ph"] in ("X", "i", "C", "s", "f"):
            assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
            assert isinstance(ev["pid"], int)
        if ev["ph"] == "X":
            assert isinstance(ev["dur"], (int, float)) and ev["dur"] >= 0


def test_task_timeline_present(trace_doc):
    spans = [e for e in trace_doc["traceEvents"]
             if e["ph"] == "X" and not e["name"].startswith("migrate")]
    assert len(spans) >= 1


def test_policy_decisions_with_operands(trace_doc):
    decisions = [e for e in trace_doc["traceEvents"]
                 if e["ph"] == "i" and e["name"].startswith("alg1:")]
    assert len(decisions) >= 1  # fig07's CHARM cell always evaluates Alg. 1
    for ev in decisions:
        args = ev["args"]
        assert isinstance(args["counter"], int)
        assert isinstance(args["rate"], float)
        assert args["threshold"] > 0
        assert args["action"] in ("spread", "compact", "hold")
        assert ev["name"] == f"alg1:{args['action']}"


def test_at_least_three_counter_series(trace_doc):
    names = {e["name"] for e in trace_doc["traceEvents"] if e["ph"] == "C"}
    assert len(names) >= 3
    assert "l3_occupancy_pct" in names
    assert "migrations" in names


def test_counter_timestamps_strictly_monotonic(trace_doc):
    per_series = defaultdict(list)
    for ev in trace_doc["traceEvents"]:
        if ev["ph"] == "C":
            per_series[(ev["pid"], ev["name"])].append(ev["ts"])
    assert per_series
    for key, ts in per_series.items():
        assert all(b > a for a, b in zip(ts, ts[1:])), f"non-monotonic {key}"


def test_flow_arrows_pair_up(trace_doc):
    starts = [e for e in trace_doc["traceEvents"] if e["ph"] == "s"]
    ends = [e for e in trace_doc["traceEvents"] if e["ph"] == "f"]
    assert len(starts) == len(ends)
    assert {e["id"] for e in starts} == {e["id"] for e in ends}
