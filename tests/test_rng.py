"""Seeded stream RNG determinism and independence."""

from repro.sim.rng import derive_seed, stream_np_rng, stream_rng


def test_same_stream_same_sequence():
    a = stream_rng(7, "x", 1)
    b = stream_rng(7, "x", 1)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_streams_differ():
    assert derive_seed(7, "x") != derive_seed(7, "y")
    assert derive_seed(7, "x") != derive_seed(8, "x")
    assert derive_seed(7, "x", 1) != derive_seed(7, "x", 2)


def test_numpy_stream():
    a = stream_np_rng(3, "data")
    b = stream_np_rng(3, "data")
    assert (a.integers(0, 100, 10) == b.integers(0, 100, 10)).all()


def test_seed_positive_63bit():
    for s in range(20):
        v = derive_seed(s, "k")
        assert 0 <= v < 2**63
