"""Bit-determinism: identical seeds give identical runs, different seeds differ."""

import numpy as np
import pytest

from repro.baselines import RingStrategy
from repro.hw.machine import milan
from repro.runtime.policy import CharmStrategy
from repro.workloads.graph import kronecker, run_graph_algorithm
from repro.workloads.streamcluster import make_points, run_streamcluster


@pytest.mark.parametrize("mk", [CharmStrategy, RingStrategy])
def test_graph_run_bit_deterministic(mk):
    g = kronecker(9, 8, seed=1)
    a = run_graph_algorithm(milan(scale=64), mk(), "bfs", g, 8, seed=5)
    b = run_graph_algorithm(milan(scale=64), mk(), "bfs", g, 8, seed=5)
    assert a.wall_ns == b.wall_ns
    assert a.report.counters.as_row() == b.report.counters.as_row()
    assert a.report.steals == b.report.steals


def test_different_seed_changes_timing_not_result():
    g = kronecker(9, 8, seed=1)
    a = run_graph_algorithm(milan(scale=64), CharmStrategy(), "cc", g, 8, seed=5)
    b = run_graph_algorithm(milan(scale=64), CharmStrategy(), "cc", g, 8, seed=6)
    assert np.array_equal(a.result, b.result)  # answers identical


def test_streamcluster_deterministic():
    pts = make_points(2048, 16, 4, seed=2)
    a = run_streamcluster(milan(scale=64), CharmStrategy(), 8, pts, n_centers=4)
    b = run_streamcluster(milan(scale=64), CharmStrategy(), 8, pts, n_centers=4)
    assert a.wall_ns == b.wall_ns
    assert a.cost == b.cost
