"""Fast-path satellites: deterministic holder choice, span memo, cache stats."""

import pytest

from repro.hw.cache import CacheSystem, ChipletCache
from repro.hw.machine import small_test_machine
from repro.hw.topology import Distance, Topology, milan_topology
from repro.runtime.policy import CharmStrategy
from repro.runtime.runtime import Runtime
from repro.runtime.ops import Compute


def _cs() -> CacheSystem:
    # 2 sockets x 2 chiplets: chiplets 0,1 on socket 0; 2,3 on socket 1.
    return CacheSystem(Topology(sockets=2, chiplets_per_socket=2,
                                cores_per_chiplet=2, name="t"), 1024)


# -- find_holder determinism ---------------------------------------------------


def test_find_holder_min_id_within_same_socket():
    cs = _cs()
    # Insert in descending id order so a set-iteration-order dependent
    # implementation would be tempted to return the first same-socket hit.
    for ch in (3, 1, 0):
        cs.fill(ch, 7, 64)
    # Requester chiplet 2 (socket 1): same-socket holder 3 beats remote 0/1.
    assert cs.find_holder(2, 7) == 3
    # Requester chiplet 0 holds the block itself; min same-socket peer is 1.
    assert cs.find_holder(0, 7) == 1


def test_find_holder_min_id_among_remote_holders():
    cs = _cs()
    for ch in (3, 2):
        cs.fill(ch, 9, 64)
    # Requester on socket 0, no same-socket holder: minimum remote id wins.
    assert cs.find_holder(0, 9) == 2
    assert cs.find_holder(1, 9) == 2


def test_find_holder_is_directory_order_independent():
    """The same directory contents must give the same holder regardless of
    the insertion/removal history that built the set."""
    a = _cs()
    for ch in (1, 2, 3):
        a.fill(ch, 5, 64)
    b = _cs()
    for ch in (3, 2, 1, 0):
        b.fill(ch, 5, 64)
    b.remove_holder(5, 0)
    assert a.directory[5] == b.directory[5]
    for requester in range(4):
        assert a.find_holder(requester, 5) == b.find_holder(requester, 5)


def test_machine_batch_uses_same_holder_rule(tiny):
    """access and access_batch agree on the fill source chiplet."""
    r = tiny.alloc_region(1024, node=0)
    # Warm the block into chiplets 3 then 1 (insertion order reversed).
    tiny.access(core=6, region=r, block_index=0, now=0.0)
    tiny.access(core=2, region=r, block_index=0, now=100.0)
    res = tiny.access_batch(0, r, [0], now=200.0)
    # Requester chiplet 0 (socket 0): same-socket holder is chiplet 1.
    assert res.fill_counts[1] == 1  # REMOTE_CHIPLET, not REMOTE_NUMA_CHIPLET


# -- sync_span_ns memoization --------------------------------------------------


def test_sync_span_memoized_per_core_tuple(tiny, monkeypatch):
    calls = {"n": 0}
    real = tiny.cas_ns

    def counting(a, b):
        calls["n"] += 1
        return real(a, b)

    monkeypatch.setattr(tiny, "cas_ns", counting)
    first = tiny.sync_span_ns([0, 3, 5])
    assert calls["n"] == 2
    again = tiny.sync_span_ns([0, 3, 5])
    assert again == first
    assert calls["n"] == 2  # served from the memo
    tiny.invalidate_sync_cache()
    assert tiny.sync_span_ns([0, 3, 5]) == first
    assert calls["n"] == 4  # recomputed after invalidation


def test_sync_span_values_unchanged(tiny):
    within = tiny.sync_span_ns([0, 1])
    across = tiny.sync_span_ns([0, 4])
    assert across > within
    assert tiny.sync_span_ns([0]) == 0.0
    assert tiny.sync_span_ns([]) == 0.0


def test_migration_invalidates_span_cache():
    machine = small_test_machine()

    def _spin():
        yield Compute(10.0)

    rt = Runtime(machine, 2, CharmStrategy(), seed=1)
    rt.spawn(_spin, pin_worker=0)
    machine.sync_span_ns([w.core for w in rt.workers])
    assert machine._span_cache
    assert rt.request_migration(rt.workers[0], target_core=7)
    assert not machine._span_cache


# -- ChipletCache.insert guard and CacheSystem.stats ---------------------------


def test_insert_rejects_non_positive_bytes():
    cache = ChipletCache(0, 1024)
    with pytest.raises(ValueError, match="nbytes"):
        cache.insert(1, 0)
    with pytest.raises(ValueError, match="nbytes"):
        cache.insert(1, -64)
    assert len(cache) == 0 and cache.used_bytes == 0


def test_cache_stats_counts_hits_misses_evictions(tiny):
    r = tiny.alloc_region(2048, node=0)  # 32 blocks >> 8-block slices
    for b in range(r.n_blocks):
        tiny.access(core=0, region=r, block_index=b, now=float(b))
    tiny.access(core=0, region=r, block_index=r.n_blocks - 1, now=1e6)
    stats = tiny.caches.stats()
    total = stats["total"]
    assert total["misses"] == r.n_blocks
    assert total["hits"] == 1
    assert total["evictions"] == r.n_blocks - 8  # 8-block slice capacity
    assert total["hit_rate"] == pytest.approx(1 / (r.n_blocks + 1))
    row = stats["per_chiplet"][0]
    assert row["chiplet"] == 0
    assert row["blocks"] == 8
    assert row["resident_bytes"] == 8 * tiny.block_bytes
    assert len(stats["per_chiplet"]) == tiny.topo.total_chiplets


def test_stats_counts_batched_lookups(tiny):
    r = tiny.alloc_region(512, node=0)  # 8 blocks, fits one slice
    blocks = list(range(r.n_blocks))
    tiny.access_batch(0, r, blocks + blocks, now=0.0)
    total = tiny.caches.stats()["total"]
    assert total["misses"] == r.n_blocks
    assert total["hits"] == r.n_blocks


# -- Topology tables -----------------------------------------------------------


def test_topology_tables_match_methods():
    topo = milan_topology()
    for core in range(topo.total_cores):
        assert topo.chiplet_of_core_table[core] == topo.chiplet_of_core(core)
        assert topo.numa_of_core_table[core] == topo.numa_of_core(core)
    for ch in range(topo.total_chiplets):
        assert topo.socket_of_chiplet_table[ch] == topo.socket_of_chiplet(ch)
        for other in range(topo.total_chiplets):
            assert topo.chiplet_distance_matrix[
                ch * topo.total_chiplets + other
            ] is topo.chiplet_distance(ch, other)
    assert topo.chiplet_distance(0, 0) is Distance.SAME_CHIPLET
