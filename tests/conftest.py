"""Shared fixtures for the test suite."""

import pytest

from repro.hw.machine import Machine, milan, small_test_machine


@pytest.fixture
def tiny() -> Machine:
    """2 sockets x 2 chiplets x 2 cores, 8-block caches: fully observable."""
    return small_test_machine()


@pytest.fixture
def milan32() -> Machine:
    """Scaled Milan used by most workload tests."""
    return milan(scale=32)
