"""Shared fixtures and hypothesis profiles for the test suite.

CI runs with ``HYPOTHESIS_PROFILE=ci``: derandomized (the same examples
on every run, so a red build is reproducible locally) and with the
per-example deadline disabled (shared runners have noisy clocks).
"""

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.hw.machine import Machine, milan, small_test_machine

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def tiny() -> Machine:
    """2 sockets x 2 chiplets x 2 cores, 8-block caches: fully observable."""
    return small_test_machine()


@pytest.fixture
def milan32() -> Machine:
    """Scaled Milan used by most workload tests."""
    return milan(scale=32)
