"""Algorithms 1 and 2 plus the strategy interface."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.machine import milan, small_test_machine
from repro.runtime.policy import (
    CharmPolicyConfig,
    CharmStrategy,
    StaticSpreadStrategy,
    distributed_cache_strategy,
    local_cache_strategy,
    min_valid_spread,
    update_location,
)


def test_bounds_check_rejects_invalid_spread():
    assert update_location(0, 0, 8, 8, 8) is None
    assert update_location(0, 9, 8, 8, 8) is None


def test_bounds_check_rejects_insufficient_cores():
    # Paper's example: 64 workers, 8-core chiplets, spread 1 is invalid.
    assert update_location(0, 1, 64, 8, 8) is None
    assert update_location(0, 8, 64, 8, 8) is not None


def test_spread_one_packs_one_chiplet():
    cores = [update_location(w, 1, 8, 8, 8) for w in range(8)]
    assert cores == list(range(8))  # all on chiplet 0


def test_spread_max_one_worker_per_chiplet():
    cores = [update_location(w, 8, 8, 8, 8) for w in range(8)]
    chiplets = [c // 8 for c in cores]
    assert sorted(chiplets) == list(range(8))


def test_wraparound_case():
    # 16 workers at spread 8 on 8x8: two rounds, slots offset by the wrap.
    cores = [update_location(w, 8, 16, 8, 8) for w in range(16)]
    assert len(set(cores)) == 16


@given(
    cpc=st.sampled_from([4, 8, 16]),
    chiplets=st.sampled_from([2, 4, 8]),
    spread=st.integers(1, 8),
    n_workers=st.integers(1, 64),
)
@settings(max_examples=200, deadline=None)
def test_update_location_collision_free_when_divisible(cpc, chiplets, spread, n_workers):
    """Paper claim: unique ids -> unique cores.

    Exactly characterised (verified exhaustively): the mapping is
    collision-free when ``spread_rate`` divides ``cores_per_chiplet`` AND
    either no wrap occurs (workers fit in ``chiplets * cpc/spread``
    slots) or each chiplet gets one slot per wrap band (``per == 1``, i.e.
    ``spread >= cpc``).  The paper's 64-worker 8x8 configurations satisfy
    this; in the remaining corners the runtime's core ledger arbitrates
    (see ``Runtime._nearest_free_core``).
    """
    if spread > chiplets or n_workers > spread * cpc or cpc % spread != 0:
        return
    per = cpc // spread
    if n_workers > chiplets * per and per != 1:
        return  # wrap band does not tile: ledger-arbitrated corner
    cores = [update_location(w, spread, n_workers, cpc, chiplets) for w in range(n_workers)]
    assert all(c is not None for c in cores)
    assert all(0 <= c < cpc * chiplets for c in cores)
    assert len(set(cores)) == n_workers


def test_min_valid_spread():
    assert min_valid_spread(8, 8, 8) == 1
    assert min_valid_spread(9, 8, 8) == 2
    assert min_valid_spread(64, 8, 8) == 8
    with pytest.raises(ValueError):
        min_valid_spread(65, 8, 8)


def test_policy_config_validation():
    with pytest.raises(ValueError):
        CharmPolicyConfig(scheduler_timer_ns=0)
    with pytest.raises(ValueError):
        CharmPolicyConfig(rmt_chip_access_rate=-1)
    with pytest.raises(ValueError):
        CharmPolicyConfig(compact_hysteresis=2.0)


def test_charm_initial_placement_socket_aware():
    """<= one socket's worth of workers all start in socket 0."""
    m = milan(scale=64)
    s = CharmStrategy()
    cores = [s.initial_core(w, 64, m) for w in range(64)]
    assert all(m.topo.socket_of_core(c) == 0 for c in cores)
    assert len(set(cores)) == 64
    # Worker 64+ spills to socket 1.
    assert m.topo.socket_of_core(s.initial_core(64, 128, m)) == 1


def test_charm_initial_spread_matches_min_valid():
    m = milan(scale=64)
    s = CharmStrategy()
    assert s.initial_spread(0, 8, m) == 1
    assert s.initial_spread(0, 64, m) == 8


def test_static_spread_strategies():
    m = milan(scale=64)
    local = local_cache_strategy()
    cores = [local.initial_core(w, 8, m) for w in range(8)]
    assert {m.topo.chiplet_of_core(c) for c in cores} == {0}
    dist = distributed_cache_strategy(m)
    cores = [dist.initial_core(w, 8, m) for w in range(8)]
    assert len({m.topo.chiplet_of_core(c) for c in cores}) == 8


def test_static_spread_invalid():
    with pytest.raises(ValueError):
        StaticSpreadStrategy(0)


def test_degenerate_spread_above_cores_per_chiplet():
    """Genoa-style: 12 chiplets of 8 cores, spread 12 > cpc 8."""
    cores = [update_location(w, 12, 96, 8, 12) for w in range(96)]
    assert all(c is not None for c in cores)
    assert len(set(cores)) == 96
    chiplets = [c // 8 for c in cores[:12]]
    assert sorted(chiplets) == list(range(12))  # one worker per chiplet first


def test_charm_initial_placement_on_genoa():
    from repro.hw.machine import genoa

    m = genoa(scale=64)
    s = CharmStrategy()
    cores = [s.initial_core(w, 192, m) for w in range(192)]
    assert len(set(cores)) == 192
