"""Baseline strategies: placements, allocation policies, adaptation hooks."""

import pytest

from repro.baselines import (
    AsymSchedStrategy,
    OsAsyncStrategy,
    RingStrategy,
    SamStrategy,
    ShoalStrategy,
)
from repro.baselines.vanilla import VanillaStrategy
from repro.hw.machine import milan
from repro.hw.memory import MemPolicy
from repro.runtime.ops import AccessBatch, YieldPoint
from repro.runtime.runtime import Runtime


@pytest.fixture
def machine():
    return milan(scale=64)


def test_ring_round_robin_sockets(machine):
    s = RingStrategy()
    sockets = [machine.topo.socket_of_core(s.initial_core(w, 8, machine)) for w in range(8)]
    assert sockets == [0, 1, 0, 1, 0, 1, 0, 1]


def test_shoal_sequential_cores(machine):
    s = ShoalStrategy()
    assert [s.initial_core(w, 16, machine) for w in range(16)] == list(range(16))


def test_asymsched_even_split(machine):
    s = AsymSchedStrategy()
    sockets = [machine.topo.socket_of_core(s.initial_core(w, 8, machine)) for w in range(8)]
    assert sockets == [0] * 4 + [1] * 4


def test_sam_alternating(machine):
    s = SamStrategy()
    sockets = [machine.topo.socket_of_core(s.initial_core(w, 4, machine)) for w in range(4)]
    assert sockets == [0, 1, 0, 1]


def test_vanilla_first_touch_node0(machine):
    s = VanillaStrategy()
    rt = Runtime(machine, 4, s, seed=1)
    region = rt.alloc_shared(1 << 20)
    assert region.home_node == 0
    assert region.policy is MemPolicy.BIND


def test_shoal_replicates_read_only(machine):
    rt = Runtime(machine, 4, ShoalStrategy(), seed=1)
    ro = rt.alloc_shared(1 << 20, read_only=True)
    rw = rt.alloc_shared(1 << 20, read_only=False)
    assert ro.policy is MemPolicy.REPLICATED
    assert rw.policy is MemPolicy.INTERLEAVE


def test_ring_interleaves_shared(machine):
    rt = Runtime(machine, 4, RingStrategy(), seed=1)
    assert rt.alloc_shared(1 << 20).policy is MemPolicy.INTERLEAVE


def test_osasync_costs():
    s = OsAsyncStrategy()
    assert s.blocking_sync
    assert s.task_create_cost_ns > 1000
    assert s.switch_cost_ns > 1000


def test_capacity_overflow_rejected(machine):
    for s in (RingStrategy(), SamStrategy(), VanillaStrategy(), OsAsyncStrategy()):
        with pytest.raises(ValueError):
            s.initial_core(200, 201, machine)


def test_asymsched_rebalances(machine):
    """A worker on a hot socket migrates toward the cool one."""
    rt = Runtime(machine, 4, AsymSchedStrategy(rebalance_interval_ns=1000.0), seed=1)
    region = rt.alloc(1 << 20, node=0)  # all DRAM load on socket 0

    def body(wid):
        for r in range(20):
            yield AccessBatch(region, list(range(r * 8, r * 8 + 8)))
            yield YieldPoint()
        return wid

    for w in range(4):
        rt.spawn(body, w, pin_worker=w)
    report = rt.run()
    assert report.tasks_completed == 4  # and no crashes from the hook
