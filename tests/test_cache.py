"""L3 slice LRU and cross-chiplet directory."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.cache import CacheSystem, ChipletCache
from repro.hw.topology import Topology


def test_lru_eviction_order():
    c = ChipletCache(0, capacity_bytes=3 * 64)
    for b in (1, 2, 3):
        assert c.insert(b, 64) == []
    assert c.insert(4, 64) == [1]  # 1 is least recently used
    assert 1 not in c and 2 in c


def test_touch_refreshes_lru():
    c = ChipletCache(0, capacity_bytes=2 * 64)
    c.insert(1, 64)
    c.insert(2, 64)
    assert c.touch(1)
    assert c.insert(3, 64) == [2]  # 2 became LRU after touching 1
    assert 1 in c


def test_byte_budget_multi_eviction():
    c = ChipletCache(0, capacity_bytes=1024)
    for b in range(4):
        c.insert(b, 256)
    assert len(c) == 4
    evicted = c.insert(99, 1024)
    assert sorted(evicted) == [0, 1, 2, 3]
    assert c.used_bytes == 1024


def test_oversized_block_clamped():
    c = ChipletCache(0, capacity_bytes=512)
    c.insert(1, 4096)  # clamped to capacity
    assert 1 in c
    assert c.used_bytes <= 512


def test_drop_is_not_eviction():
    c = ChipletCache(0, capacity_bytes=512)
    c.insert(1, 64)
    assert c.drop(1)
    assert not c.drop(1)
    assert c.evictions == 0
    assert c.used_bytes == 0


def test_hit_miss_counters():
    c = ChipletCache(0, capacity_bytes=512)
    assert not c.touch(1)
    c.insert(1, 64)
    assert c.touch(1)
    assert (c.hits, c.misses) == (1, 1)


def test_invalid_capacity():
    with pytest.raises(ValueError):
        ChipletCache(0, capacity_bytes=32)


@st.composite
def _ops(draw):
    return draw(st.lists(st.tuples(st.sampled_from(["insert", "touch", "drop"]),
                                   st.integers(0, 20)), max_size=80))


@given(_ops())
@settings(max_examples=60, deadline=None)
def test_lru_matches_model(ops):
    """The cache agrees with a straightforward ordered-dict LRU model."""
    c = ChipletCache(0, capacity_bytes=4 * 64)
    model = {}
    for op, block in ops:
        if op == "insert":
            c.insert(block, 64)
            if block in model:
                model.pop(block)
            model[block] = None
            while len(model) > 4:
                model.pop(next(iter(model)))
        elif op == "touch":
            hit = c.touch(block)
            assert hit == (block in model)
            if hit:
                model.pop(block)
                model[block] = None
        else:
            c.drop(block)
            model.pop(block, None)
        assert set(c.blocks()) == set(model)


def _system():
    return CacheSystem(Topology(2, 2, 2, name="t"), capacity_bytes_per_chiplet=4 * 64)


def test_directory_tracks_fills_and_invalidations():
    cs = _system()
    cs.fill(0, 100, 64)
    cs.fill(1, 100, 64)
    assert cs.directory[100] == {0, 1}
    assert cs.invalidate_others(0, 100) == 1
    assert cs.directory[100] == {0}
    assert cs.check_directory_consistent()


def test_find_holder_prefers_same_socket():
    cs = _system()
    cs.fill(3, 7, 64)  # socket 1
    cs.fill(1, 7, 64)  # socket 0
    assert cs.find_holder(0, 7) == 1  # chiplet 0 is socket 0
    assert cs.find_holder(2, 7) == 3  # chiplet 2 is socket 1


def test_find_holder_cross_socket_fallback():
    cs = _system()
    cs.fill(3, 7, 64)
    assert cs.find_holder(0, 7) == 3


def test_eviction_updates_directory():
    cs = _system()
    for b in range(5):  # capacity 4 blocks -> evicts block 0
        cs.fill(0, b, 64)
    assert 0 not in cs.directory
    assert cs.check_directory_consistent()


def test_drop_everywhere():
    cs = _system()
    cs.fill(0, 9, 64)
    cs.fill(2, 9, 64)
    assert cs.drop_everywhere(9) == 2
    assert 9 not in cs.directory
    assert cs.check_directory_consistent()
