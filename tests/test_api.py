"""Paper-style Charm facade and in-task combinators."""

import pytest

from repro.hw.machine import milan
from repro.runtime.api import Charm, co_call_sync, co_spawn, co_wait_all
from repro.runtime.ops import Compute, WaitBarrier


def _charm(workers=4):
    return Charm.init(machine=milan(scale=64), workers=workers, seed=5)


def test_all_do_runs_on_every_worker():
    charm = _charm(4)

    def body(wid):
        yield Compute(10.0)
        return wid

    tasks = charm.all_do(body)
    charm.run()
    assert sorted(t.result for t in tasks) == [0, 1, 2, 3]


def test_call_async_future():
    charm = _charm(2)

    def body(x):
        yield Compute(5.0)
        return x + 1

    fut = charm.call(1, body, 41)
    charm.run()
    assert fut.done and fut.value == 42


def test_barrier_helper():
    charm = _charm(3)
    bar = charm.barrier()

    def body(wid):
        yield Compute(float(wid) * 10)
        yield WaitBarrier(bar)
        return wid

    charm.all_do(body)
    charm.run()
    assert bar.releases == 1


def test_co_spawn_and_wait_all():
    charm = _charm(4)

    def child(i):
        yield Compute(10.0)
        return i * i

    def root():
        tasks = []
        for i in range(6):
            t = yield from co_spawn(child, i)
            tasks.append(t)
        results = yield from co_wait_all(charm, tasks)
        return results

    root_task = charm.spawn(root)
    charm.run()
    assert root_task.result == [0, 1, 4, 9, 16, 25]


def test_co_call_sync():
    charm = _charm(2)

    def remote(x):
        yield Compute(10.0)
        return x * 3

    def root():
        v = yield from co_call_sync(charm, 1, remote, 4)
        return v

    t = charm.spawn(root)
    charm.run()
    assert t.result == 12


def test_finalize_blocks_reuse():
    charm = _charm(1)

    def body(wid):
        yield Compute(1.0)

    charm.all_do(body)
    charm.run()
    charm.finalize()
    with pytest.raises(RuntimeError):
        charm.spawn(body, 0)


def test_default_init():
    charm = Charm.init()
    assert charm.runtime.machine.topo.name == "epyc-milan-7713"
    assert len(charm.runtime.workers) == 64
