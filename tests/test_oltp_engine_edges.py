"""OLTP engine edge cases: aborts, determinism, mixed workloads."""

import pytest

from repro.hw.machine import milan
from repro.runtime.policy import local_cache_strategy
from repro.workloads.oltp import run_oltp, tpcc_workload, ycsb_workload
from repro.workloads.oltp.mvcc import MvccStore, Transaction
from repro.workloads.oltp.tpcc import load_tpcc
from repro.workloads.oltp.ycsb import load_ycsb


def test_high_contention_produces_aborts():
    """A 4-key YCSB keyspace under 16 workers must conflict."""
    store = load_ycsb(4)
    res = run_oltp(milan(scale=64), local_cache_strategy(), 16, ycsb_workload,
                   "ycsb", store, 1 << 20, txns_per_worker=40)
    assert res.aborted > 0
    assert res.committed + res.aborted == 16 * 40
    assert store.aborts == res.aborted


def test_deterministic_across_runs():
    def run():
        return run_oltp(milan(scale=64), local_cache_strategy(), 8, ycsb_workload,
                        "ycsb", load_ycsb(1000), 1 << 20, txns_per_worker=30)

    a, b = run(), run()
    assert a.committed == b.committed
    assert a.wall_ns == b.wall_ns


def test_tpcc_stock_quantities_stay_positive():
    tables = load_tpcc(2)
    run_oltp(milan(scale=64), local_cache_strategy(), 8, tpcc_workload(tables),
             "tpcc", tables.store, 1 << 20, txns_per_worker=30)
    s = tables.store
    for key in list(s.keys()):
        if isinstance(key, tuple) and key[0] == "stock":
            row = Transaction(s).read(key)
            assert row["qty"] > 0, key


def test_read_only_transactions_never_abort():
    store = MvccStore()
    store.load("k", 1)

    def read_only(store_, txn, wid, i, rng):
        txn.read("k")
        return [("k", False)]

    res = run_oltp(milan(scale=64), local_cache_strategy(), 8, read_only, "ro",
                   store, 1 << 20, txns_per_worker=25)
    assert res.aborted == 0
    assert res.committed == 200


def test_commits_metric_consistency():
    store = load_ycsb(500)
    res = run_oltp(milan(scale=64), local_cache_strategy(), 4, ycsb_workload,
                   "ycsb", store, 1 << 20, txns_per_worker=25)
    assert res.commits_per_second == pytest.approx(
        res.committed / (res.wall_ns * 1e-9))
