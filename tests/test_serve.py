"""The placement-advisor service, end to end over real sockets.

One shared server (daemon-thread event loop, 1-worker warm pool, a
temporary result store) backs the round-trip tests; the restart test
gets its own store to prove the persistent tier.  The queries are
deliberately tiny gups cells so a cold simulation costs tens of ms.
"""

import asyncio
import json

import pytest

import repro.bench.dse  # noqa: F401 - registers the "dse" experiment
from repro.bench.cells import execute_cell
from repro.serve.app import ServerThread
from repro.serve.client import AdvisorClient, parse_base_url
from repro.serve.coalesce import SingleFlight
from repro.serve.query import normalize_query
from repro.serve.stats import LatencyReservoir, ServerStats

TINY = {
    "workload": "gups",
    "geometry": {"cps": 2, "cpc": 2, "l3_mib": 4, "channels": 2,
                 "link_scale": 1.0},
    "params": {"table_bytes": 1 << 20, "updates_per_worker": 64},
}


def _query(policy="charm", seed=7, **extra):
    doc = dict(TINY, policy=policy, seed=seed)
    doc.update(extra)
    return doc


def _call(server, method, path, payload=None):
    async def go():
        host, port = parse_base_url(server.url)
        client = AdvisorClient(host, port)
        try:
            return await client.request(method, path, payload)
        finally:
            await client.close()

    return asyncio.run(go())


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("serve-store")
    import os

    prev = os.environ.get("REPRO_SWEEP_CACHE")
    os.environ["REPRO_SWEEP_CACHE"] = str(store_dir)
    try:
        with ServerThread(jobs=1) as srv:
            yield srv
    finally:
        if prev is None:
            os.environ.pop("REPRO_SWEEP_CACHE", None)
        else:
            os.environ["REPRO_SWEEP_CACHE"] = prev


# -- routes ---------------------------------------------------------------------


def test_healthz(server):
    status, doc = _call(server, "GET", "/healthz")
    assert status == 200
    assert doc["status"] == "ok"
    assert doc["jobs"] == 1 and doc["store"] is True


def test_advise_computes_then_hot_hits(server):
    status, first = _call(server, "POST", "/advise", _query(seed=11))
    assert status == 200
    assert list(first["results"]) == ["charm"]
    assert first["tiers"]["charm"] in ("computed", "coalesced")
    status, again = _call(server, "POST", "/advise", _query(seed=11))
    assert status == 200
    assert again["tiers"]["charm"] == "hot"
    assert again["results"] == first["results"]


def test_advise_matches_serial_execution(server):
    # the service contract: bit-identical to running the cell yourself
    status, doc = _call(server, "POST", "/advise", _query(seed=13))
    assert status == 200
    cell = normalize_query(_query(seed=13)).cells()[0]
    assert doc["cells"]["charm"] == cell.cell_id
    serial = execute_cell(cell)
    assert json.loads(json.dumps(serial)) == doc["results"]["charm"]


def test_concurrent_duplicates_coalesce(server):
    query = dict(TINY, seed=17, policies=["charm", "ring"])

    async def burst():
        host, port = parse_base_url(server.url)
        clients = [AdvisorClient(host, port) for _ in range(5)]
        try:
            return await asyncio.gather(
                *(c.post("/advise", query) for c in clients))
        finally:
            for c in clients:
                await c.close()

    responses = asyncio.run(burst())
    assert all(status == 200 for status, _ in responses)
    docs = [doc for _, doc in responses]
    assert all(doc["results"] == docs[0]["results"] for doc in docs)
    tiers = [doc["tiers"][p] for doc in docs for p in ("charm", "ring")]
    assert "coalesced" in tiers  # duplicates attached to the leader flight
    assert tiers.count("computed") <= 2  # at most one simulation per policy


def test_stats_shape_and_accounting(server):
    status, doc = _call(server, "GET", "/stats")
    assert status == 200
    assert doc["requests"] > 0 and doc["errors"] == 0
    cells = doc["cells"]
    assert cells["total"] == (cells["hot_hits"] + cells["store_hits"]
                              + cells["coalesced"] + cells["computed"])
    assert 0.0 <= cells["cache_hit_ratio"] <= 1.0
    assert doc["latency_ms"]["count"] > 0
    assert doc["latency_ms"]["p99"] >= doc["latency_ms"]["p50"] >= 0


def test_error_paths(server):
    status, doc = _call(server, "POST", "/advise",
                        {"workload": "matmul"})
    assert status == 400 and "workload" in doc["error"]
    status, doc = _call(server, "GET", "/nope")
    assert status == 404
    status, doc = _call(server, "POST", "/healthz", {})
    assert status == 405
    status, doc = _call(server, "GET", "/advise")
    assert status == 405

    async def raw_garbage():
        host, port = parse_base_url(server.url)
        reader, writer = await asyncio.open_connection(host, port)
        body = b"{not json"
        writer.write(b"POST /advise HTTP/1.1\r\nHost: x\r\n"
                     b"Content-Length: %d\r\n\r\n%s" % (len(body), body))
        await writer.drain()
        line = await reader.readline()
        writer.close()
        return line

    assert b"400" in asyncio.run(raw_garbage())


def test_store_tier_survives_restart(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path))
    query = _query(seed=23)
    with ServerThread(jobs=1) as srv:
        status, doc = _call(srv, "POST", "/advise", query)
        assert status == 200
        first = doc["results"]["charm"]
    # new process-pool, empty hot cache — only the store remembers
    with ServerThread(jobs=1) as srv:
        status, doc = _call(srv, "POST", "/advise", query)
        assert status == 200
        assert doc["tiers"]["charm"] == "store"
        assert doc["results"]["charm"] == first


# -- units ----------------------------------------------------------------------


def test_single_flight_coalesces_and_resolves():
    async def go():
        flight = SingleFlight()
        leader = flight.leader("k")
        assert leader is not None
        assert flight.leader("k") is None  # second claim loses
        dup = flight.wait_for("k")
        assert dup is not None and flight.waiters("k") == 1
        assert flight.coalesced_total == 1
        flight.resolve("k", {"v": 1})
        assert await leader == {"v": 1} and await dup == {"v": 1}
        assert len(flight) == 0
        assert flight.wait_for("k") is None  # flight is gone

    asyncio.run(go())


def test_single_flight_propagates_errors():
    async def go():
        flight = SingleFlight()
        leader = flight.leader("k")
        dup = flight.wait_for("k")
        flight.resolve("k", error=RuntimeError("boom"))
        for fut in (leader, dup):
            with pytest.raises(RuntimeError, match="boom"):
                await fut

    asyncio.run(go())


def test_latency_reservoir_window_quantiles():
    res = LatencyReservoir(size=4)
    for v in (0.1, 0.2, 0.3, 0.4):
        res.record(v)
    assert res.quantile(0.0) == 0.1 and res.quantile(1.0) == 0.4
    res.record(9.9)  # overwrites the oldest (0.1)
    assert res.quantile(1.0) == 9.9
    assert res.count == 5
    assert LatencyReservoir().quantile(0.5) == 0.0


def test_server_stats_ratios():
    stats = ServerStats()
    for tier in ("hot", "store", "coalesced", "computed"):
        stats.cell_answered(tier)
    assert stats.cache_hit_ratio == 0.75
    stats.request_started()
    stats.request_finished(0.010)
    snap = stats.snapshot()
    assert snap["cells"]["cache_hit_ratio"] == 0.75
    assert snap["latency_ms"]["p50"] == 10.0
