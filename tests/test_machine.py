"""Machine access paths, counters, and timing split."""

import pytest

from repro.hw.counters import FillSource
from repro.hw.machine import milan, sapphire_rapids, small_test_machine
from repro.hw.memory import MemPolicy


def test_dram_then_hit(tiny):
    r = tiny.alloc_region(1024, node=0)
    res1 = tiny.access(core=0, region=r, block_index=0, now=0.0)
    assert res1.source is FillSource.DRAM_LOCAL
    res2 = tiny.access(core=0, region=r, block_index=0, now=res1.ns)
    assert res2.source is FillSource.LOCAL_CHIPLET
    assert res2.ns < res1.ns


def test_peer_fill_same_socket(tiny):
    r = tiny.alloc_region(1024, node=0)
    tiny.access(core=0, region=r, block_index=0, now=0.0)
    # core 2 is chiplet 1, same socket: served from chiplet 0's L3.
    res = tiny.access(core=2, region=r, block_index=0, now=1000.0)
    assert res.source is FillSource.REMOTE_CHIPLET


def test_peer_fill_cross_socket(tiny):
    r = tiny.alloc_region(1024, node=0)
    tiny.access(core=0, region=r, block_index=0, now=0.0)
    res = tiny.access(core=4, region=r, block_index=0, now=1000.0)  # socket 1
    assert res.source is FillSource.REMOTE_NUMA_CHIPLET


def test_remote_dram(tiny):
    r = tiny.alloc_region(1024, node=1)
    res = tiny.access(core=0, region=r, block_index=0, now=0.0)
    assert res.source is FillSource.DRAM_REMOTE
    local = tiny.alloc_region(1024, node=0)
    res_local = tiny.access(core=1, region=local, block_index=0, now=0.0)
    assert res.ns > res_local.ns


def test_write_invalidates_peers(tiny):
    r = tiny.alloc_region(1024, node=0)
    tiny.access(core=0, region=r, block_index=0, now=0.0)
    tiny.access(core=2, region=r, block_index=0, now=100.0)
    res = tiny.access(core=0, region=r, block_index=0, now=200.0, write=True)
    assert res.invalidations == 1
    # Chiplet 1's copy is gone: its next access is a fill again.
    res2 = tiny.access(core=2, region=r, block_index=0, now=300.0)
    assert res2.source is not FillSource.LOCAL_CHIPLET


def test_counters_recorded_per_core(tiny):
    r = tiny.alloc_region(1024, node=0)
    tiny.access(core=3, region=r, block_index=0, now=0.0)
    assert tiny.counters.core(3).dram_fills() == 1
    assert tiny.counters.core(0).total() == 0


def test_latency_split_excludes_queueing(tiny):
    r = tiny.alloc_region(4096, node=0)
    # Two back-to-back accesses to blocks on the same channel: the second
    # waits, so its total exceeds its pure latency.
    a = tiny.access(core=0, region=r, block_index=0, now=0.0)
    b = tiny.access(core=1, region=r, block_index=2, now=0.0)
    assert a.latency_ns <= a.ns
    assert b.latency_ns <= b.ns


def test_free_region_flushes_caches(tiny):
    r = tiny.alloc_region(1024, node=0)
    tiny.access(core=0, region=r, block_index=0, now=0.0)
    tiny.free_region(r)
    assert tiny.caches.resident_bytes(0) == 0


def test_replicated_always_local(tiny):
    r = tiny.alloc_region(1024, node=0, policy=MemPolicy.REPLICATED)
    res = tiny.access(core=4, region=r, block_index=0, now=0.0)  # socket 1
    assert res.source is FillSource.DRAM_LOCAL


def test_sync_span(tiny):
    within = tiny.sync_span_ns([0, 1])
    across = tiny.sync_span_ns([0, 4])
    assert 0 < within < across
    assert tiny.sync_span_ns([0]) == 0.0


def test_presets_describe():
    m = milan(scale=64)
    assert "epyc" in m.describe()
    s = sapphire_rapids(scale=64)
    assert s.topo.total_cores == 96
    assert m.l3_bytes_per_chiplet == 32 * (1 << 20) // 64


def test_region_block_bytes_override(tiny):
    r = tiny.alloc_region(4096, node=0, block_bytes=128)
    assert r.block_bytes == 128
    assert r.n_blocks == 32


def test_invalid_machine_params():
    from repro.hw.latency import MILAN_LATENCY
    from repro.hw.machine import Machine
    from repro.hw.topology import Topology

    with pytest.raises(ValueError):
        Machine(Topology(1, 1, 1), MILAN_LATENCY, l3_bytes_per_chiplet=32, block_bytes=64)
    with pytest.raises(ValueError):
        Machine(Topology(1, 1, 1), MILAN_LATENCY, l3_bytes_per_chiplet=4096, block_bytes=32)


def test_free_region_iterates_directory_not_block_space(tiny):
    """free_region is O(resident blocks): touching 3 blocks of a huge region
    then freeing it must only drop those 3 keys and leave other regions'
    residency alone."""
    big = tiny.alloc_region(10**6 * tiny.block_bytes, node=0, name="big")
    other = tiny.alloc_region(1024, node=0, name="other")
    tiny.access_batch(0, big, [0, 17, 99], now=0.0)
    tiny.access(0, other, 0, now=0.0)
    assert len(tiny.caches.directory) == 4
    tiny.free_region(big)
    assert len(tiny.caches.directory) == 1
    assert other.block_key(0) in tiny.caches.directory
    assert tiny.caches.check_directory_consistent()
    # Accounting returned too (satellite: RegionTable.free leak fix).
    assert tiny.regions.allocated_bytes_per_node[0] == other.size_bytes


def test_bandwidth_stats_accounts_traffic(tiny):
    r = tiny.alloc_region(64 * tiny.block_bytes, node=0)
    stats0 = tiny.bandwidth_stats()
    assert stats0["channels"]["total"]["requests"] == 0
    res = tiny.access_batch(0, r, list(range(32)), now=0.0, mlp=10.0,
                            per_issue_ns=4.0)
    assert res.accesses == 32
    stats = tiny.bandwidth_stats()
    # Every miss crossed a channel and the requester's fabric link.
    assert stats["channels"]["total"]["requests"] == 32
    assert stats["links"]["total"]["requests"] == 32
    assert stats["channels"]["total"]["busy_ns"] > 0.0
    assert stats["links"]["per_chiplet"][0]["requests"] == 32
    assert stats["channels"]["peak_bytes_per_ns_per_socket"] == \
        tiny.channels.peak_bandwidth()
    # Remote-node traffic shows up on the cross-socket links.
    r2 = tiny.alloc_region(64 * tiny.block_bytes, node=1)
    tiny.access_batch(0, r2, list(range(16)), now=res.ns)
    assert tiny.bandwidth_stats()["xlinks"]["total"]["requests"] == 16
