"""Command-line interface."""

import pytest

from repro.cli import EXPERIMENT_ORDER, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENT_ORDER:
        assert name in out


def test_run_known_experiment(capsys):
    assert main(["run", "fig04_channels"]) == 0
    assert "memory channels" in capsys.readouterr().out


def test_run_unknown_experiment(capsys):
    assert main(["run", "nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_machine_presets(capsys):
    for preset in ("milan", "sapphire-rapids", "genoa"):
        assert main(["machine", "--preset", preset]) == 0
    out = capsys.readouterr().out
    assert "core-to-core latencies" in out


def test_machine_unknown_preset(capsys):
    assert main(["machine", "--preset", "itanium"]) == 2


def test_experiment_order_matches_module():
    from repro.bench import experiments

    for name in EXPERIMENT_ORDER:
        assert hasattr(experiments, name)
