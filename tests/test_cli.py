"""Command-line interface."""

import pytest

from repro.cli import EXPERIMENT_ORDER, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENT_ORDER:
        assert name in out


def test_run_known_experiment(capsys):
    assert main(["run", "fig04_channels"]) == 0
    out = capsys.readouterr().out
    assert "memory channels" in out
    assert "cores_per_channel" in out  # the rendered table, not just a title


def test_run_with_jobs_uses_sweep_cache(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "cache"))
    assert main(["run", "fig04_channels", "--jobs", "2"]) == 0
    captured = capsys.readouterr()
    assert "memory channels" in captured.out
    assert "executed" in captured.err  # sweep stats line
    # second run resolves entirely from the cache
    assert main(["run", "fig04_channels", "--jobs", "2"]) == 0
    captured = capsys.readouterr()
    assert "1 from cache" in captured.err


def test_run_no_cache_leaves_no_cache_dir(tmp_path, monkeypatch, capsys):
    cache = tmp_path / "cache"
    monkeypatch.setenv("REPRO_SWEEP_CACHE", str(cache))
    assert main(["run", "fig04_channels", "--jobs", "1", "--no-cache"]) == 0
    assert not cache.exists()


def test_run_unknown_experiment(capsys):
    assert main(["run", "nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_machine_presets(capsys):
    for preset in ("milan", "sapphire-rapids", "genoa"):
        assert main(["machine", "--preset", preset]) == 0
    out = capsys.readouterr().out
    assert "core-to-core latencies" in out


def test_machine_unknown_preset(capsys):
    assert main(["machine", "--preset", "itanium"]) == 2


def test_experiment_order_matches_module():
    from repro.bench import experiments

    for name in EXPERIMENT_ORDER:
        assert hasattr(experiments, name)


def test_trace_verb_writes_chrome_trace(tmp_path, capsys):
    import json

    out = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.csv"
    assert main(["trace", "fig05_local_vs_distributed",
                 "--out", str(out), "--metrics", str(metrics)]) == 0
    printed = capsys.readouterr().out
    assert "perfetto" in printed.lower()
    doc = json.loads(out.read_text())
    assert doc["traceEvents"]
    assert metrics.read_text().startswith("time_ns,")


def test_trace_verb_cell_selector(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["trace", "fig05_local_vs_distributed",
                 "--cell", "definitely-not-a-cell", "--out", str(out)]) == 2
    assert "no cell" in capsys.readouterr().err
    assert not out.exists()


def test_trace_verb_unknown_experiment(capsys):
    assert main(["trace", "nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_telemetry_attaches_and_survives_cache(tmp_path, monkeypatch, capsys):
    from repro.bench import sweep

    cache = tmp_path / "cache"
    monkeypatch.setenv("REPRO_SWEEP_CACHE", str(cache))
    # --telemetry without --jobs routes through the sweep path (jobs=1);
    # fig05's cells return dict results, which carry the summary.
    assert main(["run", "fig05_local_vs_distributed", "--telemetry"]) == 0
    assert "executed" in capsys.readouterr().err
    store = sweep.get_store()
    keys = store.keys()
    assert keys
    for key in keys:
        hit, result = store.get(key)
        assert hit
        assert result["telemetry"]["mode"] == "full"
        assert result["telemetry"]["wall_ns"] > 0
    row = store.conn.execute(
        "SELECT telemetry FROM results LIMIT 1").fetchone()
    assert row[0] == 1
    # round trip: the second run resolves from cache, summaries intact
    assert main(["run", "fig05_local_vs_distributed", "--telemetry"]) == 0
    assert "from cache" in capsys.readouterr().err.splitlines()[-1]


def test_run_telemetry_uses_separate_cache_keys(tmp_path, monkeypatch, capsys):
    from repro.bench.cells import ExperimentCell
    from repro.bench.sweep import cache_key

    cell = ExperimentCell.make("fig04_channels", cores=4)
    assert cache_key(cell) != cache_key(cell, telemetry=True)

    cache = tmp_path / "cache"
    monkeypatch.setenv("REPRO_SWEEP_CACHE", str(cache))
    assert main(["run", "fig04_channels", "--jobs", "1"]) == 0
    # a plain-mode cache hit must not satisfy a telemetry-mode run
    assert main(["run", "fig04_channels", "--jobs", "1", "--telemetry"]) == 0
    err = capsys.readouterr().err
    assert "1 executed" in err.splitlines()[-1]
