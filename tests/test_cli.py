"""Command-line interface."""

import pytest

from repro.cli import EXPERIMENT_ORDER, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENT_ORDER:
        assert name in out


def test_run_known_experiment(capsys):
    assert main(["run", "fig04_channels"]) == 0
    out = capsys.readouterr().out
    assert "memory channels" in out
    assert "cores_per_channel" in out  # the rendered table, not just a title


def test_run_with_jobs_uses_sweep_cache(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "cache"))
    assert main(["run", "fig04_channels", "--jobs", "2"]) == 0
    captured = capsys.readouterr()
    assert "memory channels" in captured.out
    assert "executed" in captured.err  # sweep stats line
    # second run resolves entirely from the cache
    assert main(["run", "fig04_channels", "--jobs", "2"]) == 0
    captured = capsys.readouterr()
    assert "1 from cache" in captured.err


def test_run_no_cache_leaves_no_cache_dir(tmp_path, monkeypatch, capsys):
    cache = tmp_path / "cache"
    monkeypatch.setenv("REPRO_SWEEP_CACHE", str(cache))
    assert main(["run", "fig04_channels", "--jobs", "1", "--no-cache"]) == 0
    assert not cache.exists()


def test_run_unknown_experiment(capsys):
    assert main(["run", "nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_machine_presets(capsys):
    for preset in ("milan", "sapphire-rapids", "genoa"):
        assert main(["machine", "--preset", preset]) == 0
    out = capsys.readouterr().out
    assert "core-to-core latencies" in out


def test_machine_unknown_preset(capsys):
    assert main(["machine", "--preset", "itanium"]) == 2


def test_experiment_order_matches_module():
    from repro.bench import experiments

    for name in EXPERIMENT_ORDER:
        assert hasattr(experiments, name)
