"""RunReport details: spread history, cumulative concurrency, wall metrics."""

from repro.hw.machine import milan, small_test_machine
from repro.runtime.ops import AccessBatch, Compute, YieldPoint
from repro.runtime.policy import CharmStrategy, StaticSpreadStrategy
from repro.runtime.runtime import Runtime


def test_spread_history_records_migrations():
    machine = milan(scale=64)
    rt = Runtime(machine, 8, CharmStrategy(), seed=3, collect_timeline=True)
    region = rt.alloc_shared(8 << 20, name="big")

    def body(wid):
        for r in range(40):
            yield AccessBatch(region, list(range(r * 16, r * 16 + 16)))
            yield YieldPoint()
        return wid

    for w in range(8):
        rt.spawn(body, w, pin_worker=w)
    report = rt.run()
    assert len(report.spread_history) == report.migrations > 0
    times = [t for t, _, _ in report.spread_history]
    assert all(t >= 0 for t in times)
    spreads = [s for _, _, s in report.spread_history]
    assert max(spreads) > 1  # footprint widened


def test_cumulative_concurrency_sorted_and_balanced():
    rt = Runtime(small_test_machine(), 2, StaticSpreadStrategy(1), seed=3,
                 collect_timeline=True)

    def body(wid):
        yield Compute(500.0)
        yield YieldPoint()
        yield Compute(500.0)
        return wid

    rt.spawn(body, 0, pin_worker=0)
    rt.spawn(body, 1, pin_worker=1)
    report = rt.run()
    curve = report.cumulative_concurrency()
    xs = [t for t, _ in curve]
    assert xs == sorted(xs)
    assert curve[-1][1] == 0  # all starts matched by stops
    assert max(c for _, c in curve) <= 2


def test_wall_seconds_and_throughput():
    rt = Runtime(small_test_machine(), 1, StaticSpreadStrategy(1), seed=3)

    def body():
        yield Compute(2_000_000.0)  # 2 ms
        return None

    rt.spawn(body, pin_worker=0)
    report = rt.run()
    assert abs(report.wall_seconds - 2e-3) < 1e-4
    assert abs(report.throughput(2000) - 1e6) / 1e6 < 0.1
