"""Design-space exploration: Pareto reduction, cost model, config lattice."""

import pytest

from repro.bench import dse
from repro.bench.cells import ExperimentCell
from repro.bench.cost import CostModel
from repro.hw.machine import (
    GEOMETRY_ANCHORS,
    GEOMETRY_EPYC_MILAN,
    MachineGeometry,
)


# -- Pareto reduction ----------------------------------------------------------


def _pt(tput, l3, ch, tag=""):
    return {"metric": tput, "total_l3_mib": l3, "total_channels": ch,
            "tag": tag}


OBJ = (("metric", "max"), ("total_l3_mib", "min"), ("total_channels", "min"))


def test_pareto_known_dominated_and_non_dominated():
    best_cheap = _pt(100, 64, 8)        # frontier
    best_fast = _pt(200, 256, 16)       # frontier: fastest
    dominated = _pt(90, 128, 16)        # worse than best_fast AND best_cheap? no:
    #   vs best_cheap: tput 90<100, l3 128>64, ch 16>8 → dominated by best_cheap
    strictly_worse = _pt(100, 64, 12)   # same tput, same l3, more channels
    front = dse.pareto_frontier(
        [best_cheap, best_fast, dominated, strictly_worse], OBJ)
    assert front == [best_cheap, best_fast]


def test_pareto_exact_ties_are_all_kept():
    a = _pt(100, 64, 8, "a")
    b = _pt(100, 64, 8, "b")  # identical on every objective
    front = dse.pareto_frontier([a, b], OBJ)
    assert front == [a, b]


def test_pareto_degenerate_single_axis():
    rows = [_pt(10, 0, 0), _pt(30, 0, 0), _pt(20, 0, 0)]
    front = dse.pareto_frontier(rows, (("metric", "max"),))
    assert front == [rows[1]]
    # min sense on the same axis picks the other extreme
    front_min = dse.pareto_frontier(rows, (("metric", "min"),))
    assert front_min == [rows[0]]


def test_pareto_empty_and_singleton():
    assert dse.pareto_frontier([], OBJ) == []
    only = _pt(1, 1, 1)
    assert dse.pareto_frontier([only], OBJ) == [only]


def test_pareto_rejects_bad_sense():
    with pytest.raises(ValueError):
        dse.pareto_frontier([_pt(1, 1, 1)], (("metric", "best"),))


def test_pareto_preserves_input_order():
    rows = [_pt(100, 256, 8, "late-fast"), _pt(50, 64, 8, "early-cheap")]
    assert dse.pareto_frontier(rows, OBJ) == rows


# -- cost model ----------------------------------------------------------------


def _gups_cell(updates, cores=8):
    return ExperimentCell.make("dse", strategy="charm", cores=cores,
                               workload="gups", updates_per_worker=updates,
                               table_bytes=4 << 20)


def test_cost_model_monotone_in_work():
    model = CostModel.from_samples(
        [("dse", 100.0, 0.05), ("dse", 200.0, 0.11), ("dse", 400.0, 0.2)])
    cells = [_gups_cell(u) for u in (128, 256, 512, 1024)]
    estimates = [model.estimate(c) for c in cells]
    assert estimates == sorted(estimates)
    assert all(e > 0 for e in estimates)
    # more workers on the same workload is also more simulated work
    assert model.estimate(_gups_cell(256, cores=32)) > \
        model.estimate(_gups_cell(256, cores=8))


def test_cost_model_empty_calibration_falls_back_to_hint():
    model = CostModel.from_samples([])
    assert not model.calibrated
    cell = _gups_cell(512)
    assert model.estimate(cell) == cell.work_hint()
    # still monotone
    assert model.estimate(_gups_cell(1024)) > model.estimate(_gups_cell(512))


def test_cost_model_unseen_experiment_uses_global_rate():
    model = CostModel.from_samples(
        [("fig04", 100.0, 0.5), ("fig05", 100.0, 1.5)])
    # unseen experiment → median of per-experiment rates = 0.01
    cell = _gups_cell(512)
    assert model.estimate(cell) == pytest.approx(cell.work_hint() * 0.01)


def test_cost_model_ignores_broken_samples():
    model = CostModel.from_samples(
        [("e", 0.0, 1.0), ("e", None, 1.0), ("e", 100.0, None),
         ("e", 100.0, 1.0)])
    assert model.rates == {"e": 0.01}


def test_work_hint_scales_with_size_params():
    small = ExperimentCell.make("x", cores=8, graph_scale=10, edgefactor=8)
    big = ExperimentCell.make("x", cores=8, graph_scale=14, edgefactor=8)
    assert big.work_hint() == pytest.approx(small.work_hint() * 16)
    # non-numeric and flag params don't contribute
    tagged = ExperimentCell.make("x", cores=8, graph_scale=10, edgefactor=8,
                                 workload="pagerank", flag=True)
    assert tagged.work_hint() == small.work_hint()


# -- geometry ------------------------------------------------------------------


def test_geometry_validation_rejects_bad_axes():
    bad = MachineGeometry(chiplets_per_socket=0, cores_per_chiplet=8,
                          l3_mib_per_chiplet=32, mem_channels_per_socket=8)
    with pytest.raises(ValueError, match="chiplets_per_socket"):
        bad.validate()
    bad_link = MachineGeometry(chiplets_per_socket=8, cores_per_chiplet=8,
                               l3_mib_per_chiplet=32,
                               mem_channels_per_socket=8,
                               link_latency_scale=-1.0)
    with pytest.raises(ValueError, match="link_latency_scale"):
        bad_link.validate()
    # a multi-problem geometry names every failing axis
    with pytest.raises(ValueError, match="cores_per_chiplet"):
        MachineGeometry(chiplets_per_socket=8, cores_per_chiplet=0,
                        l3_mib_per_chiplet=-1,
                        mem_channels_per_socket=8).validate()


def test_geometry_builds_matching_machine():
    geo = MachineGeometry(chiplets_per_socket=4, cores_per_chiplet=8,
                          l3_mib_per_chiplet=16, mem_channels_per_socket=4,
                          link_latency_scale=2.0)
    m = geo.build(scale=16)
    assert m.topo.sockets == 2
    assert m.topo.chiplets_per_socket == 4
    assert m.topo.cores_per_chiplet == 8
    assert m.l3_bytes_per_chiplet == 16 * (1 << 20) // 16
    assert m.channels.channels_per_socket == 4
    # link scale multiplies fabric latencies, leaves intra-chiplet alone
    from repro.hw.latency import MILAN_LATENCY
    assert m.latency.fill_same_socket == MILAN_LATENCY.fill_same_socket * 2
    assert m.latency.l3_hit == MILAN_LATENCY.l3_hit


def test_geometry_anchors_are_valid():
    for geo in GEOMETRY_ANCHORS:
        geo.validate()
    assert GEOMETRY_EPYC_MILAN.total_cores == 128


# -- config generation ---------------------------------------------------------


def test_generate_configs_is_deterministic_and_budgeted():
    a = dse.generate_configs(240)
    b = dse.generate_configs(240)
    assert a == b
    assert len(a) == 240 // 6
    # anchors lead the sample
    assert a[0] == GEOMETRY_ANCHORS[0] and a[1] == GEOMETRY_ANCHORS[1]
    # all distinct
    assert len(set(a)) == len(a)


def test_generate_configs_full_budget_covers_lattice():
    lattice = dse.full_lattice()
    budget = (len(lattice) + len(GEOMETRY_ANCHORS)) * 6
    configs = dse.generate_configs(budget)
    assert len(configs) == len(lattice) + len(GEOMETRY_ANCHORS)


def test_generate_configs_rejects_sub_config_budget():
    with pytest.raises(ValueError):
        dse.generate_configs(5)


def test_dse_cells_shape_and_determinism():
    cells = dse.dse_cells(24)
    assert len(cells) == 24
    assert cells == dse.dse_cells(24)
    assert {c.strategy for c in cells} == set(dse.POLICIES)
    assert {c.params["workload"] for c in cells} == set(dse.WORKLOADS)
    # cell ids are unique — no silent dedup shrinking the sweep
    assert len({c.cell_id for c in cells}) == 24


def test_dse_end_to_end_tiny(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "cache"))
    report, stats = dse.run_dse(budget=6, jobs=1, out_dir=tmp_path / "out")
    assert stats.total == 6 and stats.executed == 6
    assert (tmp_path / "out" / "cells.csv").exists()
    assert (tmp_path / "out" / "summary.txt").exists()
    for workload in dse.WORKLOADS:
        assert (tmp_path / "out" / f"frontier_{workload}.csv").exists()
        assert report["frontiers"][workload]  # single config → on frontier
    assert report["summary"][0]["charm"] > 0
    # resume: everything from the store, bit-identical outputs
    cells_csv = (tmp_path / "out" / "cells.csv").read_bytes()
    report2, stats2 = dse.run_dse(budget=6, jobs=1, out_dir=tmp_path / "out2")
    assert stats2.cache_hits == 6 and stats2.executed == 0
    assert (tmp_path / "out2" / "cells.csv").read_bytes() == cells_csv
