"""DimmWitted-style SGD engine."""

import numpy as np
import pytest

from repro.hw.machine import milan
from repro.workloads.sgd import SCHEMES, make_dataset, run_sgd, sgd_reference
from repro.workloads.sgd.engine import _chunk_gradient, _chunk_loss, _sigmoid


def test_dataset_deterministic():
    a = make_dataset(64, 16, seed=1)
    b = make_dataset(64, 16, seed=1)
    assert np.array_equal(a.X, b.X) and np.array_equal(a.y, b.y)
    assert a.data_bytes == 64 * 16 * 4


def test_sigmoid_bounds():
    z = np.array([-1000.0, 0.0, 1000.0])
    s = _sigmoid(z)
    assert 0 < s[0] < 0.01 and s[1] == 0.5 and s[2] > 0.99


def test_gradient_reduces_loss():
    ds = make_dataset(256, 32, seed=2)
    w0 = np.zeros(32)
    l0 = _chunk_loss(ds.X, ds.y, w0)
    w1 = w0
    for _ in range(20):
        w1 = _chunk_gradient(ds.X, ds.y, w1, 0.5)
    assert _chunk_loss(ds.X, ds.y, w1) < l0


def test_single_worker_matches_reference():
    ds = make_dataset(512, 64, seed=3)
    res = run_sgd(milan(scale=64), "per-machine", 1, ds, kernel="gradient",
                  epochs=2, chunk_rows=64)
    assert np.allclose(res.model, sgd_reference(ds, 2, 0.1, 64))


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_all_schemes_run_and_learn(scheme):
    ds = make_dataset(512, 64, seed=3)
    res = run_sgd(milan(scale=64), scheme, 8, ds, kernel="gradient", epochs=1)
    # The averaged model must classify better than chance.
    preds = (_sigmoid(ds.X @ res.model) > 0.5).astype(np.float32)
    assert (preds == ds.y).mean() > 0.7
    assert res.throughput_gbs > 0


def test_loss_kernel_accumulates():
    ds = make_dataset(256, 32, seed=3)
    res = run_sgd(milan(scale=64), "charm", 4, ds, kernel="loss", epochs=1)
    assert res.loss > 0
    assert res.bytes_processed == ds.data_bytes


def test_invalid_kernel():
    ds = make_dataset(64, 16, seed=3)
    with pytest.raises(ValueError):
        run_sgd(milan(scale=64), "charm", 2, ds, kernel="median")


def test_charm_beats_native_at_scale():
    ds = make_dataset(2048, 512, seed=11)
    rc = run_sgd(milan(scale=32), "charm", 32, ds, kernel="gradient", epochs=1)
    rn = run_sgd(milan(scale=32), "numa-node", 32, ds, kernel="gradient", epochs=1)
    assert rc.throughput_gbs > 1.5 * rn.throughput_gbs
