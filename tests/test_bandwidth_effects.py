"""End-to-end bandwidth mechanics: links, channels, xGMI."""

from repro.hw.machine import milan
from repro.runtime.ops import AccessBatch
from repro.runtime.policy import StaticSpreadStrategy, distributed_cache_strategy, local_cache_strategy
from repro.runtime.runtime import Runtime


def _stream(machine, strategy, workers, region_mb=16, node=0):
    rt = Runtime(machine, workers, strategy, seed=3)
    region = rt.alloc(region_mb << 20, node=node)
    n = region.n_blocks
    per = n // workers

    def body(wid):
        yield AccessBatch(region, list(range(wid * per, (wid + 1) * per)))
        return wid

    for w in range(workers):
        rt.spawn(body, w, pin_worker=w)
    return rt.run()


def test_one_chiplet_is_link_bound():
    """8 streams through one GMI link vs 8 links: ~8x wall difference."""
    m1, m2 = milan(scale=32), milan(scale=32)
    packed = _stream(m1, local_cache_strategy(), 8)
    spread = _stream(m2, distributed_cache_strategy(m2), 8)
    ratio = packed.wall_ns / spread.wall_ns
    assert 3.0 < ratio < 10.0


def test_link_busy_accounting_matches_traffic():
    m = milan(scale=32)
    report = _stream(m, local_cache_strategy(), 8, region_mb=8)
    # All 8 MiB flowed through chiplet 0's link at 47 B/ns.
    expected_busy = (8 << 20) / 47.0
    assert abs(m.links.busy_ns(0) - expected_busy) / expected_busy < 0.05
    assert m.links.busy_ns(1) == 0.0


def test_remote_node_streaming_pays_xgmi():
    """Streaming the other socket's DRAM serialises on the xGMI link."""
    m_local, m_remote = milan(scale=32), milan(scale=32)
    local = _stream(m_local, distributed_cache_strategy(m_local), 8, node=0)
    remote = _stream(m_remote, distributed_cache_strategy(m_remote), 8, node=1)
    assert remote.wall_ns > 1.5 * local.wall_ns
    assert m_remote.xlinks.busy_ns(0, 1) > 0
    assert m_local.xlinks.busy_ns(0, 1) == 0


def test_channel_saturation_under_many_streams():
    """64 spread streams approach the socket's channel bandwidth ceiling."""
    m = milan(scale=32)
    report = _stream(m, StaticSpreadStrategy(8), 64, region_mb=32)
    achieved = (32 << 20) / report.wall_ns  # bytes/ns
    peak = m.channels.peak_bandwidth()
    assert 0.5 * peak < achieved <= peak * 1.05
