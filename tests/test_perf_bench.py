"""The sim-throughput benchmark harness (repro.bench.perf)."""

import json

from repro.bench import perf


def test_run_suite_reports_metrics_and_determinism(tmp_path):
    sizes = {"gups": 512, "stream": 512, "shared_read": 1}
    results = perf.run_suite(sizes, verbose=False)
    assert set(results) == set(sizes)  # runs exactly the named subset
    for name, row in results.items():
        assert row["accesses"] > 0
        assert row["accesses_per_sec"] > 0
        assert row["events_per_sec"] > 0
        assert row["sim_wall_ns"] > 0
        assert set(row["fill_counts"]) == {"local_chiplet", "remote_chiplet",
                                           "remote_numa_chiplet", "main_memory"}
        assert 0.0 <= row["cache"]["hit_rate"] <= 1.0

    doc = perf.write_report(results, tmp_path / "simperf.json")
    on_disk = json.loads((tmp_path / "simperf.json").read_text())
    assert on_disk == doc
    assert on_disk["schema"] == 1
    assert set(on_disk["speedup_vs_baseline"]) == \
        set(sizes) & set(perf.RECORDED_BASELINE)


def test_check_mode_exit_codes(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    monkeypatch.setattr(perf, "CHECK_SIZES", {"gups": 256, "stream": 256,
                                              "shared_read": 1})
    assert perf.main(["--check"]) == 0
    assert not (tmp_path / "BENCH_simperf.json").exists()  # check writes nothing
    # An absurd throughput floor must fail loudly.
    assert perf.main(["--check", "--min-aps", "1e15"]) == 1


def test_scenarios_exercise_expected_fill_mix():
    gups = perf.scenario_gups(512)
    assert gups["fill_counts"]["main_memory"] > 0  # table >> aggregate L3
    shared = perf.scenario_shared_read(2)
    assert shared["fill_counts"]["local_chiplet"] > 0  # re-reads hit locally
    assert shared["cache"]["hit_rate"] > 0.3
