"""Telemetry must never perturb the simulation: the bit-identity contract.

Property test: the same workload run bare, with full telemetry, and with
null-mode telemetry produces *bit-identical* simulated state — virtual
wall time, per-worker clocks and fill counters, the machine counter
board, per-chiplet LRU contents (including recency order), the sharing
directory, and the memory-channel queue states.  Observation reads; it
never writes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.machine import milan, sapphire_rapids, small_test_machine
from repro.obs.telemetry import Telemetry
from repro.runtime.ops import AccessBatch, AccessRun, Compute, YieldPoint
from repro.runtime.policy import CharmStrategy
from repro.runtime.runtime import Runtime

MACHINES = [
    pytest.param(small_test_machine, 4, id="small_test_machine"),
    pytest.param(lambda: milan(scale=32), 8, id="milan32"),
    pytest.param(lambda: sapphire_rapids(scale=32), 8, id="sapphire_rapids32"),
]


def _task_body(region, ops):
    for op in ops:
        kind = op[0]
        if kind == "batch":
            yield AccessBatch(region, list(op[1]), write=op[2], nbytes=None)
        elif kind == "run":
            yield AccessRun(region, op[1], op[2], write=False, nbytes=None)
        elif kind == "compute":
            yield Compute(op[1])
        yield YieldPoint()
    return len(ops)


def _make_plan(rng: np.random.Generator, n_workers: int, region_blocks: int):
    """A mixed batch/run/compute workload, heavy enough that worker clocks
    cross several scheduler-timer intervals (so Alg. 1 actually fires)."""
    plan = []
    for _ in range(rng.integers(2, 2 * n_workers + 1)):
        ops = []
        for _ in range(rng.integers(2, 7)):
            k = rng.integers(0, 3)
            if k == 0:
                n = int(rng.integers(4, 65))
                blocks = rng.integers(0, region_blocks, size=n, dtype=np.int64)
                ops.append(("batch", blocks.tolist(), bool(rng.integers(0, 2))))
            elif k == 1:
                start = int(rng.integers(0, region_blocks // 2))
                count = int(rng.integers(4, region_blocks - start))
                ops.append(("run", start, count))
            else:
                ops.append(("compute", float(rng.integers(1_000, 40_000))))
        plan.append(ops)
    return plan


def _build(machine_fn, n_workers: int, plan, region_blocks: int) -> Runtime:
    machine = machine_fn()
    rt = Runtime(machine, n_workers, CharmStrategy(), seed=11)
    region = rt.alloc_shared(region_blocks * machine.block_bytes, name="obs-eq")
    for i, ops in enumerate(plan):
        rt.spawn(_task_body, region, ops, pin_worker=i % n_workers, name=f"t{i}")
    return rt


def _state(rt: Runtime, report) -> dict:
    m = rt.machine
    return {
        "wall_ns": report.wall_ns,
        "clocks": [w.clock for w in rt.workers],
        "cores": [w.core for w in rt.workers],
        "spread": [w.spread_rate for w in rt.workers],
        "migrations": [w.migrations for w in rt.workers],
        "worker_fills": [list(w.fills.v) for w in rt.workers],
        "counters": list(m.counters.totals()),
        "fill_totals": report.fill_totals,
        "steals": rt.total_steals,
        # LRU dicts preserve insertion (= recency) order, so item-list
        # equality pins the full replacement state, not just membership.
        "lru": [list(c._lru.items()) for c in m.caches.caches],
        "directory": {b: sorted(s) for b, s in m.caches.directory.items()},
        "channels": [
            [(s.free_at, s.busy_ns, s.requests) for s in socket]
            for socket in m.channels._servers
        ],
        "links": [(s.free_at, s.busy_ns) for s in m.links._servers],
    }


@pytest.mark.parametrize("machine_fn,n_workers", MACHINES)
@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=5, deadline=None)
def test_telemetry_is_bit_identical(machine_fn, n_workers, seed):
    region_blocks = 256
    plan = _make_plan(np.random.default_rng(seed), n_workers, region_blocks)

    bare = _build(machine_fn, n_workers, plan, region_blocks)
    bare_report = bare.run()
    bare_state = _state(bare, bare_report)

    full = _build(machine_fn, n_workers, plan, region_blocks)
    tel = Telemetry(full)
    full_report = full.run()
    tel.finish()
    assert _state(full, full_report) == bare_state

    null = _build(machine_fn, n_workers, plan, region_blocks)
    Telemetry.null(null)
    null_report = null.run()
    assert _state(null, null_report) == bare_state

    # Post-run structural invariant: every run leaves the sharing
    # directory and the per-slice SoA cache state mutually consistent.
    for rt in (bare, full, null):
        assert rt.machine.caches.check_directory_consistent()

    # The observed run actually observed something.
    assert sum(tel.bus.counts.values()) > 0
    assert tel.sampler.count >= 1


def test_full_telemetry_summary_matches_report(tiny):
    """The digest reports the same totals as the runtime's own report."""
    rng = np.random.default_rng(3)
    plan = _make_plan(rng, 4, 128)
    rt = _build(small_test_machine, 4, plan, 128)
    tel = Telemetry(rt)
    report = rt.run()
    summary = tel.summary()
    assert summary["mode"] == "full"
    # summary wall is the max worker clock (>= the report's loop wall)
    assert summary["wall_ns"] == max(w.clock for w in rt.workers)
    assert summary["wall_ns"] >= report.wall_ns
    assert summary["fills"] == report.fill_totals
    assert summary["migrations"] == sum(w.migrations for w in rt.workers)
