"""PMU-like fill counters."""

from repro.hw.counters import CounterBoard, FillCounters, FillSource


def test_remote_fills_excludes_local():
    c = FillCounters()
    c.record(FillSource.LOCAL_CHIPLET, 5)
    c.record(FillSource.REMOTE_CHIPLET, 2)
    c.record(FillSource.DRAM_LOCAL, 3)
    assert c.remote_fills() == 5
    assert c.dram_fills() == 3
    assert c.total() == 10


def test_snapshot_and_reset():
    c = FillCounters()
    c.record(FillSource.DRAM_REMOTE)
    snap = c.snapshot()
    assert snap[FillSource.DRAM_REMOTE] == 1
    c.reset()
    assert c.total() == 0
    assert snap[FillSource.DRAM_REMOTE] == 1  # snapshot is a copy


def test_board_aggregate_selected_cores():
    b = CounterBoard(4)
    b.record(0, FillSource.LOCAL_CHIPLET, 2)
    b.record(1, FillSource.REMOTE_NUMA_CHIPLET, 3)
    b.record(2, FillSource.DRAM_LOCAL, 1)
    all_snap = b.aggregate()
    assert all_snap.local_chiplet == 2
    assert all_snap.remote_numa_chiplet == 3
    assert all_snap.dram == 1
    partial = b.aggregate([0, 2])
    assert partial.remote_numa_chiplet == 0
    assert partial.dram == 1


def test_snapshot_row_keys():
    b = CounterBoard(1)
    row = b.aggregate().as_row()
    assert set(row) == {"local_chiplet", "remote_chiplet", "remote_numa_chiplet",
                        "main_memory"}


def test_board_reset():
    b = CounterBoard(2)
    b.record(1, FillSource.DRAM_LOCAL)
    b.reset()
    assert b.aggregate().dram == 0
