"""Unit tests for the repro.obs building blocks."""

import numpy as np
import pytest

from repro.obs.bus import EventBus
from repro.obs.decisions import DecisionLog, PolicyDecision
from repro.obs.selfprof import PATHS, KernelProfiler
from repro.obs.series import RingSeries
from repro.obs.telemetry import Telemetry
from repro.runtime.ops import Access, Compute, YieldPoint
from repro.runtime.policy import CharmStrategy
from repro.runtime.runtime import Runtime


# -- EventBus ------------------------------------------------------------------

def test_bus_null_sink_counts_nothing():
    bus = EventBus()
    bus.emit("hw.batch", {"t": 1.0})
    assert bus.counts == {}  # unsubscribed topics cost no bookkeeping


def test_bus_delivers_and_counts_subscribed_topics():
    bus = EventBus()
    seen = []
    bus.subscribe("a", lambda topic, fields: seen.append((topic, fields["x"])))
    bus.emit("a", {"x": 1})
    bus.emit("a", {"x": 2})
    bus.emit("b", {"x": 3})  # nobody listening
    assert seen == [("a", 1), ("a", 2)]
    assert bus.counts == {"a": 2}


# -- RingSeries ----------------------------------------------------------------

def test_ring_series_ordered_before_wrap():
    rs = RingSeries(["x", "y"], capacity=8)
    for i in range(5):
        rs.append(float(i), [i * 10.0, i * 100.0])
    assert len(rs) == 5
    assert rs.dropped() == 0
    assert list(rs.timestamps()) == [0.0, 1.0, 2.0, 3.0, 4.0]
    assert list(rs.column("y")) == [0.0, 100.0, 200.0, 300.0, 400.0]


def test_ring_series_wraparound_keeps_newest_in_order():
    rs = RingSeries(["x"], capacity=4)
    for i in range(10):
        rs.append(float(i), [float(i)])
    assert len(rs) == 4
    assert rs.dropped() == 6
    assert list(rs.timestamps()) == [6.0, 7.0, 8.0, 9.0]
    assert list(rs.column("x")) == [6.0, 7.0, 8.0, 9.0]
    t, v = rs.series()["x"]
    assert np.array_equal(t, rs.timestamps())
    assert np.array_equal(v, rs.column("x"))


# -- DecisionLog ---------------------------------------------------------------

def _decision(action="hold", core_before=0, core_after=0, worker=0):
    return PolicyDecision(
        time_ns=1.0, worker_id=worker, elapsed_ns=50_000.0, counter=3,
        rate=3.0, threshold=24.0, action=action,
        spread_before=1, spread_after=1,
        core_before=core_before, core_after=core_after,
    )


def test_decision_log_actions_and_migrations():
    log = DecisionLog()
    log.record(_decision("spread", core_before=0, core_after=8))
    log.record(_decision("hold"))
    log.record(_decision("compact", worker=1))
    assert len(log) == 3
    assert log.by_action() == {"spread": 1, "compact": 1, "hold": 1}
    assert log.migrations() == 1
    assert [d.action for d in log.for_worker(1)] == ["compact"]
    d = log.rows[0].as_dict()
    assert d["migrated"] is True
    assert d["threshold"] == 24.0


# -- KernelProfiler ------------------------------------------------------------

def test_kernel_profiler_report_shares():
    prof = KernelProfiler()
    prof.add("scalar", 10, 0.25)
    prof.add("vec_hit", 90, 0.75)
    rep = prof.report()
    assert set(rep) == {"scalar", "vec_hit"}  # zero-call paths omitted
    assert rep["scalar"]["share"] == pytest.approx(0.25)
    assert rep["vec_hit"]["accesses"] == 90
    assert prof.total_wall_s() == pytest.approx(1.0)
    assert all(p in PATHS for p in rep)


# -- Shims ---------------------------------------------------------------------

def test_runtime_trace_shim_is_obs_trace():
    import repro.obs.profiler
    import repro.obs.trace
    import repro.runtime.profiler
    import repro.runtime.trace

    assert repro.runtime.trace.Tracer is repro.obs.trace.Tracer
    assert repro.runtime.trace.TraceEvent is repro.obs.trace.TraceEvent
    assert repro.runtime.trace.EventKind is repro.obs.trace.EventKind
    assert repro.runtime.profiler.utilization is repro.obs.profiler.utilization
    assert repro.runtime.profiler.ProfileLog is repro.obs.profiler.ProfileLog


def test_obs_package_lazy_exports():
    import repro.obs as obs

    assert obs.Telemetry is Telemetry
    assert obs.RingSeries is RingSeries
    with pytest.raises(AttributeError):
        obs.nonexistent_name


# -- Integration-level wiring --------------------------------------------------

def _tiny_run(tiny, with_telemetry):
    rt = Runtime(tiny, 2, CharmStrategy(), seed=5)
    region = rt.alloc_shared(32 * tiny.block_bytes, name="u")

    def body():
        for b in range(8):
            yield Access(region, b)
            yield Compute(500.0)
            yield YieldPoint()
        return None

    rt.spawn(body, pin_worker=0, name="t0")
    rt.spawn(body, pin_worker=1, name="t1")
    tel = Telemetry(rt) if with_telemetry else None
    report = rt.run()
    return rt, tel, report


def test_trace_events_carry_chiplet_and_numa(tiny):
    rt, tel, _ = _tiny_run(tiny, with_telemetry=True)
    events = tel.tracer.events
    assert events
    topo = rt.machine.topo
    for ev in events:
        if ev.core >= 0:
            assert ev.chiplet == topo.chiplet_of_core_table[ev.core]
            assert ev.numa == topo.numa_of_core_table[ev.core]


def test_run_report_fill_totals_and_latency(tiny):
    _, _, report = _tiny_run(tiny, with_telemetry=False)
    assert sum(report.fill_totals.values()) > 0
    assert set(report.fill_totals) == set(report.fill_latency)
    for rec in report.fill_latency.values():
        assert set(rec) == {"fills", "latency_ns", "avg_ns"}
    filled = report.fill_totals["dram_local"]
    assert report.fill_latency["dram_local"]["fills"] == filled


def test_double_attach_rejected(tiny):
    rt = Runtime(tiny, 2, CharmStrategy(), seed=5)
    Telemetry(rt)
    with pytest.raises(RuntimeError):
        Telemetry(rt)


def test_unknown_mode_rejected(tiny):
    rt = Runtime(tiny, 2, CharmStrategy(), seed=5)
    with pytest.raises(ValueError):
        Telemetry(rt, mode="verbose")
