"""Keyed dataset cache: memoization, mutable-store isolation."""

import pytest

from repro.bench import datasets


@pytest.fixture(autouse=True)
def fresh_cache():
    datasets.clear()
    yield
    datasets.clear()


def test_immutable_datasets_are_memoized_by_key():
    g1 = datasets.graph(10, 16, seed=2)
    g2 = datasets.graph(10, 16, seed=2)
    assert g1 is g2
    assert datasets.stats() == {"entries": 1, "hits": 1, "builds": 1}
    g3 = datasets.graph(10, 16, seed=3)  # different key -> new build
    assert g3 is not g1
    assert datasets.stats()["builds"] == 2


def test_mutable_store_fetches_are_independent():
    s1 = datasets.ycsb_store(100)
    s2 = datasets.ycsb_store(100)
    assert s1 is not s2
    # mutating one fetch must not leak into the next
    s1.commit(s1.begin_ts(), {("u", 0): 999})
    s3 = datasets.ycsb_store(100)
    assert s3.read_at(("u", 0), s3.begin_ts()) == 0
    assert s3.commits == 0 and len(s3) == 100


def test_cloned_store_matches_fresh_load():
    from repro.workloads.oltp.ycsb import load_ycsb

    fresh = load_ycsb(50)
    clone = datasets.ycsb_store(50)
    assert len(clone) == len(fresh)
    assert clone.begin_ts() == fresh.begin_ts()
    for k in range(50):
        assert clone.read_at(("u", k), 0) == fresh.read_at(("u", k), 0)
    # timestamps continue identically after the clone
    assert clone.commit(clone.begin_ts(), {("u", 1): -1}) == \
        fresh.commit(fresh.begin_ts(), {("u", 1): -1})


def test_tpcc_fetch_clones_store_but_keeps_config():
    t1 = datasets.tpcc_tables(1)
    t2 = datasets.tpcc_tables(1)
    assert t1.store is not t2.store
    assert t1.n_warehouses == t2.n_warehouses == 1


def test_clear_resets_everything():
    datasets.graph(10, 16, seed=2)
    datasets.clear()
    assert datasets.stats() == {"entries": 0, "hits": 0, "builds": 0}
