"""Column-store engine edge cases."""

import numpy as np

from repro.hw.machine import milan
from repro.runtime.policy import CharmStrategy
from repro.workloads.olap import generate
from repro.workloads.olap.engine import execute_query


def _exec(body, workers=4, sf=0.2):
    data = generate(sf=sf, seed=42)
    return execute_query(milan(scale=64), CharmStrategy(), workers, data, body,
                         name="edge"), data


def test_empty_filter_result():
    def body(e):
        rows = yield from e.scan_filter("lineitem", lambda c: c["shipdate"] < -1,
                                        ["shipdate"])
        vals = yield from e.gather("lineitem", "quantity", rows)
        return float(vals.sum())

    res, _ = _exec(body)
    assert res.value == 0.0


def test_join_with_no_matches():
    def body(e):
        build = np.array([10**9], dtype=np.int64)
        probe = e.data.col("lineitem", "partkey")
        pi, bi = yield from e.hash_join(build, probe)
        return float(pi.size + bi.size)

    res, _ = _exec(body)
    assert res.value == 0.0


def test_join_first_match_semantics_on_duplicate_build():
    """With duplicate build keys each probe row matches exactly once."""
    def body(e):
        build = np.array([1, 1, 2], dtype=np.int64)
        probe = np.array([1, 2, 3], dtype=np.int64)
        pi, bi = yield from e.hash_join(build, probe)
        assert np.array_equal(pi, np.array([0, 1]))
        assert np.array_equal(build[bi], np.array([1, 2]))
        return float(pi.size)

    res, _ = _exec(body)
    assert res.value == 2.0


def test_aggregate_empty():
    def body(e):
        keys, sums = yield from e.aggregate(np.empty(0, np.int64), np.empty(0))
        return float(keys.size + sums.size)

    res, _ = _exec(body)
    assert res.value == 0.0


def test_gather_unsorted_rows():
    def body(e):
        rows = np.array([100, 3, 50, 3], dtype=np.int64)
        vals = yield from e.gather("lineitem", "quantity", rows)
        expect = e.data.col("lineitem", "quantity")[rows]
        assert np.array_equal(vals, expect)
        return float(vals.sum())

    res, data = _exec(body)
    assert res.value > 0


def test_morsel_rows_affects_task_count():
    def body(e):
        rows = yield from e.scan_filter("lineitem", lambda c: c["shipdate"] >= 0,
                                        ["shipdate"])
        return float(rows.size)

    data = generate(sf=0.2, seed=42)
    fine = execute_query(milan(scale=64), CharmStrategy(), 4, data, body,
                         name="fine", morsel_rows=512)
    coarse = execute_query(milan(scale=64), CharmStrategy(), 4, data, body,
                           name="coarse", morsel_rows=8192)
    assert fine.value == coarse.value
    assert fine.report.tasks_created > coarse.report.tasks_created
