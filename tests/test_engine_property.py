"""Property test: event-loop global time ordering under random actors."""

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Actor, EventLoop, StepOutcome


class RandomStepper(Actor):
    def __init__(self, actor_id, steps, log):
        super().__init__(actor_id)
        self.steps_left = list(steps)
        self.log = log

    def step(self, loop):
        self.log.append(self.clock)
        if not self.steps_left:
            return StepOutcome.FINISHED
        self.clock += self.steps_left.pop(0)
        return StepOutcome.RESCHEDULE


@given(st.lists(st.lists(st.floats(0.1, 1000.0), max_size=15), min_size=1, max_size=6))
@settings(max_examples=80, deadline=None)
def test_global_time_never_regresses(actor_steps):
    log = []
    loop = EventLoop()
    for i, steps in enumerate(actor_steps):
        loop.add(RandomStepper(i, steps, log))
    final = loop.run()
    assert log == sorted(log)
    assert final == max(log) if log else True
    assert loop.steps == sum(len(s) + 1 for s in actor_steps)
