"""Remaining coverage: co_barrier, SHOAL replication locality, task repr."""

import numpy as np

from repro.baselines import ShoalStrategy
from repro.hw.counters import FillSource
from repro.hw.machine import milan
from repro.runtime.api import Charm, co_barrier
from repro.runtime.ops import AccessBatch, Compute
from repro.runtime.runtime import Runtime
from repro.runtime.task import Task, TaskState


def test_co_barrier_helper():
    charm = Charm.init(machine=milan(scale=64), workers=3, seed=5)
    bar = charm.barrier()
    log = []

    def body(wid):
        yield Compute(10.0 * (wid + 1))
        yield from co_barrier(bar)
        log.append(wid)
        return wid

    charm.all_do(body)
    charm.run()
    assert sorted(log) == [0, 1, 2]
    assert bar.releases == 1


def test_shoal_replicated_reads_stay_node_local():
    """Read-only arrays replicate per node: no cross-socket DRAM fills."""
    machine = milan(scale=64)
    rt = Runtime(machine, 4, ShoalStrategy(), seed=1)
    ro = rt.alloc_shared(1 << 20, read_only=True, name="array")

    def body(wid):
        yield AccessBatch(ro, list(range(wid * 16, wid * 16 + 16)))
        return wid

    for w in range(4):
        rt.spawn(body, w, pin_worker=w)
    rt.run()
    for w in rt.workers:
        assert w.fills.counts[FillSource.DRAM_REMOTE] == 0
        assert w.fills.counts[FillSource.REMOTE_NUMA_CHIPLET] == 0


def test_task_lifecycle_and_repr():
    def body():
        yield Compute(1.0)
        return "v"

    t = Task(body, name="demo")
    assert t.state is TaskState.CREATED
    assert "demo" in repr(t)
    gen = t.ensure_started()
    assert gen is t.ensure_started()  # idempotent
    t.finish("v", 10.0)
    assert t.state is TaskState.DONE and t.result == "v" and t.finished_at == 10.0
    t2 = Task(body)
    t2.fail(RuntimeError("x"), 5.0)
    assert t2.state is TaskState.FAILED and isinstance(t2.error, RuntimeError)


def test_completion_future_for_already_done_task():
    machine = milan(scale=64)
    rt = Runtime(machine, 1, ShoalStrategy(), seed=1)

    def body():
        yield Compute(1.0)
        return 7

    t = rt.spawn(body, pin_worker=0)
    rt.run()
    fut = rt.completion_future(t)  # requested only after completion
    assert fut.done and fut.value == 7
