"""SQLite result store: round-trip, LRU bound, gc, migration, recovery,
and multi-process contention (the advisor service shares one store
between server workers and batch sweeps)."""

import json
import multiprocessing
import threading
import time

from repro.bench.store import ResultStore


def _put(store, key, result, version="v1", **kw):
    store.put(key, cell_id=f"cell-{key}", experiment=kw.pop("experiment", "e"),
              code_version=version, result=result, **kw)


def test_round_trip_and_hit_counter(tmp_path):
    store = ResultStore.open(tmp_path)
    _put(store, "k1", {"metric": 0.1 + 0.2, "xs": [1, 2.5]})
    hit, result = store.get("k1")
    assert hit
    assert result == {"metric": 0.30000000000000004, "xs": [1, 2.5]}
    assert not store.get("missing")[0]
    store.get("k1")
    assert store.stats()["hits_total"] == 2


def test_put_is_replace(tmp_path):
    store = ResultStore.open(tmp_path)
    _put(store, "k1", {"v": 1})
    _put(store, "k1", {"v": 2})
    assert store.count() == 1
    assert store.get("k1")[1] == {"v": 2}


def test_lru_eviction_keeps_recently_used(tmp_path):
    # ~60-byte payloads, bound that fits only a handful
    store = ResultStore.open(tmp_path, max_bytes=300)
    for i in range(10):
        _put(store, f"k{i}", {"pad": "x" * 40, "i": i})
    store.get("k0")  # refresh k0's LRU clock
    time.sleep(0.01)
    evicted = store.evict_lru()
    assert evicted > 0
    assert store.count() < 10
    assert store.get("k0")[0]  # recently used survives
    total = store.conn.execute(
        "SELECT SUM(nbytes) FROM results").fetchone()[0]
    assert total <= 300


def test_gc_removes_stale_code_versions(tmp_path):
    store = ResultStore.open(tmp_path)
    _put(store, "old", {"v": 1}, version="v1")
    _put(store, "new", {"v": 2}, version="v2")
    out = store.gc(current_version="v2")
    assert out["stale_removed"] == 1
    assert out["remaining"] == 1
    assert store.get("new")[0] and not store.get("old")[0]


def test_gc_older_than_filter(tmp_path):
    store = ResultStore.open(tmp_path)
    _put(store, "stale-recent", {"v": 1}, version="v1")
    _put(store, "live-old", {"v": 2}, version="v2")
    # age only "live-old" beyond the cutoff
    store.conn.execute(
        "UPDATE results SET last_used = last_used - 3600 WHERE key = 'live-old'")
    store.conn.commit()
    out = store.gc(current_version="v2", older_than_s=1800)
    # recent stale entry survives the age filter; old live entry trimmed
    assert out["stale_removed"] == 0 and out["aged_removed"] == 1
    assert store.get("stale-recent")[0] and not store.get("live-old")[0]


def test_stats_shape(tmp_path):
    store = ResultStore.open(tmp_path)
    _put(store, "a", {"v": 1}, experiment="fig04")
    _put(store, "b", {"v": 2}, experiment="dse", version="v9")
    stats = store.stats(current_version="v1")
    assert stats["entries"] == 2
    assert stats["stale_entries"] == 1
    assert stats["by_experiment"] == {"dse": 1, "fig04": 1}
    assert stats["bytes"] > 0 and stats["file_bytes"] > 0


def test_calibration_samples(tmp_path):
    store = ResultStore.open(tmp_path)
    _put(store, "a", {"v": 1}, wall_s=0.5, work_units=100.0)
    _put(store, "b", {"v": 2}, wall_s=None, work_units=None)  # excluded
    samples = store.calibration_samples()
    assert samples == [("e", 100.0, 0.5)]


def test_corrupt_db_recreated_on_open(tmp_path):
    (tmp_path / "store.sqlite").write_text("garbage, not a database")
    store = ResultStore.open(tmp_path)
    assert store.count() == 0
    _put(store, "k", {"v": 1})
    assert store.get("k")[0]


def _contend(path, worker, n_keys, barrier):
    """One writer/reader process: put private + shared keys, read back."""
    store = ResultStore.open(path)
    barrier.wait(timeout=60)  # maximize overlap
    for i in range(n_keys):
        store.put(f"w{worker}-k{i}", cell_id=f"c{worker}-{i}",
                  experiment="contend", code_version="v1",
                  result={"worker": worker, "i": i, "pad": "x" * 64})
        # every process hammers the same shared keys too
        store.put(f"shared-k{i % 5}", cell_id=f"s{i % 5}",
                  experiment="contend", code_version="v1",
                  result={"shared": i % 5})
    for i in range(n_keys):
        hit, result = store.get(f"w{worker}-k{i}")
        if not hit or result["worker"] != worker or result["i"] != i:
            raise SystemExit(3)  # lost or corrupt read
    raise SystemExit(0)


def test_concurrent_processes_no_lost_puts_or_corrupt_reads(tmp_path):
    # WAL + busy-timeout: 4 processes write and read one store file at
    # once; every put must land and every read must parse
    n_procs, n_keys = 4, 20
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    barrier = ctx.Barrier(n_procs)
    procs = [ctx.Process(target=_contend,
                         args=(tmp_path, w, n_keys, barrier))
             for w in range(n_procs)]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
    assert [p.exitcode for p in procs] == [0] * n_procs
    store = ResultStore.open(tmp_path)
    assert store.count() == n_procs * n_keys + 5
    for w in range(n_procs):
        for i in range(n_keys):
            hit, result = store.get(f"w{w}-k{i}")
            assert hit and result == {"worker": w, "i": i, "pad": "x" * 64}
    for s in range(5):
        hit, result = store.get(f"shared-k{s}")
        assert hit and result == {"shared": s}


def test_concurrent_threads_share_one_store(tmp_path):
    # the server's store-io executor uses the store from several threads;
    # the internal lock must serialize transactions without losing puts
    store = ResultStore.open(tmp_path)
    errors = []

    def hammer(worker):
        try:
            for i in range(30):
                store.put(f"t{worker}-k{i}", cell_id=f"c{worker}-{i}",
                          experiment="threads", code_version="v1",
                          result={"w": worker, "i": i})
                hit, result = store.get(f"t{worker}-k{i}")
                assert hit and result == {"w": worker, "i": i}
        except BaseException as exc:  # surfaced in the main thread
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(w,)) for w in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    assert store.count() == 4 * 30


def test_wal_journal_mode_reported(tmp_path):
    store = ResultStore.open(tmp_path)
    # WAL everywhere a real filesystem backs the store; stats surfaces
    # whatever mode the open negotiated so ops can see a fallback
    assert store.stats()["journal_mode"] == store.journal_mode
    assert store.journal_mode in ("wal", "delete", "truncate", "memory")


def test_migration_imports_and_removes_legacy_files(tmp_path):
    legacy = {"cell_id": "e/c8/s7", "cell": {"experiment": "fig04"},
              "code_version": "v1", "result": {"metric": 3.5}}
    (tmp_path / "abc123.json").write_text(json.dumps(legacy))
    (tmp_path / "broken.json").write_text("{nope")
    store = ResultStore.open(tmp_path)
    assert store.migrated == 1
    hit, result = store.get("abc123")
    assert hit and result == {"metric": 3.5}
    assert not (tmp_path / "abc123.json").exists()
    assert (tmp_path / "broken.json").exists()  # left for inspection
    # reopening doesn't double-import
    store2 = ResultStore.open(tmp_path)
    assert store2.count() == 1
