"""Local task queues and steal ordering."""

from repro.hw.topology import milan_topology
from repro.runtime.queues import LocalQueue, flat_steal_order, hierarchical_steal_order
from repro.runtime.task import Task
from repro.sim.rng import stream_rng


def _task(pinned=False):
    def body():
        yield None

    return Task(body, pinned=pinned)


def test_owner_pops_fifo():
    q = LocalQueue()
    a, b = _task(), _task()
    q.push(a)
    q.push(b)
    assert q.pop_local() is a
    assert q.pop_local() is b
    assert q.pop_local() is None


def test_thief_steals_newest_unpinned():
    q = LocalQueue()
    a, b = _task(), _task()
    q.push(a)
    q.push(b)
    assert q.steal() is b


def test_pinned_tasks_not_stealable():
    q = LocalQueue()
    p1, u, p2 = _task(pinned=True), _task(), _task(pinned=True)
    q.push(p1)
    q.push(u)
    q.push(p2)
    assert q.steal() is u  # skips the pinned tail
    assert q.steal() is None
    assert len(q) == 2


def test_remove():
    q = LocalQueue()
    a = _task()
    q.push(a)
    assert q.remove(a)
    assert not q.remove(a)


def test_hierarchical_order_tiers():
    topo = milan_topology()
    # workers on cores 0..15 (chiplets 0,1) plus one on socket 1.
    cores = list(range(16)) + [64]
    rng = stream_rng(1, "steal")
    order = hierarchical_steal_order(topo, my_core=0, worker_cores=cores, rng=rng)
    # First tier: same chiplet (cores 1..7 -> worker ids 1..7).
    assert set(order[:7]) == set(range(1, 8))
    # Last: the cross-socket worker.
    assert order[-1] == 16


def test_flat_order_complete():
    rng = stream_rng(1, "steal")
    order = flat_steal_order(3, 8, rng)
    assert sorted(order) == [0, 1, 2, 4, 5, 6, 7]
