"""Latency model: hierarchy, determinism, CDF shape."""

import pytest

from repro.hw.latency import MILAN_LATENCY, SPR_LATENCY, LatencyModel
from repro.hw.topology import milan_topology, sapphire_rapids_topology


def test_hierarchy_ordering():
    topo = milan_topology()
    lat = MILAN_LATENCY
    same_chiplet = lat.core_to_core_ns(topo, 0, 1)
    same_socket = lat.core_to_core_ns(topo, 0, 8)
    cross = lat.core_to_core_ns(topo, 0, 64)
    assert same_chiplet < same_socket < cross


def test_same_core_zero():
    topo = milan_topology()
    assert MILAN_LATENCY.core_to_core_ns(topo, 5, 5) == 0.0


def test_deterministic():
    topo = milan_topology()
    a = MILAN_LATENCY.core_to_core_ns(topo, 3, 77)
    b = MILAN_LATENCY.core_to_core_ns(topo, 3, 77)
    assert a == b


def test_near_far_groups_within_socket():
    """The within-NUMA band has two sub-groups (Fig. 3's middle steps)."""
    topo = milan_topology()
    lat = MILAN_LATENCY
    near = lat.core_to_core_ns(topo, 0, 8)    # chiplet 0 -> 1 (same half)
    far = lat.core_to_core_ns(topo, 0, 56)    # chiplet 0 -> 7 (other half)
    assert far > near + 30


def test_cdf_sorted_and_sized():
    topo = milan_topology()
    cdf = MILAN_LATENCY.latency_cdf(topo)
    assert cdf == sorted(cdf)
    assert len(cdf) == len(topo.core_pairs())


def test_spr_intra_socket_cheaper_than_milan():
    """Sapphire Rapids' mesh beats Infinity Fabric within a socket."""
    mt, st = milan_topology(), sapphire_rapids_topology()
    milan_cross_chiplet = MILAN_LATENCY.core_to_core_ns(mt, 0, mt.cores_per_chiplet)
    spr_cross_tile = SPR_LATENCY.core_to_core_ns(st, 0, st.cores_per_chiplet)
    assert spr_cross_tile < milan_cross_chiplet


def test_fill_latency_by_distance():
    from repro.hw.topology import Distance

    lat = MILAN_LATENCY
    assert lat.fill_latency(Distance.SAME_CHIPLET) == lat.l3_hit
    assert lat.fill_latency(Distance.SAME_SOCKET) == lat.fill_same_socket
    assert lat.fill_latency(Distance.CROSS_SOCKET) == lat.fill_cross_socket
    assert lat.l3_hit < lat.fill_same_socket < lat.fill_cross_socket
