"""End-to-end tests of the serve stack's wall-clock observability.

A real :class:`~repro.serve.app.ServerThread` (sockets, pool, store
off for speed) answers requests while the tests assert the tentpole's
acceptance criteria: ``/metrics`` parses as Prometheus exposition with
nonzero tier counters, a forced-sample ``/advise`` yields a Chrome
trace whose spans form a well-formed tree covering ≥95% of the request
wall time, ``/debug/flight`` captures induced errors and slow
requests, and ``/stats`` labels both latency views.
"""

import asyncio

import pytest

from repro.obs.export import merge_serve_events
from repro.serve.app import ServerThread
from repro.serve.client import AdvisorClient

from tests.test_wallclock_obs import parse_exposition

QUERY = {
    "workload": "gups",
    "policy": "charm",
    "geometry": {"cps": 2, "cpc": 4, "l3_mib": 4, "channels": 4},
    "params": {"table_bytes": 1 << 20, "updates_per_worker": 64},
}


@pytest.fixture(scope="module")
def server():
    with ServerThread(jobs=1, use_store=False, batch_window_s=0.001) as srv:
        yield srv


def _run(server, coro_fn):
    async def body():
        client = AdvisorClient(server.host, server.port)
        try:
            return await coro_fn(client)
        finally:
            await client.close()

    return asyncio.run(body())


def test_metrics_exposition_parses_with_nonzero_tiers(server):
    async def go(client):
        for _ in range(3):  # first computes, repeats hit the hot tier
            status, doc = await client.post("/advise", QUERY)
            assert status == 200, doc
        status, text = await client.get("/metrics")
        assert status == 200
        return text

    text = _run(server, go)
    assert isinstance(text, str), "exposition must be text/plain, not JSON"
    samples = parse_exposition(text)
    assert samples[("repro_serve_requests_total", "")] >= 3
    tiers = {label: value for (name, label), value in samples.items()
             if name == "repro_serve_cells_total"}
    assert sum(tiers.values()) >= 3, tiers
    assert tiers['{tier="hot"}'] >= 1, "repeat queries must hit the hot tier"
    # request histogram present, cumulative, closed by +Inf == _count
    count = samples[("repro_serve_request_seconds_count", "")]
    assert count >= 3
    inf_bucket = samples[("repro_serve_request_seconds_bucket", '{le="+Inf"}')]
    assert inf_bucket == count
    assert samples[("repro_process_resident_bytes", "")] > 1 << 20


def test_forced_trace_spans_cover_request(server):
    async def go(client):
        fresh = dict(QUERY, params={"table_bytes": 1 << 20,
                                    "updates_per_worker": 96})
        status, doc = await client.post("/advise", fresh,
                                        headers={"X-Repro-Trace": "1"})
        assert status == 200, doc
        assert "trace_id" in doc
        status, trace_doc = await client.get("/debug/trace")
        assert status == 200
        return doc["trace_id"], trace_doc

    trace_id, trace_doc = _run(server, go)
    events = [e for e in trace_doc["traceEvents"]
              if e["ph"] == "X" and e["args"].get("trace_id") == trace_id]
    assert events, "forced sample must appear in /debug/trace"

    # span tree well-formedness: every parent exists, root covers children
    by_sid = {e["args"]["span_id"]: e for e in events}
    root = by_sid[0]
    assert root["name"] == "request"
    r0, r1 = root["ts"], root["ts"] + root["dur"]
    for e in events:
        if e["args"]["span_id"] == 0:
            continue
        assert e["args"]["parent_id"] in by_sid, e
        assert e["ts"] >= r0 - 1e-6

    # a computed-tier request must walk the full taxonomy
    names = {e["name"] for e in events}
    assert {"request", "parse", "normalize", "answer_cells", "hot_probe",
            "batch_window", "pool_execute", "respond"} <= names, names

    # children cover >= 95% of the request root's wall time
    children = sorted((max(e["ts"], r0), min(e["ts"] + e["dur"], r1))
                      for e in events
                      if e["args"]["span_id"] != 0
                      and e["args"]["parent_id"] in (0, 1, 2, 3, 4))
    covered, cursor = 0.0, r0
    for a, b in children:
        if b <= cursor:
            continue
        covered += b - max(a, cursor)
        cursor = b
    assert covered >= 0.95 * root["dur"], \
        f"spans cover {100 * covered / root['dur']:.1f}% of the request"


def test_trace_events_load_by_sim_schema(server):
    """The serve exporter's events satisfy the same invariants the
    existing sim trace-schema tests assert, and merge into a sim event
    list in a disjoint pid block."""
    async def go(client):
        await client.post("/advise", QUERY, headers={"X-Repro-Trace": "1"})
        _, doc = await client.get("/debug/trace")
        return doc

    doc = _run(server, go)
    events = doc["traceEvents"]
    assert events
    for e in events:
        assert e.get("name") and e.get("ph")
        assert e["ph"] in ("X", "i", "C", "s", "f", "M")
        if e["ph"] == "X":
            assert e["ts"] >= 0 and e["dur"] >= 0

    sim_events = [{"name": "task", "ph": "X", "ts": 0.0, "dur": 5.0,
                   "pid": 0, "tid": 0, "args": {}}]
    merged = list(sim_events)
    added = merge_serve_events(merged, doc)
    assert added == len(events)
    serve_pids = {e["pid"] for e in merged[1:]}
    assert 0 not in serve_pids, "serve lanes must not collide with sim pids"


def test_flight_recorder_captures_induced_400(server):
    async def go(client):
        status, doc = await client.post("/advise", {"workload": "no-such"})
        assert status == 400
        _, flight = await client.get("/debug/flight")
        return flight

    flight = _run(server, go)
    errors = [e for e in flight["events"] if e["kind"] == "request_error"]
    assert errors, flight
    assert errors[-1]["status"] == 400
    assert "no-such" in errors[-1]["detail"]


def test_flight_recorder_slow_threshold():
    with ServerThread(jobs=1, use_store=False, batch_window_s=0.001,
                      slow_threshold_s=0.0) as srv:
        async def go(client):
            status, _ = await client.post("/advise", QUERY)
            assert status == 200
            _, flight = await client.get("/debug/flight")
            return flight

        flight = _run(srv, go)
    slow = [e for e in flight["events"] if e["kind"] == "slow_request"]
    assert slow, "threshold 0 makes every request slow"
    assert slow[-1]["latency_ms"] >= 0


def test_stats_has_labeled_reservoir_and_windowed_views(server):
    async def go(client):
        await client.post("/advise", QUERY)
        _, stats = await client.get("/stats")
        _, health = await client.get("/healthz")
        return stats, health

    stats, health = _run(server, go)
    assert stats["latency_ms"]["window"] == "last_4096_requests"
    assert {"p50", "p99", "count"} <= set(stats["latency_ms"])
    windowed = stats["latency_windowed_ms"]
    assert set(windowed) == {"1m", "5m", "1h"}
    assert windowed["1m"]["count"] >= 1
    assert windowed["1m"]["p50"] >= 0.0
    slo = stats["slo"]
    assert slo["degraded"] is False
    assert set(slo["burn_rates"]) == {"1m", "5m", "1h"}
    assert health["status"] == "ok"
    assert health["slo"]["degraded"] is False


def test_no_obs_server_disables_surfaces():
    with ServerThread(jobs=1, use_store=False, batch_window_s=0.001,
                      observability=False) as srv:
        async def go(client):
            status, doc = await client.post(
                "/advise", QUERY, headers={"X-Repro-Trace": "1"})
            assert status == 200
            assert "trace_id" not in doc
            results = {}
            for path in ("/metrics", "/debug/flight", "/debug/trace"):
                results[path], _ = await client.get(path)
            _, stats = await client.get("/stats")
            _, health = await client.get("/healthz")
            return results, stats, health

        results, stats, health = _run(srv, go)
    assert all(status == 404 for status in results.values()), results
    assert "slo" not in stats
    assert "slo" not in health
    assert health["status"] == "ok"


def test_loadgen_trace_sample_and_slo_report():
    from repro.bench.loadgen import run_load

    with ServerThread(jobs=1, use_store=False, batch_window_s=0.001) as srv:
        async def go():
            return await run_load(srv.url, requests=12, concurrency=4,
                                  dup_ratio=0.5, trace_sample=0.5,
                                  slo_ms=60_000.0)

        report = asyncio.run(go())
    assert report["errors"] == 0
    assert report["traced_requests"] >= 1
    assert report["slo"]["slo_ms"] == 60_000.0
    assert report["slo"]["violations"] == 0
    assert report["slo"]["server"] is not None
    assert report["healthz_ok"]
