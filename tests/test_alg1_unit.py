"""Alg. 1 (ChipletScheduling) state-machine unit tests."""

from repro.hw.counters import FillSource
from repro.hw.machine import milan
from repro.runtime.policy import CharmPolicyConfig, CharmStrategy
from repro.runtime.runtime import Runtime


def _worker(threshold=24.0, timer=1000.0):
    cfg = CharmPolicyConfig(scheduler_timer_ns=timer, rmt_chip_access_rate=threshold)
    strategy = CharmStrategy(cfg)
    rt = Runtime(milan(scale=64), 8, strategy, seed=1)
    return rt, strategy, rt.workers[0]


def _tick(rt, strategy, worker, elapsed, remote_fills):
    worker.clock += elapsed
    worker.fills.record(FillSource.DRAM_LOCAL, remote_fills)
    strategy.on_tick(worker, rt)


def test_high_rate_spreads():
    rt, s, w = _worker()
    assert w.spread_rate == 1
    _tick(rt, s, w, elapsed=1000.0, remote_fills=100)
    assert w.spread_rate == 2
    _tick(rt, s, w, elapsed=1000.0, remote_fills=100)
    assert w.spread_rate == 3


def test_low_rate_compacts_with_hysteresis():
    rt, s, w = _worker(threshold=24.0)
    w.spread_rate = 4
    # Rate just below threshold but above the hysteresis floor: hold.
    _tick(rt, s, w, elapsed=1000.0, remote_fills=20)
    assert w.spread_rate == 4
    # Rate far below threshold: compact.
    _tick(rt, s, w, elapsed=1000.0, remote_fills=1)
    assert w.spread_rate == 3


def test_timer_gates_decisions():
    rt, s, w = _worker(timer=10_000.0)
    _tick(rt, s, w, elapsed=500.0, remote_fills=1000)  # too soon
    assert w.spread_rate == 1


def test_spread_capped_at_chiplets():
    rt, s, w = _worker()
    w.spread_rate = 8
    _tick(rt, s, w, elapsed=1000.0, remote_fills=1000)
    assert w.spread_rate == 8  # chiplets_per_socket on Milan


def test_compact_floor_at_min_spread():
    rt, s, w = _worker()
    _tick(rt, s, w, elapsed=1000.0, remote_fills=0)
    assert w.spread_rate == 1


def test_counter_marks_reset_each_interval():
    rt, s, w = _worker()
    _tick(rt, s, w, elapsed=1000.0, remote_fills=100)
    before = w.spread_rate
    # No new fills in the next interval: the old 100 must not count again.
    _tick(rt, s, w, elapsed=1000.0, remote_fills=0)
    assert w.spread_rate == before - 1
