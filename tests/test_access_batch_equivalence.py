"""Fast-path equivalence: ``Machine.access_batch`` vs per-access servicing.

The batched fast path must be a pure optimisation: for any sequence of
batches it has to produce bit-identical virtual times, fill-counter
totals, cache/directory state, and hit/miss statistics as the equivalent
sequence of :meth:`Machine.access` calls run through the original MLP
overlap rule (the pre-batching ``Worker._do_batch`` loop, reproduced here
as :func:`replay_per_access`).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.hw.counters import N_SOURCES, SOURCE_INDEX
from repro.hw.machine import Machine, milan, sapphire_rapids, small_test_machine
from repro.hw.memory import MemPolicy


def replay_per_access(machine: Machine, core, region, blocks, now, nbytes,
                      write, per_issue, mlp):
    """The original per-access batch loop (pre-fast-path Worker._do_batch)."""
    t = now
    finish = now
    counts = [0] * N_SOURCES
    for block in blocks:
        res = machine.access(core, region, block, now=t, nbytes=nbytes, write=write)
        completion = t + res.ns
        if completion > finish:
            finish = completion
        step = res.latency_ns / mlp
        t += step if step > per_issue else per_issue
        counts[SOURCE_INDEX[res.source]] += 1
    end = t if t > finish else finish
    return end, finish, counts


MACHINES = {
    "small_test_machine": small_test_machine,
    "milan32": lambda: milan(scale=32),
    "sapphire_rapids32": lambda: sapphire_rapids(scale=32),
}


@pytest.mark.parametrize("mk", MACHINES.values(), ids=MACHINES.keys())
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture,
                                 HealthCheck.too_slow])
@given(data=st.data())
def test_access_batch_equivalent_to_access_sequence(mk, data):
    m_batch = mk()
    m_seq = mk()
    policy = data.draw(st.sampled_from([MemPolicy.BIND, MemPolicy.INTERLEAVE]))
    size = 50 * m_batch.block_bytes
    r_batch = m_batch.alloc_region(size, node=0, policy=policy, name="eq")
    r_seq = m_seq.alloc_region(size, node=0, policy=policy, name="eq")
    n_blocks = r_batch.n_blocks
    total_cores = m_batch.topo.total_cores

    now = 0.0
    for _ in range(data.draw(st.integers(1, 4))):
        core = data.draw(st.integers(0, total_cores - 1))
        blocks = data.draw(
            st.lists(st.integers(0, n_blocks - 1), min_size=0, max_size=40)
        )
        write = data.draw(st.booleans())
        nbytes = data.draw(st.sampled_from([None, 64]))
        mlp = data.draw(st.sampled_from([1.0, 10.0]))
        per_issue = data.draw(st.sampled_from([0.0, 4.0]))

        res = m_batch.access_batch(
            core, r_batch, blocks, now=now, nbytes=nbytes, write=write,
            per_issue_ns=per_issue, mlp=mlp,
        )
        end, finish, counts = replay_per_access(
            m_seq, core, r_seq, blocks, now, nbytes, write, per_issue, mlp
        )

        assert res.ns == end - now          # bit-identical virtual time
        assert res.finish == finish
        assert res.fill_counts == counts
        assert res.accesses == len(blocks)
        now = end

    # Machine state must be identical afterwards: counters, directory,
    # per-slice LRU contents *and order*, and hit/miss/eviction stats.
    assert m_batch.total_accesses == m_seq.total_accesses
    for c in range(total_cores):
        assert m_batch.counters.core(c).v == m_seq.counters.core(c).v
    assert m_batch.caches.directory == m_seq.caches.directory
    for ca, cb in zip(m_batch.caches.caches, m_seq.caches.caches):
        assert list(ca._lru.items()) == list(cb._lru.items())
        assert (ca.hits, ca.misses, ca.evictions, ca.used_bytes) == \
            (cb.hits, cb.misses, cb.evictions, cb.used_bytes)
    assert m_batch.caches.check_directory_consistent()


def test_access_batch_rejects_out_of_range_block(tiny):
    r = tiny.alloc_region(1024, node=0)
    with pytest.raises(ValueError, match="outside region"):
        tiny.access_batch(0, r, [0, r.n_blocks], now=0.0)


def test_access_batch_empty_is_noop(tiny):
    r = tiny.alloc_region(1024, node=0)
    res = tiny.access_batch(0, r, [], now=100.0)
    assert res.ns == 0.0
    assert res.finish == 100.0
    assert res.fill_counts == [0] * N_SOURCES
    assert tiny.total_accesses == 0
