"""Adaptive controller and profiler utilities."""

from repro.hw.machine import milan
from repro.runtime.controller import AdaptiveController, Approach, ControllerMetrics
from repro.runtime.ops import AccessBatch, Compute, YieldPoint
from repro.runtime.profiler import ProfileLog, fill_breakdown, sample_workers, utilization
from repro.runtime.policy import StaticSpreadStrategy
from repro.runtime.runtime import Runtime


def test_approach_thresholds_ordered():
    loc = AdaptiveController(Approach.LOCATION_CENTRIC).policy_config()
    ada = AdaptiveController(Approach.ADAPTIVE).policy_config()
    cache = AdaptiveController(Approach.CACHE_CENTRIC).policy_config()
    assert loc.rmt_chip_access_rate > ada.rmt_chip_access_rate > cache.rmt_chip_access_rate


def test_threshold_override():
    cfg = AdaptiveController(threshold_override=99.0).policy_config()
    assert cfg.rmt_chip_access_rate == 99.0


def test_make_strategy():
    s = AdaptiveController(Approach.ADAPTIVE).make_strategy()
    assert s.name == "charm"


def test_refine_switches_approach():
    c = AdaptiveController()
    assert c.refine(ControllerMetrics(dram_fill_rate=100, remote_fill_rate=1)).approach \
        is Approach.CACHE_CENTRIC
    assert c.refine(ControllerMetrics(dram_fill_rate=1, remote_fill_rate=100)).approach \
        is Approach.LOCATION_CENTRIC
    assert c.refine(ControllerMetrics(dram_fill_rate=10, remote_fill_rate=10)).approach \
        is Approach.ADAPTIVE


def _run():
    rt = Runtime(milan(scale=64), 4, StaticSpreadStrategy(2), seed=3)
    region = rt.alloc(1 << 20, node=0)

    def body(wid):
        yield AccessBatch(region, list(range(wid * 8, wid * 8 + 8)))
        yield YieldPoint()
        yield Compute(100.0)
        return wid

    for w in range(4):
        rt.spawn(body, w, pin_worker=w)
    report = rt.run()
    return rt, report


def test_sample_workers_and_log():
    rt, _ = _run()
    samples = sample_workers(rt)
    assert len(samples) == 4
    assert all(s.remote_fills >= 0 for s in samples)
    log = ProfileLog()
    log.record(rt)
    assert len(log.last_by_worker()) == 4
    assert log.spread_of(0)


def test_utilization_bounds():
    _, report = _run()
    u = utilization(report)
    assert len(u) == 4
    assert all(0 <= x <= 1 for x in u)


def test_fill_breakdown_keys():
    _, report = _run()
    row = fill_breakdown(report)
    assert set(row) == {"local_chiplet", "remote_chiplet", "remote_numa_chiplet", "main_memory"}
