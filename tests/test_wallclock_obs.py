"""Unit tests for the wall-clock observability primitives.

Covers the satellite checklist directly: the Prometheus exposition
format (every line parses, histogram buckets cumulative and
sum-consistent), span-tree well-formedness, flight-recorder ring
eviction order, plus sliding-window/SLO math under a fake clock.
"""

import math
import re

import pytest

from repro.obs.wallclock import (
    LATENCY_BUCKETS_S,
    Counter,
    FlightRecorder,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_TRACE,
    RequestTrace,
    SLOConfig,
    SLOMonitor,
    SlidingWindows,
    WallClockTracer,
    bucket_quantile,
    process_stats,
    serve_chrome_events,
)

# one exposition sample line: name, optional {labels}, numeric value
_LABEL = r"[a-zA-Z_][a-zA-Z0-9_]*=\"(?:\\.|[^\"\\])*\""
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{" + _LABEL + r"(?:," + _LABEL + r")*\})?"
    r" (?P<value>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|[+-]Inf|NaN)$")


def parse_exposition(text):
    """Parse a Prometheus text page; raises on any malformed line.

    Returns ``{(name, labels_str): float}`` over all sample lines.
    """
    samples = {}
    assert text.endswith("\n"), "exposition must end with a newline"
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        m = _SAMPLE_RE.match(line)
        assert m, f"malformed exposition line: {line!r}"
        raw = m.group("value")
        value = {"+Inf": math.inf, "-Inf": -math.inf,
                 "NaN": math.nan}.get(raw)
        samples[(m.group("name"), m.group("labels") or "")] = (
            float(raw) if value is None else value)
    return samples


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


# -- registry / exposition format ------------------------------------------------


class TestRegistry:
    def test_every_line_parses(self):
        reg = MetricsRegistry()
        c = reg.counter("demo_total", "a counter")
        g = reg.gauge("demo_gauge", "a gauge")
        h = reg.histogram("demo_seconds", "a histogram")
        tiers = reg.counter("demo_cells_total", "labelled", label="tier",
                            fn=lambda: {"hot": 3.0, "store": 1.0})
        assert tiers is not None
        c.inc(5)
        g.set(2.5)
        h.observe(0.003)
        h.observe(0.3)
        samples = parse_exposition(reg.expose())
        assert samples[("demo_total", "")] == 5.0
        assert samples[("demo_gauge", "")] == 2.5
        assert samples[("demo_cells_total", '{tier="hot"}')] == 3.0

    def test_help_and_type_lines_present(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "about x")
        text = reg.expose()
        assert "# HELP x_total about x" in text
        assert "# TYPE x_total counter" in text

    def test_histogram_buckets_cumulative_and_sum_consistent(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "latencies")
        values = [0.0004, 0.002, 0.002, 0.03, 0.4, 7.0, 100.0]
        for v in values:
            h.observe(v)
        samples = parse_exposition(reg.expose())
        buckets = [(float(label.split('"')[1]) if "Inf" not in label else math.inf,
                    value)
                   for (name, label), value in samples.items()
                   if name == "lat_seconds_bucket"]
        buckets.sort()
        # cumulative: monotone nondecreasing, closed by +Inf == _count
        counts = [c for _, c in buckets]
        assert counts == sorted(counts)
        assert buckets[-1][0] == math.inf
        assert buckets[-1][1] == samples[("lat_seconds_count", "")] == len(values)
        # every bucket's count equals the number of values <= its bound
        for bound, count in buckets:
            assert count == sum(1 for v in values if v <= bound)
        assert samples[("lat_seconds_sum", "")] == pytest.approx(sum(values))

    def test_duplicate_metric_rejected(self):
        reg = MetricsRegistry()
        reg.counter("dup_total", "x")
        with pytest.raises(ValueError):
            reg.counter("dup_total", "again")

    def test_callback_backed_metrics_read_live(self):
        state = {"v": 1.0}
        reg = MetricsRegistry()
        reg.gauge("live", "reads state", fn=lambda: state["v"])
        assert parse_exposition(reg.expose())[("live", "")] == 1.0
        state["v"] = 7.0
        assert parse_exposition(reg.expose())[("live", "")] == 7.0

    def test_label_values_escaped(self):
        c = Counter("esc_total", "x", label="k")
        c.inc(1, label_value='we"ird\\')
        line = c.expose()[-1]
        assert _SAMPLE_RE.match(line), line

    def test_counter_and_gauge_standalone(self):
        c = Counter("c_total", "x")
        c.inc()
        c.inc(2.0)
        assert c.value() == 3.0
        g = Gauge("g", "x")
        g.set(-4)
        assert g.samples() == [("", {}, -4.0)]


# -- bucket quantiles ------------------------------------------------------------


class TestBucketQuantile:
    def test_empty(self):
        assert bucket_quantile((0.1, 1.0), [0, 0, 0], 0.5) == 0.0

    def test_single_bucket_interpolates(self):
        # all mass in (0.001, 0.0025]: median interpolates inside it
        bounds = LATENCY_BUCKETS_S
        counts = [0] * (len(bounds) + 1)
        counts[1] = 10
        q = bucket_quantile(bounds, counts, 0.5)
        assert 0.001 <= q <= 0.0025

    def test_overflow_clamps_to_top_bound(self):
        bounds = (0.1, 1.0)
        counts = [0, 0, 5]  # all in +Inf
        assert bucket_quantile(bounds, counts, 0.99) == 1.0

    def test_two_modes(self):
        bounds = (0.001, 0.01, 0.1, 1.0)
        counts = [50, 0, 0, 50, 0]
        assert bucket_quantile(bounds, counts, 0.25) <= 0.001
        assert 0.1 <= bucket_quantile(bounds, counts, 0.95) <= 1.0


# -- sliding windows + SLO -------------------------------------------------------


class TestSlidingWindows:
    def test_record_and_window(self):
        clock = FakeClock()
        w = SlidingWindows(windows_s=(60.0,), slot_s=5.0, clock=clock)
        for _ in range(10):
            w.record(0.02)
        stats = w.window(60.0)
        assert stats["count"] == 10
        assert stats["error_rate"] == 0.0
        assert 10.0 <= stats["p50_ms"] <= 25.0

    def test_old_slots_age_out(self):
        clock = FakeClock()
        w = SlidingWindows(windows_s=(60.0, 3600.0), slot_s=5.0, clock=clock)
        w.record(0.02)
        clock.advance(120.0)  # beyond the 1m window, within 1h
        w.record(0.04)
        assert w.window(60.0)["count"] == 1
        assert w.window(3600.0)["count"] == 2

    def test_slot_reuse_after_full_wrap(self):
        clock = FakeClock()
        w = SlidingWindows(windows_s=(60.0,), slot_s=5.0, clock=clock)
        w.record(0.02, error=True)
        clock.advance(3700.0)  # ring fully wraps; stale slot is reset
        w.record(0.04)
        stats = w.window(60.0)
        assert stats["count"] == 1
        assert stats["errors"] == 0

    def test_error_and_bad_accounting(self):
        clock = FakeClock()
        w = SlidingWindows(windows_s=(60.0,), clock=clock)
        w.record(0.01, error=True)
        w.record(2.0, error=False, bad=True)  # slow-but-successful
        w.record(0.01)
        stats = w.window(60.0)
        assert stats["errors"] == 1
        assert stats["bad_rate"] == pytest.approx(2 / 3)

    def test_snapshot_labels(self):
        w = SlidingWindows(windows_s=(60.0, 300.0, 3600.0), clock=FakeClock())
        assert set(w.snapshot()) == {"1m", "5m", "1h"}


class TestSLOMonitor:
    def _mon(self, clock):
        return SLOMonitor(SLOConfig(latency_slo_s=0.1, budget=0.05,
                                    min_requests=10), clock=clock)

    def test_healthy_traffic_not_degraded(self):
        clock = FakeClock()
        mon = self._mon(clock)
        for _ in range(200):
            mon.record(0.01)
            clock.advance(0.5)
        ev = mon.evaluate()
        assert not ev["degraded"]
        assert ev["alerts"] == []
        assert all(rate == 0.0 for rate in ev["burn_rates"].values())

    def test_latency_regression_burns_and_degrades(self):
        clock = FakeClock()
        mon = self._mon(clock)
        # every request blows the 100ms latency SLO: bad_rate 1.0 against
        # a 5% budget = 20x burn on every window -> both rules fire
        for _ in range(100):
            mon.record(0.5)
            clock.advance(1.0)
        ev = mon.evaluate()
        assert ev["degraded"]
        assert ev["alerts"]
        assert ev["burn_rates"]["1m"] == pytest.approx(20.0)

    def test_short_spike_alone_does_not_page(self):
        clock = FakeClock()
        mon = self._mon(clock)
        # an hour of clean traffic, then a 30s error spike: the short
        # window burns but the long windows hold -> no alert
        for _ in range(600):
            mon.record(0.01)
            clock.advance(6.0)
        for _ in range(30):
            mon.record(0.01, error=True)
            clock.advance(1.0)
        ev = mon.evaluate()
        assert ev["burn_rates"]["1m"] > 10.0
        assert not ev["degraded"]

    def test_min_requests_suppresses_empty_window_burn(self):
        clock = FakeClock()
        mon = self._mon(clock)
        for _ in range(3):  # below min_requests
            mon.record(9.9, error=True)
        assert mon.burn_rate(60.0) == 0.0

    def test_windowed_percentiles_recover_after_cold_burst(self):
        # the ServerStats-staleness satellite, at the primitive level: a
        # cold burst parks the all-time view, but the 1m window forgets
        clock = FakeClock()
        mon = self._mon(clock)
        for _ in range(50):
            mon.record(2.0)  # cold burst
            clock.advance(0.1)
        clock.advance(120.0)
        for _ in range(50):
            mon.record(0.005)  # warm steady state
            clock.advance(0.1)
        w = mon.windows.window(60.0)
        assert w["p99_ms"] < 50.0, "windowed p99 must forget the cold burst"


# -- flight recorder -------------------------------------------------------------


class TestFlightRecorder:
    def test_eviction_order_oldest_first(self):
        fr = FlightRecorder(capacity=4, clock=FakeClock())
        for i in range(10):
            fr.record("event", i=i)
        dump = fr.dump()
        assert len(dump["events"]) == 4
        assert [e["i"] for e in dump["events"]] == [6, 7, 8, 9]
        # seq strictly increasing oldest -> newest
        seqs = [e["seq"] for e in dump["events"]]
        assert seqs == sorted(seqs)

    def test_dropped_accounting(self):
        fr = FlightRecorder(capacity=3, clock=FakeClock())
        for i in range(8):
            fr.record("e")
        dump = fr.dump()
        assert dump["recorded_total"] == 8
        assert dump["dropped"] == 5
        assert dump["capacity"] == 3

    def test_event_fields(self):
        clock = FakeClock(t=42.0)
        fr = FlightRecorder(capacity=8, clock=clock)
        fr.record("slow_request", status=200, latency_ms=1200.5)
        (event,) = fr.dump()["events"]
        assert event["kind"] == "slow_request"
        assert event["t"] == 42.0
        assert event["status"] == 200
        assert event["latency_ms"] == 1200.5

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


# -- request tracing -------------------------------------------------------------


class TestRequestTrace:
    def test_span_tree_well_formed(self):
        tracer = WallClockTracer(sample_rate=1.0)
        trace = tracer.sample()
        p = trace.begin("parse")
        trace.end(p)
        cells = trace.begin("answer_cells")
        hot = trace.begin("hot_probe", parent=cells)
        trace.end(hot)
        trace.end(cells)
        tracer.finish(trace)
        sids = {row[0] for row in trace.spans}
        for sid, parent, name, t0, t1, _args in trace.spans:
            if sid == 0:
                assert parent == -1 and name == "request"
                continue
            assert parent in sids, f"span {name} has unknown parent {parent}"
            assert t1 is not None and t1 >= t0
        root = trace.spans[0]
        for sid, _parent, name, t0, t1, _args in trace.spans[1:]:
            assert t0 >= root[3], f"{name} starts before the request root"
            assert t1 <= root[4] + 1e-9, f"{name} ends after the request root"

    def test_null_trace_is_inert(self):
        sid = NULL_TRACE.begin("anything")
        assert sid == 0
        NULL_TRACE.end(sid)
        NULL_TRACE.add("x", 0.0, 1.0)
        NULL_TRACE.annotate(0, k=1)
        NULL_TRACE.finish()
        assert not NULL_TRACE.enabled

    def test_sampling_off_returns_null(self):
        tracer = WallClockTracer(sample_rate=0.0)
        assert all(tracer.sample() is NULL_TRACE for _ in range(100))
        assert tracer.sample(force=True) is not NULL_TRACE

    def test_sampling_rate_roughly_honored(self):
        tracer = WallClockTracer(sample_rate=0.5, capacity=2048, seed=3)
        n = sum(tracer.sample() is not NULL_TRACE for _ in range(1000))
        assert 350 < n < 650

    def test_ring_bounded(self):
        tracer = WallClockTracer(sample_rate=1.0, capacity=4)
        for _ in range(10):
            tracer.finish(tracer.sample())
        assert len(tracer.traces()) == 4

    def test_chrome_events_schema(self):
        """Serve events satisfy the same shape the existing trace schema
        tests assert on simulator exports."""
        tracer = WallClockTracer(sample_rate=1.0)
        for _ in range(3):
            trace = tracer.sample()
            sid = trace.begin("parse")
            trace.end(sid)
            tracer.finish(trace)
        events = serve_chrome_events(tracer.traces())
        assert events
        for e in events:
            assert e.get("name")
            assert e["ph"] in ("X", "i", "C", "s", "f", "M")
            assert isinstance(e["pid"], int)
            if e["ph"] == "X":
                assert e["ts"] >= 0
                assert e["dur"] >= 0
                assert "trace_id" in e["args"]
        # one lane (tid) per request under one serve pid
        tids = {e["tid"] for e in events if e["ph"] == "X"}
        assert len(tids) == 3

    def test_chrome_doc_shape(self):
        tracer = WallClockTracer(sample_rate=1.0)
        tracer.finish(tracer.sample())
        doc = tracer.chrome_trace_doc()
        assert set(doc) == {"traceEvents", "displayTimeUnit"}

    def test_invalid_sample_rate_rejected(self):
        with pytest.raises(ValueError):
            WallClockTracer(sample_rate=1.5)

    def test_unfinished_span_skipped_in_export(self):
        trace = RequestTrace("req-x", 0.0)
        trace.begin("never_ended")
        trace.finish()
        events = serve_chrome_events([trace])
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert "never_ended" not in names
        assert "request" in names


# -- process stats ---------------------------------------------------------------


def test_process_stats_sane():
    stats = process_stats()
    assert stats["rss_bytes"] > 1 << 20  # a python process is >1 MiB resident
    assert stats["cpu_seconds"] > 0.0
