"""Every strategy satisfies the SchedulingStrategy contract."""

import pytest

from repro.baselines import (
    AsymSchedStrategy,
    OsAsyncStrategy,
    RingStrategy,
    SamStrategy,
    ShoalStrategy,
)
from repro.baselines.vanilla import VanillaStrategy
from repro.hw.machine import milan
from repro.hw.memory import MemPolicy
from repro.runtime.policy import CharmStrategy, StaticSpreadStrategy
from repro.runtime.runtime import Runtime

ALL_STRATEGIES = [
    CharmStrategy, RingStrategy, ShoalStrategy, AsymSchedStrategy,
    SamStrategy, OsAsyncStrategy, VanillaStrategy,
    lambda: StaticSpreadStrategy(2),
]


@pytest.mark.parametrize("mk", ALL_STRATEGIES)
def test_initial_placement_unique_and_in_range(mk):
    machine = milan(scale=64)
    s = mk()
    for n in (1, 8, 17, 64):
        cores = [s.initial_core(w, n, machine) for w in range(n)]
        assert len(set(cores)) == n
        assert all(0 <= c < machine.topo.total_cores for c in cores)


@pytest.mark.parametrize("mk", ALL_STRATEGIES)
def test_shared_policy_is_valid(mk):
    machine = milan(scale=64)
    rt = Runtime(machine, 4, mk(), seed=1)
    for ro in (True, False):
        region = rt.alloc_shared(1 << 16, read_only=ro)
        assert region.policy in MemPolicy


@pytest.mark.parametrize("mk", ALL_STRATEGIES)
def test_runs_a_small_workload(mk):
    from repro.runtime.ops import AccessBatch, Compute, YieldPoint

    machine = milan(scale=64)
    rt = Runtime(machine, 4, mk(), seed=1)
    region = rt.alloc_shared(1 << 18)

    def body(wid):
        yield AccessBatch(region, list(range(wid * 4, wid * 4 + 4)))
        yield YieldPoint()
        yield Compute(100.0)
        return wid

    for w in range(4):
        rt.spawn(body, w, pin_worker=w)
    report = rt.run()
    assert report.tasks_completed == 4
    assert report.wall_ns > 0


@pytest.mark.parametrize("mk", ALL_STRATEGIES)
def test_names_distinct(mk):
    names = {m().name if not isinstance(m, type) else m().name for m in ALL_STRATEGIES}
    assert len(names) == len(ALL_STRATEGIES)


@pytest.mark.parametrize("mk", ALL_STRATEGIES)
def test_steal_order_excludes_self(mk):
    machine = milan(scale=64)
    rt = Runtime(machine, 6, mk(), seed=1)
    for w in rt.workers:
        order = rt.strategy.steal_order(w, rt)
        assert w.worker_id not in order
        assert set(order) <= set(range(6))
