"""Graph algorithm correctness: references vs networkx, tasks vs references."""

import numpy as np
import pytest

from repro.baselines import RingStrategy, SamStrategy
from repro.hw.machine import milan
from repro.runtime.policy import CharmStrategy
from repro.workloads.graph.generator import kronecker, ring_of_cliques
from repro.workloads.graph.reference import (
    bfs_reference,
    cc_reference,
    pagerank_reference,
    sssp_reference,
)
from repro.workloads.graph.runner import _pick_root, default_chunk_size, run_graph_algorithm

networkx = pytest.importorskip("networkx")


@pytest.fixture(scope="module")
def graph():
    return kronecker(9, 8, seed=2)


@pytest.fixture(scope="module")
def nx_graph(graph):
    g = networkx.Graph()
    g.add_nodes_from(range(graph.n))
    for u in range(graph.n):
        for v, w in zip(graph.neighbors(u), graph.neighbor_weights(u)):
            g.add_edge(u, int(v), weight=int(w))
    return g


def test_bfs_reference_vs_networkx(graph, nx_graph):
    root = _pick_root(graph, 5)
    dist = bfs_reference(graph, root)
    nx_dist = networkx.single_source_shortest_path_length(nx_graph, root)
    for v in range(graph.n):
        assert dist[v] == nx_dist.get(v, -1)


def test_sssp_reference_vs_networkx(graph, nx_graph):
    root = _pick_root(graph, 5)
    dist = sssp_reference(graph, root)
    nx_dist = networkx.single_source_dijkstra_path_length(nx_graph, root)
    for v in range(graph.n):
        assert dist[v] == nx_dist.get(v, -1)


def test_cc_reference_vs_networkx(graph, nx_graph):
    label = cc_reference(graph)
    for comp in networkx.connected_components(nx_graph):
        comp = sorted(comp)
        assert len({label[v] for v in comp}) == 1
        assert label[comp[0]] == comp[0]


def test_pagerank_reference_vs_networkx(graph, nx_graph):
    """Shape check against networkx pagerank (different dangling handling)."""
    ours = pagerank_reference(graph, iterations=50)
    theirs = networkx.pagerank(nx_graph, alpha=0.85, max_iter=100)
    theirs_arr = np.array([theirs[v] for v in range(graph.n)])
    # Rank correlation on the top vertices.
    top_ours = set(np.argsort(ours)[-20:])
    top_theirs = set(np.argsort(theirs_arr)[-20:])
    assert len(top_ours & top_theirs) >= 12


STRATEGIES = [CharmStrategy, RingStrategy, SamStrategy]


@pytest.mark.parametrize("strategy_cls", STRATEGIES)
@pytest.mark.parametrize("algo", ["bfs", "sssp", "cc"])
def test_task_parallel_matches_reference(graph, algo, strategy_cls):
    res = run_graph_algorithm(milan(scale=64), strategy_cls(), algo, graph, 8, seed=5)
    root = _pick_root(graph, 5)
    expected = {
        "bfs": lambda: bfs_reference(graph, root),
        "sssp": lambda: sssp_reference(graph, root),
        "cc": lambda: cc_reference(graph),
    }[algo]()
    assert np.array_equal(res.result, expected)


def test_task_pagerank_matches_reference(graph):
    res = run_graph_algorithm(milan(scale=64), CharmStrategy(), "pagerank", graph, 8,
                              seed=5, pagerank_iterations=5)
    assert np.allclose(res.result, pagerank_reference(graph, iterations=5))


def test_graph500_reaches_vertices(graph):
    res = run_graph_algorithm(milan(scale=64), CharmStrategy(), "graph500", graph, 8,
                              seed=5, graph500_roots=2)
    assert (res.result >= 0).sum() > graph.n // 2
    assert res.edges_traversed > 0


def test_result_independent_of_worker_count(graph):
    root = _pick_root(graph, 5)
    expected = bfs_reference(graph, root)
    for workers in (1, 3, 16):
        res = run_graph_algorithm(milan(scale=64), CharmStrategy(), "bfs", graph,
                                  workers, seed=5)
        assert np.array_equal(res.result, expected)


def test_structured_graph_cc():
    g = ring_of_cliques(4, 5)
    res = run_graph_algorithm(milan(scale=64), CharmStrategy(), "cc", g, 4, seed=5)
    assert set(res.result) == {0}  # single component, min id 0


def test_metrics_populated(graph):
    res = run_graph_algorithm(milan(scale=64), CharmStrategy(), "bfs", graph, 8, seed=5)
    assert res.teps > 0 and res.mteps == res.teps / 1e6
    assert res.rounds > 0
    assert res.report.tasks_completed > res.rounds


def test_unknown_algorithm_rejected(graph):
    with pytest.raises(ValueError):
        run_graph_algorithm(milan(scale=64), CharmStrategy(), "nope", graph, 4)


def test_default_chunk_size_bounds(graph):
    assert 32 <= default_chunk_size(graph, 8) <= 512
