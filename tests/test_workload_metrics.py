"""Metric plumbing across workload result types."""

import numpy as np

from repro.hw.machine import milan
from repro.runtime.policy import CharmStrategy
from repro.workloads.graph import kronecker, run_graph_algorithm
from repro.workloads.gups import run_gups
from repro.workloads.sgd import make_dataset, run_sgd
from repro.workloads.streamcluster import make_points, run_streamcluster


def test_graph_result_metrics_consistent():
    g = kronecker(8, 8, seed=1)
    r = run_graph_algorithm(milan(scale=64), CharmStrategy(), "bfs", g, 4, seed=5)
    assert r.teps == r.edges_traversed / (r.wall_ns * 1e-9)
    assert r.report.strategy == "charm"
    assert r.n_workers == 4


def test_gups_metrics_consistent():
    r = run_gups(milan(scale=64), CharmStrategy(), 4, 1 << 20,
                 updates_per_worker=128, seed=3)
    assert r.gups == r.total_updates / r.wall_ns
    assert r.table.dtype == np.int64


def test_sgd_bytes_accounting():
    ds = make_dataset(256, 64, seed=2)
    r = run_sgd(milan(scale=64), "charm", 4, ds, kernel="gradient", epochs=2)
    assert r.bytes_processed == 2 * ds.data_bytes  # every row twice


def test_streamcluster_report_strategy_names():
    pts = make_points(1024, 16, 4, seed=2)
    r = run_streamcluster(milan(scale=64), CharmStrategy(), 4, pts, n_centers=4)
    assert r.strategy == "charm"
    assert (r.assignment >= 0).all()
    assert r.cost > 0
