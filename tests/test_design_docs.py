"""The documentation stays in sync with the code it describes."""

from pathlib import Path

ROOT = Path(__file__).parent.parent


def test_design_md_lists_every_benchmark_target():
    design = (ROOT / "DESIGN.md").read_text()
    for bench in (ROOT / "benchmarks").glob("test_*.py"):
        name = bench.name
        if name.startswith("test_ext_") or name.startswith("test_abl_") \
                or name.startswith("test_sens_"):
            continue  # extensions/ablations are indexed in EXPERIMENTS.md
        assert name in design, f"{name} missing from DESIGN.md per-experiment index"


def test_experiments_md_covers_every_paper_artifact():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for artifact in ("Fig. 1", "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 7", "Tab. 1",
                     "Fig. 8", "Fig. 9", "Tab. 2", "Fig. 10", "Fig. 11", "Fig. 12",
                     "Fig. 13", "Fig. 14"):
        assert artifact in text, f"{artifact} missing from EXPERIMENTS.md"


def test_readme_examples_exist():
    readme = (ROOT / "README.md").read_text()
    for example in (ROOT / "examples").glob("*.py"):
        assert example.name in readme, f"{example.name} not documented in README"


def test_modeling_md_constants_match_code():
    from repro.hw.latency import MILAN_LATENCY
    from repro.runtime.policy import CharmPolicyConfig
    from repro.workloads.vector_write import STORE_BYTES_PER_NS

    text = (ROOT / "MODELING.md").read_text()
    assert f"| `l3_hit` | {MILAN_LATENCY.l3_hit:.0f} |" in text
    cfg = CharmPolicyConfig()
    assert f"{cfg.rmt_chip_access_rate:.0f} events" in text.replace("`", "")
    assert f"| {STORE_BYTES_PER_NS:.0f} |" in text
