"""RandomAccess (GUPS) correctness and behaviour."""

import numpy as np

from repro.baselines import RingStrategy
from repro.hw.machine import milan
from repro.runtime.policy import CharmStrategy
from repro.workloads.gups import apply_updates_reference, run_gups, update_stream


def test_updates_match_sequential_replay():
    res = run_gups(milan(scale=64), CharmStrategy(), 8, 4 << 20,
                   updates_per_worker=512, seed=3)
    ref = apply_updates_reference((4 << 20) // 8, 3, 8, 512)
    assert np.array_equal(res.table, ref)


def test_update_streams_deterministic_and_distinct():
    a = update_stream(3, 0, 100, 1000)
    b = update_stream(3, 0, 100, 1000)
    c = update_stream(3, 1, 100, 1000)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_gups_metric():
    res = run_gups(milan(scale=64), CharmStrategy(), 4, 1 << 20,
                   updates_per_worker=256, seed=3)
    assert res.total_updates == 4 * 256
    assert res.gups > 0
    assert res.mups == res.gups * 1000


def test_charm_beats_ring_at_scale():
    kw = dict(table_bytes=16 << 20, updates_per_worker=1024, seed=3)
    rc = run_gups(milan(scale=32), CharmStrategy(), 32, **kw)
    rr = run_gups(milan(scale=32), RingStrategy(), 32, **kw)
    assert rc.gups > rr.gups
