"""Parallel sweeps must be bit-identical to serial runs.

The contract (see MODELING.md): a cell's result is a pure function of the
cell, cell results are JSON-native so the disk cache preserves every bit,
and merges fold in cell order.  These tests run real experiments both
ways — inline serial vs a 4-process pool with a fresh disk cache — and
require exact equality of rows, series, fill counters, and rendered text.

Covers both machine presets and all three result shapes: a table of
floats (fig05, milan), a series dict (fig08, sapphire_rapids), and
integer access counters (tab2, milan).
"""

import pytest

from repro.bench import sweep
from repro.bench.cells import run_serial
from repro.bench import experiments  # noqa: F401 - populates the registry

EXPERIMENTS = [
    pytest.param("fig05_local_vs_distributed", id="fig05-milan-table"),
    pytest.param("fig08_intel_scalability", id="fig08-spr-series"),
    pytest.param("tab2_streamcluster_accesses", id="tab2-milan-counters"),
]


@pytest.fixture()
def cache(tmp_path, monkeypatch):
    d = tmp_path / "sweep-cache"
    monkeypatch.setenv("REPRO_SWEEP_CACHE", str(d))
    return d


@pytest.mark.parametrize("name", EXPERIMENTS)
def test_parallel_is_bit_identical_to_serial(name, cache):
    rows_serial, text_serial = run_serial(name, quick=True)
    rows_par, text_par, stats = sweep.run_experiment(name, quick=True, jobs=4)
    assert stats.executed == stats.total and stats.cache_hits == 0
    assert rows_par == rows_serial
    assert text_par == text_serial


@pytest.mark.parametrize("name", EXPERIMENTS)
def test_cached_rerun_is_bit_identical(name, cache):
    rows_first, text_first, _ = sweep.run_experiment(name, quick=True, jobs=4)
    rows_again, text_again, stats = sweep.run_experiment(name, quick=True, jobs=4)
    assert stats.executed == 0 and stats.cache_hits == stats.total
    assert rows_again == rows_first
    assert text_again == text_first
