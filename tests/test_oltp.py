"""MVCC store invariants and the OLTP engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.machine import milan
from repro.runtime.policy import distributed_cache_strategy, local_cache_strategy
from repro.workloads.oltp import (
    MvccStore,
    Transaction,
    TxnAborted,
    run_oltp,
    tpcc_workload,
    ycsb_workload,
)
from repro.workloads.oltp.tpcc import DISTRICTS_PER_WAREHOUSE, load_tpcc
from repro.workloads.oltp.ycsb import load_ycsb


def test_snapshot_isolation_repeatable_read():
    s = MvccStore()
    s.load("k", 1)
    t1 = Transaction(s)
    assert t1.read("k") == 1
    t2 = Transaction(s)
    t2.write("k", 2)
    t2.commit()
    # t1 still sees its snapshot.
    assert t1.read("k") == 1
    # A fresh transaction sees the new value.
    assert Transaction(s).read("k") == 2


def test_write_write_conflict_aborts():
    s = MvccStore()
    s.load("k", 0)
    t1, t2 = Transaction(s), Transaction(s)
    t1.write("k", 1)
    t2.write("k", 2)
    t1.commit()
    with pytest.raises(TxnAborted):
        t2.commit()
    assert s.aborts == 1
    assert Transaction(s).read("k") == 1  # no lost update


def test_read_your_writes():
    s = MvccStore()
    s.load("k", 0)
    t = Transaction(s)
    t.write("k", 9)
    assert t.read("k") == 9


def test_atomic_multi_key_commit():
    s = MvccStore()
    s.load("a", 0)
    s.load("b", 0)
    t = Transaction(s)
    t.write("a", 1)
    t.write("b", 1)
    snapshot_before = Transaction(s)
    t.commit()
    # The pre-commit snapshot sees neither write; a new one sees both.
    assert snapshot_before.read("a") == 0 and snapshot_before.read("b") == 0
    after = Transaction(s)
    assert after.read("a") == 1 and after.read("b") == 1


def test_commit_timestamps_monotonic():
    s = MvccStore()
    s.load("k", 0)
    ts = []
    for i in range(5):
        t = Transaction(s)
        t.write("k", i)
        ts.append(t.commit())
    assert ts == sorted(ts) and len(set(ts)) == 5
    assert s.version_count("k") == 6


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 100)), max_size=30))
@settings(max_examples=50, deadline=None)
def test_serial_transactions_match_dict(ops):
    """Serially committed transactions behave like a plain dict."""
    s = MvccStore()
    model = {}
    for key, value in ops:
        t = Transaction(s)
        t.write(key, value)
        t.commit()
        model[key] = value
    for key, value in model.items():
        assert Transaction(s).read(key) == value


def test_ycsb_engine_runs_and_commits():
    store = load_ycsb(5000)
    res = run_oltp(milan(scale=64), local_cache_strategy(), 8, ycsb_workload, "ycsb",
                   store, 4 << 20, txns_per_worker=50)
    assert res.committed + res.aborted == 8 * 50
    assert res.committed > 0
    assert res.commits_per_second > 0
    assert store.commits == res.committed


def test_tpcc_consistency_invariants():
    tables = load_tpcc(2)
    res = run_oltp(milan(scale=64), local_cache_strategy(), 8, tpcc_workload(tables),
                   "tpcc", tables.store, 4 << 20, txns_per_worker=40)
    assert res.committed > 0
    s = tables.store
    for w in range(2):
        # District order counters are consistent: next_o_id equals the
        # number of committed orders in that district.
        for d in range(DISTRICTS_PER_WAREHOUSE):
            dist = Transaction(s).read(("dist", w, d))
            n_orders = sum(
                1 for k in s.keys()
                if isinstance(k, tuple) and k[0] == "order" and k[1] == w and k[2] == d
                and Transaction(s).read(k) is not None
            )
            assert dist["next_o_id"] == n_orders
        # Customer payment counts sum to positive payments reflected in YTD.
        wh = Transaction(s).read(("wh", w))
        assert wh["ytd"] >= 0


def test_local_vs_distributed_equivalent_throughput():
    """Fig. 14's core finding at small scale."""
    m1 = milan(scale=64)
    r_local = run_oltp(m1, local_cache_strategy(), 16, ycsb_workload, "ycsb",
                       load_ycsb(5000), 4 << 20, txns_per_worker=40)
    m2 = milan(scale=64)
    r_dist = run_oltp(m2, distributed_cache_strategy(m2), 16, ycsb_workload, "ycsb",
                      load_ycsb(5000), 4 << 20, txns_per_worker=40)
    ratio = r_local.commits_per_second / r_dist.commits_per_second
    assert 0.8 < ratio < 1.25
