"""Barriers and futures."""

import pytest

from repro.runtime.sync import Barrier, Future
from repro.runtime.task import Task, TaskState


def _task():
    def body():
        yield None

    return Task(body)


def test_barrier_releases_on_last_arrival():
    b = Barrier(3)
    assert b.arrive(_task(), 0, 10.0) is None
    assert b.arrive(_task(), 1, 20.0) is None
    released = b.arrive(_task(), 2, 30.0)
    assert released is not None and len(released) == 3
    assert b.generation == 1


def test_barrier_reusable():
    b = Barrier(2)
    b.arrive(_task(), 0, 1.0)
    assert b.arrive(_task(), 1, 2.0)
    b.arrive(_task(), 0, 3.0)
    assert b.arrive(_task(), 1, 4.0)
    assert b.releases == 2


def test_barrier_overfill_rejected():
    b = Barrier(1)
    b.arrive(_task(), 0, 1.0)  # releases immediately
    b2 = Barrier(2)
    b2.arrive(_task(), 0, 1.0)
    b2._arrived.append((_task(), 1, 2.0))  # force inconsistent state
    with pytest.raises(RuntimeError):
        b2.arrive(_task(), 2, 3.0)


def test_barrier_invalid_parties():
    with pytest.raises(ValueError):
        Barrier(0)


def test_future_resolve_wakes_waiters():
    f = Future()
    t = _task()
    f.add_waiter(t)
    assert t.state is TaskState.BLOCKED
    woken = f.resolve("value", now=42.0)
    assert woken == [t]
    assert t.send_value == "value"
    assert t.ready_at == 42.0
    assert t.state is TaskState.READY


def test_future_double_resolve_rejected():
    f = Future()
    f.resolve(1, 0.0)
    with pytest.raises(RuntimeError):
        f.resolve(2, 0.0)


def test_future_wait_after_done_rejected():
    f = Future()
    f.resolve(1, 0.0)
    with pytest.raises(RuntimeError):
        f.add_waiter(_task())


def test_future_callbacks():
    f = Future()
    seen = []
    f.on_resolve(lambda fut, now: seen.append((fut.value, now)))
    f.resolve(7, 9.0)
    assert seen == [(7, 9.0)]
    with pytest.raises(RuntimeError):
        f.on_resolve(lambda fut, now: None)
