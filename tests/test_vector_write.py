"""Fig. 5 microbenchmark mechanics."""

import pytest

from repro.hw.machine import milan
from repro.runtime.policy import distributed_cache_strategy, local_cache_strategy
from repro.workloads.vector_write import run_vector_write, sweep_sizes


def test_small_sizes_favor_local():
    m_l, m_d = milan(scale=64), milan(scale=64)
    size = m_l.l3_bytes_per_chiplet // 64
    rl = run_vector_write(m_l, local_cache_strategy(), size)
    rd = run_vector_write(m_d, distributed_cache_strategy(m_d), size)
    assert rl.ns_per_iteration < rd.ns_per_iteration


def test_large_sizes_favor_distributed():
    m_l, m_d = milan(scale=64), milan(scale=64)
    size = m_l.l3_bytes_per_chiplet * 4
    rl = run_vector_write(m_l, local_cache_strategy(), size)
    rd = run_vector_write(m_d, distributed_cache_strategy(m_d), size)
    assert rd.ns_per_iteration < rl.ns_per_iteration
    assert 1.5 < rl.ns_per_iteration / rd.ns_per_iteration < 5.0


def test_result_fields():
    m = milan(scale=64)
    r = run_vector_write(m, local_cache_strategy(), 1 << 16, iterations=2)
    assert r.iterations == 2
    assert r.ns_per_iteration == pytest.approx(r.wall_ns / 2)
    assert r.bytes_per_ns > 0


def test_sweep_sizes_cover_boundaries():
    sizes = sweep_sizes(32 << 20, 8)
    assert min(sizes) < (32 << 20) // 100
    assert max(sizes) > 8 * (32 << 20)
