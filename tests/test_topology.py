"""Topology id arithmetic and distance classes."""

import pytest

from repro.hw.topology import (
    Distance,
    Topology,
    milan_topology,
    sapphire_rapids_topology,
)


@pytest.fixture(params=["milan", "spr", "small"])
def topo(request):
    return {
        "milan": milan_topology(),
        "spr": sapphire_rapids_topology(),
        "small": Topology(2, 2, 2, name="small"),
    }[request.param]


def test_sizes_consistent(topo):
    assert topo.total_cores == topo.sockets * topo.chiplets_per_socket * topo.cores_per_chiplet
    assert topo.total_chiplets == topo.sockets * topo.chiplets_per_socket
    assert topo.numa_nodes == topo.sockets


def test_core_to_chiplet_roundtrip(topo):
    for chiplet in range(topo.total_chiplets):
        for core in topo.cores_of_chiplet(chiplet):
            assert topo.chiplet_of_core(core) == chiplet


def test_chiplet_to_socket_roundtrip(topo):
    for socket in range(topo.sockets):
        for chiplet in topo.chiplets_of_socket(socket):
            assert topo.socket_of_chiplet(chiplet) == socket


def test_cores_of_socket_partition(topo):
    seen = []
    for s in range(topo.sockets):
        seen.extend(topo.cores_of_socket(s))
    assert seen == list(range(topo.total_cores))


def test_core_id_inverse(topo):
    for chiplet in range(topo.total_chiplets):
        for slot in range(topo.cores_per_chiplet):
            core = topo.core_id(chiplet, slot)
            assert topo.chiplet_of_core(core) == chiplet
            assert core % topo.cores_per_chiplet == slot


def test_distance_classes(topo):
    c0 = 0
    assert topo.distance(c0, c0) is Distance.SAME_CORE
    same_chiplet = topo.cores_of_chiplet(0)[1]
    assert topo.distance(c0, same_chiplet) is Distance.SAME_CHIPLET
    if topo.chiplets_per_socket > 1:
        other_chiplet_core = topo.cores_of_chiplet(1)[0]
        assert topo.distance(c0, other_chiplet_core) is Distance.SAME_SOCKET
    if topo.sockets > 1:
        remote = topo.cores_of_socket(1)[0]
        assert topo.distance(c0, remote) is Distance.CROSS_SOCKET


def test_distance_symmetric(topo):
    cores = [0, topo.cores_per_chiplet, topo.cores_per_socket % topo.total_cores]
    for a in cores:
        for b in cores:
            assert topo.distance(a, b) is topo.distance(b, a)


def test_core_pairs_count(topo):
    n = topo.total_cores
    assert len(topo.core_pairs()) == n * (n - 1) // 2


def test_out_of_range_rejected(topo):
    with pytest.raises(ValueError):
        topo.chiplet_of_core(topo.total_cores)
    with pytest.raises(ValueError):
        topo.cores_of_chiplet(topo.total_chiplets)
    with pytest.raises(ValueError):
        topo.core_id(0, topo.cores_per_chiplet)


def test_invalid_dimensions_rejected():
    with pytest.raises(ValueError):
        Topology(sockets=0)
    with pytest.raises(ValueError):
        Topology(smt=0)


def test_presets():
    m = milan_topology()
    assert (m.sockets, m.chiplets_per_socket, m.cores_per_chiplet) == (2, 8, 8)
    assert m.total_cores == 128
    s = sapphire_rapids_topology()
    assert s.total_cores == 96
