"""Every example script runs cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=300
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()


def test_examples_exist():
    assert len(EXAMPLES) >= 4  # quickstart + at least three scenarios
