"""Genoa / custom machine builders and scaling behaviour."""

import pytest

from repro.hw.machine import KIB, MIB, custom_machine, genoa, milan, sapphire_rapids


def test_genoa_shape():
    m = genoa(scale=32)
    assert m.topo.total_cores == 192
    assert m.topo.chiplets_per_socket == 12
    assert m.channels.channels_per_socket == 12


def test_custom_machine():
    m = custom_machine(1, 4, 4, l3_bytes_per_chiplet=1 * MIB, name="lab")
    assert m.topo.total_cores == 16
    assert m.topo.name == "lab"
    region = m.alloc_region(64 * KIB)
    res = m.access(0, region, 0, now=0.0)
    assert res.ns > 0


def test_scale_divides_l3_only():
    big, small = milan(scale=1), milan(scale=64)
    assert big.l3_bytes_per_chiplet == 64 * small.l3_bytes_per_chiplet
    assert big.latency is small.latency
    assert big.channels.bytes_per_ns == small.channels.bytes_per_ns


def test_presets_have_distinct_personalities():
    amd, intel = milan(scale=32), sapphire_rapids(scale=32)
    # Intel: fewer, larger tiles; much cheaper cross-tile fills.
    assert intel.topo.chiplets_per_socket < amd.topo.chiplets_per_socket
    assert intel.latency.fill_same_socket < amd.latency.fill_same_socket
    # AMD: more aggregate L3 per socket.
    amd_l3 = amd.l3_bytes_per_chiplet * amd.topo.chiplets_per_socket
    intel_l3 = intel.l3_bytes_per_chiplet * intel.topo.chiplets_per_socket
    assert amd_l3 > intel_l3


def test_genoa_runs_workload():
    from repro.runtime.policy import CharmStrategy
    from repro.workloads.graph.generator import kronecker
    from repro.workloads.graph.runner import run_graph_algorithm

    g = kronecker(8, 8, seed=1)
    res = run_graph_algorithm(genoa(scale=64), CharmStrategy(), "bfs", g, 12, seed=5)
    assert res.teps > 0
