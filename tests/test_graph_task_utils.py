"""Graph task machinery: block arithmetic, partitioning, routing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.machine import milan
from repro.runtime.policy import CharmStrategy
from repro.runtime.runtime import Runtime
from repro.workloads.graph.generator import kronecker
from repro.workloads.graph.tasks import (
    GraphWorkspace,
    _ranges_to_blocks,
    gather_neighbors,
)


@pytest.fixture(scope="module")
def ws():
    g = kronecker(8, 8, seed=1)
    rt = Runtime(milan(scale=64), 4, CharmStrategy(), seed=3)
    return GraphWorkspace(rt, g)


def test_ranges_to_blocks_simple():
    starts = np.array([0, 1000])
    ends = np.array([100, 1100])
    blocks = _ranges_to_blocks(starts, ends, 512)
    assert blocks.tolist() == [0, 1, 2]


def test_ranges_to_blocks_empty_ranges_skipped():
    starts = np.array([0, 50])
    ends = np.array([0, 50])
    assert _ranges_to_blocks(starts, ends, 512).size == 0


@given(st.lists(st.tuples(st.integers(0, 10_000), st.integers(0, 500)), max_size=20),
       st.sampled_from([64, 512, 4096]))
@settings(max_examples=60, deadline=None)
def test_ranges_to_blocks_matches_bruteforce(ranges, bb):
    starts = np.array([s for s, _ in ranges], dtype=np.int64)
    ends = np.array([s + l for s, l in ranges], dtype=np.int64)
    got = set(_ranges_to_blocks(starts, ends, bb).tolist())
    expected = set()
    for s, l in ranges:
        for byte in (s, s + l - 1):
            pass
        for b in range(s // bb, (s + l - 1) // bb + 1) if l > 0 else []:
            expected.add(b)
    assert got == expected


def test_gather_neighbors_matches_manual(ws):
    g = ws.graph
    verts = np.array([0, 5, 17], dtype=np.int64)
    _, nbrs, counts = gather_neighbors(g, verts)
    manual = np.concatenate([g.neighbors(int(v)) for v in verts])
    assert np.array_equal(nbrs, manual)
    assert counts.tolist() == [g.degree(int(v)) for v in verts]


def test_owner_partition_is_a_partition(ws):
    n = ws.graph.n
    all_v = np.arange(n, dtype=np.int64)
    owners = ws.owner_of(all_v)
    assert owners.min() == 0 and owners.max() == ws.n_parts - 1
    # part_range boundaries agree with owner_of.
    for p in range(ws.n_parts):
        lo, hi = ws.part_range(p)
        assert (owners[lo:hi] == p).all()


def test_group_by_owner_roundtrip(ws):
    rng = np.random.default_rng(1)
    v = rng.integers(0, ws.graph.n, 200)
    payload = v * 10
    verts, loads = ws.group_by_owner(v, payload)
    rebuilt_v = np.concatenate([x for x in verts if x is not None])
    rebuilt_p = np.concatenate([x for x in loads if x is not None])
    assert sorted(rebuilt_v.tolist()) == sorted(v.tolist())
    assert np.array_equal(rebuilt_p, rebuilt_v * 10)
    for p, part in enumerate(verts):
        if part is not None:
            assert (ws.owner_of(part) == p).all()


def test_inbox_outbox_block_accounting(ws):
    assert ws.inbox_blocks(0, 0) == []
    one = ws.inbox_blocks(2, 1)
    assert len(one) == 1 and one[0] == 2 * ws.inbox_stride
    many = ws.inbox_blocks(2, 10_000_000)
    assert len(many) == ws.inbox_stride  # capped at the stride
    counts = np.zeros(ws.n_parts, dtype=np.int64)
    counts[1] = 64
    counts[3] = 1
    blocks = ws.outbox_blocks(counts)
    assert set(b // ws.inbox_stride for b in blocks) == {1, 3}


def test_edge_chunks_balance(ws):
    verts = np.arange(ws.graph.n, dtype=np.int64)
    chunks = ws.edge_chunks(verts, target_chunks=8)
    assert sum(c.size for c in chunks) == verts.size
    rebuilt = np.concatenate(chunks)
    assert np.array_equal(rebuilt, verts)
    assert ws.edge_chunks(np.empty(0, np.int64), 4) == []
