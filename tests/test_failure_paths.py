"""Failure injection and defensive paths."""

import pytest

from repro.hw.machine import small_test_machine
from repro.runtime.ops import Access, AccessBatch, Compute
from repro.runtime.policy import StaticSpreadStrategy
from repro.runtime.runtime import Runtime
from repro.sim.engine import SimulationError


def _rt(workers=2):
    return Runtime(small_test_machine(), workers, StaticSpreadStrategy(1), seed=3)


def test_out_of_range_block_raises_inside_task():
    rt = _rt(1)
    region = rt.alloc(1024, node=0)

    def body():
        yield Access(region, region.n_blocks + 5)

    rt.spawn(body, pin_worker=0)
    with pytest.raises(ValueError, match="outside region"):
        rt.run()


def test_failed_task_decrements_outstanding():
    rt = _rt(1)

    def bad():
        yield Compute(1.0)
        raise KeyError("x")

    rt.spawn(bad, pin_worker=0)
    with pytest.raises(KeyError):
        rt.run()
    assert rt.outstanding == 0


def test_pin_out_of_range():
    rt = _rt(2)
    with pytest.raises(ValueError, match="pin_worker"):
        rt.spawn(lambda: iter(()), pin_worker=5)


def test_nearest_free_core_exhaustion():
    rt = _rt(1)
    topo = rt.machine.topo
    for c in range(topo.total_cores):
        rt.core_ledger.setdefault(c, 99)
    with pytest.raises(SimulationError, match="no free cores"):
        rt._nearest_free_core(0)


def test_nearest_free_core_prefers_same_chiplet():
    rt = _rt(1)  # worker 0 holds core 0
    got = rt._nearest_free_core(0)
    assert rt.machine.topo.chiplet_of_core(got) == 0
    assert got != 0


def test_max_steps_guard_through_runtime():
    rt = Runtime(small_test_machine(), 1, StaticSpreadStrategy(1), seed=3, max_steps=3)

    def body():
        for _ in range(1000):
            yield Compute(10_000.0)

    rt.spawn(body, pin_worker=0)
    with pytest.raises(SimulationError, match="max_steps"):
        rt.run()


def test_zero_size_region_single_block():
    rt = _rt(1)
    region = rt.alloc(0, node=0)
    assert region.n_blocks == 1  # degenerate allocations still addressable
