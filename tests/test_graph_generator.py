"""Kronecker generator and CSR integrity."""

import numpy as np
import pytest

from repro.workloads.graph.generator import from_edge_list, kronecker, ring_of_cliques

networkx = pytest.importorskip("networkx")


def test_csr_integrity():
    g = kronecker(8, 8, seed=1)
    assert g.indptr[0] == 0
    assert g.indptr[-1] == g.m
    assert np.all(np.diff(g.indptr) >= 0)
    assert g.indices.min() >= 0 and g.indices.max() < g.n
    assert g.weights.min() >= 1 and g.weights.max() <= 255


def test_symmetric_and_simple():
    g = kronecker(7, 8, seed=2)
    edges = set()
    for u in range(g.n):
        for v in g.neighbors(u):
            assert v != u  # no self loops
            edges.add((u, int(v)))
    for u, v in edges:
        assert (v, u) in edges  # symmetric


def test_neighbor_lists_sorted_unique():
    g = kronecker(7, 8, seed=3)
    for u in range(g.n):
        nbrs = g.neighbors(u)
        assert np.all(np.diff(nbrs) > 0)


def test_deterministic():
    a = kronecker(7, 8, seed=5)
    b = kronecker(7, 8, seed=5)
    assert np.array_equal(a.indices, b.indices)
    c = kronecker(7, 8, seed=6)
    assert not np.array_equal(a.indices, c.indices)


def test_weights_symmetric():
    g = kronecker(6, 8, seed=4)
    w = {}
    for u in range(g.n):
        for v, wt in zip(g.neighbors(u), g.neighbor_weights(u)):
            w[(u, int(v))] = int(wt)
    for (u, v), wt in w.items():
        assert w[(v, u)] == wt


def test_skewed_degrees():
    """R-MAT graphs have hubs: max degree far above the mean."""
    g = kronecker(10, 16, seed=1)
    degs = np.diff(g.indptr)
    assert degs.max() > 8 * degs.mean()


def test_from_edge_list_dedupes():
    edges = np.array([[0, 1], [1, 0], [0, 1], [2, 2]])
    g = from_edge_list(3, edges)
    assert g.m == 2  # one undirected edge, self loop dropped
    assert list(g.neighbors(0)) == [1]


def test_from_edge_list_validates():
    with pytest.raises(ValueError):
        from_edge_list(2, np.array([[0, 5]]))


def test_ring_of_cliques_components():
    g = ring_of_cliques(3, 4)
    assert g.n == 12
    nx_g = networkx.Graph()
    nx_g.add_nodes_from(range(g.n))
    for u in range(g.n):
        for v in g.neighbors(u):
            nx_g.add_edge(u, int(v))
    assert networkx.number_connected_components(nx_g) == 1


def test_matches_networkx_edge_count():
    g = kronecker(8, 8, seed=9)
    nx_g = networkx.Graph()
    nx_g.add_nodes_from(range(g.n))
    for u in range(g.n):
        for v in g.neighbors(u):
            nx_g.add_edge(u, int(v))
    assert 2 * nx_g.number_of_edges() == g.m


def test_invalid_params():
    with pytest.raises(ValueError):
        kronecker(0)
    with pytest.raises(ValueError):
        kronecker(5, 0)


def test_max_degree_vertex():
    g = kronecker(9, 8, seed=1)
    v = g.max_degree_vertex()
    degs = [g.degree(u) for u in range(g.n)]
    assert g.degree(v) == max(degs)


def test_adjacency_bytes_formula():
    g = kronecker(7, 8, seed=1)
    assert g.adjacency_bytes == 4 * g.m * 2 + 8 * (g.n + 1)
