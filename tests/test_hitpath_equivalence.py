"""Bit-identity of the hit-path and peer-fill kernels vs the scalar path.

PR 3 proved the *miss*-path kernels bit-identical; this suite covers the
hit and peer-fill classes added on top: the bulk LRU touch
(``CacheSystem.touch_run``), the shared-mode bulk install
(``fill_run(shared=True)``), the segment classifier's hit / one-peer /
miss / scalar labelling, the hot-replay fast path in ``access_run``, and
the per-source fill-latency histogram.  The contract is unchanged:
virtual times, LRU contents *and order*, the sharing directory,
hit/miss/eviction statistics, per-core fill counters, and bandwidth
server state must match a forced-scalar twin exactly — bit for bit.

Scenario shapes are chosen to pin each class: hit-heavy (warm re-reads),
peer-heavy (another chiplet is the holder), and mixed batches with
duplicates (exercising the duplicate-aware segment splitter).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.hw.machine as machine_mod
from repro.hw.cache import CacheSystem
from repro.hw.counters import SOURCE_INDEX, FillSource
from repro.hw.memory import MemPolicy
from repro.hw.topology import Topology

from repro.hw.machine import milan, sapphire_rapids, small_test_machine

MACHINES = {
    "small_test_machine": small_test_machine,
    "milan32": lambda: milan(scale=32),
    "sapphire_rapids32": lambda: sapphire_rapids(scale=32),
}


def scalar_batch(machine, core, region, blocks, now, **kw):
    """Service a batch with the vector kernels disabled (reference path)."""
    saved = machine_mod.VECTOR_MIN
    machine_mod.VECTOR_MIN = 1 << 60
    try:
        return machine.access_batch(core, region, list(blocks), now, **kw)
    finally:
        machine_mod.VECTOR_MIN = saved


def machine_state(m):
    """Everything the equivalence contract covers, as comparable values."""
    return {
        "directory": {k: frozenset(v) for k, v in m.caches.directory.items()},
        "lru": [list(c._lru.items()) for c in m.caches.caches],
        "cache_stats": [
            (c.hits, c.misses, c.evictions, c.used_bytes) for c in m.caches.caches
        ],
        "bandwidth": m.bandwidth_stats(),
        "counters": [m.counters.core(c).v for c in range(m.topo.total_cores)],
        "total_accesses": m.total_accesses,
    }


def assert_same_state(m_vec, m_ref):
    sv, sr = machine_state(m_vec), machine_state(m_ref)
    for k in sv:
        assert sv[k] == sr[k], f"state mismatch in {k}"
    assert m_vec.caches.check_directory_consistent()


def _warm(machine, region, core, blocks, now=0.0):
    """Install ``blocks`` into ``core``'s slice via the scalar path."""
    return scalar_batch(machine, core, region, blocks, now).ns


def _core_on_other_chiplet(machine, core):
    """A core whose chiplet differs from ``core``'s (same or other socket)."""
    mine = machine._chiplet_of_core[core]
    for c, ch in enumerate(machine._chiplet_of_core):
        if ch != mine:
            return c
    pytest.skip("machine has a single chiplet")


# -- Hit-heavy: warm re-reads stay on the local-hit kernel -------------------

@pytest.mark.parametrize("mk", MACHINES.values(), ids=MACHINES.keys())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_hit_heavy_bit_identical(mk, data):
    m_vec, m_ref = mk(), mk()
    size = 120 * m_vec.block_bytes
    r_vec = m_vec.alloc_region(size, node=0, policy=MemPolicy.BIND, name="hot")
    r_ref = m_ref.alloc_region(size, node=0, policy=MemPolicy.BIND, name="hot")
    n_blocks = r_vec.n_blocks
    core = data.draw(st.integers(0, m_vec.topo.total_cores - 1))

    warm = list(range(n_blocks))
    _warm(m_vec, r_vec, core, warm)
    _warm(m_ref, r_ref, core, warm)

    now = 1000.0
    for _ in range(data.draw(st.integers(1, 3))):
        start = data.draw(st.integers(0, n_blocks - 1))
        count = data.draw(st.integers(1, n_blocks - start))
        mlp = data.draw(st.sampled_from([1.0, 10.0]))
        as_run = data.draw(st.booleans())
        if as_run:
            res_v = m_vec.access_run(core, r_vec, start, count, now=now,
                                     mlp=mlp)
        else:
            res_v = m_vec.access_batch(core, r_vec,
                                       list(range(start, start + count)),
                                       now=now, mlp=mlp)
        res_r = scalar_batch(m_ref, core, r_ref,
                             range(start, start + count), now, mlp=mlp)
        assert res_v.ns == res_r.ns
        assert res_v.finish == res_r.finish
        assert res_v.fill_counts == res_r.fill_counts
        now += res_v.ns
    assert_same_state(m_vec, m_ref)


@pytest.mark.parametrize("mk", MACHINES.values(), ids=MACHINES.keys())
def test_hot_replay_steady_state(mk):
    """Repeated identical runs hit ``access_run``'s hot-replay fast path."""
    m_vec, m_ref = mk(), mk()
    # Half of one slice, so the whole region stays resident after pass 1
    # (on the small test machine that is below VECTOR_MIN — the replay
    # path then never fires and the scalar twin covers both sides).
    size = max(m_vec.caches.caches[0].capacity_bytes // 2, m_vec.block_bytes)
    r_vec = m_vec.alloc_region(size, node=0, policy=MemPolicy.BIND, name="hot")
    r_ref = m_ref.alloc_region(size, node=0, policy=MemPolicy.BIND, name="hot")
    n = r_vec.n_blocks
    now = 0.0
    for _ in range(5):  # pass 1 fills; passes 2+ take the replay path
        res_v = m_vec.access_run(0, r_vec, 0, n, now=now, mlp=4.0)
        res_r = scalar_batch(m_ref, 0, r_ref, range(n), now, mlp=4.0)
        assert res_v.ns == res_r.ns
        assert res_v.finish == res_r.finish
        assert res_v.fill_counts == res_r.fill_counts
        now += res_v.ns
    assert_same_state(m_vec, m_ref)
    hist = m_vec.bandwidth_stats()["fill_latency"]["per_source"]
    local = hist[FillSource.LOCAL_CHIPLET.value]
    assert local["fills"] == 4 * n
    assert local["latency_ns"] > 0.0
    assert local["avg_ns"] == pytest.approx(m_vec.latency.l3_hit)


# -- Peer-heavy: another chiplet holds every block ---------------------------

@pytest.mark.parametrize("mk", MACHINES.values(), ids=MACHINES.keys())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_peer_heavy_bit_identical(mk, data):
    m_vec, m_ref = mk(), mk()
    size = 120 * m_vec.block_bytes
    r_vec = m_vec.alloc_region(size, node=0, policy=MemPolicy.BIND, name="pr")
    r_ref = m_ref.alloc_region(size, node=0, policy=MemPolicy.BIND, name="pr")
    n_blocks = r_vec.n_blocks
    holder_core = data.draw(st.integers(0, m_vec.topo.total_cores - 1))
    reader_core = _core_on_other_chiplet(m_vec, holder_core)

    warm = list(range(n_blocks))
    _warm(m_vec, r_vec, holder_core, warm)
    _warm(m_ref, r_ref, holder_core, warm)

    now = 1000.0
    for _ in range(data.draw(st.integers(1, 3))):
        start = data.draw(st.integers(0, n_blocks - 1))
        count = data.draw(st.integers(1, n_blocks - start))
        mlp = data.draw(st.sampled_from([1.0, 10.0]))
        res_v = m_vec.access_batch(core=reader_core, region=r_vec,
                                   blocks=list(range(start, start + count)),
                                   now=now, mlp=mlp)
        res_r = scalar_batch(m_ref, reader_core, r_ref,
                             range(start, start + count), now, mlp=mlp)
        assert res_v.ns == res_r.ns
        assert res_v.finish == res_r.finish
        assert res_v.fill_counts == res_r.fill_counts
        now += res_v.ns
    assert_same_state(m_vec, m_ref)


# -- Mixed batches with duplicates: the segment splitter ---------------------

@pytest.mark.parametrize("mk", MACHINES.values(), ids=MACHINES.keys())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_mixed_duplicate_batches_bit_identical(mk, data):
    """Hit/peer/miss interleavings with repeats cut segments, stay exact."""
    m_vec, m_ref = mk(), mk()
    size = 150 * m_vec.block_bytes
    r_vec = m_vec.alloc_region(size, node=0, policy=MemPolicy.BIND, name="mx")
    r_ref = m_ref.alloc_region(size, node=0, policy=MemPolicy.BIND, name="mx")
    n_blocks = r_vec.n_blocks
    core_a = data.draw(st.integers(0, m_vec.topo.total_cores - 1))
    core_b = _core_on_other_chiplet(m_vec, core_a)

    # Plant residency: core_a holds the low third, core_b the middle
    # third, the top third stays cold — so one batch can mix all classes.
    third = n_blocks // 3
    _warm(m_vec, r_vec, core_a, list(range(third)))
    _warm(m_ref, r_ref, core_a, list(range(third)))
    _warm(m_vec, r_vec, core_b, list(range(third, 2 * third)))
    _warm(m_ref, r_ref, core_b, list(range(third, 2 * third)))

    now = 1000.0
    for _ in range(data.draw(st.integers(1, 3))):
        base = data.draw(st.lists(st.integers(0, n_blocks - 1),
                                  min_size=1, max_size=80))
        dup_from = data.draw(st.integers(0, len(base) - 1))
        blocks = base + base[dup_from:]
        write = data.draw(st.booleans())
        res_v = m_vec.access_batch(core_a, r_vec, blocks, now=now,
                                   write=write, mlp=4.0)
        res_r = scalar_batch(m_ref, core_a, r_ref, blocks, now,
                             write=write, mlp=4.0)
        assert res_v.ns == res_r.ns
        assert res_v.finish == res_r.finish
        assert res_v.fill_counts == res_r.fill_counts
        assert res_v.invalidations == res_r.invalidations
        now += res_v.ns
    assert_same_state(m_vec, m_ref)


def test_all_duplicates_batch_needs_no_scalar_span(tiny):
    """A pathological all-repeats batch is serviced without a scalar loop.

    The duplicate-aware splitter once cut a boundary at every repeat (one
    merged scalar span); the gather kernel now replays repeats as hits
    directly, so the batch costs *zero* scalar spans.  Bit-identity is
    asserted against a forced-scalar twin.
    """
    ref = machine_mod.small_test_machine()
    r_vec = tiny.alloc_region(64 * tiny.block_bytes, node=0, name="dup")
    r_ref = ref.alloc_region(64 * ref.block_bytes, node=0, name="dup")
    blocks = [5] * (4 * machine_mod.VECTOR_MIN)

    calls = []
    orig = tiny._scalar_span

    def counting_span(*args, **kw):
        calls.append(args)
        return orig(*args, **kw)

    tiny._scalar_span = counting_span
    res_v = tiny.access_batch(0, r_vec, blocks, now=0.0)
    res_r = scalar_batch(ref, 0, r_ref, blocks, 0.0)
    assert len(calls) == 0
    assert res_v.ns == res_r.ns and res_v.finish == res_r.finish
    del tiny._scalar_span
    assert_same_state(tiny, ref)


# -- touch_run vs scalar touch loop ------------------------------------------

@settings(max_examples=80, deadline=None)
@given(
    resident=st.lists(st.integers(0, 30), unique=True, max_size=16),
    touches=st.lists(st.integers(0, 30), min_size=1, max_size=40),
)
def test_touch_run_matches_scalar_touch_loop(resident, touches):
    """Recency order and counters match a per-block touch loop exactly.

    Covers arbitrary interleavings with duplicates, the steady-state
    no-op fast path (when ``touches`` equals the recency tail), and the
    non-resident fallback (which must count misses like the loop).
    """
    topo = Topology(sockets=1, chiplets_per_socket=1, cores_per_chiplet=1,
                    name="t")
    a = CacheSystem(topo, 64 * 64)
    b = CacheSystem(topo, 64 * 64)
    for blk in resident:
        a.fill(0, blk, 64)
        b.fill(0, blk, 64)

    for blk in touches:
        a.caches[0].touch(blk)
    b.touch_run(0, touches)

    ca, cb = a.caches[0], b.caches[0]
    assert list(ca._lru.items()) == list(cb._lru.items())
    assert (ca.hits, ca.misses) == (cb.hits, cb.misses)


def test_touch_run_noop_tail_is_exact():
    """The tail-compare fast path changes nothing but the hit counter."""
    topo = Topology(1, 1, 1, name="t")
    cs = CacheSystem(topo, 64 * 64)
    blocks = list(range(8))
    for blk in blocks:
        cs.fill(0, blk, 64)
    before = list(cs.caches[0]._lru.items())
    cs.touch_run(0, blocks)  # recency tail == blocks: order no-op
    assert list(cs.caches[0]._lru.items()) == before
    assert cs.caches[0].hits == len(blocks)


# -- fill_run(shared=True) vs sequential fill --------------------------------

@settings(max_examples=60, deadline=None)
@given(
    capacity_blocks=st.integers(1, 12),
    k=st.integers(1, 20),
    nbytes=st.integers(1, 200),
    pre=st.integers(0, 8),
)
def test_fill_run_shared_matches_sequential_fill(capacity_blocks, k, nbytes,
                                                 pre):
    """Peer-fill installs join existing holder sets, evictions included."""
    topo = Topology(sockets=1, chiplets_per_socket=3, cores_per_chiplet=1,
                    name="t")
    cap = capacity_blocks * 64
    a = CacheSystem(topo, cap)
    b = CacheSystem(topo, cap)
    blocks = list(range(k))
    for cs in (a, b):
        # Peer-fill precondition: every block already held elsewhere —
        # some by one peer, some by two (multi-holder eviction shapes).
        for blk in blocks:
            cs.fill(1, blk, nbytes)
            if blk % 3 == 0:
                cs.fill(2, blk, nbytes)
        for i in range(pre):  # unrelated residents in the filling slice
            cs.fill(0, 500 + i, 32)

    ev0 = b.caches[0].evictions
    for blk in blocks:
        a.fill(0, blk, nbytes)
    evicted = b.fill_run(0, blocks, nbytes, shared=True)

    ca, cb = a.caches[0], b.caches[0]
    assert list(ca._lru.items()) == list(cb._lru.items())
    assert ca.used_bytes == cb.used_bytes
    assert ca.evictions == cb.evictions
    assert evicted == cb.evictions - ev0
    assert {blk: frozenset(h) for blk, h in a.directory.items()} == \
        {blk: frozenset(h) for blk, h in b.directory.items()}
    assert b.check_directory_consistent()


# -- Fill-latency histogram ---------------------------------------------------

def test_fill_latency_histogram_tracks_sources(tiny):
    """Per-source fills and latency sums line up with the fill counters."""
    # Exactly one slice's worth of blocks, so pass 2 is all local hits.
    r = tiny.alloc_region(tiny.caches.caches[0].capacity_bytes, node=0,
                          name="h")
    n = r.n_blocks
    tiny.access_batch(0, r, list(range(n)), now=0.0)       # DRAM fills
    tiny.access_batch(0, r, list(range(n)), now=1e6)       # local hits
    other = _core_on_other_chiplet(tiny, 0)
    tiny.access_batch(other, r, list(range(n)), now=2e6)   # peer fills
    hist = tiny.bandwidth_stats()["fill_latency"]["per_source"]
    fills = tiny.counters.totals()
    for src, idx in SOURCE_INDEX.items():
        h = hist[src.value]
        assert h["fills"] == fills[idx], src
        if fills[idx]:
            assert h["latency_ns"] > 0.0
            assert h["avg_ns"] == pytest.approx(h["latency_ns"] / fills[idx])
        else:
            assert h["latency_ns"] == 0.0
    assert hist[FillSource.LOCAL_CHIPLET.value]["fills"] >= n


def test_fill_latency_histogram_bit_identical(tiny):
    """The histogram is part of ``bandwidth_stats`` — covered by the
    state comparison, asserted here directly for clarity."""
    ref = machine_mod.small_test_machine()
    r_vec = tiny.alloc_region(64 * tiny.block_bytes, node=0, name="h")
    r_ref = ref.alloc_region(64 * ref.block_bytes, node=0, name="h")
    n = r_vec.n_blocks
    now = 0.0
    for _ in range(3):
        res_v = tiny.access_batch(0, r_vec, list(range(n)), now=now)
        scalar_batch(ref, 0, r_ref, list(range(n)), now)
        now += res_v.ns
    assert tiny.bandwidth_stats()["fill_latency"] == \
        ref.bandwidth_stats()["fill_latency"]
