"""The package's public surface is importable and consistent."""

import importlib

import pytest

import repro


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


@pytest.mark.parametrize("module", [
    "repro.hw", "repro.runtime", "repro.baselines", "repro.sim",
    "repro.workloads", "repro.workloads.graph", "repro.workloads.sgd",
    "repro.workloads.olap", "repro.workloads.oltp", "repro.bench",
])
def test_subpackage_all_resolves(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert getattr(mod, name, None) is not None, f"{module}.{name}"


def test_version():
    assert repro.__version__.count(".") == 2


def test_every_public_module_has_docstring():
    import pkgutil

    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would run the CLI
        mod = importlib.import_module(info.name)
        assert mod.__doc__, f"{info.name} lacks a module docstring"
