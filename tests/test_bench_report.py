"""Report rendering and ASCII plotting."""

from repro.bench.plot import ascii_plot, bar_chart
from repro.bench.report import format_series, format_table


def test_format_table_alignment():
    rows = [{"a": 1, "b": "xy"}, {"a": 22.5, "b": None}]
    text = format_table(rows, ["a", "b"], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "b" in lines[1]
    assert "22.5" in text and "-" in lines[-1]


def test_format_table_empty():
    assert "(no rows)" in format_table([], ["a"], title="T")


def test_format_series_grid():
    series = {"x": [(1, 10.0), (2, 20.0)], "y": [(1, 5.0)]}
    text = format_series(series, "cores", title="S")
    assert "cores" in text
    assert "10.0" in text or "10" in text
    # Missing point renders as '-'.
    assert "-" in text.splitlines()[-1]


def test_ascii_plot_contains_markers_and_bounds():
    series = {"a": [(0, 0.0), (10, 100.0)], "b": [(0, 50.0), (10, 50.0)]}
    text = ascii_plot(series, width=20, height=8, title="P")
    assert "P" in text
    assert "o a" in text and "x b" in text
    assert "100" in text and "0" in text


def test_ascii_plot_degenerate():
    assert "(no data)" in ascii_plot({})
    one = ascii_plot({"a": [(1, 1.0)]})
    assert "a" in one


def test_bar_chart():
    text = bar_chart([("q1", 1.0), ("q2", 2.0)], width=10, title="B")
    lines = text.splitlines()
    assert lines[0] == "B"
    assert lines[2].count("█") > lines[1].count("█")
    assert "(no data)" in bar_chart([])
