"""Execution tracer: spans, migrations, exports."""

import io
import json

from repro.hw.machine import milan, small_test_machine
from repro.runtime.ops import AccessBatch, Compute, YieldPoint
from repro.runtime.policy import CharmStrategy, StaticSpreadStrategy
from repro.runtime.runtime import Runtime
from repro.runtime.trace import EventKind, Tracer


def _traced_run(workers=2, rounds=3):
    rt = Runtime(small_test_machine(), workers, StaticSpreadStrategy(1), seed=3)
    tracer = Tracer(rt)

    def body(wid):
        for _ in range(rounds):
            yield Compute(100.0)
            yield YieldPoint()
        return wid

    for w in range(workers):
        rt.spawn(body, w, pin_worker=w)
    report = rt.run()
    return rt, tracer, report


def test_spans_cover_task_lifetime():
    _, tracer, report = _traced_run()
    summaries = tracer.task_summaries()
    assert len(summaries) == 2
    for s in summaries:
        # 3 yields + final finish = 4 spans per task.
        assert len(s.spans) == 4
        assert s.run_ns > 0
        assert s.first_start <= s.last_end <= report.wall_ns
        for (s0, e0, _), (s1, e1, _) in zip(s.spans, s.spans[1:]):
            assert s0 <= e0 <= s1 <= e1


def test_event_kinds_present():
    _, tracer, _ = _traced_run()
    kinds = {e.kind for e in tracer.events}
    assert EventKind.DISPATCH in kinds
    assert EventKind.PAUSE in kinds
    assert EventKind.FINISH in kinds


def test_occupancy_bounds():
    _, tracer, report = _traced_run()
    occ = tracer.worker_occupancy(report.wall_ns)
    assert occ and all(0 < v <= 1 for v in occ.values())


def test_migration_events_recorded():
    machine = milan(scale=64)
    rt = Runtime(machine, 8, CharmStrategy(), seed=3)
    tracer = Tracer(rt)
    region = rt.alloc_shared(8 << 20, name="big")

    def body(wid):
        for r in range(40):
            yield AccessBatch(region, list(range(r * 16, r * 16 + 16)))
            yield YieldPoint()
        return wid

    for w in range(8):
        rt.spawn(body, w, pin_worker=w)
    report = rt.run()
    assert len(tracer.migrations()) == report.migrations > 0
    assert all(e.detail.startswith("core ") for e in tracer.migrations())


def test_chrome_trace_export():
    _, tracer, _ = _traced_run()
    buf = io.StringIO()
    n = tracer.to_chrome_trace(buf)
    data = json.loads(buf.getvalue())
    assert len(data["traceEvents"]) == n > 0
    assert all("ts" in e for e in data["traceEvents"])


def test_longest_tasks_ordering():
    _, tracer, _ = _traced_run()
    longest = tracer.longest_tasks(2)
    assert len(longest) == 2
    assert longest[0].run_ns >= longest[1].run_ns


def test_double_install_is_noop():
    rt = Runtime(small_test_machine(), 1, StaticSpreadStrategy(1), seed=3)
    tracer = Tracer(rt)
    tracer.install()  # second call must not double-wrap

    def body():
        yield Compute(10.0)

    rt.spawn(body, pin_worker=0)
    rt.run()
    dispatches = [e for e in tracer.events if e.kind is EventKind.DISPATCH]
    assert len(dispatches) == 1
