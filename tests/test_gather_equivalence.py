"""Bit-identity of the gather/scatter kernel vs the scalar path.

PR 3/4 proved the sorted-unique miss, hit, and peer-fill kernels
bit-identical; this suite covers the gather kernel that services
*unsorted, duplicate-laden* batches directly: the inverse-permutation
scatter of per-class delays, the duplicate-replay clock math (repeats
resolve against the first touch's fill), the composite-key bank
grouping, the single ``serve_groups`` call across channel/peer/xlink
server classes, and the SoA eviction/writeback paths underneath.

The contract is the one every kernel in :mod:`repro.hw.vector` obeys:
virtual times, LRU contents *and order*, the sharing directory,
hit/miss/eviction statistics, per-core fill counters, and bandwidth
server state must match a forced-scalar twin exactly — bit for bit —
and every run must leave the directory structurally consistent
(:meth:`CacheSystem.check_directory_consistent`).

Scenario shapes pin the gather-specific classes: raw gups-style streams
(unsorted, occasional repeats), duplicate-heavy batches drawn from a
tiny block pool, reverse-sorted batches, and mixed read/write sequences
interleaved across cores so directory state carries between batches.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.hw.machine as machine_mod
from repro.hw.machine import milan, sapphire_rapids, small_test_machine
from repro.hw.memory import MemPolicy

MACHINES = {
    "small_test_machine": small_test_machine,
    "milan32": lambda: milan(scale=32),
    "sapphire_rapids32": lambda: sapphire_rapids(scale=32),
}


def scalar_batch(machine, core, region, blocks, now, **kw):
    """Service a batch with the vector kernels disabled (reference path)."""
    saved = machine_mod.VECTOR_MIN
    machine_mod.VECTOR_MIN = 1 << 60
    try:
        return machine.access_batch(core, region, list(blocks), now, **kw)
    finally:
        machine_mod.VECTOR_MIN = saved


def machine_state(m):
    """Everything the equivalence contract covers, as comparable values."""
    return {
        "directory": {k: frozenset(v) for k, v in m.caches.directory.items()},
        "lru": [list(c._lru.items()) for c in m.caches.caches],
        "cache_stats": [
            (c.hits, c.misses, c.evictions, c.used_bytes) for c in m.caches.caches
        ],
        "bandwidth": m.bandwidth_stats(),
        "counters": [m.counters.core(c).v for c in range(m.topo.total_cores)],
        "total_accesses": m.total_accesses,
    }


def assert_same_state(m_vec, m_ref):
    sv, sr = machine_state(m_vec), machine_state(m_ref)
    for k in sv:
        assert sv[k] == sr[k], f"state mismatch in {k}"
    assert m_vec.caches.check_directory_consistent()


def _pair(mk, policy=MemPolicy.INTERLEAVE, blocks=96):
    m_vec, m_ref = mk(), mk()
    size = blocks * m_vec.block_bytes
    r_vec = m_vec.alloc_region(size, node=0, policy=policy, name="geq")
    r_ref = m_ref.alloc_region(size, node=0, policy=policy, name="geq")
    return m_vec, r_vec, m_ref, r_ref


def _drive(m_vec, r_vec, m_ref, r_ref, batches):
    """Run (core, blocks, write) batches through both twins, clock-chained."""
    now = 0.0
    for core, blocks, write in batches:
        res_v = m_vec.access_batch(core, r_vec, np.asarray(blocks, dtype=np.int64),
                                   now=now, write=write)
        res_s = scalar_batch(m_ref, core, r_ref, blocks, now, write=write)
        assert res_v.ns == res_s.ns, "virtual time diverged"
        assert res_v.finish == res_s.finish
        assert res_v.fill_counts == res_s.fill_counts
        now += res_v.ns
    assert_same_state(m_vec, m_ref)


# --- hypothesis: arbitrary unsorted duplicate-laden read/write sequences ---

@pytest.mark.parametrize("mk", MACHINES.values(), ids=MACHINES.keys())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_gather_matches_scalar_on_irregular_batches(mk, data):
    policy = data.draw(st.sampled_from([MemPolicy.BIND, MemPolicy.INTERLEAVE]))
    m_vec, r_vec, m_ref, r_ref = _pair(mk, policy)
    n_blocks = r_vec.n_blocks
    total_cores = m_vec.topo.total_cores
    # A tiny pool forces heavy duplication; the full range forces misses.
    hi = data.draw(st.sampled_from([7, n_blocks - 1]))
    batches = []
    for _ in range(data.draw(st.integers(1, 4))):
        core = data.draw(st.integers(0, total_cores - 1))
        blocks = data.draw(st.lists(st.integers(0, hi),
                                    min_size=32, max_size=96))
        write = data.draw(st.booleans())
        batches.append((core, blocks, write))
    _drive(m_vec, r_vec, m_ref, r_ref, batches)


# --- deterministic shapes that pin specific gather classes ---

@pytest.mark.parametrize("mk", MACHINES.values(), ids=MACHINES.keys())
def test_gather_matches_scalar_on_raw_gups_stream(mk):
    """The exact emission shape of the gups workload: raw update order."""
    m_vec, r_vec, m_ref, r_ref = _pair(mk, blocks=256)
    rng = np.random.default_rng(7)
    batches = []
    for i in range(4):
        idx = rng.integers(0, r_vec.n_blocks, size=256, dtype=np.int64)
        batches.append((i % m_vec.topo.total_cores, idx, True))
    _drive(m_vec, r_vec, m_ref, r_ref, batches)


@pytest.mark.parametrize("mk", MACHINES.values(), ids=MACHINES.keys())
def test_gather_matches_scalar_on_duplicate_heavy_writes(mk):
    """~50% repeats per batch: the duplicate-replay clock path."""
    m_vec, r_vec, m_ref, r_ref = _pair(mk, blocks=256)
    rng = np.random.default_rng(11)
    batches = []
    for i in range(4):
        pool = rng.integers(0, r_vec.n_blocks, size=64, dtype=np.int64)
        idx = pool[rng.integers(0, pool.size, size=128)]
        batches.append((i % m_vec.topo.total_cores, idx, bool(i % 2)))
    _drive(m_vec, r_vec, m_ref, r_ref, batches)


@pytest.mark.parametrize("mk", MACHINES.values(), ids=MACHINES.keys())
def test_gather_matches_scalar_on_reverse_sorted_batch(mk):
    """Strictly descending blocks: maximal unsortedness, zero repeats."""
    m_vec, r_vec, m_ref, r_ref = _pair(mk, blocks=96)
    blocks = np.arange(r_vec.n_blocks - 1, -1, -1, dtype=np.int64)
    _drive(m_vec, r_vec, m_ref, r_ref,
           [(0, blocks, False), (0, blocks, True)])


@pytest.mark.parametrize("mk", MACHINES.values(), ids=MACHINES.keys())
def test_gather_peer_fills_after_cross_core_warm(mk):
    """Unsorted re-reads from another chiplet: gathered peer fills."""
    m_vec = mk()
    if m_vec.topo.total_chiplets < 2:
        pytest.skip("machine has a single chiplet")
    m_vec, r_vec, m_ref, r_ref = _pair(mk, blocks=64)
    warm = list(range(r_vec.n_blocks))
    other = next(c for c, ch in enumerate(m_vec._chiplet_of_core)
                 if ch != m_vec._chiplet_of_core[0])
    rng = np.random.default_rng(3)
    reread = rng.permutation(np.arange(r_vec.n_blocks, dtype=np.int64))
    _drive(m_vec, r_vec, m_ref, r_ref,
           [(0, warm, False), (other, reread, False)])


# --- memory-footprint smoke: SoA state must not exceed the dict layout ---

def test_soa_state_smaller_than_dict_layout_at_perf_sizes():
    """The SoA columns must stay within the dict-of-objects footprint.

    Fills a ``milan(scale=32)`` machine's slices well past capacity with
    gups-style random writes (the perf-suite shape), then compares the
    resident bytes of the SoA cache/directory state against the modelled
    pre-SoA layout for the same contents.
    """
    m = milan(scale=32)
    agg_l3 = m.l3_bytes_per_chiplet * m.topo.total_chiplets
    region = m.alloc_region(4 * agg_l3, node=0,
                            policy=MemPolicy.INTERLEAVE, name="smoke")
    rng = np.random.default_rng(7)
    now = 0.0
    for core in range(0, m.topo.total_cores, 4):
        idx = rng.integers(0, region.n_blocks, size=2048, dtype=np.int64)
        now += m.access_batch(core, region, idx, now=now, write=True).ns
    caches = m.caches
    assert caches.check_directory_consistent()
    soa, dict_layout = caches.state_nbytes(), caches.dict_layout_nbytes()
    assert soa <= dict_layout, (
        f"SoA cache state ({soa:,} B) exceeds the modelled dict layout "
        f"({dict_layout:,} B)")
