"""Cross-cutting integration checks of the paper's core claims (small scale)."""

import numpy as np

from repro.baselines import RingStrategy, ShoalStrategy
from repro.hw.machine import milan, sapphire_rapids
from repro.runtime.policy import CharmStrategy
from repro.workloads.graph.generator import kronecker
from repro.workloads.graph.runner import run_graph_algorithm


def test_charm_beats_ring_on_graphs():
    g = kronecker(12, 16, seed=2)
    rc = run_graph_algorithm(milan(scale=32), CharmStrategy(), "bfs", g, 32, seed=5)
    rr = run_graph_algorithm(milan(scale=32), RingStrategy(), "bfs", g, 32, seed=5)
    assert rc.teps > 1.15 * rr.teps


def test_charm_remote_numa_fills_much_lower():
    """Tab. 1's counter contrast."""
    g = kronecker(12, 16, seed=2)
    rc = run_graph_algorithm(milan(scale=32), CharmStrategy(), "bfs", g, 32, seed=5)
    rr = run_graph_algorithm(milan(scale=32), RingStrategy(), "bfs", g, 32, seed=5)
    assert rc.report.counters.remote_numa_chiplet * 5 < max(
        rr.report.counters.remote_numa_chiplet, 1)


def test_advantage_smaller_on_intel():
    """Section 5.3: SPR's better interconnect narrows CHARM's margin."""
    g = kronecker(12, 16, seed=2)

    def gap(machine_fn, cores):
        rc = run_graph_algorithm(machine_fn(), CharmStrategy(), "bfs", g, cores, seed=5)
        rr = run_graph_algorithm(machine_fn(), RingStrategy(), "bfs", g, cores, seed=5)
        return rc.teps / rr.teps

    amd = gap(lambda: milan(scale=32), 32)
    intel = gap(lambda: sapphire_rapids(scale=32), 32)
    assert amd > 1.0 and intel > 0.85
    assert intel < amd + 0.25


def test_spread_adapts_to_working_set():
    """Small working set -> compact; large -> spread (Alg. 1 end to end)."""
    from repro.runtime.ops import AccessBatch, YieldPoint
    from repro.runtime.runtime import Runtime

    def run(size_bytes):
        machine = milan(scale=64)
        rt = Runtime(machine, 8, CharmStrategy(), seed=3)
        region = rt.alloc_shared(size_bytes, name="ws")
        n = region.n_blocks

        def body(wid):
            for r in range(60):
                lo = (wid * 97 + r * 31) % max(n - 16, 1)
                yield AccessBatch(region, list(range(lo, lo + 16)))
                yield YieldPoint()
            return wid

        for w in range(8):
            rt.spawn(body, w, pin_worker=w)
        rt.run()
        return {machine.topo.chiplet_of_core(w.core) for w in rt.workers}

    small = run(64 << 10)        # fits one slice
    large = run(8 << 20)         # needs the socket's aggregate L3
    assert len(small) <= 2
    assert len(large) >= 4
