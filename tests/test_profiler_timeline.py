"""Concurrency timeline bucketing (Fig. 12 curves)."""

from repro.hw.machine import small_test_machine
from repro.runtime.ops import Compute, YieldPoint
from repro.runtime.policy import StaticSpreadStrategy
from repro.runtime.profiler import concurrency_series
from repro.runtime.runtime import Runtime


def _report(workers=4):
    rt = Runtime(small_test_machine(2, 2, 2), workers, StaticSpreadStrategy(1),
                 seed=3, collect_timeline=True)

    def body(wid):
        for _ in range(4):
            yield Compute(200.0)
            yield YieldPoint()
        return wid

    for w in range(workers):
        rt.spawn(body, w, pin_worker=w)
    return rt.run()


def test_series_bounded_by_worker_count():
    report = _report(4)
    series = concurrency_series(report, buckets=10)
    assert series
    assert all(0 <= c <= 4.001 for _, c in series)
    # Mid-run buckets should show real concurrency.
    assert max(c for _, c in series) > 1.5


def test_series_x_monotone():
    series = concurrency_series(_report(2), buckets=8)
    xs = [x for x, _ in series]
    assert xs == sorted(xs)


def test_degenerate_inputs():
    report = _report(1)
    assert concurrency_series(report, buckets=0) == []
    report.concurrency_timeline = []
    assert concurrency_series(report, buckets=5) == []
