"""Load generator for the placement-advisor service (``repro serve``).

Drives an advisor server with a reproducible stream of what-if queries
and reports the numbers the ROADMAP's "heavy traffic" goal is tracked
by: sustained requests/sec, p50/p99 latency, and the per-tier
cache-hit/coalesce ratios the server accumulated during the run.

Traffic model
-------------

- **query mix** — a seeded generator draws distinct queries over the
  DSE geometry axes and both workloads (weights configurable via
  ``--mix``), sized so one cold cell simulates in tens of milliseconds;
  a configurable fraction of queries asks for all three policies at
  once (multi-cell requests exercise cell batching).
- **duplicate ratio** — with probability ``--dup-ratio`` a request
  re-issues a previously issued query instead of a fresh one: the
  "many clients ask the same what-if" regime the coalescer and hot
  cache exist for.  At ``--dup-ratio 0.5+`` a healthy server answers
  the large majority of cells without fresh simulation.
- **open vs closed loop** — with ``--rate R`` arrivals are scheduled at
  R requests/sec regardless of completions (open loop; latency is
  measured from the *scheduled* arrival, so queueing delay counts).
  Without ``--rate``, ``--concurrency`` workers issue back-to-back
  requests over keep-alive connections (closed loop).

Usage::

    python -m repro.bench.loadgen --url http://127.0.0.1:8077 \\
        --requests 200 --concurrency 16 --dup-ratio 0.6
    python -m repro.bench.loadgen --self-host --jobs 2 --requests 100
    python -m repro.bench.loadgen --bench   # record the BENCH serve section

``--bench`` self-hosts a server on a fresh temporary store, runs a
duplicate-heavy load, and writes the gated ``serve`` section of
``BENCH_simperf.json`` (consumed by ``repro.bench.perf --check/--gate``).
"""

import argparse
import asyncio
import contextlib
import json
import os
import random
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.serve.client import AdvisorClient, parse_base_url
from repro.serve.query import POLICIES

__all__ = ["QueryStream", "run_load", "measure_check",
           "measure_obs_overhead", "main"]

#: default request count / concurrency of a CLI run
DEFAULT_REQUESTS = 200
DEFAULT_CONCURRENCY = 16
DEFAULT_DUP_RATIO = 0.5

#: fraction of distinct queries that ask for every policy at once
ALL_POLICY_FRACTION = 0.25

#: geometry axis pools the distinct-query generator draws from (a
#: subset of the DSE lattice — enough spread to defeat any cache by
#: accident-free distinctness, small enough to stay realistic)
_AXIS_CPS = (2, 4, 8)
_AXIS_CPC = (4, 8)
_AXIS_L3 = (4, 8, 16)
_AXIS_CH = (4, 8)
_AXIS_LINK = (0.5, 1.0, 2.0)

#: per-workload size parameters the generator uses: small enough that a
#: cold cell simulates in tens of ms (loadgen measures the *service*,
#: not how long one big simulation takes)
_QUICK_PARAMS = {
    "gups": {"table_bytes": 1 << 20, "updates_per_worker": 128},
    "pagerank": {"graph_scale": 10, "edgefactor": 8,
                 "pagerank_iterations": 1},
}


def parse_mix(spec: str) -> Dict[str, float]:
    """``"gups=0.7,pagerank=0.3"`` → normalized weight dict."""
    weights: Dict[str, float] = {}
    for part in spec.split(","):
        name, _, value = part.partition("=")
        name = name.strip()
        if name not in _QUICK_PARAMS:
            raise ValueError(f"unknown workload {name!r} in --mix")
        weights[name] = float(value) if value else 1.0
    total = sum(weights.values())
    if total <= 0:
        raise ValueError("--mix weights must sum to > 0")
    return {k: v / total for k, v in weights.items()}


class QueryStream:
    """Seeded stream of advisor queries with a controlled duplicate ratio."""

    def __init__(self, seed: int = 7, dup_ratio: float = DEFAULT_DUP_RATIO,
                 mix: Optional[Dict[str, float]] = None):
        if not 0.0 <= dup_ratio < 1.0:
            raise ValueError(f"dup_ratio must be in [0, 1), got {dup_ratio}")
        self._rng = random.Random(seed)
        self.dup_ratio = dup_ratio
        self.mix = mix or {"gups": 0.7, "pagerank": 0.3}
        self._issued: List[Dict[str, Any]] = []
        self.duplicates_issued = 0

    def _distinct(self) -> Dict[str, Any]:
        rng = self._rng
        workloads, weights = zip(*sorted(self.mix.items()))
        workload = rng.choices(workloads, weights=weights)[0]
        query: Dict[str, Any] = {
            "workload": workload,
            "geometry": {
                "cps": rng.choice(_AXIS_CPS),
                "cpc": rng.choice(_AXIS_CPC),
                "l3_mib": rng.choice(_AXIS_L3),
                "channels": rng.choice(_AXIS_CH),
                "link_scale": rng.choice(_AXIS_LINK),
            },
            "params": dict(_QUICK_PARAMS[workload]),
        }
        if rng.random() >= ALL_POLICY_FRACTION:
            query["policy"] = rng.choice(POLICIES)
        return query

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        while True:
            if self._issued and self._rng.random() < self.dup_ratio:
                self.duplicates_issued += 1
                yield self._rng.choice(self._issued)
            else:
                query = self._distinct()
                self._issued.append(query)
                yield query


def _quantile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


async def run_load(url: str, requests: int = DEFAULT_REQUESTS,
                   concurrency: int = DEFAULT_CONCURRENCY,
                   dup_ratio: float = DEFAULT_DUP_RATIO,
                   rate: Optional[float] = None, seed: int = 7,
                   mix: Optional[Dict[str, float]] = None,
                   trace_sample: float = 0.0,
                   slo_ms: Optional[float] = None) -> Dict[str, Any]:
    """Drive one load run against a live server; return the report dict.

    ``trace_sample`` sends that fraction of requests with an
    ``X-Repro-Trace: 1`` header (the server samples them regardless of
    its own ``--trace-sample``); ``slo_ms`` adds a client-side SLO
    section — violation count/ratio against that latency bound plus the
    server's own burn-rate view from ``/stats``.
    """
    host, port = parse_base_url(url)
    stream = QueryStream(seed=seed, dup_ratio=dup_ratio, mix=mix)
    queries = [q for q, _ in zip(iter(stream), range(requests))]
    trace_rng = random.Random(seed + 0x7ace)
    traced = [trace_sample > 0.0 and trace_rng.random() < trace_sample
              for _ in range(requests)]

    probe = AdvisorClient(host, port)
    status, health = await probe.get("/healthz")
    if status != 200:
        raise RuntimeError(f"/healthz answered {status}: {health}")
    _, stats_before = await probe.get("/stats")

    loop = asyncio.get_running_loop()
    queue: "asyncio.Queue[Optional[Tuple[int, Dict[str, Any], Optional[float]]]]" \
        = asyncio.Queue()
    latencies_s: List[float] = [0.0] * requests
    errors = 0
    t0 = loop.time()

    async def feeder() -> None:
        for i, query in enumerate(queries):
            if rate is not None:
                arrival = i / rate
                delay = (t0 + arrival) - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                queue.put_nowait((i, query, t0 + arrival))
            else:
                queue.put_nowait((i, query, None))
        for _ in range(concurrency):
            queue.put_nowait(None)

    async def worker() -> int:
        nonlocal errors
        client = AdvisorClient(host, port)
        try:
            while True:
                item = await queue.get()
                if item is None:
                    return 0
                i, query, scheduled = item
                start = scheduled if scheduled is not None else loop.time()
                headers = {"X-Repro-Trace": "1"} if traced[i] else None
                status, _doc = await client.post("/advise", query,
                                                 headers=headers)
                latencies_s[i] = loop.time() - start
                if status != 200:
                    errors += 1
        finally:
            await client.close()

    feed = asyncio.create_task(feeder())
    await asyncio.gather(*(worker() for _ in range(concurrency)))
    await feed
    wall_s = loop.time() - t0

    _, stats_after = await probe.get("/stats")
    status, health = await probe.get("/healthz")
    await probe.close()

    before, after = stats_before.get("cells", {}), stats_after.get("cells", {})
    delta = {k: after.get(k, 0) - before.get(k, 0)
             for k in ("total", "hot_hits", "store_hits", "coalesced", "computed")}
    answered_cached = delta["hot_hits"] + delta["store_hits"] + delta["coalesced"]
    ordered = sorted(latencies_s)
    slo_section: Optional[Dict[str, Any]] = None
    if slo_ms is not None:
        violations = sum(1 for s in latencies_s if s * 1e3 > slo_ms)
        slo_section = {
            "slo_ms": slo_ms,
            "violations": violations,
            "violation_ratio": round(violations / requests, 4) if requests else 0.0,
            "server": stats_after.get("slo"),
        }
    return {
        "url": url,
        "requests": requests,
        "concurrency": concurrency,
        "dup_ratio": dup_ratio,
        "duplicates_issued": stream.duplicates_issued,
        "rate": rate,
        "loop": "open" if rate is not None else "closed",
        "seed": seed,
        "errors": errors,
        "wall_s": round(wall_s, 3),
        "req_per_sec": round(requests / wall_s, 2) if wall_s > 0 else 0.0,
        "latency_ms": {
            "p50": round(_quantile(ordered, 0.50) * 1e3, 3),
            "p90": round(_quantile(ordered, 0.90) * 1e3, 3),
            "p99": round(_quantile(ordered, 0.99) * 1e3, 3),
            "max": round(ordered[-1] * 1e3, 3) if ordered else 0.0,
            "mean": round(sum(ordered) / len(ordered) * 1e3, 3) if ordered else 0.0,
        },
        "cells": delta,
        "cache_hit_ratio": round(answered_cached / delta["total"], 4)
                           if delta["total"] else 0.0,
        "coalesce_count": delta["coalesced"],
        "traced_requests": sum(traced),
        # "degraded" still means alive-and-answering: a cold burst is
        # *supposed* to burn SLO budget; the slo section reports it
        "healthz_ok": status == 200
                      and health.get("status") in ("ok", "degraded"),
        "slo_degraded": health.get("status") == "degraded",
        **({"slo": slo_section} if slo_section is not None else {}),
        "server_stats": stats_after,
    }


# -- self-hosting (bench / gate / CI) ------------------------------------------


@contextlib.contextmanager
def _temp_store() -> Iterator[str]:
    """Point REPRO_SWEEP_CACHE at a throwaway dir (cold-store runs)."""
    prev = os.environ.get("REPRO_SWEEP_CACHE")
    with tempfile.TemporaryDirectory(prefix="repro-loadgen-") as td:
        os.environ["REPRO_SWEEP_CACHE"] = td
        try:
            yield td
        finally:
            if prev is None:
                os.environ.pop("REPRO_SWEEP_CACHE", None)
            else:
                os.environ["REPRO_SWEEP_CACHE"] = prev


def _self_hosted(run, jobs: int, fresh_store: bool) -> Dict[str, Any]:
    """Start an in-process server, run ``run(url)``, stop it cleanly."""
    from repro.serve.app import ServerThread

    ctx = _temp_store() if fresh_store else contextlib.nullcontext()
    with ctx:
        with ServerThread(jobs=jobs) as server:
            return asyncio.run(run(server.url))


def measure_check(requests: int = 60, concurrency: int = 8,
                  dup_ratio: float = 0.6, jobs: int = 2,
                  seed: int = 7) -> Dict[str, Any]:
    """Small self-contained serve measurement for the perf gate.

    Self-hosts a server on a fresh temporary store and drives the same
    duplicate-heavy closed-loop stream twice (same seed → identical
    queries): the cold pass pays for simulation and must show request
    coalescing; the warm pass is the cache-dominated steady state the
    gate asserts — req/s against the recorded floor and cache-hit
    ratio against 0.9.
    """
    async def both(url: str) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        cold = await run_load(url, requests=requests, concurrency=concurrency,
                              dup_ratio=dup_ratio, seed=seed)
        warm = await run_load(url, requests=requests, concurrency=concurrency,
                              dup_ratio=dup_ratio, seed=seed)
        return cold, warm

    cold, warm = _self_hosted(both, jobs=jobs, fresh_store=True)
    return {
        "requests": requests,
        "concurrency": concurrency,
        "dup_ratio": dup_ratio,
        "jobs": jobs,
        "req_per_sec": warm["req_per_sec"],
        "p50_ms": warm["latency_ms"]["p50"],
        "p99_ms": warm["latency_ms"]["p99"],
        "cache_hit_ratio": warm["cache_hit_ratio"],
        "coalesce_count": cold["coalesce_count"] + warm["coalesce_count"],
        "cold_req_per_sec": cold["req_per_sec"],
        "cold_cache_hit_ratio": cold["cache_hit_ratio"],
        "errors": cold["errors"] + warm["errors"],
        "healthz_ok": cold["healthz_ok"] and warm["healthz_ok"],
    }


def measure_obs_overhead(requests: int = 80, concurrency: int = 8,
                         dup_ratio: float = 0.6, jobs: int = 2,
                         reps: int = 5, seed: int = 7) -> Dict[str, Any]:
    """Warm steady-state throughput with default observability (tracing
    and metrics present but idle) vs a ``--no-obs`` server.

    Both servers live in this process and **share one temporary store**
    (``get_store()`` is process-global per ``REPRO_SWEEP_CACHE`` —
    pointing each server at its own dir would close the other's store
    out from under it).  Each gets one warm-up pass of the identical
    seeded stream, then measured passes run interleaved — obs-off,
    obs-on, repeat — and each side keeps its best rep, the same
    noise-rejection shape as ``perf --telemetry-gate`` on this bimodal
    host.  The ratio is the wall-clock translation of PR 5's
    zero-perturbation contract: disabled observability must keep ≥0.98x
    of no-observability throughput.
    """
    from repro.serve.app import ServerThread

    kw = dict(requests=requests, concurrency=concurrency,
              dup_ratio=dup_ratio, seed=seed)

    with _temp_store():
        with ServerThread(jobs=jobs, observability=False) as off_srv, \
                ServerThread(jobs=jobs, observability=True,
                             trace_sample=0.0) as on_srv:
            async def drive() -> Tuple[List[float], List[float]]:
                await run_load(off_srv.url, **kw)  # warm (cold sims happen here)
                await run_load(on_srv.url, **kw)   # warm from store/hot tiers
                off_rps: List[float] = []
                on_rps: List[float] = []
                for _ in range(reps):
                    off_rps.append((await run_load(off_srv.url, **kw))["req_per_sec"])
                    on_rps.append((await run_load(on_srv.url, **kw))["req_per_sec"])
                return off_rps, on_rps

            off_rps, on_rps = asyncio.run(drive())

    best_off, best_on = max(off_rps), max(on_rps)
    return {
        "requests": requests,
        "concurrency": concurrency,
        "jobs": jobs,
        "reps": reps,
        "req_per_sec_no_obs": round(best_off, 2),
        "req_per_sec_obs_disabled": round(best_on, 2),
        "overhead_ratio": round(best_on / best_off, 4) if best_off else 0.0,
    }


def _bench(args: argparse.Namespace) -> int:
    """Measure serve throughput; record under ``serve`` in
    BENCH_simperf.json (the rest of the report is left untouched)."""
    report = _self_hosted(
        lambda url: run_load(url, requests=args.requests,
                             concurrency=args.concurrency,
                             dup_ratio=args.dup_ratio, rate=args.rate,
                             seed=args.seed, mix=parse_mix(args.mix)),
        jobs=args.jobs, fresh_store=True)
    check = measure_check(jobs=args.jobs)
    obs = measure_obs_overhead(jobs=args.jobs)
    section = {
        "suite": (f"python -m repro.bench.loadgen --bench "
                  f"--requests {args.requests} "
                  f"--concurrency {args.concurrency} "
                  f"--dup-ratio {args.dup_ratio}"),
        "host_cpus": os.cpu_count(),
        "jobs": args.jobs,
        "requests": args.requests,
        "concurrency": args.concurrency,
        "dup_ratio": args.dup_ratio,
        "req_per_sec": report["req_per_sec"],
        "p50_ms": report["latency_ms"]["p50"],
        "p99_ms": report["latency_ms"]["p99"],
        "cells": report["cells"],
        "cache_hit_ratio": report["cache_hit_ratio"],
        "coalesce_count": report["coalesce_count"],
        "errors": report["errors"],
        "check": check,
        "obs": obs,
    }
    out = args.bench_out
    doc: Dict[str, Any] = {}
    if out.exists():
        try:
            doc = json.loads(out.read_text())
        except json.JSONDecodeError:
            pass
    doc["serve"] = section
    out.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    print(f"updated {out} (serve section); "
          f"{section['req_per_sec']} req/s, "
          f"p50 {section['p50_ms']}ms p99 {section['p99_ms']}ms, "
          f"cache-hit {section['cache_hit_ratio']}, "
          f"coalesced {section['coalesce_count']}")
    return 0


# -- CLI ------------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default=None,
                        help="advisor base url (e.g. http://127.0.0.1:8077); "
                             "omit with --self-host/--bench")
    parser.add_argument("--self-host", action="store_true",
                        help="start an in-process server for the duration "
                             "of the run")
    parser.add_argument("--jobs", type=int, default=2,
                        help="simulation workers for --self-host/--bench")
    parser.add_argument("--fresh-store", action="store_true",
                        help="with --self-host: use a throwaway result store")
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS)
    parser.add_argument("--concurrency", type=int, default=DEFAULT_CONCURRENCY)
    parser.add_argument("--dup-ratio", type=float, default=DEFAULT_DUP_RATIO,
                        help="fraction of requests repeating an earlier query")
    parser.add_argument("--rate", type=float, default=None,
                        help="open-loop arrival rate in req/s (default: "
                             "closed loop at --concurrency)")
    parser.add_argument("--mix", default="gups=0.7,pagerank=0.3",
                        help="workload mix weights, e.g. gups=0.7,pagerank=0.3")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--trace-sample", type=float, default=0.0,
                        metavar="P",
                        help="send this fraction of requests with an "
                             "X-Repro-Trace header (forces server-side "
                             "span sampling)")
    parser.add_argument("--trace-out", type=Path, default=None,
                        metavar="PATH",
                        help="after the run, fetch GET /debug/trace and "
                             "write the Chrome-trace JSON here (merge "
                             "with a sim trace via `repro trace --serve`)")
    parser.add_argument("--slo-ms", type=float, default=None, metavar="MS",
                        help="add a client-side SLO section: violations "
                             "against this latency bound + the server's "
                             "burn-rate view")
    parser.add_argument("--report", type=Path, default=None,
                        help="write the full JSON report here")
    parser.add_argument("--bench", action="store_true",
                        help="self-host on a fresh store, run a duplicate-"
                             "heavy load, update the serve section of "
                             "BENCH_simperf.json")
    parser.add_argument("--bench-out", type=Path,
                        default=Path("BENCH_simperf.json"))
    args = parser.parse_args(argv)

    if args.bench:
        return _bench(args)

    async def runner(url: str) -> Dict[str, Any]:
        report = await run_load(
            url, requests=args.requests, concurrency=args.concurrency,
            dup_ratio=args.dup_ratio, rate=args.rate, seed=args.seed,
            mix=parse_mix(args.mix), trace_sample=args.trace_sample,
            slo_ms=args.slo_ms)
        if args.trace_out is not None:
            # fetch inside the run so --self-host servers are still up
            client = AdvisorClient(*parse_base_url(url))
            try:
                status, doc = await client.get("/debug/trace")
            finally:
                await client.close()
            if status == 200:
                args.trace_out.parent.mkdir(parents=True, exist_ok=True)
                args.trace_out.write_text(json.dumps(doc))
                n = len(doc.get("traceEvents", []))
                print(f"serve trace: {n} events -> {args.trace_out}",
                      file=sys.stderr)
            else:
                print(f"trace fetch failed ({status}): {doc}", file=sys.stderr)
        return report

    if args.self_host:
        report = _self_hosted(runner, jobs=args.jobs,
                              fresh_store=args.fresh_store)
    elif args.url:
        report = asyncio.run(runner(args.url))
    else:
        parser.error("give --url, or use --self-host / --bench")

    keys = ["requests", "errors", "wall_s", "req_per_sec", "latency_ms",
            "cells", "cache_hit_ratio", "coalesce_count", "healthz_ok"]
    if args.trace_sample > 0.0:
        keys.append("traced_requests")
    if args.slo_ms is not None:
        keys += ["slo_degraded", "slo"]
    summary = {k: report[k] for k in keys}
    print(json.dumps(summary, indent=2))
    if args.report:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(json.dumps(report, indent=2) + "\n")
        print(f"report -> {args.report}", file=sys.stderr)
    return 0 if report["errors"] == 0 and report["healthz_ok"] else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
