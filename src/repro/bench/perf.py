"""Simulator-throughput microbenchmarks (tracked from PR 1 onward).

Unlike everything else under ``repro.bench``, these benchmarks measure
*host* wall-clock, not virtual time: how many simulated memory accesses
and event-loop steps per second the simulator itself sustains.  Simulator
throughput — not the modelled workloads — is the wall-clock bottleneck
that caps how large a machine/dataset the paper artifacts can sweep, so
its trajectory is tracked in ``BENCH_simperf.json`` at the repo root.

The scenarios stress the distinct service paths of
:meth:`repro.hw.machine.Machine.access_batch` / ``access_run``:

- ``gups``        — GUPS-style random writes to a table far larger than
  the aggregate L3: DRAM fills, channel queueing, write invalidations;
- ``gups_run``    — the same update streams emitted as sorted-unique
  ndarray batches: the vectorized miss-kernel path of
  :mod:`repro.hw.vector`;
- ``gups_unsorted`` — the same update streams emitted raw (unsorted,
  occasional repeats — the real gups workload shape since the gather
  kernel landed): the gather/scatter inverse-permutation path;
- ``gups_dup``    — each batch drawn with replacement from a half-batch
  pool (~50% duplicates): the duplicate-replay path, where repeats
  resolve as L3 hits after the first touch;
- ``stream``      — disjoint sequential read streams: DRAM fills with
  full MLP overlap, no sharing;
- ``stream_run``  — the same streams emitted as run-compressed
  :class:`~repro.runtime.ops.AccessRun` ops: no per-block list ever
  materializes, pure array-kernel servicing;
- ``shared_read`` — every worker re-reads one cache-resident region:
  local hits and directory-served peer fills;
- ``shared_read_hot`` — run-compressed re-reads of a half-slice region:
  the pure local-hit steady state, serviced by the hit-path kernel;
- ``pagerank_micro`` — PageRank via the real graph task generators on a
  cache-resident Kronecker graph: the hit/peer-fill mix the Fig. 7/8
  sweep cells spend their host time in.

Each scenario drives a full :class:`~repro.runtime.runtime.Runtime`
(the artifact path), and is run twice with the same seed as a loud
determinism regression check: virtual results must be bit-identical.

Usage::

    python -m repro.bench.perf            # full run, writes BENCH_simperf.json
    python -m repro.bench.perf --profile  # full run + per-kernel-path wall attribution
    python -m repro.bench.perf --check    # <60 s smoke + determinism gate
    python -m repro.bench.perf --gate     # CI regression gate vs recorded acc/s
    python -m repro.bench.perf --telemetry-gate  # attached-telemetry overhead gate
"""

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.hw.machine import Machine, milan
from repro.runtime.ops import Compute, YieldPoint
from repro.runtime.policy import CharmStrategy
from repro.runtime.program import OpProgram
from repro.runtime.runtime import Runtime
from repro.sim.rng import derive_seed
from repro.workloads.graph.generator import kronecker
from repro.workloads.graph.tasks import GraphState, GraphWorkspace, pagerank_coordinator

SEED = 7
N_WORKERS = 16
MACHINE_SCALE = 32
BATCH_BLOCKS = 256

#: Pre-change throughput of the per-access servicing path, measured by this
#: same harness (at commit 11a0e99, full-mode sizes) before the batched fast
#: path landed; per scenario, the highest of repeated runs.  Kept so
#: BENCH_simperf.json always reports the speedup against the original
#: interpretation loop.  Host wall-clock numbers are hardware-dependent:
#: re-measure on the seed commit when moving to different hardware.
RECORDED_BASELINE: Dict[str, float] = {
    "gups": 130_250.0,
    "stream": 131_812.0,
    "shared_read": 255_351.0,
    # The *_run scenarios replay the same block streams as their namesakes,
    # so they are anchored to the same pre-batching per-access figures.
    "gups_run": 130_250.0,
    "stream_run": 131_812.0,
    # gups-shaped update streams through the same per-access loop; the
    # pre-gather-kernel servicing cost per access was the same regardless
    # of batch order or repeats, so both anchor to the gups figure.
    "gups_unsorted": 130_250.0,
    "gups_dup": 130_250.0,
    # Pre-hit-path-kernel figures, measured at commit 24b780a (scalar
    # per-block hit and peer-fill servicing) against these exact scenario
    # definitions.
    "shared_read_hot": 1_851_997.0,
    "pagerank_micro": 114_115.7,
}


def _machine() -> Machine:
    return milan(scale=MACHINE_SCALE)


def _batched_task(region, batches: List[List[int]], write: bool, nbytes: Optional[int]):
    program = OpProgram()
    for blocks in batches:
        program.batch(region, blocks, write=write, nbytes=nbytes)
        program.yield_()
    yield program
    return len(batches)


def _run_scenario(build, attach=None) -> Dict[str, float]:
    """Build a runtime via ``build()``, time ``run()``, return metrics.

    ``attach``, when given, is called with the built runtime before the
    timed run (the hook the self-profiler and telemetry-overhead gates
    use); if it returns an object with a ``report()`` method, the report
    lands in the result under ``"kernel_profile"``.
    """
    runtime = build()
    attached = attach(runtime) if attach is not None else None
    t0 = time.perf_counter()
    report = runtime.run()
    wall_s = time.perf_counter() - t0
    accesses = runtime.machine.total_accesses
    loop = runtime.loop
    steps = loop.steps
    out = {
        "accesses": accesses,
        "events": steps,
        "host_wall_s": round(wall_s, 4),
        "accesses_per_sec": round(accesses / wall_s, 1) if wall_s > 0 else 0.0,
        "events_per_sec": round(steps / wall_s, 1) if wall_s > 0 else 0.0,
        "steps_per_sec": round(steps / wall_s, 1) if wall_s > 0 else 0.0,
        "sim_wall_ns": report.wall_ns,
        "fill_counts": report.counters.as_row(),
        # Event-loop mechanics: heap traffic and same-clock cohort widths,
        # so orchestration regressions show independently of accesses/sec.
        "event_loop": {
            "heap_pushes": loop.heap_pushes,
            "heap_pops": loop.heap_pops,
            "cohorts": loop.cohorts,
            "cohort_actors": loop.cohort_actors,
            "cohort_max": loop.cohort_max,
            "cohort_mean": round(loop.cohort_actors / loop.cohorts, 2)
            if loop.cohorts else 0.0,
        },
    }
    stats = getattr(runtime.machine.caches, "stats", None)
    if stats is not None:
        out["cache"] = stats()["total"]
    out["bandwidth"] = runtime.machine.bandwidth_stats()
    if attached is not None and hasattr(attached, "report"):
        out["kernel_profile"] = attached.report()
    return out


def _spawn_batches(runtime: Runtime, region, per_worker: List[List[List[int]]],
                   write: bool, nbytes: Optional[int]) -> None:
    for wid, batches in enumerate(per_worker):
        runtime.spawn(_batched_task, region, batches, write, nbytes,
                      pin_worker=wid, name=f"perf-{wid}")


def scenario_gups(updates_per_worker: int, attach=None) -> Dict[str, float]:
    """Random single-word writes to a table ~4x the aggregate L3."""

    def build() -> Runtime:
        machine = _machine()
        runtime = Runtime(machine, N_WORKERS, CharmStrategy(), seed=SEED)
        agg_l3 = machine.l3_bytes_per_chiplet * machine.topo.total_chiplets
        region = runtime.alloc_shared(4 * agg_l3, name="perf-gups")
        per_worker = []
        for wid in range(N_WORKERS):
            rng = np.random.default_rng(derive_seed(SEED, "perf-gups", wid))
            idx = rng.integers(0, region.n_blocks, size=updates_per_worker, dtype=np.int64)
            # int64 slices go straight through AccessBatch to the gather
            # kernel — no list round-trip, no np.asarray on the hot path.
            per_worker.append([
                idx[s : s + BATCH_BLOCKS]
                for s in range(0, updates_per_worker, BATCH_BLOCKS)
            ])
        _spawn_batches(runtime, region, per_worker, write=True, nbytes=64)
        return runtime

    return _run_scenario(build, attach)


def scenario_stream(blocks_per_worker: int, attach=None) -> Dict[str, float]:
    """Disjoint sequential read streams (pure MLP-overlapped DRAM fills)."""

    def build() -> Runtime:
        machine = _machine()
        runtime = Runtime(machine, N_WORKERS, CharmStrategy(), seed=SEED)
        region = runtime.alloc_shared(
            N_WORKERS * blocks_per_worker * machine.block_bytes, name="perf-stream"
        )
        per_worker = []
        for wid in range(N_WORKERS):
            base = wid * blocks_per_worker
            seq = list(range(base, base + blocks_per_worker))
            per_worker.append([
                seq[s : s + BATCH_BLOCKS] for s in range(0, blocks_per_worker, BATCH_BLOCKS)
            ])
        _spawn_batches(runtime, region, per_worker, write=False, nbytes=None)
        return runtime

    return _run_scenario(build, attach)


def scenario_shared_read(rounds: int, attach=None) -> Dict[str, float]:
    """All workers re-read one L3-resident region (hits + peer fills)."""

    def build() -> Runtime:
        machine = _machine()
        runtime = Runtime(machine, N_WORKERS, CharmStrategy(), seed=SEED)
        region = runtime.alloc_shared(machine.l3_bytes_per_chiplet // 2,
                                      read_only=True, name="perf-shared")
        seq = list(range(region.n_blocks))
        batches = [seq[s : s + BATCH_BLOCKS] for s in range(0, len(seq), BATCH_BLOCKS)]
        per_worker = [batches * rounds for _ in range(N_WORKERS)]
        _spawn_batches(runtime, region, per_worker, write=False, nbytes=None)
        return runtime

    return _run_scenario(build, attach)


def _run_task(region, runs: List, write: bool, nbytes: Optional[int]):
    program = OpProgram()
    for start, count in runs:
        program.run(region, start, count, write=write, nbytes=nbytes)
        program.yield_()
    yield program
    return len(runs)


def scenario_stream_run(blocks_per_worker: int, attach=None) -> Dict[str, float]:
    """The ``stream`` layout as run-compressed ``AccessRun`` ops."""

    def build() -> Runtime:
        machine = _machine()
        runtime = Runtime(machine, N_WORKERS, CharmStrategy(), seed=SEED)
        region = runtime.alloc_shared(
            N_WORKERS * blocks_per_worker * machine.block_bytes, name="perf-stream"
        )
        for wid in range(N_WORKERS):
            base = wid * blocks_per_worker
            runs = [
                (base + s, min(BATCH_BLOCKS, blocks_per_worker - s))
                for s in range(0, blocks_per_worker, BATCH_BLOCKS)
            ]
            runtime.spawn(_run_task, region, runs, False, None,
                          pin_worker=wid, name=f"perf-{wid}")
        return runtime

    return _run_scenario(build, attach)


def scenario_gups_run(updates_per_worker: int, attach=None) -> Dict[str, float]:
    """The ``gups`` update streams as sorted-unique ndarray batches.

    This is the exact emission shape of the real gups workload
    (``np.unique`` per update batch), exercising the ndarray entry into
    the vectorized miss kernels including write servicing.
    """

    def build() -> Runtime:
        machine = _machine()
        runtime = Runtime(machine, N_WORKERS, CharmStrategy(), seed=SEED)
        agg_l3 = machine.l3_bytes_per_chiplet * machine.topo.total_chiplets
        region = runtime.alloc_shared(4 * agg_l3, name="perf-gups")
        per_worker = []
        for wid in range(N_WORKERS):
            rng = np.random.default_rng(derive_seed(SEED, "perf-gups", wid))
            idx = rng.integers(0, region.n_blocks, size=updates_per_worker, dtype=np.int64)
            per_worker.append([
                np.unique(idx[s : s + BATCH_BLOCKS])
                for s in range(0, updates_per_worker, BATCH_BLOCKS)
            ])
        _spawn_batches(runtime, region, per_worker, write=True, nbytes=64)
        return runtime

    return _run_scenario(build, attach)


def scenario_gups_unsorted(updates_per_worker: int, attach=None) -> Dict[str, float]:
    """The ``gups`` update streams emitted raw: unsorted, repeats kept.

    This is the exact emission shape of the real gups workload since the
    gather kernel landed — no ``np.unique``, no sorting — exercising the
    inverse-permutation gather/scatter path end to end.
    """

    def build() -> Runtime:
        machine = _machine()
        runtime = Runtime(machine, N_WORKERS, CharmStrategy(), seed=SEED)
        agg_l3 = machine.l3_bytes_per_chiplet * machine.topo.total_chiplets
        region = runtime.alloc_shared(4 * agg_l3, name="perf-gups")
        per_worker = []
        for wid in range(N_WORKERS):
            rng = np.random.default_rng(derive_seed(SEED, "perf-gups", wid))
            idx = rng.integers(0, region.n_blocks, size=updates_per_worker, dtype=np.int64)
            per_worker.append([
                idx[s : s + BATCH_BLOCKS]
                for s in range(0, updates_per_worker, BATCH_BLOCKS)
            ])
        _spawn_batches(runtime, region, per_worker, write=True, nbytes=64)
        return runtime

    return _run_scenario(build, attach)


#: fraction of each ``gups_dup`` batch that is (in expectation) a repeat:
#: indices are drawn with replacement from a pool of
#: ``BATCH_BLOCKS * (1 - DUP_RATE)`` candidate blocks per batch.
DUP_RATE = 0.5


def scenario_gups_dup(updates_per_worker: int, attach=None,
                      dup_rate: float = DUP_RATE) -> Dict[str, float]:
    """Random writes where ~``dup_rate`` of each batch are repeats.

    Each batch draws ``BATCH_BLOCKS`` indices with replacement from a
    per-batch pool of ``BATCH_BLOCKS * (1 - dup_rate)`` random blocks, so
    roughly half the accesses revisit a block already touched earlier in
    the same batch — the duplicate-replay path of the gather kernel,
    where repeats resolve as L3 hits against the in-flight fill.
    """

    def build() -> Runtime:
        machine = _machine()
        runtime = Runtime(machine, N_WORKERS, CharmStrategy(), seed=SEED)
        agg_l3 = machine.l3_bytes_per_chiplet * machine.topo.total_chiplets
        region = runtime.alloc_shared(4 * agg_l3, name="perf-gups")
        pool_size = max(1, int(BATCH_BLOCKS * (1.0 - dup_rate)))
        per_worker = []
        for wid in range(N_WORKERS):
            rng = np.random.default_rng(derive_seed(SEED, "perf-gups-dup", wid))
            batches = []
            for _ in range(0, updates_per_worker, BATCH_BLOCKS):
                pool = rng.integers(0, region.n_blocks, size=pool_size, dtype=np.int64)
                batches.append(pool[rng.integers(0, pool_size, size=BATCH_BLOCKS)])
            per_worker.append(batches)
        _spawn_batches(runtime, region, per_worker, write=True, nbytes=64)
        return runtime

    return _run_scenario(build, attach)


def scenario_shared_read_hot(rounds: int, attach=None) -> Dict[str, float]:
    """Run-compressed re-reads of a region that never leaves any L3 slice.

    The region is half of one slice, so after each worker's first pass
    every access is a local hit serviced by the hit-path kernel — the
    steady state of the paper's cache-resident graph kernels, with none
    of ``shared_read``'s capacity churn.
    """

    def build() -> Runtime:
        machine = _machine()
        runtime = Runtime(machine, N_WORKERS, CharmStrategy(), seed=SEED)
        region = runtime.alloc_shared(machine.l3_bytes_per_chiplet // 2,
                                      read_only=True, name="perf-hot")
        runs = [(0, region.n_blocks)] * rounds
        for wid in range(N_WORKERS):
            runtime.spawn(_run_task, region, runs, False, None,
                          pin_worker=wid, name=f"perf-{wid}")
        return runtime

    return _run_scenario(build, attach)


#: compute_bound shape: ops per round between yields, and the per-op
#: charge (3.0 ns: every partial sum of 3.0-ns steps up to a round is an
#: exact float64 integer, so the fused one-row charge and the per-op
#: charge chain land on bit-identical clocks).
COMPUTE_OPS_PER_ROUND = 64
COMPUTE_OP_NS = 3.0


def _compute_program_task(rounds: int):
    """``rounds`` x (64 computes + yield) as one compiled program.

    The producer pre-fuses each round's straight-line computes into one
    row — exactly what ``OpProgram.compute``'s build-time fusion would
    produce from 64 appends, and bit-identical to 64 sequential per-op
    charges (all partial sums of 3.0-ns steps are exact float64
    integers; the scenario asserts ``sim_wall_ns`` equality against the
    generator path on every run).
    """
    program = OpProgram()
    round_ns = COMPUTE_OPS_PER_ROUND * COMPUTE_OP_NS
    for _ in range(rounds):
        program.compute(round_ns)
        program.yield_()
    yield program
    return rounds


def _compute_generator_task(rounds: int):
    """The same op stream, one generator ``send()`` round trip per op."""
    for _ in range(rounds):
        for _ in range(COMPUTE_OPS_PER_ROUND):
            yield Compute(COMPUTE_OP_NS)
        yield YieldPoint()
    return rounds


def scenario_compute_bound(rounds_per_worker: int, attach=None) -> Dict[str, float]:
    """Pure Compute/Yield mix, no memory traffic: the orchestration tax.

    Runs the identical op stream twice — as compiled programs and as a
    plain per-op generator — and reports ``ops_per_sec`` for both plus
    the ratio.  With zero accesses, gups/stream can't hide orchestration
    cost behind kernel time here; this is the scenario that isolates the
    generator ``send()`` + dispatch overhead the program path removes.
    """

    def build_with(task_fn) -> Runtime:
        machine = _machine()
        runtime = Runtime(machine, N_WORKERS, CharmStrategy(), seed=SEED)
        for wid in range(N_WORKERS):
            runtime.spawn(task_fn, rounds_per_worker,
                          pin_worker=wid, name=f"perf-{wid}")
        return runtime

    total_ops = N_WORKERS * rounds_per_worker * (COMPUTE_OPS_PER_ROUND + 1)
    res = _run_scenario(lambda: build_with(_compute_program_task), attach)
    gen = _run_scenario(lambda: build_with(_compute_generator_task))
    if res["sim_wall_ns"] != gen["sim_wall_ns"]:
        raise AssertionError(
            "compute_bound: program and generator paths diverged — "
            f"{res['sim_wall_ns']} vs {gen['sim_wall_ns']} sim ns"
        )
    res["ops"] = total_ops
    res["ops_per_sec"] = round(total_ops / res["host_wall_s"], 1) \
        if res["host_wall_s"] > 0 else 0.0
    res["gen_ops_per_sec"] = round(total_ops / gen["host_wall_s"], 1) \
        if gen["host_wall_s"] > 0 else 0.0
    res["program_vs_generator"] = round(
        res["ops_per_sec"] / res["gen_ops_per_sec"], 2) \
        if res["gen_ops_per_sec"] > 0 else 0.0
    return res


def scenario_pagerank_micro(iterations: int, attach=None) -> Dict[str, float]:
    """PageRank on a Kronecker graph via the real graph task generators.

    Exercises the exact emission shape of ``repro.workloads.graph.tasks``
    (run-compressed adjacency scans, deduped vertex-state reads,
    owner-exclusive write-backs) on a ``milan(scale=8)`` machine whose
    two packed chiplets hold the whole CSR — the hit/peer-fill-heavy
    regime where the Fig. 7/8 sweep cells spend their host time.
    """

    def build() -> Runtime:
        machine = milan(scale=8)
        runtime = Runtime(machine, N_WORKERS, CharmStrategy(), seed=SEED)
        graph = kronecker(14, edgefactor=16, seed=SEED)
        ws = GraphWorkspace(runtime, graph)
        state = GraphState()
        runtime.spawn(pagerank_coordinator, runtime, ws, state,
                      0, iterations, name="pagerank")
        return runtime

    return _run_scenario(build, attach)


SCENARIOS = {
    "gups": scenario_gups,
    "gups_run": scenario_gups_run,
    "gups_unsorted": scenario_gups_unsorted,
    "gups_dup": scenario_gups_dup,
    "stream": scenario_stream,
    "stream_run": scenario_stream_run,
    "shared_read": scenario_shared_read,
    "shared_read_hot": scenario_shared_read_hot,
    "pagerank_micro": scenario_pagerank_micro,
    "compute_bound": scenario_compute_bound,
}

FULL_SIZES = {"gups": 65536, "gups_run": 65536, "gups_unsorted": 65536,
              "gups_dup": 65536, "stream": 65536,
              "stream_run": 65536, "shared_read": 512,
              "shared_read_hot": 512, "pagerank_micro": 24,
              "compute_bound": 2048}
CHECK_SIZES = {"gups": 4096, "gups_run": 4096, "gups_unsorted": 4096,
               "gups_dup": 4096, "stream": 4096,
               "stream_run": 4096, "shared_read": 4,
               "shared_read_hot": 8, "pagerank_micro": 2,
               "compute_bound": 256}


def _attach_kernel_profiler(runtime: Runtime):
    """``attach`` hook: hang a wall-clock self-profiler off the machine."""
    from repro.obs.selfprof import KernelProfiler

    prof = KernelProfiler()
    runtime.machine.profiler = prof
    return prof


def _attach_null_telemetry(runtime: Runtime):
    """``attach`` hook: telemetry in null-sink mode (bus wired, nothing on)."""
    from repro.obs.telemetry import Telemetry

    return Telemetry.null(runtime)


def run_suite(sizes: Dict[str, int], verbose: bool = True,
              profile: bool = False) -> Dict[str, Dict[str, float]]:
    """Run each scenario named in ``sizes`` twice (determinism gate).

    With ``profile`` a third, self-profiled run per scenario attributes
    host wall-clock to the simulator's kernel paths; its virtual results
    must be bit-identical to the unprofiled runs (the profiler reads
    ``perf_counter`` but never touches simulated state).
    """
    results: Dict[str, Dict[str, float]] = {}
    for name, fn in SCENARIOS.items():
        if name not in sizes:
            continue
        first = fn(sizes[name])
        second = fn(sizes[name])
        for field in ("sim_wall_ns", "accesses", "fill_counts"):
            if first[field] != second[field]:
                raise AssertionError(
                    f"{name}: nondeterministic simulation — {field} differs "
                    f"between identical runs ({first[field]} vs {second[field]})"
                )
        # keep the faster host time of the two runs (less scheduler noise)
        best = first if first["host_wall_s"] <= second["host_wall_s"] else second
        if profile:
            profiled = fn(sizes[name], attach=_attach_kernel_profiler)
            for field in ("sim_wall_ns", "accesses", "fill_counts"):
                if profiled[field] != best[field]:
                    raise AssertionError(
                        f"{name}: self-profiler perturbed the simulation — "
                        f"{field} differs ({profiled[field]} vs {best[field]})"
                    )
            best["kernel_profile"] = profiled.get("kernel_profile", {})
        results[name] = best
        if verbose:
            print(
                f"{name:12s} {best['accesses']:>9d} accesses  "
                f"{best['accesses_per_sec']:>12,.0f} acc/s  "
                f"{best['events_per_sec']:>10,.0f} events/s  "
                f"host {best['host_wall_s']:.2f}s  sim {best['sim_wall_ns']:,.0f}ns"
            )
            if "ops_per_sec" in best:
                print(
                    f"{'':12s} {best['ops']:>9d} ops       "
                    f"{best['ops_per_sec']:>12,.0f} ops/s "
                    f"(generator {best['gen_ops_per_sec']:,.0f} ops/s, "
                    f"{best['program_vs_generator']:.1f}x)"
                )
            if profile and best.get("kernel_profile"):
                shares = ", ".join(
                    f"{path}={rec['share']:.0%}"
                    for path, rec in best["kernel_profile"].items()
                )
                print(f"{'':12s} kernel wall shares: {shares}")
    return results


def write_report(results: Dict[str, Dict[str, float]], path: Path) -> Dict:
    doc = {
        "schema": 1,
        "generated_by": "python -m repro.bench.perf",
        "config": {
            "machine": f"milan(scale={MACHINE_SCALE})",
            "n_workers": N_WORKERS,
            "strategy": "charm",
            "batch_blocks": BATCH_BLOCKS,
            "sizes": FULL_SIZES,
        },
        "baseline_accesses_per_sec": RECORDED_BASELINE or None,
        "scenarios": results,
    }
    if RECORDED_BASELINE:
        doc["speedup_vs_baseline"] = {
            name: round(results[name]["accesses_per_sec"] / RECORDED_BASELINE[name], 2)
            for name in results
            if name in RECORDED_BASELINE and RECORDED_BASELINE[name] > 0
        }
    # The sweep section is owned by `python -m repro.bench.sweep --bench`,
    # the dse section by `python -m repro.bench.dse --bench`, and the
    # serve section by `python -m repro.bench.loadgen --bench`; carry
    # them all across rewrites of the simulator-throughput sections.
    if path.exists():
        try:
            prev = json.loads(path.read_text())
        except json.JSONDecodeError:
            prev = {}
        for owned_elsewhere in ("sweep", "dse", "serve"):
            if owned_elsewhere in prev:
                doc[owned_elsewhere] = prev[owned_elsewhere]
    path.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    return doc


def run_gate(record_path: Path, factor: float) -> int:
    """CI perf-regression gate: reduced sizes vs recorded throughput.

    Runs every scenario at ``CHECK_SIZES`` and fails if any falls below
    ``factor`` x the accesses/sec recorded in ``BENCH_simperf.json`` —
    so future PRs cannot silently regress the fast paths.  The reduced
    sizes understate steady-state throughput (fixed per-run overheads
    weigh more), which the 0.5x default factor absorbs.
    """
    if not record_path.exists():
        print(f"FAIL: no recorded report at {record_path}", file=sys.stderr)
        return 1
    doc = json.loads(record_path.read_text())
    recorded = doc.get("scenarios", {})
    results = run_suite(CHECK_SIZES)
    failures = []
    for name, res in results.items():
        # Access-free scenarios (compute_bound) gate on ops/sec instead.
        metric = "ops_per_sec" if "ops_per_sec" in res else "accesses_per_sec"
        unit = "ops/s" if metric == "ops_per_sec" else "acc/s"
        rec = recorded.get(name, {}).get(metric)
        if not rec:
            print(f"{name:12s} (no recorded figure — skipped)")
            continue
        floor = factor * rec
        ratio = res[metric] / rec
        status = "ok" if res[metric] >= floor else "FAIL"
        print(f"{name:12s} {res[metric]:>12,.0f} {unit}  "
              f"recorded {rec:>12,.0f}  ratio {ratio:.2f}  {status}")
        if status == "FAIL":
            failures.append(name)
    failures.extend(run_dse_gate(doc.get("dse"), factor))
    failures.extend(run_serve_gate(doc.get("serve"), factor))
    failures.extend(run_serve_obs_gate(doc.get("serve")))
    if failures:
        print(f"FAIL: below {factor:.2f}x recorded throughput: "
              f"{failures}", file=sys.stderr)
        return 1
    print(f"perf gate OK (all scenarios >= {factor:.2f}x recorded acc/s)")
    return 0


def run_dse_gate(dse_section: Optional[Dict], factor: float) -> List[str]:
    """DSE sweep-throughput leg of the perf gate.

    Re-measures the recorded ``dse.check`` configuration (tiny budget,
    cold store then resume) and fails on cells/sec below ``factor`` ×
    recorded, or on a resume that doesn't answer ≥90% of cells from the
    result store — the two numbers BENCH_simperf.json tracks for the
    sweep engine itself.  Returns failure labels (empty = ok).
    """
    rec = (dse_section or {}).get("check")
    if not rec:
        print(f"{'dse':12s} (no recorded dse.check section — skipped)")
        return []
    from repro.bench import dse as dse_mod

    meas = dse_mod.measure_check(budget=rec.get("budget", 24),
                                 jobs=rec.get("jobs", 2))
    failures = []
    rec_cps = rec.get("cells_per_sec", 0)
    if rec_cps:
        ratio = meas["cells_per_sec"] / rec_cps
        status = "ok" if ratio >= factor else "FAIL"
        print(f"{'dse':12s} {meas['cells_per_sec']:>12,.2f} cells/s "
              f"recorded {rec_cps:>12,.2f}  ratio {ratio:.2f}  {status}")
        if status == "FAIL":
            failures.append("dse:cells_per_sec")
    hit_ratio = meas["resume_hit_ratio"]
    status = "ok" if hit_ratio >= 0.9 else "FAIL"
    print(f"{'dse-resume':12s} store hit ratio {hit_ratio:.2f} "
          f"(floor 0.90)  {status}")
    if status == "FAIL":
        failures.append("dse:resume_hit_ratio")
    return failures


def run_serve_gate(serve_section: Optional[Dict], factor: float) -> List[str]:
    """Advisor-service leg of the perf gate.

    Re-measures the recorded ``serve.check`` configuration — a
    self-hosted advisor on a fresh store driven with a duplicate-heavy
    closed loop — and fails on req/s below ``factor`` × recorded, or on
    a cache-hit ratio below 0.90 on that duplicate-heavy stream (the
    coalescer + hot cache + store must absorb repeats without fresh
    simulation).  Returns failure labels (empty = ok).
    """
    rec = (serve_section or {}).get("check")
    if not rec:
        print(f"{'serve':12s} (no recorded serve.check section — skipped)")
        return []
    from repro.bench import loadgen as loadgen_mod

    meas = loadgen_mod.measure_check(
        requests=rec.get("requests", 60),
        concurrency=rec.get("concurrency", 8),
        dup_ratio=rec.get("dup_ratio", 0.6),
        jobs=rec.get("jobs", 2))
    failures = []
    rec_rps = rec.get("req_per_sec", 0)
    if rec_rps:
        ratio = meas["req_per_sec"] / rec_rps
        status = "ok" if ratio >= factor else "FAIL"
        print(f"{'serve':12s} {meas['req_per_sec']:>12,.2f} req/s   "
              f"recorded {rec_rps:>12,.2f}  ratio {ratio:.2f}  {status}")
        if status == "FAIL":
            failures.append("serve:req_per_sec")
    hit_ratio = meas["cache_hit_ratio"]
    status = "ok" if hit_ratio >= 0.9 else "FAIL"
    print(f"{'serve-cache':12s} cache hit ratio {hit_ratio:.2f} "
          f"(floor 0.90, dup-heavy stream)  {status}")
    if status == "FAIL":
        failures.append("serve:cache_hit_ratio")
    if meas["errors"] or not meas["healthz_ok"]:
        print(f"{'serve-health':12s} errors={meas['errors']} "
              f"healthz_ok={meas['healthz_ok']}  FAIL")
        failures.append("serve:health")
    return failures


def run_serve_obs_gate(serve_section: Optional[Dict],
                       min_ratio: float = 0.98) -> List[str]:
    """Wall-clock observability overhead leg of the perf gate.

    PR 5's zero-perturbation contract, translated to wall time: a
    default server (metrics registered, SLO windows live, tracing at
    sample rate 0) must keep ``min_ratio`` (<2% overhead) of a
    ``--no-obs`` server's warm steady-state req/s.  Both servers are
    measured live, interleaved, best-of-reps — same-run comparison, so
    host speed cancels out (unlike the absolute req/s floors, no
    hardware factor applies).  Returns failure labels (empty = ok).
    """
    if serve_section is None:
        print(f"{'serve-obs':12s} (no recorded serve section — skipped)")
        return []
    from repro.bench import loadgen as loadgen_mod

    rec = serve_section.get("obs", {})
    meas = loadgen_mod.measure_obs_overhead(
        requests=rec.get("requests", 80),
        concurrency=rec.get("concurrency", 8),
        jobs=rec.get("jobs", 2),
        reps=rec.get("reps", 5))
    ratio = meas["overhead_ratio"]
    status = "ok" if ratio >= min_ratio else "FAIL"
    print(f"{'serve-obs':12s} obs-disabled {meas['req_per_sec_obs_disabled']:>10,.2f} "
          f"req/s vs no-obs {meas['req_per_sec_no_obs']:>10,.2f}  "
          f"ratio {ratio:.3f} (floor {min_ratio:.2f})  {status}")
    if status == "FAIL":
        return ["serve:obs_overhead"]
    return []


#: scenarios and sizes the telemetry-overhead gate measures: the two pure
#: access-servicing paths (where per-batch instrumentation cost shows
#: first), sized so each run lasts a few hundred ms — at the ~50 ms check
#: sizes, host scheduler noise alone exceeds the 2% bound being asserted.
TELEMETRY_GATE_SIZES = {"stream": 32768, "gups": 16384}


def run_telemetry_gate(max_overhead: float, reps: int = 5) -> int:
    """Gate: attached-but-idle telemetry must cost < ``max_overhead``.

    Runs ``stream``/``gups``, interleaving bare runs with runs that have
    a null-mode :class:`Telemetry` attached (event bus wired into
    machine and caches, no subscribers, no tracer/sampler).  Virtual
    results must be bit-identical, and the min-of-``reps`` host
    wall-clock ratio must stay below the bound — the "observation never
    perturbs, and off means off" contract.
    """
    failures = []
    for name, size in TELEMETRY_GATE_SIZES.items():
        fn = SCENARIOS[name]
        off_walls: List[float] = []
        on_walls: List[float] = []
        for _ in range(reps):
            off = fn(size)
            on = fn(size, attach=_attach_null_telemetry)
            for field in ("sim_wall_ns", "accesses", "fill_counts"):
                if off[field] != on[field]:
                    print(f"FAIL: {name}: telemetry perturbed the simulation — "
                          f"{field} {off[field]} vs {on[field]}", file=sys.stderr)
                    return 1
            off_walls.append(off["host_wall_s"])
            on_walls.append(on["host_wall_s"])
        overhead = min(on_walls) / min(off_walls) - 1.0
        status = "ok" if overhead < max_overhead else "FAIL"
        print(f"{name:12s} off {min(off_walls):.3f}s  on {min(on_walls):.3f}s  "
              f"overhead {overhead:+.2%}  {status}")
        if status == "FAIL":
            failures.append(name)
    if failures:
        print(f"FAIL: telemetry-off overhead >= {max_overhead:.0%} on: {failures}",
              file=sys.stderr)
        return 1
    print(f"telemetry gate OK (attached-idle overhead < {max_overhead:.0%}, "
          "virtual results bit-identical)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="fast smoke mode (<60 s): tiny sizes, no report file")
    parser.add_argument("--gate", action="store_true",
                        help="CI regression gate: reduced sizes, fail below "
                             "--gate-factor x the recorded accesses/sec")
    parser.add_argument("--profile", action="store_true",
                        help="also run each scenario once with the kernel-path "
                             "self-profiler attached and record the wall-clock "
                             "attribution (full mode writes it to the report)")
    parser.add_argument("--telemetry-gate", action="store_true",
                        help="gate: attached-but-idle telemetry overhead on "
                             "stream/gups must stay below --overhead, with "
                             "bit-identical virtual results")
    parser.add_argument("--overhead", type=float, default=0.02,
                        help="telemetry-gate bound as a fraction (default 0.02)")
    parser.add_argument("--gate-factor", type=float, default=0.5,
                        help="gate threshold as a fraction of recorded acc/s")
    parser.add_argument("--min-aps", type=float, default=20_000.0,
                        help="fail if any scenario falls below this accesses/sec floor")
    parser.add_argument("--out", type=Path, default=Path("BENCH_simperf.json"),
                        help="report path (full mode only); gate mode reads it")
    args = parser.parse_args(argv)

    if args.gate:
        return run_gate(args.out, args.gate_factor)
    if args.telemetry_gate:
        return run_telemetry_gate(args.overhead)

    if not args.check:
        out_dir = args.out.resolve().parent
        if not out_dir.is_dir():
            parser.error(f"--out directory does not exist: {out_dir}")

    sizes = CHECK_SIZES if args.check else FULL_SIZES
    t0 = time.perf_counter()
    results = run_suite(sizes, profile=args.profile)
    elapsed = time.perf_counter() - t0

    # Access-free scenarios (compute_bound) are exempt from the acc/s floor.
    slow = [n for n, r in results.items()
            if r["accesses"] and r["accesses_per_sec"] < args.min_aps]
    if slow:
        print(f"FAIL: scenarios below {args.min_aps:,.0f} accesses/sec floor: {slow}",
              file=sys.stderr)
        return 1
    if args.check:
        # DSE sweep-engine smoke: a tiny cold sweep must complete and a
        # resumed run must answer every cell from the result store.
        from repro.bench import dse as dse_mod

        meas = dse_mod.measure_check()
        print(f"{'dse':12s} {meas['cells']:>5d} cells     "
              f"{meas['cells_per_sec']:>8.1f} cells/s  "
              f"resume hit ratio {meas['resume_hit_ratio']:.2f}")
        if meas["resume_hit_ratio"] < 1.0:
            print("FAIL: dse resume did not answer every cell from the "
                  "result store", file=sys.stderr)
            return 1
        # Advisor-service smoke: a self-hosted server must answer a
        # duplicate-heavy burst with >=90% of cells from cache tiers.
        from repro.bench import loadgen as loadgen_mod

        serve = loadgen_mod.measure_check()
        print(f"{'serve':12s} {serve['requests']:>5d} reqs      "
              f"{serve['req_per_sec']:>8.1f} req/s    "
              f"cache hit ratio {serve['cache_hit_ratio']:.2f}  "
              f"coalesced {serve['coalesce_count']}")
        if serve["errors"] or not serve["healthz_ok"]:
            print("FAIL: advisor service answered errors during the check "
                  "burst", file=sys.stderr)
            return 1
        if serve["cache_hit_ratio"] < 0.9:
            print("FAIL: duplicate-heavy serve check answered < 90% of "
                  "cells from cache tiers", file=sys.stderr)
            return 1
        print(f"perf check OK in {elapsed:.1f}s (determinism + throughput floor)")
        return 0
    doc = write_report(results, args.out)
    print(f"wrote {args.out}")
    if "speedup_vs_baseline" in doc:
        print("speedup vs pre-batching baseline:",
              json.dumps(doc["speedup_vs_baseline"]))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
