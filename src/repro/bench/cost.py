"""Per-cell cost model for the sweep scheduler.

A 10,000-cell sweep lives or dies on scheduling: with unordered
submission, one straggler cell landing last serializes the tail of the
run, and thousands of sub-50ms cells pay executor IPC per cell.  The
fix (longest-job-first ordering + chunked submission, in
:mod:`repro.bench.sweep`) needs *estimated* per-cell cost before any
cell has run.  This module provides it:

- :meth:`ExperimentCell.work_hint` (see :mod:`repro.bench.cells`) gives
  a dimensionless size that is monotone in real cost within one
  experiment;
- the result store (:mod:`repro.bench.store`) records measured wall
  clock and the work hint for every executed cell, across runs and code
  versions;
- :class:`CostModel` calibrates a per-experiment *seconds per work
  unit* rate as the median of ``wall_s / work_units`` over stored
  samples, with two fallbacks: an unseen experiment uses the median
  rate across all experiments, and an empty calibration set degrades to
  the raw work hint (which still orders cells sensibly — LJF only needs
  relative order, not absolute seconds).

Medians, not means: a sweep's first run executes cells while the OS is
also warming page caches and importing numpy in workers, so the sample
set has heavy right-tail noise.
"""

from dataclasses import dataclass, field
from statistics import median
from typing import Dict, Iterable, Optional, Tuple

from repro.bench.cells import ExperimentCell

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Estimates wall-clock seconds for a cell from calibration samples.

    ``rates`` maps experiment name to seconds-per-work-unit; a missing
    experiment falls back to ``default_rate``; ``default_rate=None``
    (empty calibration) makes :meth:`estimate` return the bare work
    hint.  Estimates are ``hint × positive-rate``, so they are monotone
    in the work hint by construction.
    """

    rates: Dict[str, float] = field(default_factory=dict)
    default_rate: Optional[float] = None

    @classmethod
    def from_samples(cls, samples: Iterable[Tuple[str, float, float]],
                     ) -> "CostModel":
        """Calibrate from ``(experiment, work_units, wall_s)`` rows."""
        per_exp: Dict[str, list] = {}
        for experiment, work_units, wall_s in samples:
            if work_units is None or wall_s is None:
                continue
            if work_units <= 0 or wall_s < 0:
                continue
            per_exp.setdefault(experiment, []).append(wall_s / work_units)
        rates = {exp: median(ratios) for exp, ratios in per_exp.items()}
        default = median(rates.values()) if rates else None
        return cls(rates=rates, default_rate=default)

    @classmethod
    def from_store(cls, store) -> "CostModel":
        """Calibrate from a :class:`repro.bench.store.ResultStore`."""
        return cls.from_samples(store.calibration_samples())

    def estimate(self, cell: ExperimentCell) -> float:
        hint = cell.work_hint()
        rate = self.rates.get(cell.experiment, self.default_rate)
        if rate is None or rate <= 0:
            return hint
        return hint * rate

    @property
    def calibrated(self) -> bool:
        return bool(self.rates)
