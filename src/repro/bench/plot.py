"""ASCII plotting for experiment series (figures in a terminal).

Renders the scalability/speedup series that the paper shows as line
charts.  Used by the CLI (`python -m repro`) so every figure can be
eyeballed without matplotlib.
"""

from typing import Dict, List, Sequence, Tuple


def ascii_plot(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Plot named (x, y) series on a shared-axis character grid."""
    live = {n: pts for n, pts in series.items() if pts}
    if not live:
        return f"{title}\n(no data)"
    xs = [x for pts in live.values() for x, _ in pts]
    ys = [y for pts in live.values() for _, y in pts]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1
    if y1 == y0:
        y1 = y0 + 1

    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    legend = []
    for i, (name, pts) in enumerate(sorted(live.items())):
        mark = markers[i % len(markers)]
        legend.append(f"{mark} {name}")
        for x, y in pts:
            col = round((x - x0) / (x1 - x0) * (width - 1))
            row = height - 1 - round((y - y0) / (y1 - y0) * (height - 1))
            grid[row][col] = mark

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y1:>10.4g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y0:>10.4g} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + " └" + "─" * width)
    lines.append(" " * 12 + f"{x0:<10.4g}{x_label:^{max(width - 20, 4)}}{x1:>10.4g}")
    lines.append("   " + "   ".join(legend))
    return "\n".join(lines)


def bar_chart(rows: Sequence[Tuple[str, float]], width: int = 48, title: str = "") -> str:
    """Horizontal bar chart for per-item values (e.g. Fig. 13 speedups)."""
    if not rows:
        return f"{title}\n(no data)"
    peak = max(v for _, v in rows)
    label_w = max(len(n) for n, _ in rows)
    lines = [title] if title else []
    for name, value in rows:
        bar = "█" * max(1, round(value / peak * width)) if peak > 0 else ""
        lines.append(f"{name:<{label_w}} {bar} {value:.3g}")
    return "\n".join(lines)
