"""Design-space exploration: thousand-config Pareto sweeps over geometry.

This is the feature the sweep engine was rebuilt to carry: a
budget-driven generator of machine configurations — chiplet count ×
cores/chiplet × L3 slice size × DRAM channels × inter-chiplet link
latency, anchored on the EPYC Milan and Xeon Sapphire Rapids testbeds
(:data:`repro.hw.machine.GEOMETRY_ANCHORS`) — fanned as (config ×
workload × policy) cells through the parallel sweep pool and reduced to

- **Pareto frontiers** per workload: throughput vs total L3 capacity vs
  total channel count (a config is on the frontier if nothing beats it
  on every axis at once), and
- a **"where does CHARM win" summary**: per-config speedup of the CHARM
  policy over ring and static placement, ranked and aggregated along
  the geometry axes that drive it (chiplet count, link latency).

Workloads are chosen so every axis bites at DSE scale (machine scale
128): 3-iteration PageRank re-traverses its graph enough for L3
capacity, link latency, and placement policy to separate configs; GUPS
on a DRAM-resident table exposes channel count and geometry.

Usage::

    python -m repro dse --budget 1000 --jobs 0        # sweep + reduce
    python -m repro.bench.dse --bench --jobs 4        # record BENCH dse section

Outputs land under ``results/dse/`` (``cells.csv``, per-workload
``frontier_*.csv``, ``summary.txt``).  Serial and parallel runs produce
bit-identical CSVs — the reduction consumes the merged result dict, and
the sweep engine guarantees scheduling never changes a result bit.
"""

import argparse
import contextlib
import csv
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.bench.cells import ExperimentCell, register
from repro.hw.machine import GEOMETRY_ANCHORS, MIB, MachineGeometry

__all__ = [
    "DEFAULT_BUDGET",
    "dse_cells",
    "generate_configs",
    "pareto_frontier",
    "run_dse",
    "measure_check",
]

#: L3-capacity divisor (and implicit dataset shrink) for every DSE
#: machine — same trick as the named presets: capacity boundaries are
#: preserved while each cell simulates tens of milliseconds of work.
DSE_MACHINE_SCALE = 128

#: default cell budget of ``python -m repro dse``
DEFAULT_BUDGET = 1000

#: cells per config: len(WORKLOADS) × len(POLICIES)
WORKLOADS = ("pagerank", "gups")
POLICIES = ("charm", "ring", "static-2")

#: worker-count cap per cell — beyond this the simulated work per cell
#: grows without changing which geometry wins
MAX_WORKERS = 48

# The config lattice.  Values were chosen (and sensitivity-tested) so
# each axis produces measurable spread at DSE_MACHINE_SCALE: the L3 axis
# straddles the PageRank working set, the channel axis saturates GUPS at
# the low end, and the link axis separates placement policies.
AXIS_CHIPLETS_PER_SOCKET = (2, 4, 8, 12)
AXIS_CORES_PER_CHIPLET = (4, 8, 12)
AXIS_L3_MIB = (4, 8, 16, 32)
AXIS_CHANNELS = (4, 8, 12)
AXIS_LINK_SCALE = (0.5, 1.0, 2.0)


def full_lattice() -> List[MachineGeometry]:
    """Every lattice point, in canonical axis order (deterministic)."""
    configs = []
    for cps in AXIS_CHIPLETS_PER_SOCKET:
        for cpc in AXIS_CORES_PER_CHIPLET:
            for l3 in AXIS_L3_MIB:
                for ch in AXIS_CHANNELS:
                    for lk in AXIS_LINK_SCALE:
                        configs.append(MachineGeometry(
                            chiplets_per_socket=cps, cores_per_chiplet=cpc,
                            l3_mib_per_chiplet=l3, mem_channels_per_socket=ch,
                            link_latency_scale=lk))
    return configs


def generate_configs(budget: int) -> List[MachineGeometry]:
    """Budget-driven config selection: ``budget // cells-per-config``
    geometries, anchors first, the rest an evenly-strided sample of the
    canonical lattice.

    Deterministic in ``budget`` alone, so two runs (or serial vs
    parallel) at the same budget explore the identical design space.
    Every returned geometry is validated.
    """
    if budget < len(WORKLOADS) * len(POLICIES):
        raise ValueError(
            f"budget {budget} is below one config's cell count "
            f"({len(WORKLOADS) * len(POLICIES)})")
    n_configs = budget // (len(WORKLOADS) * len(POLICIES))
    lattice = full_lattice()
    configs: List[MachineGeometry] = [
        anchor for anchor in GEOMETRY_ANCHORS[:n_configs]]
    remaining = n_configs - len(configs)
    if remaining >= len(lattice):
        configs.extend(lattice)
    elif remaining > 0:
        # evenly spaced indices including both lattice endpoints
        if remaining == 1:
            picked = [0]
        else:
            picked = sorted({round(i * (len(lattice) - 1) / (remaining - 1))
                             for i in range(remaining)})
        # index collisions (tiny budgets) are topped up from the front
        cursor = 0
        while len(picked) < remaining:
            if cursor not in picked:
                picked.append(cursor)
            cursor += 1
        configs.extend(lattice[i] for i in sorted(picked)[:remaining])
    for geo in configs:
        geo.validate()
    return configs


# -- cells ---------------------------------------------------------------------


def _config_cells(geo: MachineGeometry) -> List[ExperimentCell]:
    cores = min(geo.total_cores, MAX_WORKERS)
    cells = []
    for workload in WORKLOADS:
        for policy in POLICIES:
            params: Dict[str, Any] = {
                "workload": workload,
                "cps": geo.chiplets_per_socket,
                "cpc": geo.cores_per_chiplet,
                "l3_mib": geo.l3_mib_per_chiplet,
                "channels": geo.mem_channels_per_socket,
                "link_scale": geo.link_latency_scale,
            }
            if workload == "pagerank":
                params.update(graph_scale=12, edgefactor=8, graph_seed=2,
                              pagerank_iterations=3)
            else:
                params.update(table_bytes=4 * MIB, updates_per_worker=512)
            cells.append(ExperimentCell.make(
                "dse", machine_preset="dse", strategy=policy, cores=cores,
                **params))
    return cells


def dse_cells(budget: int) -> List[ExperimentCell]:
    """The full cell list for one budget, in merge order."""
    cells = []
    for geo in generate_configs(budget):
        cells.extend(_config_cells(geo))
    return cells


def _geometry_of(cell: ExperimentCell) -> MachineGeometry:
    p = cell.params
    return MachineGeometry(
        chiplets_per_socket=p["cps"], cores_per_chiplet=p["cpc"],
        l3_mib_per_chiplet=p["l3_mib"], mem_channels_per_socket=p["channels"],
        link_latency_scale=p["link_scale"])


def _run_dse_cell(cell: ExperimentCell) -> Dict[str, Any]:
    """One (config × workload × policy) simulation."""
    from repro.bench import datasets
    from repro.bench.experiments import _strategy_for
    from repro.workloads.graph.runner import run_graph_algorithm
    from repro.workloads.gups import run_gups

    p = cell.params
    machine = _geometry_of(cell).build(scale=DSE_MACHINE_SCALE)
    strategy = _strategy_for(cell.strategy, machine)
    if p["workload"] == "gups":
        res = run_gups(machine, strategy, cell.cores, p["table_bytes"],
                       updates_per_worker=p["updates_per_worker"],
                       seed=cell.seed)
        return {"metric": float(res.mups), "unit": "MUPS"}
    graph = datasets.graph(p["graph_scale"], p["edgefactor"],
                           seed=p["graph_seed"])
    res = run_graph_algorithm(
        machine, strategy, "pagerank", graph, cell.cores, seed=cell.seed,
        pagerank_iterations=p["pagerank_iterations"])
    return {"metric": float(res.mteps), "unit": "MTEPS"}


# -- reduction -----------------------------------------------------------------


def pareto_frontier(rows: Sequence[Dict[str, Any]],
                    objectives: Sequence[Tuple[str, str]],
                    ) -> List[Dict[str, Any]]:
    """Non-dominated rows under ``objectives`` (``(key, "max"|"min")``).

    Row A dominates row B when A is at least as good on every objective
    and strictly better on at least one.  Exact all-axis ties dominate
    neither way, so tied rows are all kept.  Output preserves input
    order — with deterministic input, the frontier is deterministic.
    """
    for key, sense in objectives:
        if sense not in ("max", "min"):
            raise ValueError(f"objective sense must be max/min, got {sense!r}")

    def dominates(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
        strictly = False
        for key, sense in objectives:
            av, bv = a[key], b[key]
            if sense == "min":
                av, bv = -av, -bv
            if av < bv:
                return False
            if av > bv:
                strictly = True
        return strictly

    return [r for r in rows
            if not any(dominates(other, r) for other in rows if other is not r)]


#: frontier objectives: best throughput from the least cache silicon and
#: the fewest memory channels (the two cost axes of the design space)
FRONTIER_OBJECTIVES = (
    ("metric", "max"), ("total_l3_mib", "min"), ("total_channels", "min"))


def _rows_from_results(cells: List[ExperimentCell],
                       results: Dict[str, Any]) -> List[Dict[str, Any]]:
    rows = []
    for cell in cells:
        geo = _geometry_of(cell)
        res = results[cell.cell_id]
        rows.append({
            "config": geo.config_id,
            "cps": geo.chiplets_per_socket,
            "cpc": geo.cores_per_chiplet,
            "l3_mib": geo.l3_mib_per_chiplet,
            "channels": geo.mem_channels_per_socket,
            "link_scale": geo.link_latency_scale,
            "total_cores": geo.total_cores,
            "total_l3_mib": geo.total_l3_mib,
            "total_channels": geo.total_channels,
            "workload": cell.params["workload"],
            "policy": cell.strategy,
            "metric": res["metric"],
            "unit": res["unit"],
        })
    return rows


def _charm_summary(rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per (config, workload): CHARM's speedup over ring and static.

    Sorted by speedup over the *best* competitor, descending — the head
    of the list is where the heterogeneity-aware runtime matters most.
    """
    by_key: Dict[Tuple[str, str], Dict[str, float]] = {}
    for r in rows:
        by_key.setdefault((r["config"], r["workload"]), {})[r["policy"]] = r["metric"]
    summary = []
    for (config, workload), metrics in by_key.items():
        if not all(p in metrics for p in POLICIES):
            continue
        charm = metrics["charm"]
        ring, static = metrics["ring"], metrics["static-2"]
        best_rival = max(ring, static)
        summary.append({
            "config": config, "workload": workload,
            "charm": charm, "ring": ring, "static": static,
            "speedup_vs_ring": charm / ring if ring else 0.0,
            "speedup_vs_static": charm / static if static else 0.0,
            "speedup_vs_best": charm / best_rival if best_rival else 0.0,
        })
    summary.sort(key=lambda s: (-s["speedup_vs_best"], s["config"], s["workload"]))
    return summary


def _axis_trends(summary: List[Dict[str, Any]],
                 rows: List[Dict[str, Any]]) -> List[str]:
    """Mean CHARM-vs-best-rival speedup along the axes that drive it."""
    geo_of = {r["config"]: r for r in rows}
    lines = []
    for axis, label in (("cps", "chiplets/socket"), ("link_scale", "link scale")):
        buckets: Dict[Any, List[float]] = {}
        for s in summary:
            buckets.setdefault(geo_of[s["config"]][axis], []).append(
                s["speedup_vs_best"])
        parts = [f"{value:g}: {sum(v) / len(v):.3f}x"
                 for value, v in sorted(buckets.items())]
        lines.append(f"mean CHARM speedup by {label} — " + ", ".join(parts))
    return lines


# -- output --------------------------------------------------------------------

_CSV_COLUMNS = ["config", "cps", "cpc", "l3_mib", "channels", "link_scale",
                "total_cores", "total_l3_mib", "total_channels",
                "workload", "policy", "metric", "unit"]


def _write_csv(path: Path, rows: List[Dict[str, Any]],
               columns: List[str]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh, lineterminator="\n")
        writer.writerow(columns)
        for r in rows:
            writer.writerow([r[c] for c in columns])


def _frontier_plot(workload: str, frontier: List[Dict[str, Any]]) -> str:
    from repro.bench.plot import ascii_plot

    series: Dict[str, List[Tuple[float, float]]] = {}
    for r in frontier:
        series.setdefault(f"ch{r['total_channels']}", []).append(
            (float(r["total_l3_mib"]), float(r["metric"])))
    for pts in series.values():
        pts.sort()
    unit = frontier[0]["unit"] if frontier else "?"
    return ascii_plot(series, width=64, height=16,
                      title=f"DSE frontier: {workload} (charm)",
                      x_label="total L3 MiB", y_label=unit)


def reduce_results(cells: List[ExperimentCell], results: Dict[str, Any],
                   ) -> Dict[str, Any]:
    """Fold raw cell results into rows, frontiers, and the CHARM summary."""
    rows = _rows_from_results(cells, results)
    frontiers = {}
    for workload in WORKLOADS:
        candidates = [r for r in rows
                      if r["workload"] == workload and r["policy"] == "charm"]
        frontiers[workload] = pareto_frontier(candidates, FRONTIER_OBJECTIVES)
    summary = _charm_summary(rows)
    return {"rows": rows, "frontiers": frontiers, "summary": summary,
            "trends": _axis_trends(summary, rows)}


def render_summary(report: Dict[str, Any]) -> str:
    lines = []
    for workload, frontier in report["frontiers"].items():
        lines.append(f"{workload}: {len(frontier)} non-dominated configs "
                     f"(of {sum(1 for r in report['rows'] if r['workload'] == workload and r['policy'] == 'charm')})")
        lines.append(_frontier_plot(workload, frontier))
    lines.append("Top CHARM wins (speedup over best of ring/static):")
    lines.append(f"  {'config':28s} {'workload':9s} {'charm':>9s} "
                 f"{'ring':>9s} {'static':>9s} {'vs best':>8s}")
    for s in report["summary"][:10]:
        lines.append(f"  {s['config']:28s} {s['workload']:9s} "
                     f"{s['charm']:9.1f} {s['ring']:9.1f} {s['static']:9.1f} "
                     f"{s['speedup_vs_best']:7.3f}x")
    lines.extend(report["trends"])
    return "\n".join(lines)


def write_outputs(out_dir: Path, report: Dict[str, Any]) -> List[Path]:
    out_dir = Path(out_dir)
    written = []
    cells_csv = out_dir / "cells.csv"
    _write_csv(cells_csv, report["rows"], _CSV_COLUMNS)
    written.append(cells_csv)
    for workload, frontier in report["frontiers"].items():
        path = out_dir / f"frontier_{workload}.csv"
        _write_csv(path, frontier, _CSV_COLUMNS)
        written.append(path)
    summary_path = out_dir / "summary.txt"
    summary_path.write_text(render_summary(report) + "\n")
    written.append(summary_path)
    return written


# -- the registered experiment (sweep-engine entry points) ---------------------


def _dse_exp_cells(quick: bool = True, budget: int = DEFAULT_BUDGET,
                   **_ignored) -> List[ExperimentCell]:
    return dse_cells(budget)


def _dse_exp_merge(quick: bool, results: Dict[str, Any],
                   budget: int = DEFAULT_BUDGET, **_ignored,
                   ) -> Tuple[Dict[str, Any], str]:
    cells = dse_cells(budget)
    report = reduce_results(cells, results)
    return report, render_summary(report)


register("dse", _dse_exp_cells, _run_dse_cell, _dse_exp_merge)


# -- orchestration -------------------------------------------------------------


def run_dse(budget: int = DEFAULT_BUDGET, jobs: int = 0,
            out_dir: Path = Path("results") / "dse", use_cache: bool = True,
            progress=None, order: str = "ljf",
            ) -> Tuple[Dict[str, Any], Any]:
    """Generate, sweep, reduce, and write one DSE run.

    Returns ``(report, SweepStats)``; files land under ``out_dir``.
    """
    from repro.bench.sweep import run_cells

    cells = dse_cells(budget)
    results, stats = run_cells(cells, jobs=jobs, use_cache=use_cache,
                               progress=progress, order=order)
    stats.experiments = ["dse"]
    report = reduce_results(cells, results)
    report["stats"] = stats.as_dict()
    write_outputs(out_dir, report)
    return report, stats


# -- measurement (BENCH dse section + perf gate) -------------------------------


@contextlib.contextmanager
def _temp_store() -> Iterator[str]:
    """Point REPRO_SWEEP_CACHE at a throwaway dir (cold-cache runs)."""
    prev = os.environ.get("REPRO_SWEEP_CACHE")
    with tempfile.TemporaryDirectory(prefix="repro-dse-bench-") as td:
        os.environ["REPRO_SWEEP_CACHE"] = td
        try:
            yield td
        finally:
            if prev is None:
                os.environ.pop("REPRO_SWEEP_CACHE", None)
            else:
                os.environ["REPRO_SWEEP_CACHE"] = prev


def measure_check(budget: int = 24, jobs: int = 2) -> Dict[str, Any]:
    """Small, self-contained DSE throughput measurement for the perf gate.

    Runs a tiny budget cold (fresh temporary store), then resumed, and
    reports sustained cells/sec, pool efficiency, and the resume
    cache-hit ratio.  Deterministic in everything but wall-clock.
    """
    from repro.bench.sweep import run_cells

    cells = dse_cells(budget)
    with _temp_store():
        _, cold = run_cells(cells, jobs=jobs)
        _, warm = run_cells(cells, jobs=jobs)
    return {
        "budget": budget,
        "jobs": cold.jobs,
        "cells": cold.total,
        "cells_per_sec": round(cold.cells_per_sec, 2),
        "pool_efficiency": round(cold.efficiency, 3),
        "cold_wall_s": round(cold.wall_s, 3),
        "resume_wall_s": round(warm.wall_s, 3),
        "resume_hit_ratio": round(warm.cache_hit_ratio, 3),
    }


def _bench(budget: int, jobs: int, out: Path) -> int:
    """Measure DSE sweep throughput; record under ``dse`` in
    BENCH_simperf.json (the rest of the report is left untouched)."""
    from repro.bench.sweep import resolve_jobs, run_cells

    jobs = resolve_jobs(jobs)
    cells = dse_cells(budget)

    def timed(label: str, **kwargs) -> Tuple[Any, Dict[str, Any]]:
        with _temp_store():
            t0 = time.perf_counter()
            _, stats = run_cells(cells, jobs=jobs, **kwargs)
            wall = time.perf_counter() - t0
            resume_stats = None
            if kwargs.get("order", "ljf") == "ljf":
                _, resume_stats = run_cells(cells, jobs=jobs, **kwargs)
        print(f"{label:14s} jobs={stats.jobs:<3d} {wall:7.2f}s "
              f"({stats.total} cells, {stats.cells_per_sec:.1f} cells/s, "
              f"efficiency {stats.efficiency:.2f})")
        return resume_stats, {
            "wall_s": round(wall, 2),
            "cells_per_sec": round(stats.cells_per_sec, 2),
            "pool_efficiency": round(stats.efficiency, 3),
            "chunks": stats.chunks,
        }

    resume, ljf = timed("ljf+chunked")
    _, fifo = timed("fifo/per-cell", order="fifo", chunked=False)
    check = measure_check()

    section: Dict[str, Any] = {
        "suite": f"python -m repro dse --budget {budget}",
        "host_cpus": os.cpu_count(),
        "budget": budget,
        "cells": len(cells),
        "jobs": jobs,
        "ljf_chunked": ljf,
        "fifo_per_cell": fifo,
        "ljf_speedup_vs_fifo": round(ljf["wall_s"] and fifo["wall_s"] / ljf["wall_s"], 2),
        "resume": {
            "wall_s": round(resume.wall_s, 2),
            "cache_hit_ratio": round(resume.cache_hit_ratio, 3),
        },
        "check": check,
    }
    host_cpus = os.cpu_count() or 1
    if host_cpus < jobs:
        section["note"] = (
            f"host has only {host_cpus} cpu(s); pool efficiency and the "
            f"LJF-vs-FIFO gap are IPC-bound here and scale with available "
            f"cores")
    doc: Dict[str, Any] = {}
    if out.exists():
        try:
            doc = json.loads(out.read_text())
        except json.JSONDecodeError:
            pass
    doc["dse"] = section
    out.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    print(f"updated {out} (dse section); "
          f"{section['ljf_speedup_vs_fifo']}x ljf-vs-fifo, "
          f"resume hit ratio {section['resume']['cache_hit_ratio']}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", type=int, default=DEFAULT_BUDGET,
                        help="max cells to generate (configs × workloads × "
                             "policies)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes (0 = auto from CPU affinity)")
    parser.add_argument("--out", type=Path, default=Path("results") / "dse",
                        help="output directory for CSVs and summary")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and don't write the result store")
    parser.add_argument("--order", choices=("ljf", "fifo"), default="ljf")
    parser.add_argument("--bench", action="store_true",
                        help="measure sweep throughput (LJF vs FIFO, resume) "
                             "and update the dse section of BENCH_simperf.json")
    parser.add_argument("--bench-out", type=Path,
                        default=Path("BENCH_simperf.json"))
    args = parser.parse_args(argv)

    if args.bench:
        return _bench(args.budget, args.jobs, args.bench_out)

    def say(msg: str) -> None:
        print(f"[dse] {msg}", file=sys.stderr, flush=True)

    report, stats = run_dse(budget=args.budget, jobs=args.jobs,
                            out_dir=args.out,
                            use_cache=not args.no_cache, progress=say,
                            order=args.order)
    print(render_summary(report))
    print(f"\n{stats.total} cells ({stats.cache_hits} cached) in "
          f"{stats.wall_s:.1f}s — {stats.cells_per_sec:.1f} cells/s, "
          f"pool efficiency {stats.efficiency:.2f}, jobs={stats.jobs}")
    print(f"outputs: {args.out}/cells.csv, frontier_*.csv, summary.txt")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
