"""Parallel sweep engine: shard experiment cells across processes.

The experiment matrix of :mod:`repro.bench.experiments` is embarrassingly
parallel once decomposed into cells (:mod:`repro.bench.cells`): every
cell is a pure function of its own config, so the engine can

- **shard** the deduplicated cell list across a
  :class:`~concurrent.futures.ProcessPoolExecutor` (``--jobs N``;
  ``0`` means auto: ``max(1, os.cpu_count() - 1)``), and
- **cache** each finished cell's JSON result on disk under a
  content-addressed name — ``sha256(cell config + code version)`` — so a
  killed or repeated sweep skips completed cells entirely.

Outputs are bit-identical to the serial path by construction: the same
``run_cell`` executes (in a worker instead of inline), results are
JSON-native so a cache round-trip preserves every bit, and each
experiment's ``merge`` folds results in cell order, never completion
order.  ``tests/test_sweep_equivalence.py`` pins this.

The cache key includes a hash of every source file under ``src/repro``,
so any code change invalidates all cached results at once; stale entries
are simply never read again (delete the directory to reclaim space).

Usage::

    python -m repro run fig07_amd_scalability --jobs 4
    python -m repro all --jobs 0            # auto-size the pool
    python -m repro.bench.sweep --cache-stats
    python -m repro.bench.sweep --bench --jobs 4   # time serial vs parallel
"""

import argparse
import hashlib
import json
import multiprocessing
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.bench.cells import (
    ExperimentCell,
    REGISTRY,
    execute_cell,
    execute_cell_telemetry,
)

__all__ = [
    "SweepStats",
    "cache_dir",
    "cache_key",
    "code_version",
    "run_cells",
    "run_experiment",
    "run_many",
]

#: default on-disk cache location (override with ``REPRO_SWEEP_CACHE``)
DEFAULT_CACHE_DIR = Path("results") / ".sweep-cache"

#: Wall-clock of `python -m repro all` (quick) measured at commit 2509359,
#: before the cell decomposition and dataset memoization landed — the
#: "before" of the sweep section in BENCH_simperf.json.  Host wall-clock
#: is hardware-dependent: re-measure on the seed commit when moving to
#: different hardware.
RECORDED_SERIAL_BASELINE_S = 42.09

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Hash of every ``repro`` source file — the cache-invalidation token.

    Computed once per process; any edit under ``src/repro`` changes the
    token and therefore every cache key.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        pkg_root = Path(__file__).resolve().parents[1]  # src/repro
        h = hashlib.sha256()
        for py in sorted(pkg_root.rglob("*.py")):
            h.update(str(py.relative_to(pkg_root)).encode())
            h.update(b"\0")
            h.update(py.read_bytes())
            h.update(b"\0")
        _CODE_VERSION = h.hexdigest()[:16]
    return _CODE_VERSION


def cache_dir() -> Path:
    return Path(os.environ.get("REPRO_SWEEP_CACHE", str(DEFAULT_CACHE_DIR)))


def cache_key(cell: ExperimentCell, telemetry: bool = False) -> str:
    """Content address of one cell result: config + code version.

    Telemetry-mode results carry an extra ``telemetry`` summary, so they
    cache under a distinct key; plain-mode keys are unchanged (adding the
    marker only when set keeps every pre-telemetry cache entry valid).
    """
    doc: Dict[str, Any] = {"config": cell.config(), "code_version": code_version()}
    if telemetry:
        doc["telemetry"] = True
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def _cache_path(cell: ExperimentCell, telemetry: bool = False) -> Path:
    return cache_dir() / f"{cache_key(cell, telemetry)}.json"


def load_cached(cell: ExperimentCell, telemetry: bool = False) -> Tuple[bool, Any]:
    """Return ``(hit, result)``; corrupt/unreadable entries count as misses."""
    path = _cache_path(cell, telemetry)
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return False, None
    return True, doc["result"]


def store_cached(cell: ExperimentCell, result: Any, telemetry: bool = False) -> None:
    """Atomically persist one cell result (rename over a temp file)."""
    path = _cache_path(cell, telemetry)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {"cell_id": cell.cell_id, "cell": cell.config(),
           "code_version": code_version(), "result": result}
    if telemetry:
        doc["telemetry"] = True
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(doc, sort_keys=True))
    os.replace(tmp, path)


@dataclass
class SweepStats:
    """What one sweep did: how many cells ran vs came from cache."""

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    jobs: int = 1
    wall_s: float = 0.0
    experiments: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {"total": self.total, "executed": self.executed,
                "cache_hits": self.cache_hits, "jobs": self.jobs,
                "wall_s": round(self.wall_s, 3), "experiments": self.experiments}


def resolve_jobs(jobs: int) -> int:
    """``0`` → auto (``cpu_count - 1``, floor 1); negatives are an error."""
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return max(1, (os.cpu_count() or 2) - 1)
    return jobs


def _progress(msg: str) -> None:
    print(f"[sweep] {msg}", file=sys.stderr, flush=True)


def run_cells(cells: List[ExperimentCell], jobs: int = 1, use_cache: bool = True,
              progress: Optional[Callable[[str], None]] = None,
              telemetry: bool = False,
              ) -> Tuple[Dict[str, Any], SweepStats]:
    """Execute ``cells``, returning ``({cell_id: result}, stats)``.

    Duplicate cells (same ``cell_id``) run once.  With ``jobs > 1`` the
    uncached cells are sharded across a process pool (fork start method
    where available, so workers inherit warm imports and the builders of
    :mod:`repro.bench.datasets` memoize per process); with ``jobs <= 1``
    they run inline.  Either way results land in a dict keyed by cell_id
    — merge order is the caller's cell order, not completion order.

    ``telemetry=True`` runs each cell through
    :func:`~repro.bench.cells.execute_cell_telemetry` (dict results gain
    a ``"telemetry"`` summary) and caches under telemetry-marked keys so
    plain and telemetry sweeps never serve each other's entries.
    """
    jobs = resolve_jobs(jobs)
    say = progress or (lambda msg: None)
    t0 = time.perf_counter()
    executor = execute_cell_telemetry if telemetry else execute_cell
    unique: Dict[str, ExperimentCell] = {}
    for cell in cells:
        unique.setdefault(cell.cell_id, cell)
    stats = SweepStats(total=len(unique), jobs=jobs)

    results: Dict[str, Any] = {}
    todo: List[ExperimentCell] = []
    for cell_id, cell in unique.items():
        if use_cache:
            hit, result = load_cached(cell, telemetry)
            if hit:
                results[cell_id] = result
                stats.cache_hits += 1
                continue
        todo.append(cell)
    if stats.cache_hits:
        say(f"{stats.cache_hits}/{stats.total} cells from cache")

    done = 0
    if jobs <= 1 or len(todo) <= 1:
        for cell in todo:
            results[cell.cell_id] = result = executor(cell)
            if use_cache:
                store_cached(cell, result, telemetry)
            stats.executed += 1
            done += 1
            say(f"{done}/{len(todo)} cells done ({cell.cell_id})")
    else:
        # fork shares the parent's imported modules and dataset cache
        # snapshot; spawn (the only option on some platforms) re-imports
        # inside execute_cell instead.
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
        with ProcessPoolExecutor(max_workers=min(jobs, len(todo)),
                                 mp_context=ctx) as pool:
            pending = {pool.submit(executor, cell): cell for cell in todo}
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for fut in finished:
                    cell = pending.pop(fut)
                    result = fut.result()  # propagate worker exceptions
                    results[cell.cell_id] = result
                    if use_cache:
                        store_cached(cell, result, telemetry)
                    stats.executed += 1
                    done += 1
                    say(f"{done}/{len(todo)} cells done ({cell.cell_id})")

    stats.wall_s = time.perf_counter() - t0
    return results, stats


def run_experiment(name: str, quick: bool = True, jobs: int = 1,
                   use_cache: bool = True,
                   progress: Optional[Callable[[str], None]] = None,
                   telemetry: bool = False,
                   **overrides) -> Tuple[Any, str, SweepStats]:
    """One experiment through the sweep engine: ``(rows, text, stats)``."""
    exp = REGISTRY[name]
    cells = exp.cells(quick, **overrides)
    results, stats = run_cells(cells, jobs=jobs, use_cache=use_cache,
                               progress=progress, telemetry=telemetry)
    stats.experiments = [name]
    rows, text = exp.merge(quick, results, **overrides)
    return rows, text, stats


def run_many(names: List[str], quick: bool = True, jobs: int = 1,
             use_cache: bool = True,
             progress: Optional[Callable[[str], None]] = None,
             telemetry: bool = False,
             ) -> Tuple[List[Tuple[str, Any, str]], SweepStats]:
    """Run several experiments as ONE pooled sweep.

    All cells are collected up front so the pool stays busy across
    experiment boundaries; each experiment's merge then picks its own
    cells' results out of the shared dict.
    """
    per_exp: List[Tuple[str, List[ExperimentCell]]] = []
    all_cells: List[ExperimentCell] = []
    for name in names:
        cells = REGISTRY[name].cells(quick)
        per_exp.append((name, cells))
        all_cells.extend(cells)
    results, stats = run_cells(all_cells, jobs=jobs, use_cache=use_cache,
                               progress=progress, telemetry=telemetry)
    stats.experiments = list(names)
    out = []
    for name, cells in per_exp:
        rows, text = REGISTRY[name].merge(
            quick, {c.cell_id: results[c.cell_id] for c in cells})
        out.append((name, rows, text))
    return out, stats


# -- maintenance / measurement CLI ---------------------------------------------


def cache_stats() -> Dict[str, Any]:
    """Describe the on-disk cache (for humans and the CI artifact)."""
    d = cache_dir()
    entries = sorted(d.glob("*.json")) if d.is_dir() else []
    by_experiment: Dict[str, int] = {}
    stale = 0
    version = code_version()
    for path in entries:
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            stale += 1
            continue
        if doc.get("code_version") != version:
            stale += 1
        exp = doc.get("cell", {}).get("experiment", "?")
        by_experiment[exp] = by_experiment.get(exp, 0) + 1
    return {
        "dir": str(d),
        "entries": len(entries),
        "bytes": sum(p.stat().st_size for p in entries),
        "stale_entries": stale,
        "code_version": version,
        "by_experiment": dict(sorted(by_experiment.items())),
    }


def _bench(jobs: int, out: Path) -> int:
    """Time the quick suite serial vs parallel; record under ``sweep`` in
    BENCH_simperf.json (the rest of the report is left untouched)."""
    from repro.cli import EXPERIMENT_ORDER

    def timed(label: str, n_jobs: int) -> Dict[str, Any]:
        t0 = time.perf_counter()
        _, stats = run_many(EXPERIMENT_ORDER, quick=True, jobs=n_jobs,
                            use_cache=False, progress=None)
        wall = time.perf_counter() - t0
        print(f"{label:10s} jobs={stats.jobs:<3d} {wall:7.2f}s "
              f"({stats.total} cells)")
        return {"jobs": stats.jobs, "wall_s": round(wall, 2),
                "cells": stats.total}

    serial = timed("serial", 1)
    parallel = timed("parallel", jobs)
    section = {
        "suite": "python -m repro all (quick)",
        "host_cpus": os.cpu_count(),
        "serial_before_refactor_s": RECORDED_SERIAL_BASELINE_S,
        "serial": serial,
        "parallel": parallel,
        "speedup_vs_serial": round(serial["wall_s"] / parallel["wall_s"], 2),
        "speedup_vs_before": round(
            RECORDED_SERIAL_BASELINE_S / parallel["wall_s"], 2),
    }
    host_cpus = os.cpu_count() or 1
    if host_cpus < parallel["jobs"]:
        section["note"] = (
            f"host has only {host_cpus} cpu(s); a {parallel['jobs']}-process "
            f"pool cannot beat serial here — parallel speedup scales with "
            f"available cores")
    doc: Dict[str, Any] = {}
    if out.exists():
        try:
            doc = json.loads(out.read_text())
        except json.JSONDecodeError:
            pass
    doc["sweep"] = section
    out.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    print(f"updated {out} (sweep section); "
          f"{section['speedup_vs_serial']}x vs serial, "
          f"{section['speedup_vs_before']}x vs pre-refactor")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cache-stats", action="store_true",
                        help="print JSON stats of the on-disk sweep cache")
    parser.add_argument("--bench", action="store_true",
                        help="time the quick suite serial vs --jobs, update "
                             "the sweep section of BENCH_simperf.json")
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes for --bench (0 = auto)")
    parser.add_argument("--out", type=Path, default=Path("BENCH_simperf.json"))
    args = parser.parse_args(argv)

    if args.cache_stats:
        print(json.dumps(cache_stats(), indent=2))
        return 0
    if args.bench:
        return _bench(args.jobs, args.out)
    parser.error("choose one of --cache-stats / --bench")
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
