"""Parallel sweep engine: shard experiment cells across processes.

The experiment matrix of :mod:`repro.bench.experiments` is embarrassingly
parallel once decomposed into cells (:mod:`repro.bench.cells`): every
cell is a pure function of its own config, so the engine can

- **shard** the deduplicated cell list across a
  :class:`~concurrent.futures.ProcessPoolExecutor` (``--jobs N``; ``0``
  means auto: one less than the CPUs this process may actually run on,
  per ``os.sched_getaffinity`` — not ``os.cpu_count()``, which
  overcounts on cgroup-limited/CPU-pinned hosts),
- **schedule** for throughput at scale: cells are ordered
  longest-job-first by a cost model (:mod:`repro.bench.cost`) calibrated
  from previously measured wall-clocks, and submitted to the pool in
  chunks sized to ``total/(jobs × 4)`` so ten thousand sub-50ms cells
  don't pay executor IPC per cell, and
- **cache** each finished cell's JSON result under a content-addressed
  key — ``sha256(cell config + code version)`` — in a packed
  SQLite-backed result store (:mod:`repro.bench.store`; one file, LRU
  bounded, atomic per entry), so a killed or repeated sweep skips
  completed cells entirely.

Outputs are bit-identical to the serial path by construction: the same
``run_cell`` executes (in a worker instead of inline), results are
JSON-native so a store round-trip preserves every bit, and each
experiment's ``merge`` folds results in cell order, never completion or
schedule order — reordering and chunking change *when* cells run, not
what any of them computes.  ``tests/test_sweep_equivalence.py`` pins
this.

The cache key includes a hash of every source file under ``src/repro``,
so any code change invalidates all cached results at once; stale entries
are reclaimed by ``python -m repro cache gc``.

Usage::

    python -m repro run fig07_amd_scalability --jobs 4
    python -m repro all --jobs 0            # auto-size the pool
    python -m repro cache stats             # result-store contents
    python -m repro.bench.sweep --bench --jobs 4   # time serial vs parallel
"""

import argparse
import hashlib
import json
import multiprocessing
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.bench.cells import (
    ExperimentCell,
    REGISTRY,
    execute_cell,
    execute_cell_telemetry,
)
from repro.bench.cost import CostModel
from repro.bench.store import ResultStore

__all__ = [
    "SweepStats",
    "cache_dir",
    "cache_key",
    "code_version",
    "get_store",
    "run_cells",
    "run_experiment",
    "run_many",
]

#: default on-disk cache location (override with ``REPRO_SWEEP_CACHE``)
DEFAULT_CACHE_DIR = Path("results") / ".sweep-cache"

#: Wall-clock of `python -m repro all` (quick) measured at commit 2509359,
#: before the cell decomposition and dataset memoization landed — the
#: "before" of the sweep section in BENCH_simperf.json.  Host wall-clock
#: is hardware-dependent: re-measure on the seed commit when moving to
#: different hardware.
RECORDED_SERIAL_BASELINE_S = 42.09

#: chunked submission targets this many chunks per worker, so the pool
#: stays load-balanced (workers that draw short chunks pick up more)
#: without per-cell submission overhead
CHUNKS_PER_WORKER = 4

#: hard cap on cells per chunk — bounds the result latency of one future
#: and the damage radius of a worker crash
MAX_CHUNK_CELLS = 64

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Hash of every ``repro`` source file — the cache-invalidation token.

    Computed once per process; any edit under ``src/repro`` changes the
    token and therefore every cache key.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        pkg_root = Path(__file__).resolve().parents[1]  # src/repro
        h = hashlib.sha256()
        for py in sorted(pkg_root.rglob("*.py")):
            h.update(str(py.relative_to(pkg_root)).encode())
            h.update(b"\0")
            h.update(py.read_bytes())
            h.update(b"\0")
        _CODE_VERSION = h.hexdigest()[:16]
    return _CODE_VERSION


def cache_dir() -> Path:
    return Path(os.environ.get("REPRO_SWEEP_CACHE", str(DEFAULT_CACHE_DIR)))


_STORE: Optional[ResultStore] = None
_STORE_DIR: Optional[Path] = None


def get_store() -> ResultStore:
    """The process-wide result store for the current cache directory.

    Opened lazily (``--no-cache`` runs never create the directory) and
    reopened whenever ``REPRO_SWEEP_CACHE`` points somewhere new — tests
    repoint it per-case.  Opening migrates any legacy one-JSON-per-cell
    entries (pre-store layout) into the SQLite file.
    """
    global _STORE, _STORE_DIR
    d = cache_dir()
    if _STORE is None or _STORE_DIR != d:
        if _STORE is not None:
            _STORE.close()
        _STORE = ResultStore.open(d)
        _STORE_DIR = d
    return _STORE


def cache_key(cell: ExperimentCell, telemetry: bool = False) -> str:
    """Content address of one cell result: config + code version.

    Telemetry-mode results carry an extra ``telemetry`` summary, so they
    cache under a distinct key; plain-mode keys are unchanged (adding the
    marker only when set keeps every pre-telemetry cache entry valid).
    """
    doc: Dict[str, Any] = {"config": cell.config(), "code_version": code_version()}
    if telemetry:
        doc["telemetry"] = True
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def load_cached(cell: ExperimentCell, telemetry: bool = False) -> Tuple[bool, Any]:
    """Return ``(hit, result)``; corrupt/unreadable entries count as misses."""
    return get_store().get(cache_key(cell, telemetry))


def store_cached(cell: ExperimentCell, result: Any, telemetry: bool = False,
                 wall_s: Optional[float] = None) -> None:
    """Persist one cell result (one atomic store transaction).

    ``wall_s``, when known, is recorded alongside the result and the
    cell's work hint — that pair is the calibration set of the
    scheduler's cost model.
    """
    get_store().put(
        cache_key(cell, telemetry),
        cell_id=cell.cell_id,
        experiment=cell.experiment,
        code_version=code_version(),
        result=result,
        telemetry=telemetry,
        wall_s=wall_s,
        work_units=cell.work_hint(),
    )


@dataclass
class SweepStats:
    """What one sweep did: how many cells ran vs came from cache."""

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    jobs: int = 1
    wall_s: float = 0.0
    busy_s: float = 0.0
    chunks: int = 0
    order: str = "ljf"
    experiments: List[str] = field(default_factory=list)

    @property
    def cells_per_sec(self) -> float:
        """Executed cells per second of sweep wall-clock."""
        return self.executed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def efficiency(self) -> float:
        """Pool efficiency: worker-busy seconds over ``wall × jobs``.

        1.0 means every worker computed cells the whole sweep; the gap
        to 1.0 is scheduling (stragglers, submission latency) plus the
        parent's cache probing and store writes.
        """
        if self.wall_s <= 0 or self.jobs <= 0:
            return 0.0
        return self.busy_s / (self.wall_s * self.jobs)

    @property
    def cache_hit_ratio(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {"total": self.total, "executed": self.executed,
                "cache_hits": self.cache_hits, "jobs": self.jobs,
                "wall_s": round(self.wall_s, 3),
                "busy_s": round(self.busy_s, 3),
                "cells_per_sec": round(self.cells_per_sec, 2),
                "pool_efficiency": round(self.efficiency, 3),
                "chunks": self.chunks, "order": self.order,
                "experiments": self.experiments}


def resolve_jobs(jobs: int) -> int:
    """``0`` → auto (available CPUs − 1, floor 1); negatives are an error.

    "Available" means the CPUs this process is allowed to run on
    (``os.sched_getaffinity``), not the machine's CPU count — on
    cgroup-limited or CPU-pinned hosts (CI containers, ``taskset``)
    ``os.cpu_count()`` overcounts and the pool would oversubscribe.
    Platforms without affinity support fall back to ``os.cpu_count()``.
    """
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        try:
            available = len(os.sched_getaffinity(0))
        except (AttributeError, OSError):
            available = os.cpu_count() or 2
        return max(1, available - 1)
    return jobs


def _progress(msg: str) -> None:
    print(f"[sweep] {msg}", file=sys.stderr, flush=True)


def _execute_chunk(chunk: List[ExperimentCell], telemetry: bool,
                   ) -> List[Tuple[Any, float]]:
    """Worker-side: run a chunk of cells, timing each one.

    Returns ``(result, wall_s)`` per cell in chunk order.  One future
    per chunk instead of per cell is what amortizes executor IPC when
    cells are tens of milliseconds each.
    """
    executor = execute_cell_telemetry if telemetry else execute_cell
    out: List[Tuple[Any, float]] = []
    for cell in chunk:
        t0 = time.perf_counter()
        result = executor(cell)
        out.append((result, time.perf_counter() - t0))
    return out


def _order_cells(todo: List[ExperimentCell], model: CostModel, order: str,
                 ) -> List[ExperimentCell]:
    """Schedule order for uncached cells.

    ``ljf``: longest-job-first by estimated cost (deterministic tiebreak
    on cell_id) — big cells start early so no straggler lands last.
    ``fifo``: caller order, kept as the comparison baseline for the
    scheduler benchmark.
    """
    if order == "fifo":
        return list(todo)
    if order != "ljf":
        raise ValueError(f"unknown order {order!r} (expected 'ljf' or 'fifo')")
    return sorted(todo, key=lambda c: (-model.estimate(c), c.cell_id))


def _pack_chunks(ordered: List[ExperimentCell], model: CostModel,
                 jobs: int) -> List[List[ExperimentCell]]:
    """Greedily pack schedule-ordered cells into submission chunks.

    Target chunk cost is ``total/(jobs × CHUNKS_PER_WORKER)``: coarse
    enough to amortize IPC, fine enough that workers drawing short
    chunks rebalance.  Cells costing at least the target become
    singleton chunks (they are their own granule); chunk length is also
    capped at MAX_CHUNK_CELLS for the tiny-cell regime where cost-based
    packing would build huge chunks.
    """
    if not ordered:
        return []
    est = {c.cell_id: max(model.estimate(c), 1e-12) for c in ordered}
    total = sum(est.values())
    target = total / max(1, jobs * CHUNKS_PER_WORKER)
    chunks: List[List[ExperimentCell]] = []
    current: List[ExperimentCell] = []
    current_cost = 0.0
    for cell in ordered:
        current.append(cell)
        current_cost += est[cell.cell_id]
        if current_cost >= target or len(current) >= MAX_CHUNK_CELLS:
            chunks.append(current)
            current, current_cost = [], 0.0
    if current:
        chunks.append(current)
    return chunks


def _fmt_eta(seconds: float) -> str:
    """Compact remaining-time label for progress lines."""
    if seconds >= 3600.0:
        return f"{seconds / 3600.0:.1f}h"
    if seconds >= 60.0:
        return f"{seconds / 60.0:.1f}m"
    if seconds >= 10.0:
        return f"{seconds:.0f}s"
    return f"{seconds:.1f}s"


def run_cells(cells: List[ExperimentCell], jobs: int = 1, use_cache: bool = True,
              progress: Optional[Callable[[str], None]] = None,
              telemetry: bool = False, order: str = "ljf",
              chunked: bool = True,
              ) -> Tuple[Dict[str, Any], SweepStats]:
    """Execute ``cells``, returning ``({cell_id: result}, stats)``.

    Duplicate cells (same ``cell_id``) run once.  With ``jobs > 1`` the
    uncached cells are sharded across a process pool (fork start method
    where available, so workers inherit warm imports and the builders of
    :mod:`repro.bench.datasets` memoize per process); with ``jobs <= 1``
    they run inline.  Either way results land in a dict keyed by cell_id
    — merge order is the caller's cell order, not completion or schedule
    order, so ``order``/``chunked`` cannot change any output bit.

    ``order="ljf"`` (default) sorts uncached work longest-job-first
    using the cost model calibrated from the result store;
    ``order="fifo"`` with ``chunked=False`` reproduces the pre-cost-model
    engine (one future per cell, submission order) for comparison.

    ``telemetry=True`` runs each cell through
    :func:`~repro.bench.cells.execute_cell_telemetry` (dict results gain
    a ``"telemetry"`` summary) and caches under telemetry-marked keys so
    plain and telemetry sweeps never serve each other's entries.
    """
    jobs = resolve_jobs(jobs)
    say = progress or (lambda msg: None)
    t0 = time.perf_counter()
    executor = execute_cell_telemetry if telemetry else execute_cell
    unique: Dict[str, ExperimentCell] = {}
    for cell in cells:
        unique.setdefault(cell.cell_id, cell)
    stats = SweepStats(total=len(unique), jobs=jobs, order=order)

    results: Dict[str, Any] = {}
    todo: List[ExperimentCell] = []
    for cell_id, cell in unique.items():
        if use_cache:
            hit, result = load_cached(cell, telemetry)
            if hit:
                results[cell_id] = result
                stats.cache_hits += 1
                continue
        todo.append(cell)
    if stats.cache_hits:
        say(f"{stats.cache_hits}/{stats.total} cells from cache")

    model = CostModel.from_store(get_store()) if use_cache else CostModel()
    ordered = _order_cells(todo, model, order)

    # ETA from the calibrated cost model: completed estimated-seconds so
    # far give an estimated-seconds/sec rate; remaining estimate / rate
    # is the ETA shown on each progress line.  Self-correcting — a slow
    # host or a mis-calibrated model shifts the observed rate, not the
    # formula.
    est_of = {cell.cell_id: max(model.estimate(cell), 1e-9) for cell in todo}
    total_est = sum(est_of.values())
    done_est = 0.0
    t_exec = time.perf_counter()

    def eta_suffix() -> str:
        if done_est <= 0.0 or done_est >= total_est:
            return ""
        elapsed = time.perf_counter() - t_exec
        if elapsed <= 0.0:
            return ""
        # done_est/elapsed is estimated-seconds retired per wall-second,
        # which already reflects pool parallelism — no jobs division
        remaining = (total_est - done_est) * elapsed / done_est
        return f", eta ~{_fmt_eta(remaining)}"

    done = 0
    if jobs <= 1 or len(todo) <= 1:
        for cell in ordered:
            t_cell = time.perf_counter()
            results[cell.cell_id] = result = executor(cell)
            wall = time.perf_counter() - t_cell
            if use_cache:
                store_cached(cell, result, telemetry, wall_s=wall)
            stats.executed += 1
            stats.busy_s += wall
            done += 1
            done_est += est_of[cell.cell_id]
            say(f"{done}/{len(todo)} cells done ({cell.cell_id})"
                f"{eta_suffix()}")
    else:
        if chunked:
            chunks = _pack_chunks(ordered, model, jobs)
        else:
            chunks = [[c] for c in ordered]
        stats.chunks = len(chunks)
        # fork shares the parent's imported modules and dataset cache
        # snapshot; spawn (the only option on some platforms) re-imports
        # inside execute_cell instead.
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
        with ProcessPoolExecutor(max_workers=min(jobs, len(chunks)),
                                 mp_context=ctx) as pool:
            pending = {pool.submit(_execute_chunk, chunk, telemetry): chunk
                       for chunk in chunks}
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for fut in finished:
                    chunk = pending.pop(fut)
                    cell_outs = fut.result()  # propagate worker exceptions
                    for cell, (result, wall) in zip(chunk, cell_outs):
                        results[cell.cell_id] = result
                        if use_cache:
                            store_cached(cell, result, telemetry, wall_s=wall)
                        stats.executed += 1
                        stats.busy_s += wall
                        done += 1
                        done_est += est_of[cell.cell_id]
                    say(f"{done}/{len(todo)} cells done "
                        f"(+{len(chunk)}: {chunk[-1].cell_id})"
                        f"{eta_suffix()}")

    stats.wall_s = time.perf_counter() - t0
    return results, stats


def run_experiment(name: str, quick: bool = True, jobs: int = 1,
                   use_cache: bool = True,
                   progress: Optional[Callable[[str], None]] = None,
                   telemetry: bool = False,
                   **overrides) -> Tuple[Any, str, SweepStats]:
    """One experiment through the sweep engine: ``(rows, text, stats)``."""
    exp = REGISTRY[name]
    cells = exp.cells(quick, **overrides)
    results, stats = run_cells(cells, jobs=jobs, use_cache=use_cache,
                               progress=progress, telemetry=telemetry)
    stats.experiments = [name]
    rows, text = exp.merge(quick, results, **overrides)
    return rows, text, stats


def run_many(names: List[str], quick: bool = True, jobs: int = 1,
             use_cache: bool = True,
             progress: Optional[Callable[[str], None]] = None,
             telemetry: bool = False,
             ) -> Tuple[List[Tuple[str, Any, str]], SweepStats]:
    """Run several experiments as ONE pooled sweep.

    All cells are collected up front so the pool stays busy across
    experiment boundaries; each experiment's merge then picks its own
    cells' results out of the shared dict.
    """
    per_exp: List[Tuple[str, List[ExperimentCell]]] = []
    all_cells: List[ExperimentCell] = []
    for name in names:
        cells = REGISTRY[name].cells(quick)
        per_exp.append((name, cells))
        all_cells.extend(cells)
    results, stats = run_cells(all_cells, jobs=jobs, use_cache=use_cache,
                               progress=progress, telemetry=telemetry)
    stats.experiments = list(names)
    out = []
    for name, cells in per_exp:
        rows, text = REGISTRY[name].merge(
            quick, {c.cell_id: results[c.cell_id] for c in cells})
        out.append((name, rows, text))
    return out, stats


# -- maintenance / measurement CLI ---------------------------------------------


def cache_stats() -> Dict[str, Any]:
    """Describe the result store (for humans and the CI artifact)."""
    stats = get_store().stats(code_version())
    stats["code_version"] = code_version()
    return stats


def cache_gc(older_than_days: Optional[float] = None) -> Dict[str, Any]:
    """Garbage-collect the result store (see :meth:`ResultStore.gc`)."""
    older_than_s = None if older_than_days is None else older_than_days * 86400.0
    return get_store().gc(code_version(), older_than_s=older_than_s)


def _bench(jobs: int, out: Path) -> int:
    """Time the quick suite serial vs parallel; record under ``sweep`` in
    BENCH_simperf.json (the rest of the report is left untouched)."""
    from repro.cli import EXPERIMENT_ORDER

    def timed(label: str, n_jobs: int) -> Dict[str, Any]:
        t0 = time.perf_counter()
        _, stats = run_many(EXPERIMENT_ORDER, quick=True, jobs=n_jobs,
                            use_cache=False, progress=None)
        wall = time.perf_counter() - t0
        print(f"{label:10s} jobs={stats.jobs:<3d} {wall:7.2f}s "
              f"({stats.total} cells, efficiency {stats.efficiency:.2f})")
        return {"jobs": stats.jobs, "wall_s": round(wall, 2),
                "cells": stats.total,
                "pool_efficiency": round(stats.efficiency, 3)}

    serial = timed("serial", 1)
    parallel = timed("parallel", jobs)
    section = {
        "suite": "python -m repro all (quick)",
        "host_cpus": os.cpu_count(),
        "serial_before_refactor_s": RECORDED_SERIAL_BASELINE_S,
        "serial": serial,
        "parallel": parallel,
        "speedup_vs_serial": round(serial["wall_s"] / parallel["wall_s"], 2),
        "speedup_vs_before": round(
            RECORDED_SERIAL_BASELINE_S / parallel["wall_s"], 2),
    }
    host_cpus = os.cpu_count() or 1
    if host_cpus < parallel["jobs"]:
        section["note"] = (
            f"host has only {host_cpus} cpu(s); a {parallel['jobs']}-process "
            f"pool cannot beat serial here — parallel speedup scales with "
            f"available cores")
    doc: Dict[str, Any] = {}
    if out.exists():
        try:
            doc = json.loads(out.read_text())
        except json.JSONDecodeError:
            pass
    doc["sweep"] = section
    out.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    print(f"updated {out} (sweep section); "
          f"{section['speedup_vs_serial']}x vs serial, "
          f"{section['speedup_vs_before']}x vs pre-refactor")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cache-stats", action="store_true",
                        help="print JSON stats of the sweep result store")
    parser.add_argument("--bench", action="store_true",
                        help="time the quick suite serial vs --jobs, update "
                             "the sweep section of BENCH_simperf.json")
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes for --bench (0 = auto)")
    parser.add_argument("--out", type=Path, default=Path("BENCH_simperf.json"))
    args = parser.parse_args(argv)

    if args.cache_stats:
        print(json.dumps(cache_stats(), indent=2))
        return 0
    if args.bench:
        return _bench(args.jobs, args.out)
    parser.error("choose one of --cache-stats / --bench")
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
