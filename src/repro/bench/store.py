"""Packed SQLite result store for the sweep engine (replaces JSON-per-cell).

The original cache (PR 2) wrote one ``<sha256>.json`` file per finished
cell.  At 173 cells that is fine; at the 10,000-cell design-space sweeps
of :mod:`repro.bench.dse` it means 10,000 ``open``/``rename`` pairs per
run and a directory the filesystem hates.  This module packs the same
content-addressed entries into one SQLite file:

- **keys are unchanged** — the ``sha256(cell config + code version)``
  string of :func:`repro.bench.sweep.cache_key` is the primary key, so
  the cache-invalidation story (any source edit under ``src/repro``
  changes every key) carries over verbatim;
- **atomic** — each ``put`` is one SQLite transaction; a killed sweep
  never leaves a torn entry, and concurrent sweeps sharing the store
  serialize on SQLite's own locking (``busy_timeout``);
- **concurrent** — the store runs in WAL journal mode (when the
  filesystem supports it), so readers never block the writer and
  multiple *processes* — a long-running advisor server plus batch
  sweeps, say — can share one store file: writers queue on the WAL
  write lock (30 s ``busy_timeout``), readers see consistent
  snapshots, and ``INSERT OR REPLACE`` makes racing same-key puts
  idempotent.  Within one process the connection is shared across
  threads behind an internal lock (``check_same_thread=False``), so
  async servers may probe it from worker threads.
  ``tests/test_store.py`` proves no lost puts or torn reads under
  multi-process contention;
- **LRU-bounded** — every entry tracks ``last_used``; when the store
  exceeds ``max_bytes`` (``REPRO_STORE_MAX_MB``, default 1024) the
  least-recently-used entries are evicted, so the store is safe to leave
  growing across runs;
- **cross-run** — entries record wall-clock (``wall_s``) and a work-size
  hint per cell, which is the calibration set of the sweep scheduler's
  cost model (:mod:`repro.bench.cost`); calibration deliberately spans
  code versions, since a code edit invalidates *results* but not the
  relative cost of re-running them;
- **self-migrating** — on open, any legacy ``<key>.json`` files sitting
  next to the store (the PR 2 layout under ``results/.sweep-cache/``)
  are imported and removed, so existing caches survive the switch.

Within one sweep the store is only ever written by the *parent* process
(workers return results over the pool); across runs, any number of
sweeps and advisor servers may read and write it concurrently.
"""

import json
import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["ResultStore", "STORE_FILENAME", "DEFAULT_MAX_MB"]

#: store file name inside the cache directory (``cache_dir()/store.sqlite``)
STORE_FILENAME = "store.sqlite"

#: default LRU bound, in MiB (override with ``REPRO_STORE_MAX_MB``)
DEFAULT_MAX_MB = 1024

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    key          TEXT PRIMARY KEY,
    cell_id      TEXT NOT NULL,
    experiment   TEXT NOT NULL,
    code_version TEXT NOT NULL,
    telemetry    INTEGER NOT NULL DEFAULT 0,
    result       TEXT NOT NULL,
    wall_s       REAL,
    work_units   REAL,
    nbytes       INTEGER NOT NULL,
    created_at   REAL NOT NULL,
    last_used    REAL NOT NULL,
    hits         INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_results_last_used ON results(last_used);
CREATE INDEX IF NOT EXISTS idx_results_version ON results(code_version);
"""

#: evictions are checked every this many puts (a SUM over the nbytes
#: column is cheap, but not per-put cheap at 10k cells)
_EVICT_CHECK_EVERY = 256


class ResultStore:
    """One content-addressed result store backed by a SQLite file.

    Open with :meth:`open` (which also runs the legacy-JSON migration);
    ``get``/``put`` are the hot path, everything else is maintenance.
    """

    def __init__(self, path: Path, max_bytes: Optional[int] = None):
        self.path = Path(path)
        if max_bytes is None:
            max_bytes = int(float(os.environ.get(
                "REPRO_STORE_MAX_MB", DEFAULT_MAX_MB)) * (1 << 20))
        self.max_bytes = max_bytes
        self._pid = os.getpid()
        self._puts_since_check = 0
        self.migrated = 0
        # one connection shared across this process's threads; every
        # transaction holds this lock (SQLite connections serialize
        # internally, but our read-modify-write sequences must not
        # interleave between threads)
        self._lock = threading.RLock()
        self.journal_mode = "?"
        self._conn = self._connect()

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def open(cls, directory: Path, max_bytes: Optional[int] = None) -> "ResultStore":
        """Open (creating if needed) the store under ``directory`` and
        migrate any legacy one-JSON-per-cell entries found beside it."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        store = cls(directory / STORE_FILENAME, max_bytes=max_bytes)
        store.migrate_legacy(directory)
        return store

    def _connect(self) -> sqlite3.Connection:
        try:
            return self._connect_once()
        except sqlite3.DatabaseError:
            # A corrupt/garbage store file is a cache, not data: recreate
            # it empty rather than failing the sweep.
            try:
                self.path.unlink()
            except OSError:
                pass
            return self._connect_once()

    def _connect_once(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=30.0,
                               check_same_thread=False)
        conn.execute("PRAGMA busy_timeout=30000")
        # WAL lets concurrent readers (other sweeps, a running advisor
        # server) proceed while a writer commits; some filesystems
        # (network mounts) refuse it, in which case SQLite stays on the
        # rollback journal and concurrency degrades to coarse locking
        # rather than failing.
        try:
            mode = conn.execute("PRAGMA journal_mode=WAL").fetchone()[0]
        except sqlite3.DatabaseError:  # pragma: no cover - exotic fs
            mode = "delete"
        self.journal_mode = str(mode).lower()
        if self.journal_mode == "wal":
            # fsync on WAL checkpoints only: a power-cut may lose the
            # last results (they re-simulate) but never corrupts
            conn.execute("PRAGMA synchronous=NORMAL")
        conn.executescript(_SCHEMA)
        conn.commit()
        return conn

    @property
    def conn(self) -> sqlite3.Connection:
        # A forked worker inheriting this object must not reuse the
        # parent's connection (SQLite connections are not fork-safe).
        if os.getpid() != self._pid:
            with self._lock:
                if os.getpid() != self._pid:
                    self._pid = os.getpid()
                    self._conn = self._connect()
        return self._conn

    def close(self) -> None:
        try:
            self._conn.close()
        except sqlite3.Error:  # pragma: no cover - defensive
            pass

    # -- hot path --------------------------------------------------------------

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, result)``; a hit bumps the LRU clock and the
        entry's hit counter.  Corrupt rows count as misses."""
        with self._lock:
            try:
                row = self.conn.execute(
                    "SELECT result FROM results WHERE key = ?", (key,)).fetchone()
            except sqlite3.DatabaseError:
                return False, None
            if row is None:
                return False, None
            try:
                result = json.loads(row[0])
            except json.JSONDecodeError:
                with self.conn:
                    self.conn.execute("DELETE FROM results WHERE key = ?", (key,))
                return False, None
            try:
                with self.conn:
                    self.conn.execute(
                        "UPDATE results SET last_used = ?, hits = hits + 1 "
                        "WHERE key = ?", (time.time(), key))
            except sqlite3.OperationalError:
                # a concurrent writer held the lock past the busy
                # timeout; the LRU bump is advisory, the hit is real
                pass
        return True, result

    def wall_of(self, key: str) -> Optional[float]:
        """Recorded execution wall-clock of one entry (or None)."""
        with self._lock:
            row = self.conn.execute(
                "SELECT wall_s FROM results WHERE key = ?", (key,)).fetchone()
        return None if row is None else row[0]

    def put(self, key: str, *, cell_id: str, experiment: str,
            code_version: str, result: Any, telemetry: bool = False,
            wall_s: Optional[float] = None,
            work_units: Optional[float] = None) -> None:
        """Insert or replace one entry (one transaction: atomic)."""
        payload = json.dumps(result, sort_keys=True, separators=(",", ":"))
        now = time.time()
        with self._lock:
            with self.conn:
                self.conn.execute(
                    "INSERT OR REPLACE INTO results "
                    "(key, cell_id, experiment, code_version, telemetry, result, "
                    " wall_s, work_units, nbytes, created_at, last_used, hits) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 0)",
                    (key, cell_id, experiment, code_version, int(telemetry),
                     payload, wall_s, work_units, len(payload), now, now))
            self._puts_since_check += 1
            if self._puts_since_check >= _EVICT_CHECK_EVERY:
                self._puts_since_check = 0
                self.evict_lru()

    # -- maintenance -----------------------------------------------------------

    def evict_lru(self) -> int:
        """Drop least-recently-used entries until under ``max_bytes``."""
        with self._lock:
            total = self.conn.execute(
                "SELECT COALESCE(SUM(nbytes), 0) FROM results").fetchone()[0]
            if total <= self.max_bytes:
                return 0
            evicted = 0
            with self.conn:
                for key, nbytes in self.conn.execute(
                        "SELECT key, nbytes FROM results ORDER BY last_used ASC"
                ).fetchall():
                    if total <= self.max_bytes:
                        break
                    self.conn.execute("DELETE FROM results WHERE key = ?", (key,))
                    total -= nbytes
                    evicted += 1
        return evicted

    def gc(self, current_version: str,
           older_than_s: Optional[float] = None) -> Dict[str, int]:
        """Garbage-collect entries.

        Always removes entries whose ``code_version`` no longer matches
        ``current_version`` (they can never be read again — any source
        edit changes every cache key).  With ``older_than_s``, only stale
        entries last used more than that many seconds ago are collected,
        *and* current-version entries older than the cutoff are collected
        too (an age-based trim of live entries).
        """
        cutoff = None if older_than_s is None else time.time() - older_than_s
        with self._lock, self.conn:
            if cutoff is None:
                cur = self.conn.execute(
                    "DELETE FROM results WHERE code_version != ?",
                    (current_version,))
                stale_removed, aged_removed = cur.rowcount, 0
            else:
                cur = self.conn.execute(
                    "DELETE FROM results WHERE code_version != ? AND last_used < ?",
                    (current_version, cutoff))
                stale_removed = cur.rowcount
                cur = self.conn.execute(
                    "DELETE FROM results WHERE code_version = ? AND last_used < ?",
                    (current_version, cutoff))
                aged_removed = cur.rowcount
        with self._lock:
            self.conn.execute("VACUUM")
        return {"stale_removed": stale_removed, "aged_removed": aged_removed,
                "remaining": self.count()}

    def count(self) -> int:
        with self._lock:
            return self.conn.execute(
                "SELECT COUNT(*) FROM results").fetchone()[0]

    def stats(self, current_version: Optional[str] = None) -> Dict[str, Any]:
        """Describe the store (for ``repro cache stats`` and CI artifacts)."""
        with self._lock:
            conn = self.conn
            entries, payload_bytes, hits_total = conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(nbytes), 0), COALESCE(SUM(hits), 0) "
                "FROM results").fetchone()
            by_experiment = dict(conn.execute(
                "SELECT experiment, COUNT(*) FROM results "
                "GROUP BY experiment ORDER BY experiment").fetchall())
            stale = 0
            if current_version is not None:
                stale = conn.execute(
                    "SELECT COUNT(*) FROM results WHERE code_version != ?",
                    (current_version,)).fetchone()[0]
        try:
            file_bytes = self.path.stat().st_size
        except OSError:
            file_bytes = 0
        return {
            "store_file": str(self.path),
            "entries": entries,
            "bytes": payload_bytes,
            "file_bytes": file_bytes,
            "hits_total": hits_total,
            "stale_entries": stale,
            "max_bytes": self.max_bytes,
            "journal_mode": self.journal_mode,
            "migrated_legacy_entries": self.migrated,
            "by_experiment": by_experiment,
        }

    def calibration_samples(self, limit: int = 5000,
                            ) -> List[Tuple[str, float, float]]:
        """``(experiment, work_units, wall_s)`` rows for the cost model.

        Most-recently-used first, capped at ``limit``; spans code
        versions on purpose (see module docstring).
        """
        with self._lock:
            return self.conn.execute(
                "SELECT experiment, work_units, wall_s FROM results "
                "WHERE wall_s IS NOT NULL AND work_units IS NOT NULL "
                "ORDER BY last_used DESC LIMIT ?", (limit,)).fetchall()

    # -- legacy migration ------------------------------------------------------

    def migrate_legacy(self, directory: Path) -> int:
        """Import PR 2-style ``<key>.json`` files beside the store.

        The file stem *is* the content-addressed key, so entries import
        without recomputing any hash.  Successfully imported files are
        removed; unparsable files are left in place (they were cache
        misses before and stay that way).  Returns the number imported.
        """
        directory = Path(directory)
        if not directory.is_dir():
            return 0
        imported = 0
        with self._lock:
            imported = self._migrate_locked(directory)
        self.migrated += imported
        return imported

    def _migrate_locked(self, directory: Path) -> int:
        imported = 0
        for path in sorted(directory.glob("*.json")):
            try:
                doc = json.loads(path.read_text())
                key = path.stem
                result = doc["result"]
                cell_id = doc.get("cell_id", "")
                experiment = doc.get("cell", {}).get("experiment", "?")
                version = doc.get("code_version", "")
            except (OSError, json.JSONDecodeError, KeyError, AttributeError):
                continue
            exists = self.conn.execute(
                "SELECT 1 FROM results WHERE key = ?", (key,)).fetchone()
            if exists is None:
                self.put(key, cell_id=cell_id, experiment=experiment,
                         code_version=version,
                         telemetry=bool(doc.get("telemetry")), result=result)
            try:
                path.unlink()
            except OSError:  # pragma: no cover - defensive
                continue
            imported += 1
        return imported

    # -- introspection helpers (tests) ----------------------------------------

    def keys(self) -> Iterable[str]:
        with self._lock:
            return [r[0] for r in self.conn.execute(
                "SELECT key FROM results ORDER BY key").fetchall()]
