"""Keyed, per-process dataset cache for the experiment matrix.

Experiment cells across one sweep (and experiment functions across one
serial ``repro all``) keep asking for the same inputs: the scale-14
Kronecker graph, the sf=4 TPC-H tables, the YCSB/TPC-C stores, the
streamcluster point cloud, the SGD design matrix.  Building them anew
per call wastes time; this module builds each distinct
``(kind, params)`` once per process and hands the same object back.

Two safety rules make that sound:

- **Immutable datasets** (numpy-backed value objects: graphs, TPC-H
  columns, point clouds, SGD matrices) are returned by reference — the
  workloads only read them (they already share one instance across runs
  within a single experiment).
- **Mutable datasets** (the MVCC stores, which transactions commit
  into) are cached as a pristine instance and every fetch returns an
  independent copy via the registered ``copy`` callable, so a cached
  fetch is indistinguishable from a fresh load.

Worker processes of the sweep engine get their own copy of this cache
(fork inherits the parent's, spawn starts empty) — that is the
"per-process memoized dataset construction" of the sweep design; no
cache state ever crosses a process boundary at run time.
"""

import copy as _copylib
from typing import Any, Callable, Dict, NamedTuple, Optional, Tuple

__all__ = [
    "get", "register_builder", "clear", "stats",
    "graph", "tpch", "sc_points", "sgd_dataset", "ycsb_store", "tpcc_tables",
]


class _Builder(NamedTuple):
    build: Callable[..., Any]
    copy: Optional[Callable[[Any], Any]]  # None -> shared reference


_BUILDERS: Dict[str, _Builder] = {}
_CACHE: Dict[Tuple[str, Tuple[Tuple[str, Any], ...]], Any] = {}
_STATS = {"hits": 0, "builds": 0}


def register_builder(kind: str, build: Callable[..., Any],
                     copy: Optional[Callable[[Any], Any]] = None) -> None:
    """Register a dataset builder.  ``copy`` non-None marks the dataset
    mutable: fetches return ``copy(cached)`` instead of the cached object."""
    _BUILDERS[kind] = _Builder(build, copy)


def get(kind: str, **params: Any) -> Any:
    builder = _BUILDERS[kind]
    key = (kind, tuple(sorted(params.items())))
    if key in _CACHE:
        _STATS["hits"] += 1
        value = _CACHE[key]
    else:
        _STATS["builds"] += 1
        value = _CACHE[key] = builder.build(**params)
    return builder.copy(value) if builder.copy is not None else value


def clear() -> None:
    """Drop every cached dataset (tests; memory pressure)."""
    _CACHE.clear()
    _STATS["hits"] = _STATS["builds"] = 0


def stats() -> Dict[str, int]:
    return {"entries": len(_CACHE), **_STATS}


# -- built-in builders ---------------------------------------------------------


def _build_graph(scale: int, edgefactor: int, seed: int):
    from repro.workloads.graph.generator import kronecker

    return kronecker(scale, edgefactor, seed=seed)


def _build_tpch(sf: float, seed: int):
    from repro.workloads.olap import generate

    return generate(sf=sf, seed=seed)


def _build_sc_points(n: int, dims: int, clusters: int, seed: int):
    from repro.workloads.streamcluster import make_points

    return make_points(n, dims, clusters, seed=seed)


def _build_sgd(n: int, d: int, seed: int):
    from repro.workloads.sgd import make_dataset

    return make_dataset(n, d, seed=seed)


def _build_ycsb(n: int):
    from repro.workloads.oltp.ycsb import load_ycsb

    return load_ycsb(n)


def _build_tpcc(warehouses: int):
    from repro.workloads.oltp.tpcc import load_tpcc

    return load_tpcc(warehouses)


def _copy_tpcc(tables):
    from repro.workloads.oltp.tpcc import TpccTables

    return TpccTables(tables.store.clone(), tables.n_warehouses)


register_builder("graph", _build_graph)
register_builder("tpch", _build_tpch)
register_builder("sc_points", _build_sc_points)
register_builder("sgd", _build_sgd)
register_builder("ycsb", _build_ycsb, copy=lambda store: store.clone())
register_builder("tpcc", _build_tpcc, copy=_copy_tpcc)

# Generic deepcopy is available for ad-hoc mutable registrations.
deepcopy = _copylib.deepcopy


# -- typed accessors used by the experiments -----------------------------------


def graph(scale: int, edgefactor: int = 16, seed: int = 2):
    return get("graph", scale=scale, edgefactor=edgefactor, seed=seed)


def tpch(sf: float, seed: int = 42):
    return get("tpch", sf=sf, seed=seed)


def sc_points(n: int, dims: int = 64, clusters: int = 10, seed: int = 4):
    return get("sc_points", n=n, dims=dims, clusters=clusters, seed=seed)


def sgd_dataset(n: int, d: int = 1024, seed: int = 11):
    return get("sgd", n=n, d=d, seed=seed)


def ycsb_store(n: int):
    return get("ycsb", n=n)


def tpcc_tables(warehouses: int):
    return get("tpcc", warehouses=warehouses)
