"""One experiment function per paper table/figure, decomposed into cells.

Every function returns ``(rows_or_series, rendered_text)``.  ``quick=True``
(the benchmark default) shrinks the matrix to a few core counts and
smaller inputs; ``quick=False`` runs the full paper-shaped sweep.  All
functions are deterministic for a fixed seed.

Since PR 2 each experiment is expressed as three pieces registered with
:mod:`repro.bench.cells`:

- ``cells(quick)`` — the experiment's matrix as a list of pure, picklable
  :class:`~repro.bench.cells.ExperimentCell` (machine preset, strategy,
  core count, workload params, seed);
- ``run_cell(cell)`` — executes one cell (machine and dataset are built
  inside the call; datasets come from the per-process keyed cache in
  :mod:`repro.bench.datasets`) and returns a JSON-native result;
- ``merge(quick, results)`` — folds ``{cell_id: result}`` back into the
  experiment's rows/series and rendered table, in cell order.

The public experiment functions run exactly this path inline, and the
parallel sweep engine (:mod:`repro.bench.sweep`) runs the same cells in a
process pool with an on-disk result cache — outputs are bit-identical by
construction (pinned by ``tests/test_sweep_equivalence.py``).
"""

from typing import Dict, List, Tuple

import numpy as np

from repro.bench import datasets
from repro.bench.cells import ExperimentCell, register, run_serial
from repro.bench.report import format_series, format_table
from repro.hw.machine import Machine, milan, sapphire_rapids
from repro.hw.topology import Distance
from repro.runtime.policy import CharmPolicyConfig, CharmStrategy, StaticSpreadStrategy

SEED = 7
MACHINE_SCALE = 32

GRAPH_ALGOS = ["bfs", "pagerank", "cc", "sssp", "graph500"]

_Cell = ExperimentCell.make


def _milan() -> Machine:
    return milan(scale=MACHINE_SCALE)


def _spr() -> Machine:
    return sapphire_rapids(scale=MACHINE_SCALE)


def _machine_for(preset: str) -> Machine:
    if preset == "milan":
        return milan(scale=MACHINE_SCALE)
    if preset == "sapphire_rapids":
        return sapphire_rapids(scale=MACHINE_SCALE)
    if preset == "genoa":
        from repro.hw.machine import genoa

        return genoa(scale=MACHINE_SCALE)
    raise ValueError(f"unknown machine preset {preset!r}")


class FlatCharmStrategy(CharmStrategy):
    """CHARM with flat random stealing (the abl_stealing ablation)."""

    name = "charm-flat-steal"
    hierarchical_stealing = False


def _strategy_for(name: str, machine: Machine):
    """Instantiate the scheduling strategy a cell names."""
    from repro.baselines import (
        AsymSchedStrategy,
        RingStrategy,
        SamStrategy,
        ShoalStrategy,
        distributed_cache_strategy,
        local_cache_strategy,
    )
    from repro.baselines.vanilla import VanillaStrategy

    if name == "charm":
        return CharmStrategy()
    if name == "ring":
        return RingStrategy()
    if name == "asymsched":
        return AsymSchedStrategy()
    if name == "sam":
        return SamStrategy()
    if name == "shoal":
        return ShoalStrategy()
    if name == "vanilla":
        return VanillaStrategy()
    if name == "local":
        return local_cache_strategy()
    if name == "distributed":
        return distributed_cache_strategy(machine)
    if name == "charm-flat":
        return FlatCharmStrategy()
    if name.startswith("charm-thr-"):
        thr = float(name[len("charm-thr-"):])
        return CharmStrategy(CharmPolicyConfig(rmt_chip_access_rate=thr))
    if name.startswith("static-"):
        return StaticSpreadStrategy(int(name[len("static-"):]))
    raise ValueError(f"unknown strategy {name!r}")


def _graph(quick: bool):
    return datasets.graph(14 if quick else 16, 16, seed=2)


def _cores(quick: bool, cap: int = 128) -> List[int]:
    """Core-count axis, clamped to ``cap`` and deduplicated.

    Entries above the machine size are capped (not dropped) so the
    largest configuration is always swept, then duplicates introduced by
    the capping are removed.
    """
    cores = [8, 32, 64] if quick else [8, 16, 32, 48, 64, 96, 128]
    return sorted({min(c, cap) for c in cores})


# -- shared cell runners -------------------------------------------------------
#
# Most experiments are matrices over the same few simulated runs; each
# runner below executes one cell and returns plain JSON-native data so
# results survive the disk cache byte-for-byte.


def _counters_row(counters) -> Dict[str, int]:
    return {
        "local_chiplet": int(counters.local_chiplet),
        "remote_chiplet": int(counters.remote_chiplet),
        "remote_numa_chiplet": int(counters.remote_numa_chiplet),
        "dram": int(counters.dram),
    }


def _run_graph_cell(cell: ExperimentCell) -> Dict:
    """One graph-algorithm or GUPS run (fig07/fig08/fig10/tab1/...)."""
    from repro.workloads.graph.runner import run_graph_algorithm
    from repro.workloads.gups import run_gups

    p = cell.params
    machine = _machine_for(cell.machine_preset)
    strategy = _strategy_for(cell.strategy, machine)
    if p["algo"] == "gups":
        res = run_gups(machine, strategy, cell.cores, p["table_bytes"],
                       updates_per_worker=p["updates_per_worker"], seed=cell.seed)
        return {"metric": float(res.mups), "counters": _counters_row(res.report.counters)}
    graph = datasets.graph(p["graph_scale"], p.get("edgefactor", 16),
                           seed=p.get("graph_seed", 2))
    kwargs = {}
    if "pagerank_iterations" in p:
        kwargs["pagerank_iterations"] = p["pagerank_iterations"]
    res = run_graph_algorithm(machine, strategy, p["algo"], graph, cell.cores,
                              seed=cell.seed, **kwargs)
    return {
        "metric": float(res.mteps),
        "teps": float(res.teps),
        "graph_adjacency_bytes": int(graph.adjacency_bytes),
        "counters": _counters_row(res.report.counters),
    }


def _run_streamcluster_cell(cell: ExperimentCell) -> Dict:
    """One streamcluster run (fig09/tab2/sens_threshold/abl_spread/...)."""
    from repro.workloads.streamcluster import run_streamcluster

    p = cell.params
    machine = _machine_for(cell.machine_preset)
    strategy = _strategy_for(cell.strategy, machine)
    pts = datasets.sc_points(p["n_points"])
    res = run_streamcluster(machine, strategy, cell.cores, pts,
                            n_centers=p["n_centers"], batch_points=p["batch_points"],
                            seed=cell.seed)
    return {
        "wall_ns": float(res.wall_ns),
        "migrations": int(res.report.migrations),
        "counters": _counters_row(res.report.counters),
    }


def _run_sgd_cell(cell: ExperimentCell) -> Dict:
    """One SGD run (fig11/fig12/fig01)."""
    from repro.workloads.sgd import run_sgd

    p = cell.params
    machine = _machine_for(cell.machine_preset)
    ds = datasets.sgd_dataset(p["n_samples"], p["n_features"], seed=p["ds_seed"])
    res = run_sgd(machine, cell.strategy, cell.cores, ds, kernel=p["kernel"],
                  epochs=p["epochs"], seed=cell.seed,
                  collect_timeline=p.get("collect_timeline", False))
    out = {"throughput_gbs": float(res.throughput_gbs)}
    if p.get("collect_timeline"):
        out["threads_created"] = int(res.report.tasks_created)
        out["avg_concurrency"] = float(res.report.avg_concurrency())
    return out


def _run_tpch_cell(cell: ExperimentCell) -> Dict:
    """One TPC-H query run (fig13/fig01)."""
    from repro.workloads.olap.queries import run_query

    p = cell.params
    machine = _machine_for(cell.machine_preset)
    strategy = _strategy_for(cell.strategy, machine)
    data = datasets.tpch(p["sf"], seed=p["tpch_seed"])
    res = run_query(machine, strategy, cell.cores, data, p["query"], seed=cell.seed)
    return {"ms": float(res.ms), "wall_ns": float(res.wall_ns)}


def _run_oltp_cell(cell: ExperimentCell) -> Dict:
    """One OLTP run (fig14); the store is a fresh clone per cell."""
    from repro.workloads.oltp import run_oltp, tpcc_workload, ycsb_workload

    p = cell.params
    machine = _machine_for(cell.machine_preset)
    strategy = _strategy_for(cell.strategy, machine)
    if p["workload"] == "ycsb":
        store = datasets.ycsb_store(p["n_records"])
        res = run_oltp(machine, strategy, cell.cores, ycsb_workload, "ycsb",
                       store, p["table_bytes"], txns_per_worker=p["txns_per_worker"],
                       seed=cell.seed)
    else:
        tables = datasets.tpcc_tables(p["warehouses"])
        res = run_oltp(machine, strategy, cell.cores, tpcc_workload(tables), "tpcc",
                       tables.store, p["table_bytes"],
                       txns_per_worker=p["txns_per_worker"], seed=cell.seed)
    return {"commits_per_second": float(res.commits_per_second),
            "committed": int(res.committed), "aborted": int(res.aborted)}


def _run_vector_write_cell(cell: ExperimentCell) -> Dict:
    """One segmented-write microbenchmark run (fig05)."""
    from repro.workloads.vector_write import run_vector_write

    machine = _machine_for(cell.machine_preset)
    strategy = _strategy_for(cell.strategy, machine)
    res = run_vector_write(machine, strategy, cell.params["size_bytes"], seed=cell.seed)
    return {"ns_iter": float(res.ns_per_iteration)}


# -- Fig. 3: core-to-core latency CDF ------------------------------------------------


def _fig03_cells(quick: bool) -> List[ExperimentCell]:
    return [_Cell("fig03_latency_cdf", machine_preset="milan", seed=SEED)]


def _fig03_run(cell: ExperimentCell) -> List[Dict]:
    machine = _machine_for(cell.machine_preset)
    topo, lat = machine.topo, machine.latency
    groups: Dict[str, List[float]] = {"same_chiplet": [], "same_numa": [], "cross_numa": []}
    for a, b in topo.core_pairs():
        ns = lat.core_to_core_ns(topo, a, b)
        d = topo.distance(a, b)
        if d is Distance.SAME_CHIPLET:
            groups["same_chiplet"].append(ns)
        elif d is Distance.SAME_SOCKET:
            groups["same_numa"].append(ns)
        else:
            groups["cross_numa"].append(ns)
    rows = []
    for name, vals in groups.items():
        arr = np.array(vals)
        rows.append({
            "group": name,
            "count": int(arr.size),
            "p10_ns": float(np.percentile(arr, 10)),
            "p50_ns": float(np.percentile(arr, 50)),
            "p90_ns": float(np.percentile(arr, 90)),
        })
    return rows


def _fig03_merge(quick: bool, results: Dict) -> Tuple[List[Dict], str]:
    rows = results[_fig03_cells(quick)[0].cell_id]
    return rows, format_table(rows, ["group", "count", "p10_ns", "p50_ns", "p90_ns"],
                              "Fig. 3: core-to-core latency groups (dual-socket Milan)")


register("fig03_latency_cdf", _fig03_cells, _fig03_run, _fig03_merge)


def fig03_latency_cdf():
    """CDF groups of CAS latency by topological distance (Fig. 3)."""
    return run_serial("fig03_latency_cdf")


# -- Fig. 4: cores vs memory channels trend ------------------------------------------


#: (year, flagship server cores, memory channels) — the trend of Fig. 4.
CHANNEL_TREND = [
    (2010, 8, 4), (2012, 12, 4), (2014, 18, 4), (2017, 28, 6),
    (2019, 64, 8), (2021, 64, 8), (2023, 96, 12), (2026, 300, 12),
]


def _fig04_cells(quick: bool) -> List[ExperimentCell]:
    return [_Cell("fig04_channels", seed=SEED)]


def _fig04_run(cell: ExperimentCell) -> List[Dict]:
    return [
        {"year": y, "cores": c, "mem_channels": m, "cores_per_channel": round(c / m, 1)}
        for y, c, m in CHANNEL_TREND
    ]


def _fig04_merge(quick: bool, results: Dict) -> Tuple[List[Dict], str]:
    rows = results[_fig04_cells(quick)[0].cell_id]
    return rows, format_table(rows, ["year", "cores", "mem_channels", "cores_per_channel"],
                              "Fig. 4: core count vs memory channels")


register("fig04_channels", _fig04_cells, _fig04_run, _fig04_merge)


def fig04_channels():
    return run_serial("fig04_channels")


# -- Fig. 5: LocalCache vs DistributedCache microbenchmark ---------------------------


def _fig05_sizes(quick: bool) -> List[int]:
    from repro.workloads.vector_write import sweep_sizes

    m0 = _milan()
    sizes = sorted(set(sweep_sizes(m0.l3_bytes_per_chiplet, m0.topo.chiplets_per_socket)))
    if quick:
        sizes = sizes[::2] + [sizes[-1]]
    return sorted(set(sizes))


def _fig05_cells(quick: bool) -> List[ExperimentCell]:
    cells = []
    for size in _fig05_sizes(quick):
        for strat in ("local", "distributed"):
            cells.append(_Cell("fig05_local_vs_distributed", machine_preset="milan",
                               strategy=strat, cores=8, seed=SEED, size_bytes=size))
    return cells


def _fig05_merge(quick: bool, results: Dict) -> Tuple[List[Dict], str]:
    cells = _fig05_cells(quick)
    rows = []
    for i in range(0, len(cells), 2):
        local, dist = cells[i], cells[i + 1]
        rl = results[local.cell_id]["ns_iter"]
        rd = results[dist.cell_id]["ns_iter"]
        rows.append({
            "size_kib": local.params["size_bytes"] // 1024,
            "local_ns_iter": rl,
            "dist_ns_iter": rd,
            "dist_speedup": rl / rd,
        })
    return rows, format_table(
        rows, ["size_kib", "local_ns_iter", "dist_ns_iter", "dist_speedup"],
        "Fig. 5: LocalCache vs DistributedCache segmented write (8 threads)")


register("fig05_local_vs_distributed", _fig05_cells, _run_vector_write_cell, _fig05_merge)


def fig05_local_vs_distributed(quick: bool = True):
    return run_serial("fig05_local_vs_distributed", quick)


# -- Fig. 7 / Fig. 8: graph scalability ----------------------------------------------

_SCALABILITY_SYSTEMS = ["charm", "ring", "asymsched", "sam"]


def _scalability_cells(experiment: str, preset: str, quick: bool,
                       algorithms: List[str], cores: List[int]) -> List[ExperimentCell]:
    cells = []
    for algo in algorithms:
        for sys_name in _SCALABILITY_SYSTEMS:
            for c in cores:
                if algo == "gups":
                    cells.append(_Cell(experiment, machine_preset=preset,
                                       strategy=sys_name, cores=c, seed=SEED,
                                       algo="gups", table_bytes=16 << 20,
                                       updates_per_worker=1024 if quick else 4096))
                else:
                    cells.append(_Cell(experiment, machine_preset=preset,
                                       strategy=sys_name, cores=c, seed=SEED,
                                       algo=algo, graph_scale=14 if quick else 16,
                                       edgefactor=16, graph_seed=2,
                                       pagerank_iterations=3 if quick else 5))
    return cells


def _scalability_merge(cells: List[ExperimentCell], results: Dict) -> Dict:
    series: Dict[str, List[Tuple[int, float]]] = {}
    for cell in cells:
        key = f"{cell.params['algo']}/{cell.strategy}"
        series.setdefault(key, []).append((cell.cores, results[cell.cell_id]["metric"]))
    return series


def _fig07_algorithms(quick: bool, algorithms=None) -> List[str]:
    return algorithms or (["bfs", "gups"] if quick else GRAPH_ALGOS + ["gups"])


def _fig07_cells(quick: bool, algorithms=None) -> List[ExperimentCell]:
    cores = _cores(quick, cap=_milan().topo.total_cores)
    return _scalability_cells("fig07_amd_scalability", "milan", quick,
                              _fig07_algorithms(quick, algorithms), cores)


def _fig07_merge(quick: bool, results: Dict, algorithms=None):
    series = _scalability_merge(_fig07_cells(quick, algorithms), results)
    return series, format_series(series, "cores",
                                 "Fig. 7: graph + GUPS scalability, AMD Milan (MTEPS / MUPS)")


register("fig07_amd_scalability", _fig07_cells, _run_graph_cell, _fig07_merge)


def fig07_amd_scalability(quick: bool = True, algorithms=None):
    return run_serial("fig07_amd_scalability", quick, algorithms=algorithms)


def _fig08_cells(quick: bool, algorithms=None, cores=None) -> List[ExperimentCell]:
    algorithms = algorithms or (["bfs"] if quick else GRAPH_ALGOS + ["gups"])
    cores = cores or ([8, 32, 48, 96] if quick else [8, 16, 32, 48, 64, 96])
    return _scalability_cells("fig08_intel_scalability", "sapphire_rapids", quick,
                              algorithms, cores)


def _fig08_merge(quick: bool, results: Dict, algorithms=None, cores=None):
    series = _scalability_merge(_fig08_cells(quick, algorithms, cores), results)
    return series, format_series(series, "cores",
                                 "Fig. 8: graph scalability, Intel Sapphire Rapids")


register("fig08_intel_scalability", _fig08_cells, _run_graph_cell, _fig08_merge)


def fig08_intel_scalability(quick: bool = True, algorithms=None):
    return run_serial("fig08_intel_scalability", quick, algorithms=algorithms)


# -- Tab. 1: chiplet access counters -------------------------------------------------


def _tab1_cells(quick: bool, cores: int = 64) -> List[ExperimentCell]:
    algorithms = (["bfs", "pagerank"] if quick else GRAPH_ALGOS) + ["gups"]
    cells = []
    for algo in algorithms:
        for sys_name in ("charm", "ring"):
            if algo == "gups":
                cells.append(_Cell("tab1_chiplet_accesses", machine_preset="milan",
                                   strategy=sys_name, cores=cores, seed=SEED,
                                   algo="gups", table_bytes=16 << 20,
                                   updates_per_worker=1024 if quick else 4096))
            else:
                cells.append(_Cell("tab1_chiplet_accesses", machine_preset="milan",
                                   strategy=sys_name, cores=cores, seed=SEED,
                                   algo=algo, graph_scale=14 if quick else 16,
                                   edgefactor=16, graph_seed=2,
                                   pagerank_iterations=3 if quick else 5))
    return cells


def _tab1_merge(quick: bool, results: Dict, cores: int = 64):
    cells = _tab1_cells(quick, cores)
    rows: List[Dict] = []
    by_algo: Dict[str, Dict] = {}
    for cell in cells:
        algo = cell.params["algo"]
        row = by_algo.get(algo)
        if row is None:
            row = by_algo[algo] = {"application": algo}
            rows.append(row)
        counters = results[cell.cell_id]["counters"]
        row[f"remote_numa_{cell.strategy}"] = counters["remote_numa_chiplet"]
        row[f"local_chiplet_{cell.strategy}"] = (
            counters["local_chiplet"] + counters["remote_chiplet"])
    cols = ["application", "remote_numa_charm", "remote_numa_ring",
            "local_chiplet_charm", "local_chiplet_ring"]
    return rows, format_table(rows, cols, f"Tab. 1: chiplet accesses at {cores} cores")


register("tab1_chiplet_accesses", _tab1_cells, _run_graph_cell, _tab1_merge)


def tab1_chiplet_accesses(quick: bool = True, cores: int = 64):
    return run_serial("tab1_chiplet_accesses", quick, cores=cores)


# -- Fig. 9 / Tab. 2: streamcluster --------------------------------------------------


def _sc_n_points(quick: bool) -> int:
    return 32768 if quick else 65536


def _sc_points(quick: bool):
    return datasets.sc_points(_sc_n_points(quick))


def _fig09_cells(quick: bool) -> List[ExperimentCell]:
    n = _sc_n_points(quick)
    batch = n // 2
    cells = [_Cell("fig09_streamcluster", machine_preset="milan", strategy="vanilla",
                   cores=1, seed=SEED, n_points=n, batch_points=batch, n_centers=12)]
    cores = [8, 24, 32, 64, 128] if quick else [1, 8, 16, 24, 32, 40, 48, 64, 96, 128]
    for c in cores:
        for strat in ("charm", "shoal"):
            cells.append(_Cell("fig09_streamcluster", machine_preset="milan",
                               strategy=strat, cores=c, seed=SEED,
                               n_points=n, batch_points=batch, n_centers=12))
    return cells


def _fig09_merge(quick: bool, results: Dict):
    cells = _fig09_cells(quick)
    base = results[cells[0].cell_id]["wall_ns"]
    series: Dict[str, List[Tuple[int, float]]] = {"charm": [], "shoal": []}
    for cell in cells[1:]:
        series[cell.strategy].append(
            (cell.cores, base / results[cell.cell_id]["wall_ns"]))
    return series, format_series(series, "cores",
                                 "Fig. 9: Streamcluster speedup over no-runtime baseline")


register("fig09_streamcluster", _fig09_cells, _run_streamcluster_cell, _fig09_merge)


def fig09_streamcluster(quick: bool = True):
    return run_serial("fig09_streamcluster", quick)


def _tab2_cells(quick: bool) -> List[ExperimentCell]:
    n = _sc_n_points(quick)
    # Keep the batch within the socket's aggregate L3 at every scale, as
    # the paper's 200K-point batches (100 MB) fit its 256 MB socket L3 —
    # the reuse that Tab. 2's counter contrast comes from.
    batch = n // (2 if quick else 4)
    cells = []
    for c in (8, 16, 32, 64):
        for strat in ("charm", "shoal"):
            cells.append(_Cell("tab2_streamcluster_accesses", machine_preset="milan",
                               strategy=strat, cores=c, seed=SEED,
                               n_points=n, batch_points=batch, n_centers=12))
    return cells


def _tab2_merge(quick: bool, results: Dict):
    cells = _tab2_cells(quick)
    rows: List[Dict] = []
    by_cores: Dict[int, Dict] = {}
    for cell in cells:
        row = by_cores.get(cell.cores)
        if row is None:
            row = by_cores[cell.cores] = {"cores": cell.cores}
            rows.append(row)
        cnt = results[cell.cell_id]["counters"]
        row[f"local_{cell.strategy}"] = cnt["local_chiplet"] + cnt["remote_chiplet"]
        row[f"remote_numa_{cell.strategy}"] = cnt["remote_numa_chiplet"]
        row[f"dram_{cell.strategy}"] = cnt["dram"]
    cols = ["cores", "local_charm", "local_shoal", "remote_numa_charm",
            "remote_numa_shoal", "dram_charm", "dram_shoal"]
    return rows, format_table(rows, cols, "Tab. 2: streamcluster memory/cache accesses")


register("tab2_streamcluster_accesses", _tab2_cells, _run_streamcluster_cell, _tab2_merge)


def tab2_streamcluster_accesses(quick: bool = True):
    return run_serial("tab2_streamcluster_accesses", quick)


# -- Fig. 10: data-size sensitivity ---------------------------------------------------


def _fig10_cells(quick: bool) -> List[ExperimentCell]:
    scales = [12, 14] if quick else [12, 13, 14, 15, 16]
    algorithms = ["bfs"] if quick else ["bfs", "sssp", "graph500"]
    cells = []
    for scale in scales:
        for algo in algorithms:
            for c in (32, 64):
                for strat in ("charm", "ring"):
                    cells.append(_Cell("fig10_datasize", machine_preset="milan",
                                       strategy=strat, cores=c, seed=SEED,
                                       algo=algo, graph_scale=scale,
                                       edgefactor=16, graph_seed=2))
    return cells


def _fig10_merge(quick: bool, results: Dict):
    cells = _fig10_cells(quick)
    rows = []
    for i in range(0, len(cells), 2):
        charm, ring = cells[i], cells[i + 1]
        rc, rr = results[charm.cell_id], results[ring.cell_id]
        rows.append({
            "algo": charm.params["algo"],
            "graph_mib": rc["graph_adjacency_bytes"] // (1 << 20),
            "cores": charm.cores,
            "speedup_vs_ring": rc["teps"] / max(rr["teps"], 1e-9),
        })
    return rows, format_table(rows, ["algo", "graph_mib", "cores", "speedup_vs_ring"],
                              "Fig. 10: CHARM speedup over RING vs graph size")


register("fig10_datasize", _fig10_cells, _run_graph_cell, _fig10_merge)


def fig10_datasize(quick: bool = True):
    return run_serial("fig10_datasize", quick)


# -- Fig. 11 / Fig. 12: SGD ------------------------------------------------------------

_SGD_SCHEMES = ["per-core", "numa-node", "per-machine", "charm", "charm-async"]


def _fig11_cells(quick: bool) -> List[ExperimentCell]:
    n = 4096 if quick else 8192
    cells = []
    for kernel in ("loss", "gradient"):
        for c in _cores(quick):
            for scheme in _SGD_SCHEMES:
                cells.append(_Cell("fig11_sgd", machine_preset="milan",
                                   strategy=scheme, cores=c, seed=SEED,
                                   kernel=kernel, n_samples=n, n_features=1024,
                                   ds_seed=11, epochs=1))
    return cells


def _fig11_merge(quick: bool, results: Dict):
    cells = _fig11_cells(quick)
    out: Dict[str, Dict[str, List[Tuple[int, float]]]] = {}
    for cell in cells:
        series = out.setdefault(cell.params["kernel"], {s: [] for s in _SGD_SCHEMES})
        series[cell.strategy].append(
            (cell.cores, results[cell.cell_id]["throughput_gbs"]))
    text = "\n\n".join(
        format_series(out[k], "cores", f"Fig. 11{chr(97 + i)}: SGD {k} throughput (GB/s)")
        for i, k in enumerate(("loss", "gradient"))
    )
    return out, text


register("fig11_sgd", _fig11_cells, _run_sgd_cell, _fig11_merge)


def fig11_sgd(quick: bool = True):
    return run_serial("fig11_sgd", quick)


def _fig12_cells(quick: bool, cores: int = 32) -> List[ExperimentCell]:
    n = 2048 if quick else 4096
    return [
        _Cell("fig12_concurrency", machine_preset="milan", strategy=scheme,
              cores=cores, seed=SEED, kernel="gradient", n_samples=n,
              n_features=1024, ds_seed=11, epochs=1, collect_timeline=True)
        for scheme in ("charm", "charm-async")
    ]


def _fig12_merge(quick: bool, results: Dict, cores: int = 32):
    rows = []
    for cell in _fig12_cells(quick, cores):
        r = results[cell.cell_id]
        rows.append({
            "scheme": cell.strategy,
            "threads_created": r["threads_created"],
            "avg_concurrency": r["avg_concurrency"],
            "throughput_gbs": r["throughput_gbs"],
        })
    return rows, format_table(rows, ["scheme", "threads_created", "avg_concurrency",
                                     "throughput_gbs"],
                              f"Fig. 12: thread concurrency during SGD at {cores} cores")


register("fig12_concurrency", _fig12_cells, _run_sgd_cell, _fig12_merge)


def fig12_concurrency(quick: bool = True, cores: int = 32):
    return run_serial("fig12_concurrency", quick, cores=cores)


# -- Fig. 13: TPC-H --------------------------------------------------------------------


def _fig13_cells(quick: bool, cores: int = 8) -> List[ExperimentCell]:
    from repro.workloads.olap.queries import QUERIES

    queries = ["q1", "q3", "q6", "q9", "q10", "q18"] if quick else list(QUERIES)
    cells = []
    for q in queries:
        for strat in ("vanilla", "charm"):
            cells.append(_Cell("fig13_tpch", machine_preset="milan", strategy=strat,
                               cores=cores, seed=SEED, query=q,
                               sf=4.0 if quick else 10.0, tpch_seed=42))
    return cells


def _fig13_merge(quick: bool, results: Dict, cores: int = 8):
    from repro.workloads.olap.queries import QUERIES

    cells = _fig13_cells(quick, cores)
    rows = []
    for i in range(0, len(cells), 2):
        stock, charm = cells[i], cells[i + 1]
        rs, rc = results[stock.cell_id], results[charm.cell_id]
        q = stock.params["query"]
        rows.append({
            "query": q,
            "kind": QUERIES[q][1],
            "stock_ms": rs["ms"],
            "charm_ms": rc["ms"],
            "speedup": rs["wall_ns"] / rc["wall_ns"],
        })
    return rows, format_table(rows, ["query", "kind", "stock_ms", "charm_ms", "speedup"],
                              f"Fig. 13: TPC-H queries, stock vs +CHARM at {cores} cores")


register("fig13_tpch", _fig13_cells, _run_tpch_cell, _fig13_merge)


def fig13_tpch(quick: bool = True, cores: int = 8):
    return run_serial("fig13_tpch", quick, cores=cores)


# -- Fig. 14: OLTP ----------------------------------------------------------------------


def _fig14_cells(quick: bool) -> List[ExperimentCell]:
    cores = [8, 32, 64] if quick else [8, 16, 32, 48, 64]
    txns = 60 if quick else 200
    cells = []
    for wl in ("ycsb", "tpcc"):
        for pol in ("local", "distributed"):
            for c in cores:
                params = {"workload": wl, "txns_per_worker": txns,
                          "table_bytes": 8 << 20}
                if wl == "ycsb":
                    params["n_records"] = 20000
                else:
                    params["warehouses"] = 5
                cells.append(_Cell("fig14_oltp", machine_preset="milan", strategy=pol,
                                   cores=c, seed=SEED, **params))
    return cells


def _fig14_merge(quick: bool, results: Dict):
    cells = _fig14_cells(quick)
    series: Dict[str, List[Tuple[int, float]]] = {}
    for cell in cells:
        key = f"{cell.params['workload']}/{cell.strategy}"
        series.setdefault(key, []).append(
            (cell.cores, results[cell.cell_id]["commits_per_second"] / 1e3))
    return series, format_series(series, "cores",
                                 "Fig. 14: OLTP kilo-commits/s, LocalCache vs DistributedCache")


register("fig14_oltp", _fig14_cells, _run_oltp_cell, _fig14_merge)


def fig14_oltp(quick: bool = True):
    return run_serial("fig14_oltp", quick)


# -- Fig. 1: headline summary -----------------------------------------------------------


def _fig01_cells(quick: bool) -> List[ExperimentCell]:
    n_sc = _sc_n_points(True)
    graph_kw = dict(algo="bfs", graph_scale=14, edgefactor=16, graph_seed=2)
    sgd_kw = dict(kernel="gradient", n_samples=4096, n_features=1024,
                  ds_seed=11, epochs=1)
    sc_kw = dict(n_points=n_sc, batch_points=n_sc // 2, n_centers=12)
    tpch_kw = dict(query="q3", sf=4.0, tpch_seed=42)
    mk = lambda strat, cores, **kw: _Cell(  # noqa: E731
        "fig01_summary", machine_preset="milan", strategy=strat, cores=cores,
        seed=SEED, **kw)
    return [
        mk("charm", 64, **graph_kw), mk("ring", 64, **graph_kw),
        mk("charm", 64, **sgd_kw), mk("numa-node", 64, **sgd_kw),
        mk("charm", 16, **sc_kw), mk("shoal", 16, **sc_kw),
        mk("vanilla", 8, **tpch_kw), mk("charm", 8, **tpch_kw),
    ]


def _fig01_run(cell: ExperimentCell):
    p = cell.params
    if "algo" in p:
        return _run_graph_cell(cell)
    if "kernel" in p:
        return _run_sgd_cell(cell)
    if "n_points" in p:
        return _run_streamcluster_cell(cell)
    return _run_tpch_cell(cell)


def _fig01_merge(quick: bool, results: Dict):
    c = _fig01_cells(quick)
    r = [results[cell.cell_id] for cell in c]
    rows = [
        {"domain": "graph (BFS, 64c)",
         "speedup_vs_numa_aware": r[0]["teps"] / r[1]["teps"]},
        {"domain": "statistical analytics (SGD, 64c)",
         "speedup_vs_numa_aware": r[2]["throughput_gbs"] / r[3]["throughput_gbs"]},
        {"domain": "parallel processing (streamcluster, 16c)",
         "speedup_vs_numa_aware": r[5]["wall_ns"] / r[4]["wall_ns"]},
        {"domain": "OLAP (TPC-H q3, 8c)",
         "speedup_vs_numa_aware": r[6]["wall_ns"] / r[7]["wall_ns"]},
    ]
    return rows, format_table(rows, ["domain", "speedup_vs_numa_aware"],
                              "Fig. 1: CHARM speedups vs NUMA-aware systems")


register("fig01_summary", _fig01_cells, _fig01_run, _fig01_merge)


def fig01_summary(quick: bool = True):
    return run_serial("fig01_summary", quick)


# -- Sensitivity + ablations --------------------------------------------------------------


def _sens_cells(quick: bool) -> List[ExperimentCell]:
    n = _sc_n_points(True)
    thresholds = [4, 12, 24, 48, 96] if quick else [2, 4, 8, 16, 24, 32, 48, 96, 192]
    return [
        _Cell("sens_threshold", machine_preset="milan", strategy=f"charm-thr-{thr}",
              cores=16, seed=SEED, n_points=n, batch_points=n // 2, n_centers=12)
        for thr in thresholds
    ]


def _sens_merge(quick: bool, results: Dict):
    rows = []
    for cell in _sens_cells(quick):
        r = results[cell.cell_id]
        thr = int(cell.strategy[len("charm-thr-"):])
        rows.append({"threshold": thr, "wall_ms": r["wall_ns"] / 1e6,
                     "migrations": r["migrations"]})
    return rows, format_table(rows, ["threshold", "wall_ms", "migrations"],
                              "Sensitivity: RMT_CHIP_ACCESS_RATE sweep (streamcluster, 16c)")


register("sens_threshold", _sens_cells, _run_streamcluster_cell, _sens_merge)


def sens_threshold(quick: bool = True):
    """Section 4.6's threshold sensitivity sweep, on this machine."""
    return run_serial("sens_threshold", quick)


def _abl_stealing_cells(quick: bool) -> List[ExperimentCell]:
    cells = []
    for c in (32, 64):
        for strat in ("charm", "charm-flat"):
            cells.append(_Cell("abl_stealing", machine_preset="milan", strategy=strat,
                               cores=c, seed=SEED, algo="bfs", graph_scale=14,
                               edgefactor=16, graph_seed=2))
    return cells


def _abl_stealing_merge(quick: bool, results: Dict):
    cells = _abl_stealing_cells(quick)
    rows = []
    for i in range(0, len(cells), 2):
        r_h = results[cells[i].cell_id]["metric"]
        r_f = results[cells[i + 1].cell_id]["metric"]
        rows.append({"cores": cells[i].cores, "hierarchical_mteps": r_h,
                     "flat_mteps": r_f, "gain": r_h / max(r_f, 1e-9)})
    return rows, format_table(rows, ["cores", "hierarchical_mteps", "flat_mteps", "gain"],
                              "Ablation: hierarchical vs flat work stealing (BFS)")


register("abl_stealing", _abl_stealing_cells, _run_graph_cell, _abl_stealing_merge)


def abl_stealing(quick: bool = True):
    """Ablation: chiplet-first hierarchical stealing vs flat random."""
    return run_serial("abl_stealing", quick)


def _abl_spread_cells(quick: bool) -> List[ExperimentCell]:
    n = _sc_n_points(True)
    kw = dict(n_points=n, batch_points=n // 2, n_centers=12)
    return [
        _Cell("abl_spread", machine_preset="milan", strategy=strat, cores=16,
              seed=SEED, **kw)
        for strat in ("charm", "static-2", "static-4", "static-8")
    ]


def _abl_spread_merge(quick: bool, results: Dict):
    rows = []
    for cell in _abl_spread_cells(quick):
        label = "adaptive" if cell.strategy == "charm" else cell.strategy
        rows.append({"policy": label,
                     "wall_ms": results[cell.cell_id]["wall_ns"] / 1e6})
    return rows, format_table(rows, ["policy", "wall_ms"],
                              "Ablation: adaptive vs static spread (streamcluster, 16c)")


register("abl_spread", _abl_spread_cells, _run_streamcluster_cell, _abl_spread_merge)


def abl_spread(quick: bool = True):
    """Ablation: adaptive spread_rate vs every static spread."""
    return run_serial("abl_spread", quick)


def _ext_genoa_cells(quick: bool) -> List[ExperimentCell]:
    cores = [12, 48, 96] if quick else [12, 24, 48, 96, 144, 192]
    cells = []
    for c in cores:
        for strat in ("charm", "ring"):
            cells.append(_Cell("ext_genoa_whatif", machine_preset="genoa",
                               strategy=strat, cores=c, seed=SEED, algo="bfs",
                               graph_scale=14, edgefactor=16, graph_seed=2))
    return cells


def _ext_genoa_merge(quick: bool, results: Dict):
    series: Dict[str, List[Tuple[int, float]]] = {"charm": [], "ring": []}
    for cell in _ext_genoa_cells(quick):
        series[cell.strategy].append((cell.cores, results[cell.cell_id]["metric"]))
    return series, format_series(series, "cores",
                                 "Extension: BFS scalability on EPYC Genoa (12 CCDs/socket)")


register("ext_genoa_whatif", _ext_genoa_cells, _run_graph_cell, _ext_genoa_merge)


def ext_genoa_whatif(quick: bool = True):
    """Extension: the paper's insights on a next-generation 12-CCD part.

    Runs the BFS scalability comparison on the Genoa model (more chiplets,
    more channels) to check that CHARM's chiplet-aware advantage grows
    with chiplet count, as the paper's conclusions predict for future
    processors.
    """
    return run_serial("ext_genoa_whatif", quick)


# -- Extension: multi-tenant co-location ------------------------------------------------


def _colocation_cells(quick: bool) -> List[ExperimentCell]:
    repeats = 6 if quick else 12
    return [
        _Cell("ext_colocation", machine_preset="milan", strategy="explicit",
              cores=0, seed=SEED, variant=variant, repeats=repeats)
        for variant in ("isolated", "other-socket", "same-socket")
    ]


def _colocation_run(cell: ExperimentCell) -> Dict:
    """One co-location variant: tenant A + antagonist B on chosen cores."""
    from repro.runtime.ops import AccessBatch, YieldPoint
    from repro.runtime.policy import SchedulingStrategy
    from repro.runtime.runtime import Runtime

    class ExplicitCores(SchedulingStrategy):
        name = "explicit"
        hierarchical_stealing = False

        def __init__(self, cores):
            self.cores = cores

        def initial_core(self, worker_id, n_workers, machine):
            return self.cores[worker_id]

    variant = cell.params["variant"]
    repeats = cell.params["repeats"]
    machine = _machine_for(cell.machine_preset)
    topo = machine.topo
    a_cores = list(range(32))                     # chiplets 0-3, socket 0
    if variant == "same-socket":
        b_cores = list(range(32, 64))             # chiplets 4-7, socket 0
    elif variant == "other-socket":
        b_cores = topo.cores_of_socket(1)[:32]    # socket 1
    else:
        b_cores = []
    strategy = ExplicitCores(a_cores + b_cores)
    rt = Runtime(machine, len(a_cores) + len(b_cores), strategy, seed=cell.seed)
    # Tenant A: working set beyond its chiplet slices, so it streams
    # node-0 DRAM continuously (the shared resource).
    a_region = rt.alloc(16 << 20, node=0, name="tenant-a")
    # Antagonist B: NUMA-local streaming region — on B's own socket,
    # the way a sane multi-tenant allocator would place it.
    b_node = topo.numa_of_core(b_cores[0]) if b_cores else 1
    b_region = rt.alloc(16 << 20, node=b_node, name="tenant-b")
    finish = {}

    def a_task(wid):
        n = a_region.n_blocks
        per = n // 32
        blocks = list(range(wid * per, (wid + 1) * per))
        for _ in range(repeats * 8):
            yield AccessBatch(a_region, blocks, compute_ns_per_block=20.0)
            yield YieldPoint()
        finish[wid] = rt.workers[wid].clock
        return wid

    def b_task(wid, offset):
        n = b_region.n_blocks
        for r in range(repeats * 4):
            lo = (offset * 131 + r * 257) % max(n - 64, 1)
            yield AccessBatch(b_region, list(range(lo, lo + 64)))
            yield YieldPoint()
        return wid

    for w in range(len(a_cores)):
        rt.spawn(a_task, w, pin_worker=w)
    for i, w in enumerate(range(len(a_cores), len(a_cores) + len(b_cores))):
        rt.spawn(b_task, w, i, pin_worker=w)
    rt.run()
    return {"tenant_a_ms": float(max(finish.values()) / 1e6)}


def _colocation_merge(quick: bool, results: Dict):
    rows = []
    for cell in _colocation_cells(quick):
        rows.append({
            "antagonist": cell.params["variant"],
            "tenant_a_ms": results[cell.cell_id]["tenant_a_ms"],
        })
    base = rows[0]["tenant_a_ms"]
    for r in rows:
        r["slowdown"] = r["tenant_a_ms"] / base
    return rows, format_table(rows, ["antagonist", "tenant_a_ms", "slowdown"],
                              "Extension: tenant-A latency under co-located antagonist")


register("ext_colocation", _colocation_cells, _colocation_run, _colocation_merge)


def ext_colocation(quick: bool = True):
    """Extension: multi-tenant co-location (the paper's future-work note).

    Section 4.6 cites evidence that chiplet-aware strategies also benefit
    multi-tenant, shared-nothing deployments.  This experiment quantifies
    the mechanism: a cache-resident tenant (A) shares the machine with a
    DRAM-streaming antagonist (B) placed either on the same socket or on
    the other socket.  Socket-isolated placement should shield tenant A
    from B's bandwidth pressure.
    """
    return run_serial("ext_colocation", quick)


# Registering the DSE experiment here makes it reachable from pool
# workers: execute_cell imports this module to populate the registry, so
# "dse" cells resolve in spawn-started workers exactly like the figure
# experiments do.
from repro.bench import dse as _dse  # noqa: E402,F401
