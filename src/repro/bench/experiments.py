"""One experiment function per paper table/figure.

Every function returns ``(rows_or_series, rendered_text)``.  ``quick=True``
(the benchmark default) shrinks the matrix to a few core counts and
smaller inputs; ``quick=False`` runs the full paper-shaped sweep.  All
functions are deterministic for a fixed seed.
"""

from typing import Dict, List, Tuple

import numpy as np

from repro.baselines import (
    AsymSchedStrategy,
    OsAsyncStrategy,
    RingStrategy,
    SamStrategy,
    ShoalStrategy,
    distributed_cache_strategy,
    local_cache_strategy,
)
from repro.baselines.vanilla import VanillaStrategy
from repro.bench.report import format_series, format_table
from repro.hw.machine import Machine, milan, sapphire_rapids
from repro.hw.topology import Distance
from repro.runtime.policy import CharmPolicyConfig, CharmStrategy, StaticSpreadStrategy
from repro.workloads.graph.generator import kronecker
from repro.workloads.graph.runner import run_graph_algorithm
from repro.workloads.gups import run_gups
from repro.workloads.olap import generate as tpch_generate
from repro.workloads.olap.queries import QUERIES, run_query
from repro.workloads.oltp import run_oltp, tpcc_workload, ycsb_workload
from repro.workloads.oltp.tpcc import load_tpcc
from repro.workloads.oltp.ycsb import load_ycsb
from repro.workloads.sgd import make_dataset, run_sgd
from repro.workloads.streamcluster import make_points, run_streamcluster
from repro.workloads.vector_write import run_vector_write, sweep_sizes

SEED = 7
MACHINE_SCALE = 32

GRAPH_ALGOS = ["bfs", "pagerank", "cc", "sssp", "graph500"]


def _milan() -> Machine:
    return milan(scale=MACHINE_SCALE)


def _spr() -> Machine:
    return sapphire_rapids(scale=MACHINE_SCALE)


def _graph(quick: bool):
    return kronecker(14 if quick else 16, 16, seed=2)


def _cores(quick: bool, cap: int = 128) -> List[int]:
    cores = [8, 32, 64] if quick else [8, 16, 32, 48, 64, 96, 128]
    return [c for c in cores if c <= cap]


# -- Fig. 3: core-to-core latency CDF ------------------------------------------------


def fig03_latency_cdf():
    """CDF groups of CAS latency by topological distance (Fig. 3)."""
    machine = _milan()
    topo, lat = machine.topo, machine.latency
    groups: Dict[str, List[float]] = {"same_chiplet": [], "same_numa": [], "cross_numa": []}
    for a, b in topo.core_pairs():
        ns = lat.core_to_core_ns(topo, a, b)
        d = topo.distance(a, b)
        if d is Distance.SAME_CHIPLET:
            groups["same_chiplet"].append(ns)
        elif d is Distance.SAME_SOCKET:
            groups["same_numa"].append(ns)
        else:
            groups["cross_numa"].append(ns)
    rows = []
    for name, vals in groups.items():
        arr = np.array(vals)
        rows.append({
            "group": name,
            "count": arr.size,
            "p10_ns": float(np.percentile(arr, 10)),
            "p50_ns": float(np.percentile(arr, 50)),
            "p90_ns": float(np.percentile(arr, 90)),
        })
    return rows, format_table(rows, ["group", "count", "p10_ns", "p50_ns", "p90_ns"],
                              "Fig. 3: core-to-core latency groups (dual-socket Milan)")


# -- Fig. 4: cores vs memory channels trend ------------------------------------------


#: (year, flagship server cores, memory channels) — the trend of Fig. 4.
CHANNEL_TREND = [
    (2010, 8, 4), (2012, 12, 4), (2014, 18, 4), (2017, 28, 6),
    (2019, 64, 8), (2021, 64, 8), (2023, 96, 12), (2026, 300, 12),
]


def fig04_channels():
    rows = [
        {"year": y, "cores": c, "mem_channels": m, "cores_per_channel": round(c / m, 1)}
        for y, c, m in CHANNEL_TREND
    ]
    return rows, format_table(rows, ["year", "cores", "mem_channels", "cores_per_channel"],
                              "Fig. 4: core count vs memory channels")


# -- Fig. 5: LocalCache vs DistributedCache microbenchmark ---------------------------


def fig05_local_vs_distributed(quick: bool = True):
    m0 = _milan()
    sizes = sorted(set(sweep_sizes(m0.l3_bytes_per_chiplet, m0.topo.chiplets_per_socket)))
    if quick:
        sizes = sizes[::2] + [sizes[-1]]
    rows = []
    for size in sorted(set(sizes)):
        ml, md = _milan(), _milan()
        rl = run_vector_write(ml, local_cache_strategy(), size, seed=SEED)
        rd = run_vector_write(md, distributed_cache_strategy(md), size, seed=SEED)
        rows.append({
            "size_kib": size // 1024,
            "local_ns_iter": rl.ns_per_iteration,
            "dist_ns_iter": rd.ns_per_iteration,
            "dist_speedup": rl.ns_per_iteration / rd.ns_per_iteration,
        })
    return rows, format_table(
        rows, ["size_kib", "local_ns_iter", "dist_ns_iter", "dist_speedup"],
        "Fig. 5: LocalCache vs DistributedCache segmented write (8 threads)")


# -- Fig. 7 / Fig. 8: graph scalability ----------------------------------------------


def _graph_scalability(machine_fn, quick: bool, algorithms=None, cores=None):
    graph = _graph(quick)
    algorithms = algorithms or (["bfs", "pagerank"] if quick else GRAPH_ALGOS)
    max_cores = machine_fn().topo.total_cores
    cores = cores or _cores(quick, cap=max_cores)
    systems = [("charm", CharmStrategy), ("ring", RingStrategy),
               ("asymsched", AsymSchedStrategy), ("sam", SamStrategy)]
    series: Dict[str, List[Tuple[int, float]]] = {}
    for algo in algorithms:
        for sys_name, mk in systems:
            pts = []
            for c in cores:
                if algo == "gups":
                    res = run_gups(machine_fn(), mk(), c, 16 << 20,
                                   updates_per_worker=1024 if quick else 4096, seed=SEED)
                    pts.append((c, res.mups))
                else:
                    res = run_graph_algorithm(
                        machine_fn(), mk(), algo, graph, c, seed=SEED,
                        pagerank_iterations=3 if quick else 5)
                    pts.append((c, res.mteps))
            series[f"{algo}/{sys_name}"] = pts
    return series


def fig07_amd_scalability(quick: bool = True, algorithms=None):
    algorithms = algorithms or (["bfs", "gups"] if quick else GRAPH_ALGOS + ["gups"])
    series = _graph_scalability(_milan, quick, algorithms=algorithms)
    return series, format_series(series, "cores",
                                 "Fig. 7: graph + GUPS scalability, AMD Milan (MTEPS / MUPS)")


def fig08_intel_scalability(quick: bool = True, algorithms=None):
    algorithms = algorithms or (["bfs"] if quick else GRAPH_ALGOS + ["gups"])
    series = _graph_scalability(_spr, quick, algorithms=algorithms,
                                cores=[8, 32, 48, 96] if quick else [8, 16, 32, 48, 64, 96])
    return series, format_series(series, "cores",
                                 "Fig. 8: graph scalability, Intel Sapphire Rapids")


# -- Tab. 1: chiplet access counters -------------------------------------------------


def tab1_chiplet_accesses(quick: bool = True, cores: int = 64):
    graph = _graph(quick)
    algorithms = ["bfs", "pagerank"] if quick else GRAPH_ALGOS
    rows = []
    for algo in algorithms + ["gups"]:
        row = {"application": algo}
        for sys_name, mk in (("charm", CharmStrategy), ("ring", RingStrategy)):
            if algo == "gups":
                res = run_gups(_milan(), mk(), cores, 16 << 20,
                               updates_per_worker=1024 if quick else 4096, seed=SEED)
                counters = res.report.counters
            else:
                counters = run_graph_algorithm(
                    _milan(), mk(), algo, graph, cores, seed=SEED,
                    pagerank_iterations=3 if quick else 5).report.counters
            row[f"remote_numa_{sys_name}"] = counters.remote_numa_chiplet
            row[f"local_chiplet_{sys_name}"] = counters.local_chiplet + counters.remote_chiplet
        rows.append(row)
    cols = ["application", "remote_numa_charm", "remote_numa_ring",
            "local_chiplet_charm", "local_chiplet_ring"]
    return rows, format_table(rows, cols, f"Tab. 1: chiplet accesses at {cores} cores")


# -- Fig. 9 / Tab. 2: streamcluster --------------------------------------------------


def _sc_points(quick: bool):
    return make_points(32768 if quick else 65536, 64, 10, seed=4)


def fig09_streamcluster(quick: bool = True):
    pts = _sc_points(quick)
    batch = pts.shape[0] // 2
    base = run_streamcluster(_milan(), VanillaStrategy(), 1, pts, n_centers=12,
                             batch_points=batch, seed=SEED).wall_ns
    cores = [8, 24, 32, 64, 128] if quick else [1, 8, 16, 24, 32, 40, 48, 64, 96, 128]
    series = {"charm": [], "shoal": []}
    for c in cores:
        rc = run_streamcluster(_milan(), CharmStrategy(), c, pts, n_centers=12,
                               batch_points=batch, seed=SEED)
        rs = run_streamcluster(_milan(), ShoalStrategy(), c, pts, n_centers=12,
                               batch_points=batch, seed=SEED)
        series["charm"].append((c, base / rc.wall_ns))
        series["shoal"].append((c, base / rs.wall_ns))
    return series, format_series(series, "cores",
                                 "Fig. 9: Streamcluster speedup over no-runtime baseline")


def tab2_streamcluster_accesses(quick: bool = True):
    pts = _sc_points(quick)
    # Keep the batch within the socket's aggregate L3 at every scale, as
    # the paper's 200K-point batches (100 MB) fit its 256 MB socket L3 —
    # the reuse that Tab. 2's counter contrast comes from.
    batch = pts.shape[0] // (2 if quick else 4)
    rows = []
    for c in (8, 16, 32, 64):
        row = {"cores": c}
        for name, mk in (("charm", CharmStrategy), ("shoal", ShoalStrategy)):
            res = run_streamcluster(_milan(), mk(), c, pts, n_centers=12,
                                    batch_points=batch, seed=SEED)
            cnt = res.report.counters
            row[f"local_{name}"] = cnt.local_chiplet + cnt.remote_chiplet
            row[f"remote_numa_{name}"] = cnt.remote_numa_chiplet
            row[f"dram_{name}"] = cnt.dram
        rows.append(row)
    cols = ["cores", "local_charm", "local_shoal", "remote_numa_charm",
            "remote_numa_shoal", "dram_charm", "dram_shoal"]
    return rows, format_table(rows, cols, "Tab. 2: streamcluster memory/cache accesses")


# -- Fig. 10: data-size sensitivity ---------------------------------------------------


def fig10_datasize(quick: bool = True):
    scales = [12, 14] if quick else [12, 13, 14, 15, 16]
    cores_list = [32, 64]
    algorithms = ["bfs"] if quick else ["bfs", "sssp", "graph500"]
    rows = []
    for scale in scales:
        graph = kronecker(scale, 16, seed=2)
        for algo in algorithms:
            for c in cores_list:
                rc = run_graph_algorithm(_milan(), CharmStrategy(), algo, graph, c, seed=SEED)
                rr = run_graph_algorithm(_milan(), RingStrategy(), algo, graph, c, seed=SEED)
                rows.append({
                    "algo": algo,
                    "graph_mib": graph.adjacency_bytes // (1 << 20),
                    "cores": c,
                    "speedup_vs_ring": rc.teps / max(rr.teps, 1e-9),
                })
    return rows, format_table(rows, ["algo", "graph_mib", "cores", "speedup_vs_ring"],
                              "Fig. 10: CHARM speedup over RING vs graph size")


# -- Fig. 11 / Fig. 12: SGD ------------------------------------------------------------


def fig11_sgd(quick: bool = True):
    ds = make_dataset(4096 if quick else 8192, 1024, seed=11)
    cores = _cores(quick)
    schemes = ["per-core", "numa-node", "per-machine", "charm", "charm-async"]
    out = {}
    for kernel in ("loss", "gradient"):
        series = {s: [] for s in schemes}
        for c in cores:
            for s in schemes:
                res = run_sgd(_milan(), s, c, ds, kernel=kernel, epochs=1, seed=SEED)
                series[s].append((c, res.throughput_gbs))
        out[kernel] = series
    text = "\n\n".join(
        format_series(out[k], "cores", f"Fig. 11{chr(97 + i)}: SGD {k} throughput (GB/s)")
        for i, k in enumerate(("loss", "gradient"))
    )
    return out, text


def fig12_concurrency(quick: bool = True, cores: int = 32):
    ds = make_dataset(2048 if quick else 4096, 1024, seed=11)
    rows = []
    for scheme in ("charm", "charm-async"):
        res = run_sgd(_milan(), scheme, cores, ds, kernel="gradient", epochs=1,
                      seed=SEED, collect_timeline=True)
        rows.append({
            "scheme": scheme,
            "threads_created": res.report.tasks_created,
            "avg_concurrency": res.report.avg_concurrency(),
            "throughput_gbs": res.throughput_gbs,
        })
    return rows, format_table(rows, ["scheme", "threads_created", "avg_concurrency",
                                     "throughput_gbs"],
                              f"Fig. 12: thread concurrency during SGD at {cores} cores")


# -- Fig. 13: TPC-H --------------------------------------------------------------------


def fig13_tpch(quick: bool = True, cores: int = 8):
    data = tpch_generate(sf=4.0 if quick else 10.0, seed=42)
    queries = ["q1", "q3", "q6", "q9", "q10", "q18"] if quick else list(QUERIES)
    rows = []
    for q in queries:
        rs = run_query(_milan(), VanillaStrategy(), cores, data, q, seed=SEED)
        rc = run_query(_milan(), CharmStrategy(), cores, data, q, seed=SEED)
        rows.append({
            "query": q,
            "kind": QUERIES[q][1],
            "stock_ms": rs.ms,
            "charm_ms": rc.ms,
            "speedup": rs.wall_ns / rc.wall_ns,
        })
    return rows, format_table(rows, ["query", "kind", "stock_ms", "charm_ms", "speedup"],
                              f"Fig. 13: TPC-H queries, stock vs +CHARM at {cores} cores")


# -- Fig. 14: OLTP ----------------------------------------------------------------------


def fig14_oltp(quick: bool = True):
    cores = [8, 32, 64] if quick else [8, 16, 32, 48, 64]
    txns = 60 if quick else 200
    series: Dict[str, List[Tuple[int, float]]] = {}
    for wl in ("ycsb", "tpcc"):
        for pol_name in ("local", "distributed"):
            pts = []
            for c in cores:
                machine = _milan()
                strategy = (local_cache_strategy() if pol_name == "local"
                            else distributed_cache_strategy(machine))
                if wl == "ycsb":
                    res = run_oltp(machine, strategy, c, ycsb_workload, "ycsb",
                                   load_ycsb(20000), 8 << 20, txns_per_worker=txns, seed=SEED)
                else:
                    tables = load_tpcc(5)
                    res = run_oltp(machine, strategy, c, tpcc_workload(tables), "tpcc",
                                   tables.store, 8 << 20, txns_per_worker=txns, seed=SEED)
                pts.append((c, res.commits_per_second / 1e3))
            series[f"{wl}/{pol_name}"] = pts
    return series, format_series(series, "cores",
                                 "Fig. 14: OLTP kilo-commits/s, LocalCache vs DistributedCache")


# -- Fig. 1: headline summary -----------------------------------------------------------


def fig01_summary(quick: bool = True):
    graph = _graph(True)
    rows = []
    r_c = run_graph_algorithm(_milan(), CharmStrategy(), "bfs", graph, 64, seed=SEED)
    r_r = run_graph_algorithm(_milan(), RingStrategy(), "bfs", graph, 64, seed=SEED)
    rows.append({"domain": "graph (BFS, 64c)", "speedup_vs_numa_aware": r_c.teps / r_r.teps})
    ds = make_dataset(4096, 1024, seed=11)
    s_c = run_sgd(_milan(), "charm", 64, ds, kernel="gradient", epochs=1, seed=SEED)
    s_n = run_sgd(_milan(), "numa-node", 64, ds, kernel="gradient", epochs=1, seed=SEED)
    rows.append({"domain": "statistical analytics (SGD, 64c)",
                 "speedup_vs_numa_aware": s_c.throughput_gbs / s_n.throughput_gbs})
    pts = _sc_points(True)
    c_sc = run_streamcluster(_milan(), CharmStrategy(), 16, pts, n_centers=12,
                             batch_points=pts.shape[0] // 2, seed=SEED)
    s_sc = run_streamcluster(_milan(), ShoalStrategy(), 16, pts, n_centers=12,
                             batch_points=pts.shape[0] // 2, seed=SEED)
    rows.append({"domain": "parallel processing (streamcluster, 16c)",
                 "speedup_vs_numa_aware": s_sc.wall_ns / c_sc.wall_ns})
    data = tpch_generate(sf=4.0, seed=42)
    q_s = run_query(_milan(), VanillaStrategy(), 8, data, "q3", seed=SEED)
    q_c = run_query(_milan(), CharmStrategy(), 8, data, "q3", seed=SEED)
    rows.append({"domain": "OLAP (TPC-H q3, 8c)",
                 "speedup_vs_numa_aware": q_s.wall_ns / q_c.wall_ns})
    return rows, format_table(rows, ["domain", "speedup_vs_numa_aware"],
                              "Fig. 1: CHARM speedups vs NUMA-aware systems")


# -- Sensitivity + ablations --------------------------------------------------------------


def sens_threshold(quick: bool = True):
    """Section 4.6's threshold sensitivity sweep, on this machine."""
    pts = _sc_points(True)
    thresholds = [4, 12, 24, 48, 96] if quick else [2, 4, 8, 16, 24, 32, 48, 96, 192]
    rows = []
    for thr in thresholds:
        strategy = CharmStrategy(CharmPolicyConfig(rmt_chip_access_rate=float(thr)))
        res = run_streamcluster(_milan(), strategy, 16, pts, n_centers=12,
                                batch_points=pts.shape[0] // 2, seed=SEED)
        rows.append({"threshold": thr, "wall_ms": res.wall_ns / 1e6,
                     "migrations": res.report.migrations})
    return rows, format_table(rows, ["threshold", "wall_ms", "migrations"],
                              "Sensitivity: RMT_CHIP_ACCESS_RATE sweep (streamcluster, 16c)")


def abl_stealing(quick: bool = True):
    """Ablation: chiplet-first hierarchical stealing vs flat random."""

    class FlatCharm(CharmStrategy):
        name = "charm-flat-steal"
        hierarchical_stealing = False

    graph = _graph(True)
    rows = []
    for c in (32, 64):
        r_h = run_graph_algorithm(_milan(), CharmStrategy(), "bfs", graph, c, seed=SEED)
        r_f = run_graph_algorithm(_milan(), FlatCharm(), "bfs", graph, c, seed=SEED)
        rows.append({"cores": c, "hierarchical_mteps": r_h.mteps, "flat_mteps": r_f.mteps,
                     "gain": r_h.mteps / max(r_f.mteps, 1e-9)})
    return rows, format_table(rows, ["cores", "hierarchical_mteps", "flat_mteps", "gain"],
                              "Ablation: hierarchical vs flat work stealing (BFS)")


def abl_spread(quick: bool = True):
    """Ablation: adaptive spread_rate vs every static spread."""
    pts = _sc_points(True)
    batch = pts.shape[0] // 2
    rows = []
    res = run_streamcluster(_milan(), CharmStrategy(), 16, pts, n_centers=12,
                            batch_points=batch, seed=SEED)
    rows.append({"policy": "adaptive", "wall_ms": res.wall_ns / 1e6})
    for spread in (2, 4, 8):
        res = run_streamcluster(_milan(), StaticSpreadStrategy(spread), 16, pts,
                                n_centers=12, batch_points=batch, seed=SEED)
        rows.append({"policy": f"static-{spread}", "wall_ms": res.wall_ns / 1e6})
    return rows, format_table(rows, ["policy", "wall_ms"],
                              "Ablation: adaptive vs static spread (streamcluster, 16c)")


def ext_genoa_whatif(quick: bool = True):
    """Extension: the paper's insights on a next-generation 12-CCD part.

    Runs the BFS scalability comparison on the Genoa model (more chiplets,
    more channels) to check that CHARM's chiplet-aware advantage grows
    with chiplet count, as the paper's conclusions predict for future
    processors.
    """
    from repro.hw.machine import genoa

    graph = _graph(True)
    cores = [12, 48, 96] if quick else [12, 24, 48, 96, 144, 192]
    series: Dict[str, List[Tuple[int, float]]] = {"charm": [], "ring": []}
    for c in cores:
        for name, mk in (("charm", CharmStrategy), ("ring", RingStrategy)):
            res = run_graph_algorithm(genoa(scale=MACHINE_SCALE), mk(), "bfs",
                                      graph, c, seed=SEED)
            series[name].append((c, res.mteps))
    return series, format_series(series, "cores",
                                 "Extension: BFS scalability on EPYC Genoa (12 CCDs/socket)")


def ext_colocation(quick: bool = True):
    """Extension: multi-tenant co-location (the paper's future-work note).

    Section 4.6 cites evidence that chiplet-aware strategies also benefit
    multi-tenant, shared-nothing deployments.  This experiment quantifies
    the mechanism: a cache-resident tenant (A) shares the machine with a
    DRAM-streaming antagonist (B) placed either on the same socket or on
    the other socket.  Socket-isolated placement should shield tenant A
    from B's bandwidth pressure.
    """
    from repro.runtime.ops import AccessBatch, YieldPoint
    from repro.runtime.policy import SchedulingStrategy
    from repro.runtime.runtime import Runtime

    class ExplicitCores(SchedulingStrategy):
        name = "explicit"
        hierarchical_stealing = False

        def __init__(self, cores):
            self.cores = cores

        def initial_core(self, worker_id, n_workers, machine):
            return self.cores[worker_id]

    repeats = 6 if quick else 12
    rows = []
    for variant in ("isolated", "other-socket", "same-socket"):
        machine = _milan()
        topo = machine.topo
        a_cores = list(range(32))                     # chiplets 0-3, socket 0
        if variant == "same-socket":
            b_cores = list(range(32, 64))             # chiplets 4-7, socket 0
        elif variant == "other-socket":
            b_cores = topo.cores_of_socket(1)[:32]    # socket 1
        else:
            b_cores = []
        strategy = ExplicitCores(a_cores + b_cores)
        rt = Runtime(machine, len(a_cores) + len(b_cores), strategy, seed=SEED)
        # Tenant A: working set beyond its chiplet slices, so it streams
        # node-0 DRAM continuously (the shared resource).
        a_region = rt.alloc(16 << 20, node=0, name="tenant-a")
        # Antagonist B: NUMA-local streaming region — on B's own socket,
        # the way a sane multi-tenant allocator would place it.
        b_node = topo.numa_of_core(b_cores[0]) if b_cores else 1
        b_region = rt.alloc(16 << 20, node=b_node, name="tenant-b")
        finish = {}

        def a_task(wid):
            n = a_region.n_blocks
            per = n // 32
            blocks = list(range(wid * per, (wid + 1) * per))
            for _ in range(repeats * 8):
                yield AccessBatch(a_region, blocks, compute_ns_per_block=20.0)
                yield YieldPoint()
            finish[wid] = rt.workers[wid].clock
            return wid

        def b_task(wid, offset):
            n = b_region.n_blocks
            for r in range(repeats * 4):
                lo = (offset * 131 + r * 257) % max(n - 64, 1)
                yield AccessBatch(b_region, list(range(lo, lo + 64)))
                yield YieldPoint()
            return wid

        for w in range(len(a_cores)):
            rt.spawn(a_task, w, pin_worker=w)
        for i, w in enumerate(range(len(a_cores), len(a_cores) + len(b_cores))):
            rt.spawn(b_task, w, i, pin_worker=w)
        rt.run()
        rows.append({
            "antagonist": variant,
            "tenant_a_ms": max(finish.values()) / 1e6,
        })
    base = rows[0]["tenant_a_ms"]
    for r in rows:
        r["slowdown"] = r["tenant_a_ms"] / base
    return rows, format_table(rows, ["antagonist", "tenant_a_ms", "slowdown"],
                              "Extension: tenant-A latency under co-located antagonist")
