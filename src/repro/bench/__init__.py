"""Experiment harness: one entry point per paper table/figure.

Each ``fig*``/``tab*`` function runs the full workload matrix for that
artifact and returns structured rows; :mod:`repro.bench.report` renders
them as the text tables/series the benchmarks print and EXPERIMENTS.md
records.
"""

from repro.bench import experiments
from repro.bench.report import format_table, format_series

__all__ = ["experiments", "format_table", "format_series"]
