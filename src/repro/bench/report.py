"""Plain-text rendering of experiment results."""

from typing import Dict, List, Sequence


def format_table(rows: List[Dict], columns: Sequence[str], title: str = "") -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)"
    widths = {c: max(len(c), *(len(_fmt(r.get(c))) for r in rows)) for c in columns}
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        lines.append("  ".join(_fmt(r.get(c)).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def format_series(series: Dict[str, List], x_name: str, title: str = "") -> str:
    """Render {name: [(x, y), ...]} series as aligned columns."""
    lines = [title] if title else []
    xs = sorted({x for pts in series.values() for x, _ in pts})
    names = sorted(series)
    header = [x_name.ljust(8)] + [n.ljust(14) for n in names]
    lines.append("  ".join(header))
    lines.append("-" * (10 + 16 * len(names)))
    lookup = {n: dict(pts) for n, pts in series.items()}
    for x in xs:
        row = [str(x).ljust(8)]
        for n in names:
            v = lookup[n].get(x)
            row.append(_fmt(v).ljust(14))
        lines.append("  ".join(row))
    return "\n".join(lines)


def _fmt(v) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:,.0f}"
        if abs(v) >= 10:
            return f"{v:.1f}"
        return f"{v:.3f}"
    return str(v)
