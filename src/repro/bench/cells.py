"""Experiment cells: the unit of work of the parallel sweep engine.

Every experiment in :mod:`repro.bench.experiments` decomposes into a list
of :class:`ExperimentCell` — a pure, picklable description of one
simulated run (experiment, machine preset, strategy, core count,
workload parameters, seed) — plus a deterministic merge/render step that
turns the per-cell results back into the experiment's rows/series and
text table.  The decomposition is what lets :mod:`repro.bench.sweep`
shard the experiment matrix across worker processes and cache completed
cells on disk without changing a single output bit:

- a cell's result is a function of the cell alone (explicit seeds, no
  shared RNG state, machine built inside the runner);
- cell results are JSON-native (dicts/lists/str/int/float/bool/None), so
  a result read back from the disk cache compares equal to one computed
  in-process (Python's float repr round-trips exactly);
- merge order is fixed by the cells' construction order (and therefore
  by ``cell_id``), never by completion order.

Serial experiment functions and the parallel engine share this exact
code path — ``merge(quick, {cell_id: run_cell(cell)})`` — which is what
the equivalence suite (``tests/test_sweep_equivalence.py``) pins.
"""

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

__all__ = [
    "ExperimentCell",
    "CelledExperiment",
    "REGISTRY",
    "register",
    "execute_cell",
    "execute_cell_telemetry",
    "run_serial",
]


@dataclass(frozen=True)
class ExperimentCell:
    """One pure unit of sweep work.

    ``workload_params`` is a sorted tuple of (name, value) pairs so the
    cell is hashable and its JSON form is canonical.  Values must be
    JSON-native scalars (str/int/float/bool/None).
    """

    experiment: str
    machine_preset: str = ""
    strategy: str = ""
    cores: int = 0
    workload_params: Tuple[Tuple[str, Any], ...] = ()
    seed: int = 7

    @staticmethod
    def make(experiment: str, machine_preset: str = "", strategy: str = "",
             cores: int = 0, seed: int = 7, **params: Any) -> "ExperimentCell":
        return ExperimentCell(experiment, machine_preset, strategy, cores,
                              tuple(sorted(params.items())), seed)

    @property
    def params(self) -> Dict[str, Any]:
        return dict(self.workload_params)

    @property
    def cell_id(self) -> str:
        """Stable human-readable identity (also the merge-order key)."""
        parts = [self.experiment]
        if self.machine_preset:
            parts.append(self.machine_preset)
        if self.strategy:
            parts.append(self.strategy)
        parts.append(f"c{self.cores}")
        if self.workload_params:
            parts.append(",".join(f"{k}={v}" for k, v in self.workload_params))
        parts.append(f"s{self.seed}")
        return "/".join(parts)

    def config(self) -> Dict[str, Any]:
        """Canonical JSON-shaped description (the cache-key input)."""
        return {
            "experiment": self.experiment,
            "machine_preset": self.machine_preset,
            "strategy": self.strategy,
            "cores": self.cores,
            "workload_params": [[k, v] for k, v in self.workload_params],
            "seed": self.seed,
        }

    def work_hint(self) -> float:
        """Dimensionless size estimate of this cell's simulated work.

        Used by the sweep scheduler's cost model
        (:mod:`repro.bench.cost`): cells are ordered longest-first by
        ``work_hint() × calibrated seconds-per-unit``.  The hint only has
        to be *monotone* in real cost within one experiment — the scale
        is absorbed by calibration — so it multiplies the generic size
        drivers found in the cell's parameters: core count, exponential
        graph scale, linear op/iteration counts, and byte sizes.
        """
        work = float(max(1, self.cores))
        for key, value in self.workload_params:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if value <= 0:
                continue
            if key in _EXPONENTIAL_SIZE_KEYS:
                work *= 2.0 ** min(float(value), 40.0)
            elif any(s in key for s in _BYTES_KEY_SUBSTRINGS):
                work *= max(1.0, float(value) / 65536.0)
            elif any(s in key for s in _LINEAR_KEY_SUBSTRINGS):
                work *= float(value)
        return work


#: parameter names whose value is a log2 problem size (2**v elements)
_EXPONENTIAL_SIZE_KEYS = frozenset({"graph_scale", "scale"})

#: parameter-name substrings that multiply work linearly
_LINEAR_KEY_SUBSTRINGS = (
    "updates", "iterations", "iters", "epochs", "points", "ops",
    "rounds", "txns", "queries", "edgefactor", "roots", "requests",
)

#: parameter-name substrings denoting byte sizes (scaled down so typical
#: table sizes land in the same ballpark as op counts)
_BYTES_KEY_SUBSTRINGS = ("bytes",)


@dataclass(frozen=True)
class CelledExperiment:
    """An experiment expressed as cells + runner + merge.

    - ``cells(quick, **overrides)`` returns the cell list in merge order;
    - ``run_cell(cell)`` executes one cell and returns a JSON-native
      result (pure: no reads of global mutable state);
    - ``merge(quick, results, **overrides)`` receives ``{cell_id:
      result}`` and returns the experiment's ``(rows_or_series, text)``.
    """

    name: str
    cells: Callable[..., List["ExperimentCell"]]
    run_cell: Callable[["ExperimentCell"], Any]
    merge: Callable[..., Tuple[Any, str]]


#: every celled experiment, keyed by name (populated by experiments.py)
REGISTRY: Dict[str, CelledExperiment] = {}


def register(name: str, cells: Callable, run_cell: Callable,
             merge: Callable) -> CelledExperiment:
    exp = CelledExperiment(name, cells, run_cell, merge)
    REGISTRY[name] = exp
    return exp


def execute_cell(cell: ExperimentCell) -> Any:
    """Top-level (picklable) cell executor used by the process pool."""
    # Worker processes may not have imported the experiment definitions
    # yet (spawn start method); importing registers them.
    from repro.bench import experiments  # noqa: F401

    try:
        exp = REGISTRY[cell.experiment]
    except KeyError:
        raise KeyError(f"unknown experiment in cell {cell.cell_id!r}") from None
    return exp.run_cell(cell)


def execute_cell_telemetry(cell: ExperimentCell) -> Any:
    """Top-level (picklable) cell executor with telemetry attached.

    Runs the cell under :func:`repro.obs.capture` and, when the result is
    a dict, attaches the primary runtime's telemetry summary under the
    ``"telemetry"`` key.  List-shaped results (e.g. the latency-CDF
    samples of fig03) pass through unchanged — there is nowhere
    JSON-shaped to hang a summary without breaking their merge.

    Virtual-time outputs are bit-identical with telemetry attached
    (tests/test_obs_equivalence.py), so the observed fields of the result
    match what :func:`execute_cell` produces; the sweep still caches the
    two modes under different keys because the summary itself differs.
    """
    from repro.obs import capture

    with capture() as cap:
        result = execute_cell(cell)
    tel = cap.primary()
    if tel is not None and isinstance(result, dict):
        result = dict(result)
        result["telemetry"] = tel.summary()
    return result


def run_serial(name: str, quick: bool = True, **overrides) -> Tuple[Any, str]:
    """Run one experiment inline through its cells + merge path."""
    exp = REGISTRY[name]
    cells = exp.cells(quick, **overrides)
    results = {c.cell_id: exp.run_cell(c) for c in cells}
    return exp.merge(quick, results, **overrides)
