"""The placement-advisor HTTP server: ``python -m repro serve``.

A deliberately small asyncio HTTP/1.1 server (stdlib only — the
container carries no web framework) speaking JSON over three routes:

- ``POST /advise``  — one what-if query (:mod:`repro.serve.query`
  schema); the response carries the canonical echo of the query, one
  result per requested policy, the tier each answer came from, and the
  request's service latency;
- ``GET /healthz``  — liveness + pool shape + SLO ``degraded`` flag
  (the CI smoke and deploy probes poll this);
- ``GET /stats``    — the :class:`~repro.serve.stats.ServerStats`
  snapshot: per-tier hit ratios, coalesce count, in-flight depth,
  reservoir and sliding-window p50/p99, burn rates;
- ``GET /metrics``      — Prometheus text exposition
  (:mod:`repro.serve.observe`);
- ``GET /debug/flight`` — the flight-recorder ring (slow requests,
  errors, store fallbacks, pool restarts), oldest first;
- ``GET /debug/trace``  — sampled request traces as Chrome-trace JSON
  (send ``X-Repro-Trace: 1`` on ``/advise`` to force a sample; merge
  with a simulation trace via ``repro trace --serve``).

Connections are keep-alive; request bodies are capped; malformed
queries answer 400 with the offending field named.  SIGINT/SIGTERM
drain into a clean shutdown (pool and store released, flight recorder
dumped to stderr, exit 0).

Usage::

    python -m repro serve --port 8077 --jobs 2
    curl -s localhost:8077/healthz
    curl -s -X POST localhost:8077/advise -d '{"workload": "gups"}'
    curl -s localhost:8077/metrics
"""

import argparse
import asyncio
import json
import os
import signal
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.wallclock import NULL_TRACE
from repro.serve.observe import SLOW_REQUEST_S, ServeObservability
from repro.serve.pool import BATCH_WINDOW_S, HOT_CACHE_SIZE, CellAnswerer
from repro.serve.query import QueryError, normalize_query
from repro.serve.stats import ServerStats

__all__ = ["AdvisorServer", "ServerThread", "main"]

#: largest accepted request body; a what-if query is a few hundred bytes
MAX_BODY_BYTES = 1 << 20

_JSON_HEADERS = "Content-Type: application/json\r\n"
_TEXT_HEADERS = "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"


class AdvisorServer:
    """One advisor service instance bound to ``host:port``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, jobs: int = 0,
                 use_store: bool = True, hot_cache_size: int = HOT_CACHE_SIZE,
                 batch_window_s: float = BATCH_WINDOW_S,
                 observability: bool = True, trace_sample: float = 0.0,
                 slow_threshold_s: float = SLOW_REQUEST_S):
        self.host = host
        self.port = port
        self.stats = ServerStats()
        self.obs = ServeObservability(
            self.stats, enabled=observability, trace_sample=trace_sample,
            slow_threshold_s=slow_threshold_s)
        self.answerer = CellAnswerer(
            jobs=jobs, use_store=use_store, hot_cache_size=hot_cache_size,
            batch_window_s=batch_window_s, stats=self.stats, obs=self.obs)
        self.obs.bind(self.answerer)
        self._server: Optional[asyncio.base_events.Server] = None

    # -- lifecycle --------------------------------------------------------------

    async def start(self) -> None:
        await self.answerer.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.answerer.stop()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- HTTP plumbing ----------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, body, keep_alive, headers = request
                status, doc, trace = await self._route(method, path, body,
                                                       headers)
                # the respond span covers serialization + socket write, so
                # a sampled trace accounts the full request wall time
                sid = trace.begin("respond", status=status)
                if isinstance(doc, str):
                    payload = doc.encode()
                    content_type = _TEXT_HEADERS
                else:
                    payload = json.dumps(doc).encode()
                    content_type = _JSON_HEADERS
                head = (
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                    f"{content_type}"
                    f"Content-Length: {len(payload)}\r\n"
                    f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                    f"\r\n"
                ).encode()
                writer.write(head + payload)
                await writer.drain()
                trace.end(sid)
                self.obs.tracer.finish(trace)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
            self, reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, bytes, bool, Dict[str, str]]]:
        """Parse one request; None on clean EOF between requests."""
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, target, _version = request_line.decode("latin-1").split()
        except ValueError:
            raise ConnectionError(f"malformed request line {request_line!r}")
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                return None
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        if length > MAX_BODY_BYTES:
            raise ConnectionError(f"request body too large ({length} bytes)")
        body = await reader.readexactly(length) if length else b""
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        return method.upper(), target.split("?", 1)[0], body, keep_alive, headers

    # -- routes -----------------------------------------------------------------

    async def _route(self, method: str, path: str, body: bytes,
                     headers: Dict[str, str],
                     ) -> Tuple[int, Any, Any]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}, NULL_TRACE
            doc = {"status": "ok", **self.answerer.describe()}
            if self.obs.enabled:
                slo = self.obs.healthz_extra()
                doc["slo"] = slo
                if slo["degraded"]:
                    doc["status"] = "degraded"
            return 200, doc, NULL_TRACE
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "use GET"}, NULL_TRACE
            doc = self.stats.snapshot()
            if self.obs.enabled:
                doc.update(self.obs.stats_extra())
            return 200, doc, NULL_TRACE
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "use GET"}, NULL_TRACE
            if not self.obs.enabled:
                return 404, {"error": "observability disabled (--no-obs)"}, \
                    NULL_TRACE
            # store.stats() does SQLite round-trips — expose off-loop
            text = await asyncio.get_running_loop().run_in_executor(
                self.answerer._io, self.obs.metrics_text)
            return 200, text, NULL_TRACE
        if path == "/debug/flight":
            if method != "GET":
                return 405, {"error": "use GET"}, NULL_TRACE
            if not self.obs.enabled:
                return 404, {"error": "observability disabled (--no-obs)"}, \
                    NULL_TRACE
            return 200, self.obs.flight.dump(), NULL_TRACE
        if path == "/debug/trace":
            if method != "GET":
                return 405, {"error": "use GET"}, NULL_TRACE
            if not self.obs.enabled:
                return 404, {"error": "observability disabled (--no-obs)"}, \
                    NULL_TRACE
            return 200, self.obs.tracer.chrome_trace_doc(), NULL_TRACE
        if path == "/advise":
            if method != "POST":
                return 405, {"error": "use POST with a JSON body"}, NULL_TRACE
            force = headers.get("x-repro-trace", "") not in ("", "0")
            return await self._advise(body, force_trace=force)
        return 404, {"error": f"no route {path!r}; have /advise, /healthz, "
                              f"/stats, /metrics, /debug/flight, "
                              f"/debug/trace"}, NULL_TRACE

    async def _advise(self, body: bytes,
                      force_trace: bool = False) -> Tuple[int, Any, Any]:
        self.stats.request_started()
        trace = self.obs.sample_trace(force=force_trace)
        t0 = time.perf_counter()
        status = 500
        detail = ""
        try:
            sid = trace.begin("parse", bytes=len(body))
            try:
                doc = json.loads(body) if body else {}
            except json.JSONDecodeError as exc:
                status, detail = 400, f"request body is not JSON: {exc}"
                return 400, {"error": detail}, trace
            finally:
                trace.end(sid)
            sid = trace.begin("normalize")
            try:
                query = normalize_query(doc)
            except QueryError as exc:
                status, detail = 400, str(exc)
                return 400, {"error": detail}, trace
            finally:
                trace.end(sid)

            cells = query.cells()
            csid = trace.begin("answer_cells", cells=len(cells))
            answers = await asyncio.gather(
                *(self.answerer.answer(cell, trace=trace, parent=csid)
                  for cell in cells))
            trace.end(csid)
            status = 200
            trace.annotate(0, tiers=[tier for _, tier in answers])
            return 200, {
                "query": query.canonical(),
                "results": {cell.strategy: result
                            for cell, (result, _) in zip(cells, answers)},
                "cells": {cell.strategy: cell.cell_id for cell in cells},
                "tiers": {cell.strategy: tier
                          for cell, (_, tier) in zip(cells, answers)},
                "latency_ms": round((time.perf_counter() - t0) * 1e3, 3),
                **({"trace_id": trace.trace_id} if trace.enabled else {}),
            }, trace
        finally:
            dt = time.perf_counter() - t0
            self.stats.request_finished(dt, error=status != 200)
            self.obs.on_request(dt, error=status != 200, status=status,
                                detail=detail)


_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error"}


class ServerThread:
    """Self-hosted advisor for tests and the load generator's bench mode.

    Runs a full :class:`AdvisorServer` (real sockets, real pool) on a
    private event loop in a daemon thread; ``start`` blocks until the
    port is bound, ``stop`` shuts the server down cleanly and joins.
    """

    def __init__(self, **server_kwargs: Any):
        self._kwargs = server_kwargs
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None
        self.host = server_kwargs.get("host", "127.0.0.1")
        self.port = 0

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    def start(self, timeout: float = 60.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._serve()),
            name="advisor-server", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("advisor server did not come up in time")
        if self._startup_error is not None:
            self._thread.join()
            raise RuntimeError(
                f"advisor server failed to start: {self._startup_error}")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=60.0)
            self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = AdvisorServer(**self._kwargs)
        try:
            await server.start()
        except BaseException as exc:  # surface init failures to start()
            self._startup_error = exc
            self._ready.set()
            return
        self.port = server.port
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await server.stop()


# -- CLI ------------------------------------------------------------------------


async def _amain(args: argparse.Namespace) -> int:
    server = AdvisorServer(
        host=args.host, port=args.port, jobs=args.jobs,
        use_store=not args.no_store, hot_cache_size=args.hot_cache,
        batch_window_s=args.batch_window_ms / 1e3,
        observability=not args.no_obs, trace_sample=args.trace_sample,
        slow_threshold_s=args.slow_ms / 1e3)
    await server.start()
    print(f"[serve] advisor listening on {server.url} "
          f"(jobs={server.answerer.jobs}, "
          f"store={'on' if not args.no_store else 'off'}, "
          f"obs={'off' if args.no_obs else 'on'}, "
          f"trace-sample={args.trace_sample})",
          file=sys.stderr, flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # pragma: no cover - non-posix loops
            pass
    await stop.wait()
    print("[serve] shutting down", file=sys.stderr, flush=True)
    await server.stop()
    if server.obs.enabled and len(server.obs.flight):
        # last words for postmortems: the flight recorder, one JSON line
        dump = server.obs.flight.dump()
        print(f"[serve] flight recorder ({len(dump['events'])} events, "
              f"{dump['dropped']} dropped): {json.dumps(dump['events'])}",
              file=sys.stderr, flush=True)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve", description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8077,
                        help="TCP port (0 = pick a free one, printed on "
                             "stderr at startup)")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="simulation worker processes "
                             "(0 = auto from CPU affinity)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="result-store directory (default: the sweep "
                             "engine's, results/.sweep-cache)")
    parser.add_argument("--no-store", action="store_true",
                        help="serve from hot cache + simulation only")
    parser.add_argument("--hot-cache", type=int, default=HOT_CACHE_SIZE,
                        metavar="N", help="hot-cache capacity in entries")
    parser.add_argument("--batch-window-ms", type=float,
                        default=BATCH_WINDOW_S * 1e3, metavar="MS",
                        help="batching window before packing queued cells")
    parser.add_argument("--trace-sample", type=float, default=0.0,
                        metavar="P",
                        help="probability a request is span-traced "
                             "(0.0 = off; X-Repro-Trace: 1 still forces one)")
    parser.add_argument("--no-obs", action="store_true",
                        help="disable wall-clock observability entirely "
                             "(/metrics, /debug/*, SLO windows)")
    parser.add_argument("--slow-ms", type=float, default=SLOW_REQUEST_S * 1e3,
                        metavar="MS",
                        help="flight-recorder slow-request threshold")
    args = parser.parse_args(argv)
    if args.store is not None:
        os.environ["REPRO_SWEEP_CACHE"] = args.store
    return asyncio.run(_amain(args))


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
