"""What-if query normalization: JSON request → canonical experiment cells.

The advisor service answers queries of the form *"this workload at this
size on this machine geometry under these policies"*.  Everything the
server does downstream — single-flight coalescing, hot-cache lookups,
result-store hits — keys on the content-addressed cell key of
:func:`repro.bench.sweep.cache_key`, so **semantically identical queries
must normalize to the identical cells**:

- JSON key order never matters (objects are parsed to dicts);
- every field has a default, and supplying a field *at* its default
  value yields the same cells as omitting it;
- geometry axes accept both their full names
  (``chiplets_per_socket``, …) and the compact DSE aliases (``cps``,
  ``cpc``, ``l3_mib``, ``channels``, ``link_scale``), and a geometry may
  be given as a preset name (``"milan"``, ``"sapphire-rapids"``) whose
  expansion equals spelling the axes out;
- integral floats (``8.0``) canonicalize to ints for integer axes, and
  the link scale to float, so JSON number-type wobble cannot split the
  cache;
- ``policies`` deduplicates and canonicalizes to the fixed policy
  order, and the singular ``policy`` form equals a one-element list.

``tests/test_serve_query.py`` pins this with a property test over the
query schema.

The cells a query produces are exactly the DSE cells of
:mod:`repro.bench.dse` (experiment ``"dse"``, one cell per policy), so
service answers are bit-identical to a batch ``repro dse`` / serial
``run_cell`` of the same configuration.
"""

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

from repro.bench.cells import ExperimentCell
from repro.hw.machine import (
    GEOMETRY_EPYC_MILAN,
    GEOMETRY_XEON_SPR,
    MIB,
    MachineGeometry,
)

__all__ = [
    "AdviseQuery",
    "QueryError",
    "GEOMETRY_PRESETS",
    "PARAM_DEFAULTS",
    "POLICIES",
    "WORKLOADS",
    "normalize_query",
]


class QueryError(ValueError):
    """A malformed or out-of-range query (HTTP 400 at the server)."""


#: the policies a query may ask for, in canonical answer order
POLICIES: Tuple[str, ...] = ("charm", "ring", "static-2")

#: workloads a query may name (the DSE cell runners)
WORKLOADS: Tuple[str, ...] = ("pagerank", "gups")

#: geometry presets addressable by name; expansion is axis-identical to
#: spelling the anchor's axes out (the preset's ``name`` field does not
#: reach the cell, so the two forms share one cache key)
GEOMETRY_PRESETS: Dict[str, MachineGeometry] = {
    "milan": GEOMETRY_EPYC_MILAN,
    "epyc-milan": GEOMETRY_EPYC_MILAN,
    "sapphire-rapids": GEOMETRY_XEON_SPR,
    "xeon-spr": GEOMETRY_XEON_SPR,
}

#: default geometry when a query names none: the Milan anchor
DEFAULT_GEOMETRY = GEOMETRY_EPYC_MILAN

#: geometry axes: canonical name → (aliases, kind); every axis accepts
#: its full name or its compact DSE alias, never both in one query
_GEOMETRY_AXES: Dict[str, Tuple[Tuple[str, ...], str]] = {
    "chiplets_per_socket": (("cps",), "int"),
    "cores_per_chiplet": (("cpc",), "int"),
    "l3_mib_per_chiplet": (("l3_mib",), "int"),
    "mem_channels_per_socket": (("channels",), "int"),
    "link_latency_scale": (("link_scale",), "float"),
}

#: per-workload size parameters and their defaults (the DSE cell shape)
PARAM_DEFAULTS: Dict[str, Dict[str, Any]] = {
    "pagerank": {"graph_scale": 12, "edgefactor": 8, "graph_seed": 2,
                 "pagerank_iterations": 3},
    "gups": {"table_bytes": 4 * MIB, "updates_per_worker": 512},
}

#: hard ceilings on query-supplied sizes: one mistyped exponent must not
#: turn an interactive what-if into an hour of simulation
PARAM_CEILINGS: Dict[str, float] = {
    "graph_scale": 18, "edgefactor": 32, "graph_seed": 2**31,
    "pagerank_iterations": 16,
    "table_bytes": 256 * MIB, "updates_per_worker": 65536,
}

DEFAULT_SEED = 7

#: worker cap per cell — mirrors repro.bench.dse.MAX_WORKERS
MAX_WORKERS = 48

_TOP_LEVEL_KEYS = frozenset(
    {"workload", "geometry", "policy", "policies", "cores", "seed", "params"})


def _as_int(value: Any, field: str) -> int:
    """Canonicalize a JSON number to int (8 and 8.0 are the same query)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise QueryError(f"{field} must be a number, got {value!r}")
    if isinstance(value, float):
        if not value.is_integer():
            raise QueryError(f"{field} must be an integer, got {value!r}")
        value = int(value)
    return value


def _as_float(value: Any, field: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise QueryError(f"{field} must be a number, got {value!r}")
    return float(value)


def _normalize_geometry(spec: Any) -> MachineGeometry:
    """Resolve a geometry spec (preset name, axis dict, or None)."""
    if spec is None:
        return DEFAULT_GEOMETRY
    if isinstance(spec, str):
        try:
            return GEOMETRY_PRESETS[spec]
        except KeyError:
            raise QueryError(
                f"unknown geometry preset {spec!r}; "
                f"have {sorted(set(GEOMETRY_PRESETS))}") from None
    if not isinstance(spec, Mapping):
        raise QueryError(f"geometry must be a preset name or an object, "
                         f"got {type(spec).__name__}")
    preset = DEFAULT_GEOMETRY
    spec = dict(spec)
    if "preset" in spec:
        preset = _normalize_geometry(spec.pop("preset"))
    values: Dict[str, Any] = {}
    for canonical, (aliases, kind) in _GEOMETRY_AXES.items():
        present = [k for k in (canonical, *aliases) if k in spec]
        if len(present) > 1:
            raise QueryError(f"geometry gives {canonical} twice (as {present})")
        if not present:
            values[canonical] = getattr(preset, canonical)
            continue
        raw = spec.pop(present[0])
        coerce = _as_int if kind == "int" else _as_float
        values[canonical] = coerce(raw, f"geometry.{canonical}")
    if spec:
        raise QueryError(f"unknown geometry field(s): {sorted(spec)}")
    geo = MachineGeometry(**values)
    try:
        geo.validate()
    except ValueError as exc:
        raise QueryError(str(exc)) from None
    return geo


def _normalize_policies(doc: Mapping[str, Any]) -> Tuple[str, ...]:
    if "policy" in doc and "policies" in doc:
        raise QueryError("give either 'policy' or 'policies', not both")
    raw = doc.get("policies", doc.get("policy"))
    if raw is None:
        return POLICIES
    if isinstance(raw, str):
        raw = [raw]
    if not isinstance(raw, (list, tuple)) or not raw:
        raise QueryError("policies must be a non-empty list of policy names")
    unknown = sorted(set(raw) - set(POLICIES))
    if unknown:
        raise QueryError(f"unknown policy(ies) {unknown}; have {list(POLICIES)}")
    # dedupe + canonical order: {ring, charm} and [charm, ring, charm]
    # are the same query
    chosen = set(raw)
    return tuple(p for p in POLICIES if p in chosen)


def _normalize_params(workload: str, raw: Any) -> Dict[str, Any]:
    defaults = PARAM_DEFAULTS[workload]
    if raw is None:
        return dict(defaults)
    if not isinstance(raw, Mapping):
        raise QueryError("params must be an object")
    unknown = sorted(set(raw) - set(defaults))
    if unknown:
        raise QueryError(
            f"unknown param(s) for {workload}: {unknown}; "
            f"have {sorted(defaults)}")
    params = dict(defaults)
    for key, value in raw.items():
        value = _as_int(value, f"params.{key}")
        if value <= 0:
            raise QueryError(f"params.{key} must be > 0, got {value}")
        if value > PARAM_CEILINGS[key]:
            raise QueryError(
                f"params.{key} = {value} exceeds the service ceiling "
                f"{int(PARAM_CEILINGS[key])}")
        params[key] = value
    return params


@dataclass(frozen=True)
class AdviseQuery:
    """One normalized what-if query (canonical: equal queries compare equal)."""

    workload: str
    geometry: MachineGeometry
    policies: Tuple[str, ...]
    cores: int
    seed: int
    params: Tuple[Tuple[str, Any], ...]

    def canonical(self) -> Dict[str, Any]:
        """The fully-defaulted JSON form echoed back by ``/advise``."""
        return {
            "workload": self.workload,
            "geometry": {axis: getattr(self.geometry, axis)
                         for axis in _GEOMETRY_AXES},
            "policies": list(self.policies),
            "cores": self.cores,
            "seed": self.seed,
            "params": dict(self.params),
        }

    def cells(self) -> List[ExperimentCell]:
        """One DSE cell per policy, in canonical policy order."""
        geo = self.geometry
        base: Dict[str, Any] = {
            "workload": self.workload,
            "cps": geo.chiplets_per_socket,
            "cpc": geo.cores_per_chiplet,
            "l3_mib": geo.l3_mib_per_chiplet,
            "channels": geo.mem_channels_per_socket,
            "link_scale": geo.link_latency_scale,
        }
        base.update(self.params)
        return [
            ExperimentCell.make("dse", machine_preset="dse", strategy=policy,
                                cores=self.cores, seed=self.seed, **base)
            for policy in self.policies
        ]


def normalize_query(doc: Any) -> AdviseQuery:
    """Validate and canonicalize one ``/advise`` request body.

    Raises :class:`QueryError` (→ HTTP 400) on anything malformed; the
    error message names the offending field.
    """
    if not isinstance(doc, Mapping):
        raise QueryError("request body must be a JSON object")
    unknown = sorted(set(doc) - _TOP_LEVEL_KEYS)
    if unknown:
        raise QueryError(
            f"unknown field(s): {unknown}; have {sorted(_TOP_LEVEL_KEYS)}")
    workload = doc.get("workload", WORKLOADS[0])
    if workload not in WORKLOADS:
        raise QueryError(f"unknown workload {workload!r}; have {list(WORKLOADS)}")
    geometry = _normalize_geometry(doc.get("geometry"))
    policies = _normalize_policies(doc)
    params = _normalize_params(workload, doc.get("params"))

    default_cores = min(geometry.total_cores, MAX_WORKERS)
    cores = _as_int(doc.get("cores", default_cores), "cores")
    if not 1 <= cores <= geometry.total_cores:
        raise QueryError(
            f"cores must be in [1, {geometry.total_cores}] for this "
            f"geometry, got {cores}")
    seed = _as_int(doc.get("seed", DEFAULT_SEED), "seed")

    return AdviseQuery(
        workload=workload, geometry=geometry, policies=policies,
        cores=cores, seed=seed, params=tuple(sorted(params.items())))
