"""The three-tier cell answerer: hot cache → result store → warm pool.

One :class:`CellAnswerer` owns everything below the HTTP layer:

- **tier 1, hot cache** — an in-process LRU of deserialized results
  keyed by the content-addressed cell key.  Repeats of a recently
  answered cell never touch SQLite, let alone a worker process.
- **tier 2, result store** — the shared persistent
  :class:`~repro.bench.store.ResultStore` (the same file batch sweeps
  write), probed on a small thread pool so SQLite I/O never stalls the
  event loop.  A server restart, or a sweep that already ran this
  configuration, answers from here.
- **tier 3, simulation** — a persistent warm
  :class:`~concurrent.futures.ProcessPoolExecutor` running the exact
  ``run_cell`` machinery of the sweep engine.  Cells queue into a short
  batching window, are ordered longest-job-first by the sweep's cost
  model, packed into chunks (amortizing executor IPC exactly like
  ``repro.bench.sweep``), and fanned across the pool.

A :class:`~repro.serve.coalesce.SingleFlight` table sits in front of
tiers 2–3: the first request for a key becomes the flight leader and
every concurrent duplicate — same cell from another request — awaits
the leader's future instead of re-probing or re-simulating.

Every tier returns the identical JSON-native result the serial path
computes (store round-trips preserve every bit; the pool runs the same
``run_cell``), which is what makes service answers bit-identical to
``python -m repro run`` — pinned by ``tests/test_serve.py``.
"""

import asyncio
import multiprocessing
import time
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.bench.cells import ExperimentCell
from repro.bench.cost import CostModel
from repro.bench import sweep
from repro.obs.wallclock import NULL_TRACE
from repro.serve.coalesce import SingleFlight
from repro.serve.stats import ServerStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.serve.observe import ServeObservability

__all__ = ["CellAnswerer", "HOT_CACHE_SIZE", "BATCH_WINDOW_S"]

#: default hot-cache capacity (entries, not bytes — results are small)
HOT_CACHE_SIZE = 4096

#: how long the dispatcher waits after the first queued cell before
#: packing a batch: long enough for concurrent requests' cells to land
#: in the same chunk, short enough to be invisible next to simulation
BATCH_WINDOW_S = 0.005

#: hard cap on cells drained into one batching round
MAX_BATCH_CELLS = 1024

#: recalibrate the cost model from the store every this many batches
_COST_REFRESH_EVERY = 64


def _warm_worker() -> str:
    """Pool warm-up: import the experiment registry in each worker so
    the first real chunk pays no import latency (and spawn-start
    platforms learn the ``dse`` experiment before they need it)."""
    from repro.bench import dse, experiments  # noqa: F401

    return "warm"


class CellAnswerer:
    """Answer experiment cells through hot cache, store, and warm pool."""

    def __init__(self, jobs: int = 0, use_store: bool = True,
                 hot_cache_size: int = HOT_CACHE_SIZE,
                 batch_window_s: float = BATCH_WINDOW_S,
                 stats: Optional[ServerStats] = None,
                 obs: Optional["ServeObservability"] = None):
        self.jobs = sweep.resolve_jobs(jobs)
        self.use_store = use_store
        self.batch_window_s = batch_window_s
        self.stats = stats or ServerStats()
        self._obs = obs
        self._hot: "OrderedDict[str, Any]" = OrderedDict()
        self._hot_capacity = hot_cache_size
        self._flight = SingleFlight()
        # queue entries: (cell, key, trace, parent span, batch-window span)
        self._queue: "asyncio.Queue[Tuple[ExperimentCell, str, Any, int, int]]" \
            = asyncio.Queue()
        self._store = None
        self._io: Optional[ThreadPoolExecutor] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._chunk_tasks: "set[asyncio.Task]" = set()
        self._cost = CostModel()
        self._batches_since_calibration = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle --------------------------------------------------------------

    async def start(self) -> None:
        """Open the store, spin up (and warm) the pool, start dispatching."""
        self._loop = asyncio.get_running_loop()
        self._io = ThreadPoolExecutor(max_workers=2, thread_name_prefix="store-io")
        # the first cache_key() hashes every source file; pay that once,
        # off the event loop, before traffic arrives
        await self._loop.run_in_executor(self._io, sweep.code_version)
        if self.use_store:
            self._store = sweep.get_store()
            self._cost = await self._loop.run_in_executor(
                self._io, CostModel.from_store, self._store)
            if self._obs is not None and self._obs.enabled:
                store_stats = await self._loop.run_in_executor(
                    self._io, self._store.stats)
                mode = store_stats.get("journal_mode", "wal")
                if mode != "wal":
                    self._obs.flight.record("store_journal_fallback",
                                            journal_mode=mode)
        self._pool = self._new_pool()
        warmups = [self._loop.run_in_executor(self._pool, _warm_worker)
                   for _ in range(self.jobs)]
        await asyncio.gather(*warmups)
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    def _new_pool(self) -> ProcessPoolExecutor:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
        return ProcessPoolExecutor(max_workers=self.jobs, mp_context=ctx)

    async def stop(self) -> None:
        """Fail pending flights, flush queued persists, release executors."""
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        for task in list(self._chunk_tasks):
            task.cancel()
        if self._chunk_tasks:
            await asyncio.gather(*self._chunk_tasks, return_exceptions=True)
        while not self._queue.empty():
            _, key, _, _, _ = self._queue.get_nowait()
            self._flight.resolve(key, error=RuntimeError("server shutting down"))
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self._io is not None:
            # wait=True: results already handed to clients have their
            # store writes queued here; flush them before the process
            # can exit so a restarted server answers from the store tier
            self._io.shutdown(wait=True)
            self._io = None

    # -- the answer path --------------------------------------------------------

    def _hot_get(self, key: str) -> Tuple[bool, Any]:
        try:
            result = self._hot[key]
        except KeyError:
            return False, None
        self._hot.move_to_end(key)
        return True, result

    def _hot_put(self, key: str, result: Any) -> None:
        self._hot[key] = result
        self._hot.move_to_end(key)
        while len(self._hot) > self._hot_capacity:
            self._hot.popitem(last=False)

    async def answer(self, cell: ExperimentCell, trace: Any = NULL_TRACE,
                     parent: int = 0) -> Tuple[Any, str]:
        """Answer one cell: ``(result, tier)``.

        ``tier`` is ``"hot"`` / ``"store"`` / ``"computed"`` for flight
        leaders and ``"coalesced"`` for duplicates that attached to an
        existing flight.  The stats object is updated here, so every
        cell of every request is accounted exactly once.  A sampled
        request passes its ``trace`` + parent span id through; the
        default :data:`NULL_TRACE` makes every span call a no-op.
        """
        sid = trace.begin("hot_probe", parent, cell=cell.cell_id)
        key = sweep.cache_key(cell)
        hit, result = self._hot_get(key)
        trace.end(sid)
        if hit:
            self.stats.cell_answered("hot")
            return result, "hot"

        waiting = self._flight.wait_for(key)
        if waiting is not None:
            sid = trace.begin("coalesce_wait", parent, cell=cell.cell_id)
            result = await waiting
            trace.end(sid)
            self.stats.cell_answered("coalesced")
            return result, "coalesced"

        leader_future = self._flight.leader(key)
        try:
            if self._store is not None:
                sid = trace.begin("store_probe", parent, cell=cell.cell_id)
                hit, result = await self._loop.run_in_executor(
                    self._io, self._store.get, key)
                trace.end(sid)
                if hit:
                    self._hot_put(key, result)
                    self._flight.resolve(key, result)
                    self.stats.cell_answered("store")
                    return result, "store"
            window_sid = trace.begin("batch_window", parent, cell=cell.cell_id)
            self._queue.put_nowait((cell, key, trace, parent, window_sid))
        except BaseException as exc:
            self._flight.resolve(key, error=exc)
            raise
        result = await leader_future
        self.stats.cell_answered("computed")
        return result, "computed"

    # -- tier 3: batching dispatcher -------------------------------------------

    async def _dispatch_loop(self) -> None:
        """Drain queued cells into LJF-ordered packed chunks, forever."""
        while True:
            batch = [await self._queue.get()]
            if self.batch_window_s > 0:
                await asyncio.sleep(self.batch_window_s)
            while len(batch) < MAX_BATCH_CELLS and not self._queue.empty():
                batch.append(self._queue.get_nowait())
            for _, _, trace, _, window_sid in batch:
                trace.end(window_sid)
            if self._obs is not None:
                self._obs.on_batch(len(batch))
            self._submit_batch(batch)
            self._batches_since_calibration += 1
            if (self._store is not None
                    and self._batches_since_calibration >= _COST_REFRESH_EVERY):
                self._batches_since_calibration = 0
                self._cost = await self._loop.run_in_executor(
                    self._io, CostModel.from_store, self._store)

    def _submit_batch(
            self, batch: List[Tuple[ExperimentCell, str, Any, int, int]]) -> None:
        """LJF-order one batch, pack it into chunks, fan out to the pool."""
        entry_of = {cell.cell_id: (key, trace, parent)
                    for cell, key, trace, parent, _ in batch}
        ordered = sweep._order_cells([cell for cell, *_ in batch],
                                     self._cost, "ljf")
        for chunk in sweep._pack_chunks(ordered, self._cost, self.jobs):
            entries = [(cell,) + entry_of[cell.cell_id] for cell in chunk]
            task = asyncio.create_task(self._run_chunk(entries))
            self._chunk_tasks.add(task)
            task.add_done_callback(self._chunk_tasks.discard)

    async def _run_chunk(
            self, entries: List[Tuple[ExperimentCell, str, Any, int]]) -> None:
        """Run one packed chunk on the pool; resolve and persist results."""
        cells = [cell for cell, *_ in entries]
        pool = self._pool
        t0 = time.perf_counter()
        try:
            outs = await self._loop.run_in_executor(
                pool, sweep._execute_chunk, cells, False)
        except asyncio.CancelledError:
            for _, key, _, _ in entries:
                self._flight.resolve(
                    key, error=RuntimeError("server shutting down"))
            raise
        except BaseException as exc:
            for _, key, _, _ in entries:
                self._flight.resolve(key, error=exc)
            if isinstance(exc, BrokenExecutor):
                self._replace_broken_pool(pool, exc)
            return
        t1 = time.perf_counter()
        for (cell, key, trace, parent), (result, wall_s) in zip(entries, outs):
            trace.add("pool_execute", t0, t1, parent, cell=cell.cell_id,
                      chunk_cells=len(cells), cell_wall_s=round(wall_s, 6))
            # persist first, fire-and-forget on the io pool: by the time
            # any waiter can observe the answer the store write is already
            # queued, and stop() flushes the io pool before releasing it —
            # a client that got an answer can rely on a restarted server
            # finding it in the store
            if self._store is not None and self._io is not None:
                try:
                    self._io.submit(self._persist, cell, result, wall_s,
                                    trace, parent)
                except RuntimeError:  # raced with shutdown
                    pass
            # hot-insert before resolving so a request arriving between
            # the two never misses both the flight and the cache
            self._hot_put(key, result)
            self._flight.resolve(key, result)

    def _replace_broken_pool(self, broken: Optional[ProcessPoolExecutor],
                             exc: BaseException) -> None:
        """A worker died mid-chunk: swap in a fresh pool so the next
        batch computes instead of failing forever.  Guarded against
        concurrent chunks racing the same restart."""
        if broken is None or broken is not self._pool:
            return  # another chunk already swapped the pool
        if self._obs is not None and self._obs.enabled:
            self._obs.flight.record("pool_restart", error=repr(exc),
                                    jobs=self.jobs)
        self._pool = self._new_pool()
        broken.shutdown(wait=False, cancel_futures=True)

    def _persist(self, cell: ExperimentCell, result: Any, wall_s: float,
                 trace: Any = NULL_TRACE, parent: int = 0) -> None:
        """Thread-side: write one computed result through the store."""
        t0 = time.perf_counter()
        try:
            self._store.put(
                sweep.cache_key(cell), cell_id=cell.cell_id,
                experiment=cell.experiment, code_version=sweep.code_version(),
                result=result, wall_s=wall_s, work_units=cell.work_hint())
        except Exception as exc:
            if self._obs is not None and self._obs.enabled:
                self._obs.flight.record("store_put_error", cell=cell.cell_id,
                                        error=repr(exc))
            raise
        trace.add("store_put", t0, time.perf_counter(), parent,
                  cell=cell.cell_id)

    # -- introspection ----------------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "hot_cache_entries": len(self._hot),
            "hot_cache_capacity": self._hot_capacity,
            "inflight_keys": len(self._flight),
            "queued_cells": self._queue.qsize(),
            "batch_window_ms": self.batch_window_s * 1e3,
            "store": self.use_store,
        }
