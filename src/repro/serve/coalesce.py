"""Single-flight coalescing: one in-flight computation per cell key.

Under duplicate-heavy traffic ("is CHARM still winning on this
geometry?" asked by many clients at once) the expensive tier of the
answer path — simulation — must run **once** per distinct cell no
matter how many requests are waiting on it.  The classic single-flight
table does exactly that: the first requester of a key creates and owns
the in-flight future; every concurrent duplicate awaits the same
future; the owner resolves it for everyone and removes the entry.

This runs entirely on the server's event loop (no locks needed —
``start``/``wait_for``/``resolve`` are plain synchronous calls between
awaits), which is also what makes the accounting exact: a key is either
absent, or in flight with ``waiters(key)`` duplicates attached.
"""

import asyncio
from typing import Any, Dict, Optional

__all__ = ["SingleFlight"]


class SingleFlight:
    """In-flight futures keyed by cell key, with duplicate accounting."""

    def __init__(self) -> None:
        self._inflight: Dict[str, asyncio.Future] = {}
        self._waiters: Dict[str, int] = {}
        #: total duplicates that attached to an existing flight (ever)
        self.coalesced_total = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def leader(self, key: str) -> Optional[asyncio.Future]:
        """Claim ``key``: returns a fresh future to resolve if this
        caller is the flight's leader, else ``None`` (a flight exists —
        await :meth:`wait_for` instead)."""
        if key in self._inflight:
            return None
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = fut
        self._waiters[key] = 0
        return fut

    def wait_for(self, key: str) -> Optional[asyncio.Future]:
        """The in-flight future for ``key`` (counts this caller as a
        coalesced duplicate), or ``None`` if nothing is in flight."""
        fut = self._inflight.get(key)
        if fut is not None:
            self._waiters[key] += 1
            self.coalesced_total += 1
        return fut

    def waiters(self, key: str) -> int:
        return self._waiters.get(key, 0)

    def resolve(self, key: str, result: Any = None,
                error: Optional[BaseException] = None) -> None:
        """Leader-side: complete the flight and drop the table entry.

        Every waiter wakes with ``result`` (or ``error``); late callers
        start a fresh flight — by then the result is in a cache tier, so
        they resolve there instead of re-simulating.
        """
        fut = self._inflight.pop(key, None)
        self._waiters.pop(key, None)
        if fut is None or fut.done():
            return
        if error is not None:
            fut.set_exception(error)
            # awaited by every waiter; if all of them are gone the loop
            # would log "exception never retrieved" — mark it handled
            fut.exception()
        else:
            fut.set_result(result)
