"""Placement-advisor service: the sweep engine as a long-running server.

``python -m repro serve`` stands up an asyncio HTTP/JSON server that
answers *what-if placement queries* — "this workload at this size on
this machine geometry under these policies" — through a three-tier
answer path:

1. an in-process **hot cache** (LRU over deserialized results),
2. the shared persistent **result store** of :mod:`repro.bench.store`
   (content-addressed, survives restarts, shared with batch sweeps),
3. **simulation** on a persistent warm :class:`ProcessPoolExecutor`,
   reusing the exact cell machinery of :mod:`repro.bench.sweep` with
   cost-model-aware longest-job-first dispatch.

Concurrent identical queries coalesce onto one in-flight future
(single-flight, :mod:`repro.serve.coalesce`); independent cells from
different requests batch into packed chunks (:mod:`repro.serve.pool`).
Answers are bit-identical to ``python -m repro run`` for the same cells
— every tier returns the same JSON-native result the serial path
computes.

Modules
-------

- :mod:`repro.serve.query`    — request normalization to canonical
  :class:`~repro.bench.cells.ExperimentCell` s (and therefore canonical
  content-addressed keys);
- :mod:`repro.serve.coalesce` — the single-flight table;
- :mod:`repro.serve.stats`    — tier/coalesce counters and latency
  quantiles behind ``/stats``;
- :mod:`repro.serve.pool`     — hot cache + store + warm pool, the
  three-tier cell answerer;
- :mod:`repro.serve.app`      — the HTTP server itself (``/advise``,
  ``/healthz``, ``/stats``) and the CLI entry point;
- :mod:`repro.serve.client`   — a small asyncio HTTP/JSON client used
  by the load generator, the CI smoke, and the tests.
"""

from repro.serve.coalesce import SingleFlight
from repro.serve.query import QueryError, normalize_query
from repro.serve.stats import ServerStats

__all__ = ["QueryError", "ServerStats", "SingleFlight", "normalize_query"]
