"""Wall-clock observability for one advisor server.

:class:`ServeObservability` composes the :mod:`repro.obs.wallclock`
primitives into the serve stack's four surfaces:

- the **tracer** samples ``/advise`` requests (off by default; the
  ``X-Repro-Trace: 1`` header forces one) and keeps a ring of finished
  traces served by ``GET /debug/trace``;
- the **metrics registry** backs ``GET /metrics`` — every gauge and
  counter the server already keeps exactly (per-tier cells, in-flight
  depth, queue depth, store stats, process RSS/CPU) is callback-backed
  and read only at scrape time, so the request hot path pays for
  nothing but the latency histograms;
- the **SLO monitor** feeds windowed p50/p99/error-rate and
  multi-window burn rates into ``/healthz`` (``degraded``) and
  ``/stats``;
- the **flight recorder** collects slow requests, error responses,
  store journal fallbacks, and pool restarts for ``GET /debug/flight``
  and the shutdown dump.

With ``enabled=False`` (``repro serve --no-obs``) every hook is a
single attribute check and the observability routes answer 404 — the
reference point for the <2% disabled-overhead gate in
``repro.bench.perf --gate``.
"""

import time
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from repro.obs.wallclock import (
    FlightRecorder,
    MetricsRegistry,
    NULL_TRACE,
    SLOConfig,
    SLOMonitor,
    WallClockTracer,
    process_stats,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.serve.pool import CellAnswerer
    from repro.serve.stats import ServerStats

__all__ = ["ServeObservability", "SLOW_REQUEST_S"]

#: default slow-request threshold for the flight recorder (seconds)
SLOW_REQUEST_S = 1.0

#: batch-occupancy histogram boundaries (cells per batching window)
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0)


class ServeObservability:
    """Tracer + metrics + SLO + flight recorder for one server."""

    def __init__(self, stats: "ServerStats",
                 enabled: bool = True,
                 trace_sample: float = 0.0,
                 slow_threshold_s: float = SLOW_REQUEST_S,
                 slo: Optional[SLOConfig] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.enabled = enabled
        self.stats = stats
        self.slow_threshold_s = slow_threshold_s
        self.tracer = WallClockTracer(sample_rate=trace_sample if enabled else 0.0)
        self.slo = SLOMonitor(slo or SLOConfig(), clock=clock)
        self.flight = FlightRecorder()
        self.registry = MetricsRegistry()
        self._answerer: Optional["CellAnswerer"] = None
        self._build_registry()

    # -- registry ---------------------------------------------------------------

    def _build_registry(self) -> None:
        reg, stats = self.registry, self.stats
        reg.counter("repro_serve_requests_total",
                    "Requests accepted by the advise endpoint",
                    fn=lambda: float(stats.requests))
        reg.counter("repro_serve_request_errors_total",
                    "Requests answered with a non-2xx status",
                    fn=lambda: float(stats.errors))
        reg.gauge("repro_serve_in_flight",
                  "Requests currently being serviced",
                  fn=lambda: float(stats.in_flight))
        reg.gauge("repro_serve_max_in_flight",
                  "High-water mark of concurrent requests",
                  fn=lambda: float(stats.max_in_flight))
        reg.counter("repro_serve_cells_total",
                    "Cells answered, by answer tier", label="tier",
                    fn=lambda: {"hot": float(stats.hot_hits),
                                "store": float(stats.store_hits),
                                "coalesced": float(stats.coalesced),
                                "computed": float(stats.computed)})
        self.request_seconds = reg.histogram(
            "repro_serve_request_seconds",
            "Advise request service latency")
        self.batch_cells = reg.histogram(
            "repro_serve_batch_cells",
            "Cells drained per pool batching window",
            buckets=_BATCH_BUCKETS)
        reg.gauge("repro_serve_pool_queue_depth",
                  "Cells queued for the batching dispatcher",
                  fn=self._queue_depth)
        reg.gauge("repro_serve_hot_cache_entries",
                  "Entries resident in the in-process hot LRU",
                  fn=self._hot_entries)
        reg.gauge("repro_serve_inflight_keys",
                  "Distinct cell keys with an open single-flight future",
                  fn=self._inflight_keys)
        reg.counter("repro_serve_traces_sampled_total",
                    "Requests that carried a sampled trace",
                    fn=lambda: float(self.tracer.sampled_total))
        reg.counter("repro_serve_flight_events_total",
                    "Events recorded by the flight recorder",
                    fn=lambda: float(self.flight.recorded_total))
        reg.gauge("repro_serve_slo_degraded",
                  "1 when a multi-window burn-rate alert is firing",
                  fn=lambda: 1.0 if self.slo.evaluate()["degraded"] else 0.0)
        reg.gauge("repro_serve_slo_burn_rate",
                  "Error-budget burn rate per sliding window", label="window",
                  fn=lambda: {label: rate for label, rate in
                              self.slo.evaluate()["burn_rates"].items()})
        reg.gauge("repro_store_entries",
                  "Entries in the shared result store",
                  fn=lambda: self._store_stat("entries"))
        reg.gauge("repro_store_bytes",
                  "Payload bytes in the shared result store",
                  fn=lambda: self._store_stat("bytes"))
        reg.counter("repro_store_hits_total",
                    "Lifetime read hits recorded by the result store",
                    fn=lambda: self._store_stat("hits_total"))
        reg.gauge("repro_process_resident_bytes",
                  "Resident set size of the server process",
                  fn=lambda: process_stats()["rss_bytes"])
        reg.counter("repro_process_cpu_seconds_total",
                    "User + system CPU seconds of the server process",
                    fn=lambda: process_stats()["cpu_seconds"])

    def bind(self, answerer: "CellAnswerer") -> None:
        """Attach the answerer whose live state the gauges read."""
        self._answerer = answerer

    def _queue_depth(self) -> float:
        a = self._answerer
        return float(a._queue.qsize()) if a is not None else 0.0

    def _hot_entries(self) -> float:
        a = self._answerer
        return float(len(a._hot)) if a is not None else 0.0

    def _inflight_keys(self) -> float:
        a = self._answerer
        return float(len(a._flight)) if a is not None else 0.0

    def _store_stat(self, key: str) -> float:
        a = self._answerer
        if a is None or a._store is None:
            return 0.0
        try:
            return float(self._store_stats_cached().get(key, 0))
        except Exception:
            return 0.0

    def _store_stats_cached(self) -> Dict[str, Any]:
        """One ``store.stats()`` SQLite round-trip per exposition page:
        the three store metrics scrape within the same second share it."""
        a = self._answerer
        now = time.monotonic()
        cached = getattr(self, "_store_stats_memo", None)
        if cached is not None and now - cached[0] < 1.0:
            return cached[1]
        stats = a._store.stats()
        self._store_stats_memo = (now, stats)
        return stats

    # -- hot-path hooks ---------------------------------------------------------

    def sample_trace(self, force: bool = False):
        """A request trace (or the shared null trace when unsampled)."""
        if not self.enabled:
            return NULL_TRACE
        return self.tracer.sample(force=force)

    def on_request(self, seconds: float, error: bool = False,
                   status: int = 200, detail: str = "") -> None:
        """Account one finished request.  The disabled path is a single
        attribute check; the enabled-but-idle path is one histogram
        bucket lookup shared with the SLO windows."""
        if not self.enabled:
            return
        idx = self.request_seconds.observe(seconds)
        self.slo.record(seconds, error=error, bucket_idx=idx)
        if error:
            self.flight.record("request_error", status=status,
                               latency_ms=round(seconds * 1e3, 3),
                               detail=detail)
        elif seconds >= self.slow_threshold_s:
            self.flight.record("slow_request", status=status,
                               latency_ms=round(seconds * 1e3, 3),
                               detail=detail)

    def on_batch(self, n_cells: int) -> None:
        if self.enabled:
            self.batch_cells.observe(float(n_cells))

    # -- scrape-side ------------------------------------------------------------

    def metrics_text(self) -> str:
        """The Prometheus exposition page (runs store SQLite queries —
        call off the event loop)."""
        return self.registry.expose()

    def stats_extra(self) -> Dict[str, Any]:
        """Windowed latency + SLO sections merged into ``/stats``."""
        windows = self.slo.windows
        windowed = {}
        for w in self.slo.config.windows_s:
            stats = windows.window(w)
            windowed[_label(w)] = {
                "count": int(stats["count"]),
                "p50": round(stats["p50_ms"], 3),
                "p99": round(stats["p99_ms"], 3),
                "error_rate": round(stats["error_rate"], 4),
            }
        return {"latency_windowed_ms": windowed, "slo": self.slo.evaluate()}

    def healthz_extra(self) -> Dict[str, Any]:
        slo = self.slo.evaluate()
        return {"degraded": slo["degraded"], "alerts": slo["alerts"]}


def _label(seconds: float) -> str:
    if seconds % 3600 == 0:
        return f"{int(seconds // 3600)}h"
    if seconds % 60 == 0:
        return f"{int(seconds // 60)}m"
    return f"{int(seconds)}s"
