"""A small asyncio HTTP/1.1 JSON client (stdlib-only, keep-alive).

The container deliberately carries no HTTP client dependency, and the
advisor protocol needs exactly one shape of exchange: send a JSON (or
empty) body, read a JSON body back, reuse the connection.  This client
does that and nothing more — it exists for the load generator
(:mod:`repro.bench.loadgen`), the CI smoke, and the tests.
"""

import asyncio
import json
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlsplit

__all__ = ["AdvisorClient", "parse_base_url"]


def parse_base_url(url: str) -> Tuple[str, int]:
    """``http://host:port`` → ``(host, port)``."""
    parts = urlsplit(url if "//" in url else f"//{url}")
    if parts.scheme not in ("", "http"):
        raise ValueError(f"only http:// urls are supported, got {url!r}")
    host = parts.hostname or "127.0.0.1"
    return host, parts.port or 80


class AdvisorClient:
    """One keep-alive connection to an advisor server."""

    def __init__(self, host: str, port: int, timeout: float = 120.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def request(self, method: str, path: str, payload: Any = None,
                      headers: Optional[Dict[str, str]] = None,
                      ) -> Tuple[int, Any]:
        """One round-trip: returns ``(status_code, parsed_body)`` — JSON
        when the response is JSON, raw text otherwise (``/metrics``).

        Reconnects once on a dead keep-alive connection (the server may
        have been restarted between calls).  ``headers`` adds extra
        request headers (e.g. ``{"X-Repro-Trace": "1"}`` to force a
        span-traced request).
        """
        try:
            return await asyncio.wait_for(
                self._roundtrip(method, path, payload, headers), self.timeout)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            await self.close()
            return await asyncio.wait_for(
                self._roundtrip(method, path, payload, headers), self.timeout)

    async def get(self, path: str,
                  headers: Optional[Dict[str, str]] = None) -> Tuple[int, Any]:
        return await self.request("GET", path, headers=headers)

    async def post(self, path: str, payload: Any,
                   headers: Optional[Dict[str, str]] = None) -> Tuple[int, Any]:
        return await self.request("POST", path, payload, headers=headers)

    async def _roundtrip(self, method: str, path: str, payload: Any,
                         extra_headers: Optional[Dict[str, str]] = None,
                         ) -> Tuple[int, Any]:
        if self._writer is None:
            await self._connect()
        body = b""
        if payload is not None:
            body = json.dumps(payload, separators=(",", ":")).encode()
        extra = "".join(f"{k}: {v}\r\n"
                        for k, v in (extra_headers or {}).items())
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"\r\n"
        ).encode()
        self._writer.write(head + body)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        try:
            status = int(status_line.split()[1])
        except (IndexError, ValueError):
            raise ConnectionError(f"bad status line {status_line!r}") from None
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        if "json" in headers.get("content-type", "json"):
            doc: Any = json.loads(raw) if raw else {}
        else:
            doc = raw.decode()
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, doc
