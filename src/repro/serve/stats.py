"""Service counters and latency quantiles behind ``/stats``.

Single-threaded by design: every mutation happens on the server's event
loop, so plain ints are exact (no atomics, no locks).  Latency keeps a
bounded reservoir — the most recent ``RESERVOIR_SIZE`` request
latencies — so ``/stats`` reflects current behaviour, not the lifetime
average, and memory stays O(1) under millions of requests.
"""

import time
from typing import Any, Dict, List

__all__ = ["LatencyReservoir", "ServerStats", "RESERVOIR_SIZE"]

#: ring-buffer size of the latency reservoir (recent-window quantiles)
RESERVOIR_SIZE = 4096


class LatencyReservoir:
    """Last-N latencies in a ring buffer with exact window quantiles."""

    def __init__(self, size: int = RESERVOIR_SIZE) -> None:
        self._ring: List[float] = [0.0] * size
        self._size = size
        self.count = 0

    def record(self, seconds: float) -> None:
        self._ring[self.count % self._size] = seconds
        self.count += 1

    def quantile(self, q: float) -> float:
        """Exact quantile of the current window (0.0 when empty)."""
        n = min(self.count, self._size)
        if n == 0:
            return 0.0
        window = sorted(self._ring[:n])
        idx = min(n - 1, max(0, round(q * (n - 1))))
        return window[idx]


class ServerStats:
    """Request/cell/tier accounting for one server instance."""

    def __init__(self) -> None:
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        self.requests = 0
        self.errors = 0
        self.cells_total = 0
        self.hot_hits = 0
        self.store_hits = 0
        self.computed = 0
        self.coalesced = 0
        self.in_flight = 0
        self.max_in_flight = 0
        self.latency = LatencyReservoir()

    # -- event-loop-side mutators ---------------------------------------------

    def request_started(self) -> None:
        self.requests += 1
        self.in_flight += 1
        if self.in_flight > self.max_in_flight:
            self.max_in_flight = self.in_flight

    def request_finished(self, seconds: float, error: bool = False) -> None:
        self.in_flight -= 1
        self.latency.record(seconds)
        if error:
            self.errors += 1

    def cell_answered(self, tier: str) -> None:
        """``tier`` is one of hot/store/computed/coalesced."""
        self.cells_total += 1
        if tier == "hot":
            self.hot_hits += 1
        elif tier == "store":
            self.store_hits += 1
        elif tier == "coalesced":
            self.coalesced += 1
        else:
            self.computed += 1

    # -- snapshot ---------------------------------------------------------------

    @property
    def cache_hit_ratio(self) -> float:
        """Cells answered without a fresh simulation of their own —
        hot + store + coalesced over all cells (the duplicate-heavy
        loadgen gate tracks this)."""
        if self.cells_total == 0:
            return 0.0
        return (self.hot_hits + self.store_hits + self.coalesced) / self.cells_total

    def snapshot(self) -> Dict[str, Any]:
        uptime = time.perf_counter() - self._t0
        cells = self.cells_total
        ratio = (lambda n: round(n / cells, 4) if cells else 0.0)
        return {
            "uptime_s": round(uptime, 3),
            "requests": self.requests,
            "errors": self.errors,
            "req_per_sec": round(self.requests / uptime, 2) if uptime > 0 else 0.0,
            "in_flight": self.in_flight,
            "max_in_flight": self.max_in_flight,
            "cells": {
                "total": cells,
                "hot_hits": self.hot_hits,
                "store_hits": self.store_hits,
                "coalesced": self.coalesced,
                "computed": self.computed,
                "hot_hit_ratio": ratio(self.hot_hits),
                "store_hit_ratio": ratio(self.store_hits),
                "coalesce_ratio": ratio(self.coalesced),
                "cache_hit_ratio": round(self.cache_hit_ratio, 4),
            },
            # the reservoir covers the last RESERVOIR_SIZE requests, however
            # old — a cold burst parks its p99 until enough traffic scrolls
            # it out.  The paired "latency_windowed_ms" section (/stats,
            # merged in by ServeObservability) covers fixed time windows
            # instead; both are labeled so dashboards can say which is which.
            "latency_ms": {
                "window": f"last_{self.latency._size}_requests",
                "count": self.latency.count,
                "p50": round(self.latency.quantile(0.50) * 1e3, 3),
                "p90": round(self.latency.quantile(0.90) * 1e3, 3),
                "p99": round(self.latency.quantile(0.99) * 1e3, 3),
            },
        }
