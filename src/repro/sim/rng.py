"""Seeded random-number utilities.

Every stochastic element of the simulation (workload access patterns,
steal-victim selection, data generation) draws from a named stream derived
from a single experiment seed, so that runs are reproducible and changing
one component's randomness does not perturb another's.
"""

import hashlib
import random
from typing import Union

import numpy as np


def derive_seed(base_seed: int, *stream: Union[str, int]) -> int:
    """Derive a 63-bit child seed for a named stream from ``base_seed``."""
    h = hashlib.blake2b(digest_size=8)
    h.update(str(base_seed).encode())
    for part in stream:
        h.update(b"/")
        h.update(str(part).encode())
    return int.from_bytes(h.digest(), "little") & 0x7FFFFFFFFFFFFFFF


def stream_rng(base_seed: int, *stream: Union[str, int]) -> random.Random:
    """A ``random.Random`` seeded for a named stream."""
    return random.Random(derive_seed(base_seed, *stream))


def stream_np_rng(base_seed: int, *stream: Union[str, int]) -> np.random.Generator:
    """A numpy ``Generator`` seeded for a named stream."""
    return np.random.default_rng(derive_seed(base_seed, *stream))
