"""Deterministic virtual-time simulation engine.

The engine advances a set of *actors* (runtime workers) in strict virtual
time order: the actor with the smallest clock runs one step, which may
advance its clock, park it (barrier/future wait) or finish it.  Because the
minimum clock is always processed first, globally shared resources (memory
channels, fabric links) observe requests in non-decreasing time order,
which keeps the queueing models exact and the whole simulation
deterministic for a fixed seed.
"""

from repro.sim.engine import Actor, EventLoop, SimulationError
from repro.sim.rng import stream_rng, derive_seed

__all__ = ["Actor", "EventLoop", "SimulationError", "stream_rng", "derive_seed"]
