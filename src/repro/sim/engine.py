"""Virtual-time event loop.

Actors (runtime workers) carry their own clocks.  The loop repeatedly pops
the actor with the smallest clock from a heap and asks it to execute one
step via :meth:`Actor.step`, which returns the actor's next state:

- ``RESCHEDULE`` — clock advanced, put it back on the heap;
- ``PARKED`` — the actor is waiting on an external event (barrier, future);
  whoever releases it must call :meth:`EventLoop.wake`;
- ``FINISHED`` — the actor is done and leaves the loop.

Ties are broken by actor id so that execution order is fully deterministic.
"""

import heapq
from enum import Enum
from typing import List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class StepOutcome(Enum):
    RESCHEDULE = "reschedule"
    PARKED = "parked"
    FINISHED = "finished"


class Actor:
    """Base class for schedulable entities.  Subclasses implement ``step``."""

    __slots__ = ("actor_id", "clock", "parked", "finished")

    def __init__(self, actor_id: int):
        self.actor_id = actor_id
        self.clock = 0.0
        self.parked = False
        self.finished = False

    def step(self, loop: "EventLoop") -> StepOutcome:
        raise NotImplementedError


class EventLoop:
    """Deterministic minimum-clock-first scheduler over actors."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Actor]] = []
        self._actors: List[Actor] = []
        self._live = 0
        self.steps = 0
        self.max_steps: Optional[int] = None
        self.now = 0.0

    def add(self, actor: Actor) -> None:
        """Register a new actor, schedulable at its current clock."""
        self._live += 1
        self._actors.append(actor)
        self._push(actor)

    def wake(self, actor: Actor, at_time: Optional[float] = None) -> None:
        """Unpark ``actor``, optionally advancing its clock to ``at_time``."""
        if actor.finished:
            raise SimulationError(f"cannot wake finished actor {actor.actor_id}")
        if not actor.parked:
            return
        actor.parked = False
        if at_time is not None and at_time > actor.clock:
            actor.clock = at_time
        self._push(actor)

    def run(self) -> float:
        """Run until every actor finishes; return final virtual time."""
        # The scheduling loop runs once per actor step; bind the heap, the
        # heapq functions, and the outcome sentinels locally so each
        # iteration avoids repeated attribute/global lookups.  ``self.now``
        # and ``self.steps`` are still flushed every iteration because
        # actor steps may read them.
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        reschedule = StepOutcome.RESCHEDULE
        parked_outcome = StepOutcome.PARKED
        finished_outcome = StepOutcome.FINISHED
        max_steps = self.max_steps
        while heap:
            self.steps += 1
            if max_steps is not None and self.steps > max_steps:
                raise SimulationError(
                    f"exceeded max_steps={max_steps}; likely a livelock "
                    f"(live={self._live}, now={self.now:.0f} ns)"
                )
            clock, _, actor = heappop(heap)
            if actor.parked or actor.finished:
                continue
            if clock < self.now - 1e-6:
                raise SimulationError("virtual time went backwards")
            if clock > self.now:
                self.now = clock
            outcome = actor.step(self)
            if outcome is reschedule:
                heappush(heap, (actor.clock, actor.actor_id, actor))
            elif outcome is parked_outcome:
                actor.parked = True
            elif outcome is finished_outcome:
                actor.finished = True
                self._live -= 1
            else:  # pragma: no cover - defensive
                raise SimulationError(f"bad step outcome {outcome!r}")
        if self._live:
            parked = [a.actor_id for a in self._actors if a.parked and not a.finished]
            ids = ", ".join(map(str, parked[:16]))
            if len(parked) > 16:
                ids += f", ... ({len(parked) - 16} more)"
            raise SimulationError(
                f"deadlock: {self._live} actor(s) parked with empty ready heap "
                f"at {self.now:.0f} ns (parked actor ids: [{ids}])"
            )
        return self.now

    def _push(self, actor: Actor) -> None:
        heapq.heappush(self._heap, (actor.clock, actor.actor_id, actor))
