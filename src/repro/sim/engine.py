"""Virtual-time event loop.

Actors (runtime workers) carry their own clocks.  The loop repeatedly pops
the actor with the smallest clock from a heap and asks it to execute one
step via :meth:`Actor.step`, which returns the actor's next state:

- ``RESCHEDULE`` — clock advanced, put it back on the heap;
- ``PARKED`` — the actor is waiting on an external event (barrier, future);
  whoever releases it must call :meth:`EventLoop.wake`;
- ``FINISHED`` — the actor is done and leaves the loop.

Ties are broken by actor id so that execution order is fully deterministic.
"""

import heapq
from enum import Enum
from typing import List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class StepOutcome(Enum):
    RESCHEDULE = "reschedule"
    PARKED = "parked"
    FINISHED = "finished"


class Actor:
    """Base class for schedulable entities.  Subclasses implement ``step``."""

    __slots__ = ("actor_id", "clock", "parked", "finished")

    def __init__(self, actor_id: int):
        self.actor_id = actor_id
        self.clock = 0.0
        self.parked = False
        self.finished = False

    def step(self, loop: "EventLoop") -> StepOutcome:
        raise NotImplementedError


class EventLoop:
    """Deterministic minimum-clock-first scheduler over actors."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Actor]] = []
        self._actors: List[Actor] = []
        self._live = 0
        self.steps = 0
        self.max_steps: Optional[int] = None
        self.now = 0.0
        # Heap-mechanics counters (observability only; no scheduling effect).
        # A "cohort" is one drain of all heap entries sharing the exact head
        # clock; cohort_actors sums drain sizes so callers can derive the
        # mean, cohort_max tracks the widest drain seen.
        self.heap_pushes = 0
        self.heap_pops = 0
        self.cohorts = 0
        self.cohort_actors = 0
        self.cohort_max = 0

    def add(self, actor: Actor) -> None:
        """Register a new actor, schedulable at its current clock."""
        self._live += 1
        self._actors.append(actor)
        self._push(actor)

    def wake(self, actor: Actor, at_time: Optional[float] = None) -> None:
        """Unpark ``actor``, optionally advancing its clock to ``at_time``."""
        if actor.finished:
            raise SimulationError(f"cannot wake finished actor {actor.actor_id}")
        if not actor.parked:
            return
        actor.parked = False
        if at_time is not None and at_time > actor.clock:
            actor.clock = at_time
        self._push(actor)

    def run(self) -> float:
        """Run until every actor finishes; return final virtual time.

        The loop drains actors in *cohorts*: all heap entries sharing the
        exact head clock pop in one sweep and step in ``(clock, actor_id)``
        order — precisely the order the heap would have produced one pop at
        a time, so channel/link arrival order (and therefore every virtual
        time) is unchanged.  What changes is heap traffic: within a cohort,
        re-steps at the same clock cycle through a small local heap, and
        actors rescheduled to later clocks accumulate in a pending list
        bulk-pushed when the cohort drains — O(k + heapify) instead of
        2k heap operations against the full heap when fan-out is wide.
        Mid-drain wakes can insert earlier work into the main heap (an
        actor woken at or before the cohort clock, possibly with a smaller
        id); the drain re-checks the main heap head before every local pop
        so global ``(clock, actor_id)`` order is honored regardless.
        """
        # Bind the heap, the heapq functions, and the outcome sentinels
        # locally so each iteration avoids repeated attribute/global
        # lookups.  ``self.now`` and ``self.steps`` are still flushed every
        # iteration because actor steps may read them.
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        heapify = heapq.heapify
        reschedule = StepOutcome.RESCHEDULE
        parked_outcome = StepOutcome.PARKED
        finished_outcome = StepOutcome.FINISHED
        max_steps = self.max_steps
        while heap:
            c = heap[0][0]
            entry = heappop(heap)
            self.heap_pops += 1
            if not heap or heap[0][0] != c:
                # Singleton cohort — the common case; step inline with the
                # exact pre-cohort semantics and one push on reschedule.
                self.cohorts += 1
                self.cohort_actors += 1
                if self.cohort_max < 1:
                    self.cohort_max = 1
                self.steps += 1
                if max_steps is not None and self.steps > max_steps:
                    raise SimulationError(
                        f"exceeded max_steps={max_steps}; likely a livelock "
                        f"(live={self._live}, now={self.now:.0f} ns)"
                    )
                clock, _, actor = entry
                if actor.parked or actor.finished:
                    continue
                if clock < self.now - 1e-6:
                    raise SimulationError("virtual time went backwards")
                if clock > self.now:
                    self.now = clock
                outcome = actor.step(self)
                if outcome is reschedule:
                    heappush(heap, (actor.clock, actor.actor_id, actor))
                    self.heap_pushes += 1
                elif outcome is parked_outcome:
                    actor.parked = True
                elif outcome is finished_outcome:
                    actor.finished = True
                    self._live -= 1
                else:  # pragma: no cover - defensive
                    raise SimulationError(f"bad step outcome {outcome!r}")
                continue
            # Wide cohort: pop every entry at exactly clock ``c``.  Heap
            # pops produce them already sorted by (clock, actor_id), and a
            # sorted list is a valid heap for the local re-step traffic.
            cohort = [entry]
            while heap and heap[0][0] == c:
                cohort.append(heappop(heap))
                self.heap_pops += 1
            self.cohorts += 1
            self.cohort_actors += len(cohort)
            if len(cohort) > self.cohort_max:
                self.cohort_max = len(cohort)
            pending: List[Tuple[float, int, Actor]] = []
            while cohort:
                if heap and heap[0] < cohort[0]:
                    # A mid-drain wake scheduled earlier work (clock <= c
                    # with a smaller id, or clock < c): honor global order.
                    entry = heappop(heap)
                    self.heap_pops += 1
                else:
                    entry = heappop(cohort)
                self.steps += 1
                if max_steps is not None and self.steps > max_steps:
                    raise SimulationError(
                        f"exceeded max_steps={max_steps}; likely a livelock "
                        f"(live={self._live}, now={self.now:.0f} ns)"
                    )
                clock, _, actor = entry
                if actor.parked or actor.finished:
                    continue
                if clock < self.now - 1e-6:
                    raise SimulationError("virtual time went backwards")
                if clock > self.now:
                    self.now = clock
                outcome = actor.step(self)
                if outcome is reschedule:
                    nc = actor.clock
                    if nc <= c:
                        # Same-clock re-step (or a defensive earlier one):
                        # must run before higher-id cohort members, exactly
                        # as a heap push-then-pop would have ordered it.
                        heappush(cohort, (nc, actor.actor_id, actor))
                    else:
                        pending.append((nc, actor.actor_id, actor))
                elif outcome is parked_outcome:
                    actor.parked = True
                elif outcome is finished_outcome:
                    actor.finished = True
                    self._live -= 1
                else:  # pragma: no cover - defensive
                    raise SimulationError(f"bad step outcome {outcome!r}")
            if pending:
                k = len(pending)
                self.heap_pushes += k
                if k > 8 and k * 8 > len(heap):
                    # heapify over the merged list beats k pushes once the
                    # pending batch is a meaningful fraction of the heap.
                    heap.extend(pending)
                    heapify(heap)
                else:
                    for entry in pending:
                        heappush(heap, entry)
        if self._live:
            parked = [a.actor_id for a in self._actors if a.parked and not a.finished]
            ids = ", ".join(map(str, parked[:16]))
            if len(parked) > 16:
                ids += f", ... ({len(parked) - 16} more)"
            raise SimulationError(
                f"deadlock: {self._live} actor(s) parked with empty ready heap "
                f"at {self.now:.0f} ns (parked actor ids: [{ids}])"
            )
        return self.now

    def _push(self, actor: Actor) -> None:
        self.heap_pushes += 1
        heapq.heappush(self._heap, (actor.clock, actor.actor_id, actor))
