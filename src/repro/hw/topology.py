"""Physical topology of a chiplet-based CPU.

The model follows Fig. 2 of the CHARM paper: a machine has one or more
sockets, each socket is one NUMA node (NPS1 configuration, as used in the
paper's testbed) and contains several chiplets (CCDs); each chiplet holds a
fixed number of physical cores that share a local L3 slice.

Cores, chiplets and NUMA nodes are identified by dense global integer ids:

- core ids run ``0 .. total_cores - 1``, chiplet-major then socket-major,
  i.e. core ``c`` lives on chiplet ``c // cores_per_chiplet``;
- chiplet ids run ``0 .. total_chiplets - 1`` socket-major;
- NUMA node ids equal socket ids.

This matches the ``unique_worker_ID -> (chiplet, slot)`` arithmetic of
Alg. 2 in the paper, which assumes exactly this dense layout.
"""

from dataclasses import dataclass
from enum import Enum
from functools import cached_property
from typing import List, Tuple


class Distance(Enum):
    """Topological distance classes between two cores.

    The classes mirror the three latency groups visible in the paper's
    Fig. 3 CDF (same chiplet / same NUMA node but different chiplet /
    different NUMA node), plus the trivial same-core class.
    """

    SAME_CORE = 0
    SAME_CHIPLET = 1
    SAME_SOCKET = 2  # different chiplet, same NUMA node
    CROSS_SOCKET = 3  # different NUMA node


@dataclass(frozen=True)
class Topology:
    """Immutable description of the machine's core/chiplet/socket layout.

    Parameters
    ----------
    sockets:
        Number of CPU sockets.  Each socket is one NUMA node.
    chiplets_per_socket:
        Number of chiplets (CCDs) per socket.
    cores_per_chiplet:
        Number of physical cores per chiplet.
    smt:
        Hardware threads per physical core.  CHARM schedules at physical
        core granularity (one task per physical core, see paper section 4.6),
        so the runtime never places two workers on sibling hyperthreads;
        the parameter exists so that baselines such as SAM can reason about
        hyperthread sharing.
    """

    sockets: int = 2
    chiplets_per_socket: int = 8
    cores_per_chiplet: int = 8
    smt: int = 1
    name: str = "generic"

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.chiplets_per_socket < 1 or self.cores_per_chiplet < 1:
            raise ValueError("topology dimensions must be positive")
        if self.smt < 1:
            raise ValueError("smt must be >= 1")

    # -- Size properties ---------------------------------------------------

    @property
    def total_chiplets(self) -> int:
        return self.sockets * self.chiplets_per_socket

    @property
    def cores_per_socket(self) -> int:
        return self.chiplets_per_socket * self.cores_per_chiplet

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def numa_nodes(self) -> int:
        """NUMA node count (NPS1: one node per socket)."""
        return self.sockets

    # -- Precomputed lookup tables -----------------------------------------
    #
    # The id-mapping arithmetic below is exercised once per simulated memory
    # access, which makes it one of the hottest paths in the repository.
    # These flat tables are computed once per topology (cached_property
    # writes into the frozen dataclass's __dict__) and are what the fast
    # paths in latency/cache/machine index directly.

    @cached_property
    def chiplet_of_core_table(self) -> Tuple[int, ...]:
        """``core id -> chiplet id`` as a flat tuple."""
        cpc = self.cores_per_chiplet
        return tuple(c // cpc for c in range(self.total_cores))

    @cached_property
    def numa_of_core_table(self) -> Tuple[int, ...]:
        """``core id -> NUMA node (== socket) id`` as a flat tuple."""
        cps = self.cores_per_socket
        return tuple(c // cps for c in range(self.total_cores))

    @cached_property
    def socket_of_chiplet_table(self) -> Tuple[int, ...]:
        """``chiplet id -> socket id`` as a flat tuple."""
        cps = self.chiplets_per_socket
        return tuple(ch // cps for ch in range(self.total_chiplets))

    @cached_property
    def socket_of_chiplet_arr(self) -> "object":
        """``socket_of_chiplet_table`` as an int64 numpy array (cached)."""
        import numpy as np

        return np.asarray(self.socket_of_chiplet_table, dtype=np.int64)

    @cached_property
    def chiplet_distance_matrix(self) -> Tuple[Distance, ...]:
        """Flat ``total_chiplets x total_chiplets`` distance-class matrix.

        Entry ``a * total_chiplets + b`` is ``chiplet_distance(a, b)``.
        """
        n = self.total_chiplets
        sock = self.socket_of_chiplet_table
        out: List[Distance] = []
        for a in range(n):
            for b in range(n):
                if a == b:
                    out.append(Distance.SAME_CHIPLET)
                elif sock[a] == sock[b]:
                    out.append(Distance.SAME_SOCKET)
                else:
                    out.append(Distance.CROSS_SOCKET)
        return tuple(out)

    # -- Id mapping --------------------------------------------------------

    def chiplet_of_core(self, core: int) -> int:
        self._check_core(core)
        return self.chiplet_of_core_table[core]

    def socket_of_core(self, core: int) -> int:
        self._check_core(core)
        return self.numa_of_core_table[core]

    def numa_of_core(self, core: int) -> int:
        return self.socket_of_core(core)

    def socket_of_chiplet(self, chiplet: int) -> int:
        self._check_chiplet(chiplet)
        return self.socket_of_chiplet_table[chiplet]

    def cores_of_chiplet(self, chiplet: int) -> List[int]:
        self._check_chiplet(chiplet)
        base = chiplet * self.cores_per_chiplet
        return list(range(base, base + self.cores_per_chiplet))

    def chiplets_of_socket(self, socket: int) -> List[int]:
        self._check_socket(socket)
        base = socket * self.chiplets_per_socket
        return list(range(base, base + self.chiplets_per_socket))

    def cores_of_socket(self, socket: int) -> List[int]:
        self._check_socket(socket)
        base = socket * self.cores_per_socket
        return list(range(base, base + self.cores_per_socket))

    def core_id(self, chiplet: int, slot: int) -> int:
        """Global core id of ``slot`` within ``chiplet`` (Alg. 2 line 11)."""
        self._check_chiplet(chiplet)
        if not 0 <= slot < self.cores_per_chiplet:
            raise ValueError(f"slot {slot} out of range on {self}")
        return chiplet * self.cores_per_chiplet + slot

    # -- Distances ---------------------------------------------------------

    def distance(self, core_a: int, core_b: int) -> Distance:
        """Topological distance class between two cores."""
        self._check_core(core_a)
        self._check_core(core_b)
        if core_a == core_b:
            return Distance.SAME_CORE
        chips = self.chiplet_of_core_table
        ch_a, ch_b = chips[core_a], chips[core_b]
        if ch_a == ch_b:
            return Distance.SAME_CHIPLET
        return self.chiplet_distance_matrix[ch_a * self.total_chiplets + ch_b]

    def chiplet_distance(self, chiplet_a: int, chiplet_b: int) -> Distance:
        self._check_chiplet(chiplet_a)
        self._check_chiplet(chiplet_b)
        return self.chiplet_distance_matrix[chiplet_a * self.total_chiplets + chiplet_b]

    def core_pairs(self) -> List[Tuple[int, int]]:
        """All unordered core pairs, used for latency CDF measurement."""
        n = self.total_cores
        return [(a, b) for a in range(n) for b in range(a + 1, n)]

    # -- Validation helpers --------------------------------------------------

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.total_cores:
            raise ValueError(f"core {core} out of range on {self.name} (0..{self.total_cores - 1})")

    def _check_chiplet(self, chiplet: int) -> None:
        if not 0 <= chiplet < self.total_chiplets:
            raise ValueError(f"chiplet {chiplet} out of range on {self.name}")

    def _check_socket(self, socket: int) -> None:
        if not 0 <= socket < self.sockets:
            raise ValueError(f"socket {socket} out of range on {self.name}")


def milan_topology() -> Topology:
    """Dual-socket AMD EPYC Milan 7713: 2 sockets x 8 CCDs x 8 cores."""
    return Topology(sockets=2, chiplets_per_socket=8, cores_per_chiplet=8, smt=2, name="epyc-milan-7713")


def sapphire_rapids_topology() -> Topology:
    """Dual-socket Intel Xeon Platinum 8488C: 2 sockets x 4 tiles x 12 cores.

    Sapphire Rapids is built from four compute tiles per package.  Its L3
    behaves closer to a unified cache than AMD's partitioned slices; the
    latency/cache models for this preset (see ``repro.hw.machine``)
    therefore use a much smaller inter-tile penalty.
    """
    return Topology(sockets=2, chiplets_per_socket=4, cores_per_chiplet=12, smt=2, name="xeon-8488c")
