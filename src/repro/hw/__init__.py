"""Simulated chiplet-based machine substrate.

This package stands in for the real AMD EPYC Milan / Intel Xeon Sapphire
Rapids testbeds of the CHARM paper.  It models:

- the physical topology (sockets, NUMA nodes, chiplets/CCDs, cores),
- the partitioned L3 cache hierarchy with a cross-chiplet directory,
- DRAM with per-socket memory channels and queueing-delay contention,
- per-chiplet fabric links (GMI-style) with finite bandwidth,
- the core-to-core latency hierarchy measured in Fig. 3 of the paper, and
- PMU-like fill-event counters classified by fill source.

All timing is virtual and expressed in nanoseconds.  The substrate is
deterministic: the same sequence of accesses always produces the same
virtual timings and counter values.
"""

from repro.hw.topology import Topology, Distance, milan_topology, sapphire_rapids_topology
from repro.hw.latency import LatencyModel, MILAN_LATENCY, SPR_LATENCY
from repro.hw.cache import ChipletCache, CacheSystem
from repro.hw.memory import ChannelBank, LinkBank, Region, RegionTable, MemPolicy
from repro.hw.counters import FillSource, FillCounters, CounterBoard
from repro.hw.machine import (
    AccessResult,
    BatchResult,
    Machine,
    custom_machine,
    genoa,
    milan,
    sapphire_rapids,
    small_test_machine,
)

__all__ = [
    "Topology",
    "Distance",
    "milan_topology",
    "sapphire_rapids_topology",
    "LatencyModel",
    "MILAN_LATENCY",
    "SPR_LATENCY",
    "ChipletCache",
    "CacheSystem",
    "ChannelBank",
    "LinkBank",
    "Region",
    "RegionTable",
    "MemPolicy",
    "FillSource",
    "FillCounters",
    "CounterBoard",
    "Machine",
    "AccessResult",
    "BatchResult",
    "custom_machine",
    "genoa",
    "milan",
    "sapphire_rapids",
    "small_test_machine",
]
