"""Latency model for a chiplet-based CPU.

Encodes the latency hierarchy measured in section 2.1 / Fig. 3 of the CHARM
paper on a dual-socket AMD EPYC Milan:

- intra-chiplet core-to-core:       ~25 ns,
- inter-chiplet, same NUMA node:    ~80-150 ns (two sub-groups),
- cross-NUMA:                       >200 ns,

plus the fill-source latencies used by the cache model (local L3 hit,
remote-chiplet L3 fill, DRAM fill).  The deterministic jitter applied to
core-to-core probes reproduces the stepped CDF of Fig. 3 without any real
hardware.
"""

from dataclasses import dataclass
from typing import List

from repro.hw.topology import Distance, Topology


def _hash_jitter(a: int, b: int, spread_ns: float) -> float:
    """Deterministic per-pair jitter in ``[0, spread_ns)``.

    A tiny integer hash keeps the latency CDF stepped-but-fuzzy the way the
    measured CDF in the paper is, while staying fully reproducible.
    """
    h = (a * 2654435761 ^ b * 40503) & 0xFFFFFFFF
    h ^= h >> 16
    h = (h * 2246822519) & 0xFFFFFFFF
    h ^= h >> 13
    return (h % 1024) / 1024.0 * spread_ns


@dataclass(frozen=True)
class LatencyModel:
    """All fixed latencies of the machine, in nanoseconds.

    ``c2c_*`` values parameterise the CAS ping-pong experiment of Fig. 3;
    the remaining values are the fill-source costs charged by the cache and
    memory models.
    """

    # Core-to-core (CAS ping-pong) latencies per distance class.
    c2c_same_chiplet: float = 25.0
    c2c_same_socket_near: float = 85.0   # neighbouring chiplets on the IO die
    c2c_same_socket_far: float = 155.0   # distant chiplets on the IO die
    c2c_cross_socket: float = 225.0
    c2c_jitter: float = 12.0

    # Cache / memory fill latencies.
    l3_hit: float = 14.0                 # local chiplet L3 hit
    fill_same_socket: float = 95.0       # fill from another chiplet's L3, same NUMA node
    fill_cross_socket: float = 205.0     # fill from a chiplet's L3 in the other socket
    dram_local: float = 105.0            # DRAM, home node == requesting core's node
    dram_remote: float = 195.0           # DRAM on the remote NUMA node
    invalidate: float = 28.0             # per-sharer write-invalidation cost

    def core_to_core_ns(self, topo: Topology, core_a: int, core_b: int) -> float:
        """Latency of a CAS ping-pong between two cores.

        Inter-chiplet pairs within a socket fall into a *near* and a *far*
        group depending on the chiplets' positions on the IO die, which is
        what produces the middle steps of the Fig. 3 CDF.
        """
        dist = topo.distance(core_a, core_b)
        if dist is Distance.SAME_CORE:
            return 0.0
        jitter = _hash_jitter(core_a, core_b, self.c2c_jitter)
        if dist is Distance.SAME_CHIPLET:
            return self.c2c_same_chiplet + jitter * 0.3
        if dist is Distance.SAME_SOCKET:
            ch_a = topo.chiplet_of_core(core_a) % topo.chiplets_per_socket
            ch_b = topo.chiplet_of_core(core_b) % topo.chiplets_per_socket
            # Chiplets are laid out in two quadrant rows around the IO die;
            # chiplets in the same half reach each other faster.
            half = topo.chiplets_per_socket // 2 or 1
            if (ch_a // half) == (ch_b // half):
                return self.c2c_same_socket_near + jitter
            return self.c2c_same_socket_far + jitter
        return self.c2c_cross_socket + jitter * 4.0

    def fill_latency(self, dist: Distance) -> float:
        """Latency of fetching a block from another chiplet's L3."""
        if dist is Distance.SAME_CHIPLET:
            return self.l3_hit
        if dist is Distance.SAME_SOCKET:
            return self.fill_same_socket
        return self.fill_cross_socket

    def latency_cdf(self, topo: Topology) -> List[float]:
        """Sorted core-to-core latencies over all core pairs (Fig. 3 data)."""
        return sorted(self.core_to_core_ns(topo, a, b) for a, b in topo.core_pairs())


#: AMD EPYC Milan 7713 latency profile (paper section 2.1).
MILAN_LATENCY = LatencyModel()

#: Intel Xeon Platinum 8488C profile.  Sapphire Rapids' mesh gives markedly
#: better inter-tile communication than AMD's Infinity Fabric (paper
#: section 5.3), so the intra-socket penalties are much smaller.
SPR_LATENCY = LatencyModel(
    c2c_same_chiplet=31.0,
    c2c_same_socket_near=52.0,
    c2c_same_socket_far=66.0,
    c2c_cross_socket=240.0,
    l3_hit=21.0,
    fill_same_socket=48.0,
    fill_cross_socket=215.0,
    dram_local=112.0,
    dram_remote=205.0,
)
