"""The simulated chiplet machine.

:class:`Machine` ties together topology, latency model, partitioned L3
caches, fabric links, memory channels and fill counters, and services
individual memory accesses in virtual time.  It is the substrate on which
the CHARM runtime and every baseline scheduler execute.

The service path of one access mirrors the hardware:

1. look up the requesting core's local L3 slice — hit costs ``l3_hit``;
2. otherwise consult the directory for a peer chiplet holding the block —
   a remote-L3 fill pays the inter-chiplet (or inter-socket) latency plus
   serialisation on both chiplets' fabric links;
3. otherwise fill from DRAM on the block's home NUMA node — paying the
   DRAM latency (local or remote node), queueing on the owning memory
   channel, and serialisation on the requester's fabric link.

Writes additionally invalidate all other cached copies of the block.
Every fill increments the requesting core's PMU-like counter, classified
by source — the signal consumed by CHARM's Alg. 1.
"""

from dataclasses import dataclass, replace
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hw import vector
from repro.hw.cache import CacheSystem
from repro.hw.counters import (
    IDX_DRAM_LOCAL,
    IDX_DRAM_REMOTE,
    IDX_LOCAL_CHIPLET,
    IDX_REMOTE_CHIPLET,
    IDX_REMOTE_NUMA_CHIPLET,
    N_SOURCES,
    SOURCE_INDEX,
    CounterBoard,
    FillSource,
)
from repro.hw.latency import LatencyModel, MILAN_LATENCY, SPR_LATENCY
from repro.hw.memory import (
    ChannelBank,
    CrossSocketLinks,
    LinkBank,
    MemPolicy,
    Region,
    RegionTable,
)
from repro.hw.topology import (
    Topology,
    milan_topology,
    sapphire_rapids_topology,
)

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Minimum batch length — and minimum contiguous vector-eligible span —
#: for the numpy kernels to engage; shorter shapes use the scalar loop.
#: The array kernels carry a fixed per-segment setup cost (a handful of
#: numpy allocations per touched server), so short segments are cheaper
#: to interpret scalarly.
VECTOR_MIN = 32

#: Segment-classification labels (``Machine._classify_runs``): peer fills
#: carry the holder's chiplet id (>= 0), the rest are these sentinels.
_HIT = -1
_MISS = -2
_SCALAR = -3


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one serviced memory access.

    ``ns`` is the total delay including queueing backpressure on channels
    and links; ``latency_ns`` excludes queue waits (fixed latencies plus
    transfer service times, accumulated in server-visit order).  Batched
    accesses overlap ``latency_ns`` across memory-level parallelism while
    queue waits extend the batch's completion — see ``Worker._do_batch``.
    """

    ns: float
    source: FillSource
    invalidations: int = 0
    latency_ns: float = 0.0


class BatchResult:
    """Aggregate outcome of one serviced :meth:`Machine.access_batch`.

    ``ns`` is the total virtual time the issuing core is occupied by the
    batch (the amount the worker charges to its clock); ``finish`` is the
    absolute completion time of the slowest individual access.
    ``fill_counts`` is a per-source count vector indexed by
    ``repro.hw.counters.SOURCE_INDEX`` — callers bulk-record it instead of
    constructing one :class:`AccessResult` per block.
    """

    __slots__ = ("ns", "finish", "fill_counts", "invalidations", "accesses")

    def __init__(self, ns: float, finish: float, fill_counts: List[int],
                 invalidations: int, accesses: int):
        self.ns = ns
        self.finish = finish
        self.fill_counts = fill_counts
        self.invalidations = invalidations
        self.accesses = accesses

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BatchResult(ns={self.ns:.1f}, finish={self.finish:.1f}, "
                f"accesses={self.accesses}, fills={self.fill_counts})")


class Machine:
    """A chiplet-based CPU plus its memory system, simulated in virtual time.

    Parameters
    ----------
    topo:
        Physical layout (sockets / chiplets / cores).
    latency:
        Fixed latency table (see :class:`~repro.hw.latency.LatencyModel`).
    l3_bytes_per_chiplet:
        Capacity of each chiplet's L3 slice.
    block_bytes:
        Modelling granularity: consecutive cache lines are grouped into
        blocks of this size.  Accesses are charged per block; intra-block
        reuse is assumed to hit in L1/L2 and is folded into compute cost.
    mem_channels_per_socket / channel_bytes_per_ns:
        DDR channel count and per-channel bandwidth.
    link_bytes_per_ns:
        Per-chiplet fabric (GMI-style) link bandwidth.
    """

    def __init__(
        self,
        topo: Topology,
        latency: LatencyModel,
        l3_bytes_per_chiplet: int,
        block_bytes: int = 4 * KIB,
        mem_channels_per_socket: int = 8,
        channel_bytes_per_ns: float = 25.6,
        link_bytes_per_ns: float = 47.0,
        xlink_bytes_per_ns: float = 47.0,
    ):
        if block_bytes < 64:
            raise ValueError("block_bytes must be at least one cache line (64 B)")
        if l3_bytes_per_chiplet < block_bytes:
            raise ValueError("L3 slice must hold at least one block")
        self.topo = topo
        self.latency = latency
        self.block_bytes = block_bytes
        self.l3_bytes_per_chiplet = l3_bytes_per_chiplet
        self.caches = CacheSystem(topo, l3_bytes_per_chiplet)
        self.channels = ChannelBank(topo.sockets, mem_channels_per_socket, channel_bytes_per_ns)
        self.links = LinkBank(topo.total_chiplets, link_bytes_per_ns)
        self.xlinks = CrossSocketLinks(topo.sockets, xlink_bytes_per_ns)
        self.counters = CounterBoard(topo.total_cores)
        self.regions = RegionTable(topo.numa_nodes, block_bytes)
        self.total_accesses = 0
        # Machine-wide pure fill latency (no queue waits) accumulated per
        # source, dense SOURCE_INDEX order — the per-source histogram in
        # bandwidth_stats().  Part of the vector kernels' bit-identity
        # contract: scalar and vector paths accumulate the same chains.
        self._fill_lat = [0.0] * N_SOURCES
        # Flat topology tables, bound once: the access paths index these
        # instead of re-deriving ids arithmetically per access.
        self._chiplet_of_core = topo.chiplet_of_core_table
        self._numa_of_core = topo.numa_of_core_table
        self._socket_of_chiplet = topo.socket_of_chiplet_table
        # Barrier-span memo, keyed on the participant core tuple;
        # invalidated by the runtime on migration (see sync_span_ns).
        self._span_cache: Dict[Tuple[int, ...], float] = {}
        # Observability (repro.obs): ``obs`` is the telemetry event bus
        # (or None), ``profiler`` the wall-clock kernel-path self-profiler
        # (or None).  Both default off; every guard is one attribute load
        # plus a None check at batch/segment granularity, never per block.
        self.obs = None
        self.profiler = None

    # -- Allocation ----------------------------------------------------------

    def alloc_region(
        self,
        size_bytes: int,
        node: int = 0,
        policy: MemPolicy = MemPolicy.BIND,
        name: str = "",
        block_bytes: Optional[int] = None,
    ) -> Region:
        """Allocate a memory region (the mmap/mbind stand-in).

        ``block_bytes`` sets this region's modelling granularity: use small
        blocks (e.g. 512 B) for sparse/pointer-heavy data so cache capacity
        is charged for what is actually touched, and large blocks for dense
        streamed arrays.
        """
        return self.regions.alloc(
            size_bytes, node=node, policy=policy, name=name, block_bytes=block_bytes
        )

    def free_region(self, region: Region) -> None:
        """Free a region and flush its resident blocks from every L3 slice.

        Walks the directory entries belonging to the region — O(resident
        blocks) — instead of iterating every possible block key: freeing a
        1 GiB region of 512 B blocks is 2M keys, of which only the few
        actually cached need flushing.
        """
        shift = Region._KEY_SHIFT
        rid = region.region_id
        resident = [k for k in self.caches._dir_slot if k >> shift == rid]
        drop = self.caches.drop_everywhere
        for key in resident:
            drop(key)
        self.regions.free(region)

    # -- Access servicing ------------------------------------------------------

    def access(
        self,
        core: int,
        region: Region,
        block_index: int,
        now: float,
        nbytes: Optional[int] = None,
        write: bool = False,
    ) -> AccessResult:
        """Service one block access by ``core`` at virtual time ``now``."""
        prof = self.profiler
        if prof is not None:
            t0 = perf_counter()
            res = self._access_impl(core, region, block_index, now, nbytes, write)
            prof.add("access", 1, perf_counter() - t0)
            return res
        return self._access_impl(core, region, block_index, now, nbytes, write)

    def _access_impl(
        self,
        core: int,
        region: Region,
        block_index: int,
        now: float,
        nbytes: Optional[int] = None,
        write: bool = False,
    ) -> AccessResult:
        self.total_accesses += 1
        nbytes = nbytes or region.block_bytes
        key = region.block_key(block_index)
        chiplet = self._chiplet_of_core[core]

        if self.caches.lookup_local(chiplet, key):
            inval = self.caches.invalidate_others(chiplet, key) if write else 0
            ns = self.latency.l3_hit + inval * self.latency.invalidate
            self.counters.record(core, FillSource.LOCAL_CHIPLET)
            self._fill_lat[IDX_LOCAL_CHIPLET] += ns
            return AccessResult(ns, FillSource.LOCAL_CHIPLET, inval, ns)

        holder = self.caches.find_holder(chiplet, key)
        if holder is not None:
            return self._fill_from_peer(
                core, chiplet, holder, key, nbytes, region.block_bytes, now, write
            )
        return self._fill_from_dram(core, chiplet, region, block_index, key, nbytes, now, write)

    def _fill_from_peer(
        self,
        core: int,
        chiplet: int,
        holder: int,
        key: int,
        nbytes: int,
        resident_bytes: int,
        now: float,
        write: bool,
    ) -> AccessResult:
        socket_of = self._socket_of_chiplet
        same_socket = socket_of[chiplet] == socket_of[holder]
        base = self.latency.fill_same_socket if same_socket else self.latency.fill_cross_socket
        s_link = nbytes / self.links.bytes_per_ns
        lat = (base + s_link) + s_link
        if not same_socket:
            lat = lat + nbytes / self.xlinks.bytes_per_ns
        ns = base
        d, _ = self.links.service(holder, nbytes, now)
        ns += d
        d, _ = self.links.service(chiplet, nbytes, now)
        ns += d
        d, _ = self.xlinks.service(socket_of[chiplet], socket_of[holder], nbytes, now)
        ns += d
        self.caches.fill(chiplet, key, resident_bytes)
        inval = 0
        if write:
            inval = self.caches.invalidate_others(chiplet, key)
            ns += inval * self.latency.invalidate
            lat = lat + inval * self.latency.invalidate
        source = FillSource.REMOTE_CHIPLET if same_socket else FillSource.REMOTE_NUMA_CHIPLET
        self.counters.record(core, source)
        self._fill_lat[IDX_REMOTE_CHIPLET if same_socket else IDX_REMOTE_NUMA_CHIPLET] += lat
        return AccessResult(ns, source, inval, lat)

    def _fill_from_dram(
        self,
        core: int,
        chiplet: int,
        region: Region,
        block_index: int,
        key: int,
        nbytes: int,
        now: float,
        write: bool,
    ) -> AccessResult:
        my_node = self._numa_of_core[core]
        home = region.node_of_block(block_index, requester_node=my_node)
        local = home == my_node
        base = self.latency.dram_local if local else self.latency.dram_remote
        lat = (base + nbytes / self.channels.bytes_per_ns) + nbytes / self.links.bytes_per_ns
        if not local:
            lat = lat + nbytes / self.xlinks.bytes_per_ns
        ns = base
        d, _ = self.channels.service(home, key, nbytes, now)
        ns += d
        d, _ = self.links.service(chiplet, nbytes, now)
        ns += d
        if not local:
            d, _ = self.xlinks.service(my_node, home, nbytes, now)
            ns += d
        self.caches.fill(chiplet, key, region.block_bytes)
        source = FillSource.DRAM_LOCAL if local else FillSource.DRAM_REMOTE
        self.counters.record(core, source)
        self._fill_lat[IDX_DRAM_LOCAL if local else IDX_DRAM_REMOTE] += lat
        return AccessResult(ns, source, 0, lat)

    # -- Batched access servicing (fast path) ----------------------------------

    def access_batch(
        self,
        core: int,
        region: Region,
        blocks: Sequence[int],
        now: float,
        nbytes: Optional[int] = None,
        write: bool = False,
        per_issue_ns: float = 0.0,
        mlp: float = 1.0,
    ) -> BatchResult:
        """Service a whole batch of block accesses by ``core`` in one call.

        Semantically equivalent to issuing each block through
        :meth:`access` in order with the memory-level-parallelism rule of
        ``Worker._do_batch`` — each access is serviced at the batch's
        rolling issue time ``t``, pure latency overlaps across ``mlp``
        outstanding misses while queue waits push out the completion max.
        Batches over BIND/INTERLEAVE regions additionally route their
        long miss / local-hit / one-peer-fill runs through the numpy
        kernels of :mod:`repro.hw.vector` (duplicates cut segment
        boundaries rather than forcing the batch scalar); every other
        shape takes the scalar loop.
        Both paths are bit-identical to the per-access servicing
        (``blocks`` may be a Python sequence or an int ndarray).
        """
        arr = None
        seq = None
        if isinstance(blocks, np.ndarray):
            arr = blocks if blocks.dtype == np.int64 else blocks.astype(np.int64)
            n = int(arr.shape[0])
        else:
            seq = blocks
            n = len(seq)
        return self._service_blocks(
            core, region, seq, arr, n, now, nbytes, write, per_issue_ns, mlp,
            distinct=False, validated=False,
        )

    def access_run(
        self,
        core: int,
        region: Region,
        start: int,
        count: int,
        now: float,
        stride: int = 1,
        nbytes: Optional[int] = None,
        write: bool = False,
        per_issue_ns: float = 0.0,
        mlp: float = 1.0,
    ) -> BatchResult:
        """Service a run-compressed batch: blocks ``start + i*stride``.

        The run never materializes a per-block Python list: bounds are
        validated in O(1), the block vector is a numpy ``arange``, and the
        run is guaranteed duplicate-free by construction — the shape the
        streaming workloads (sequential scans, strided column walks) emit
        through :class:`repro.runtime.ops.AccessRun`.  Results are
        bit-identical to ``access_batch(core, region, list(...))``.
        """
        if count < 0:
            raise ValueError("run count must be non-negative")
        if stride < 1:
            raise ValueError("run stride must be >= 1")
        if count:
            n_blocks = region.n_blocks
            last = start + (count - 1) * stride
            if not 0 <= start < n_blocks or last >= n_blocks:
                bad = start if not 0 <= start < n_blocks else last
                raise ValueError(
                    f"block {bad} outside region '{region.name}' ({n_blocks} blocks)"
                )
        # Hot re-read replay: a stride-1 read run whose keys are exactly
        # the most-recent entries of the requester's slice (the
        # cache-resident re-read steady state) is all-HIT with a no-op
        # LRU touch, so the whole run collapses to clock arithmetic —
        # no block vector, no segmentation, no classification.  The O(1)
        # last-recency-key probe keeps the miss paths at two dict looks.
        if (stride == 1 and not write and count >= VECTOR_MIN
                and region.policy is not MemPolicy.REPLICATED):
            chiplet = self._chiplet_of_core[core]
            cache = self.caches.caches[chiplet]
            lru = cache._slot
            k0 = (region.region_id << Region._KEY_SHIFT) + start
            if (len(lru) >= count
                    and next(reversed(lru)) == k0 + count - 1
                    and list(lru)[len(lru) - count:]
                        == list(range(k0, k0 + count))):
                prof = self.profiler
                t0 = perf_counter() if prof is not None else 0.0
                self.total_accesses += count
                ns = self.latency.l3_hit
                step = ns / mlp  # hits have no queue wait: latency == ns
                if per_issue_ns > step:
                    step = per_issue_ns
                t_last = vector._chain(now, count - 1, step)
                t = t_last + step
                finish = t_last + ns
                cache.hits += count
                fl = self._fill_lat
                fl[IDX_LOCAL_CHIPLET] = vector._chain(
                    fl[IDX_LOCAL_CHIPLET], count, ns)
                counts = [0] * N_SOURCES
                counts[IDX_LOCAL_CHIPLET] = count
                self.counters.record_batch(core, counts)
                end = t if t > finish else finish
                if prof is not None:
                    prof.add("hot_replay", count, perf_counter() - t0)
                obs = self.obs
                if obs is not None:
                    obs.emit("hw.batch", {
                        "t": end, "core": core, "n": count,
                        "hits": count, "misses": 0,
                    })
                return BatchResult(end - now, finish, counts, 0, count)
        arr = start + stride * np.arange(count, dtype=np.int64)
        return self._service_blocks(
            core, region, None, arr, count, now, nbytes, write, per_issue_ns, mlp,
            distinct=True, validated=True,
        )

    def _service_blocks(
        self,
        core: int,
        region: Region,
        seq: Optional[Sequence[int]],
        arr: Optional[np.ndarray],
        n: int,
        now: float,
        nbytes: Optional[int],
        write: bool,
        per_issue_ns: float,
        mlp: float,
        distinct: bool,
        validated: bool,
    ) -> BatchResult:
        """Shared batch/run servicing: segment, classify, vectorize, fall back.

        The batch is first split into maximal *duplicate-free segments* by
        an O(n) seen-set splitter (a repeated block cuts a segment boundary
        instead of forcing the whole batch scalar); each segment is then
        classified into runs of equal service class — all-hit /
        all-one-peer / all-miss / scalar — and the long runs are serviced
        by the numpy kernels of :mod:`repro.hw.vector`
        (:meth:`_service_segment`), interleaved with scalar spans for
        everything else.  Classification up front is sound because a
        duplicate-free segment cannot re-touch a block it already serviced
        — see MODELING.md ("Hit-path and peer-fill kernels") for the
        per-class stability argument; the one mutable hazard (fills
        evicting a later hit run from the requester's slice) is guarded by
        an eviction-counter check at dispatch time.
        """
        self.total_accesses += n
        if n == 0:
            return BatchResult(0.0, now, [0] * N_SOURCES, 0, 0)
        req_bytes = nbytes or region.block_bytes
        counts = [0] * N_SOURCES
        # Mutable span state: [t, finish, inval_total, hits, misses].
        state = [now, now, 0, 0, 0]

        vec = n >= VECTOR_MIN and region.policy is not MemPolicy.REPLICATED
        if vec and arr is None:
            try:
                arr = np.asarray(seq, dtype=np.int64)
            except (TypeError, ValueError):
                vec = False
        sorted_inc = True
        if vec and not validated:
            # Sorted batches (np.unique output, scans) prove distinctness
            # in O(n) and expose their bounds at the endpoints; anything
            # else pays min/max reductions (and routes to the gather
            # kernel below, which tolerates duplicates directly).
            sorted_inc = bool(np.all(arr[1:] > arr[:-1]))
            if sorted_inc:
                lo = int(arr[0])
                hi = int(arr[-1])
            else:
                lo = int(arr.min())
                hi = int(arr.max())
            if lo < 0 or hi >= region.n_blocks:
                raise ValueError(
                    f"block {lo if lo < 0 else hi} outside region "
                    f"'{region.name}' ({region.n_blocks} blocks)"
                )

        chiplet = self._chiplet_of_core[core]
        if not vec:
            if seq is None:
                seq = arr.tolist()
            self._scalar_span(core, region, seq, 0, n, req_bytes, write,
                              per_issue_ns, mlp, counts, state)
        else:
            my_node = self._numa_of_core[core]
            s_chan = req_bytes / self.channels.bytes_per_ns
            s_link = req_bytes / self.links.bytes_per_ns
            s_xlink = req_bytes / self.xlinks.bytes_per_ns
            lat = self.latency
            # Pure-latency constants in server-visit order — the same
            # expressions _scalar_span builds, shared by every kernel.
            lats = (
                (lat.dram_local + s_chan) + s_link,
                ((lat.dram_remote + s_chan) + s_link) + s_xlink,
                (lat.fill_same_socket + s_link) + s_link,
                ((lat.fill_cross_socket + s_link) + s_link) + s_xlink,
            )
            keys = arr + np.int64(region.region_id << Region._KEY_SHIFT)
            serviced = False
            if not validated and (write or not sorted_inc):
                # Irregular shapes — unsorted spans, duplicates, write
                # batches with sharers — go to the gather kernel, which
                # services the whole batch or declines untouched.
                prof = self.profiler
                pt0 = perf_counter() if prof is not None else 0.0
                g = vector.gather_segment(
                    self, region, chiplet, my_node, arr, keys, now,
                    req_bytes, write, per_issue_ns, mlp, lats, counts, state,
                )
                if g is not None:
                    serviced = True
                    if prof is not None:
                        prof.add("vec_dup_replay" if g else "vec_gather",
                                 n, perf_counter() - pt0)
            if not serviced:
                cuts: Sequence[int] = ()
                if not distinct and not sorted_inc:
                    # Seen-set pass recording where duplicates force
                    # segment boundaries (the pre-gather fallback path).
                    if seq is None:
                        seq = arr.tolist()
                    seen = set()
                    seen_add = seen.add
                    seg_cuts = []
                    for i, b in enumerate(seq):
                        if b in seen:
                            seg_cuts.append(i)
                            seen.clear()
                        seen_add(b)
                    cuts = seg_cuts
                keys_list = keys.tolist()
                if seq is None:
                    seq = arr.tolist()
                # ``pos`` tracks the pending (not yet serviced) scalar
                # prefix: short segments and scalar-classified runs merge
                # into one span per gap, so an all-duplicates batch costs
                # exactly one scalar prologue, not one per single-block
                # segment.
                pos = 0
                bounds = (0, *cuts, n)
                for si in range(len(bounds) - 1):
                    i0 = bounds[si]
                    i1 = bounds[si + 1]
                    if i1 - i0 < VECTOR_MIN:
                        continue
                    if pos < i0:
                        # Flush the pending span *before* classifying:
                        # scalar servicing mutates cache and directory
                        # state the classification must observe.
                        self._scalar_span(core, region, seq, pos, i0,
                                          req_bytes, write, per_issue_ns,
                                          mlp, counts, state)
                        pos = i0
                    pos = self._service_segment(
                        core, region, chiplet, my_node, seq, arr, keys,
                        keys_list, i0, i1, pos, req_bytes, write,
                        per_issue_ns, mlp, lats, counts, state,
                    )
                if pos < n:
                    self._scalar_span(core, region, seq, pos, n, req_bytes,
                                      write, per_issue_ns, mlp, counts, state)

        cache = self.caches.caches[chiplet]
        cache.hits += state[3]
        cache.misses += state[4]
        self.counters.record_batch(core, counts)
        t, finish = state[0], state[1]
        end = t if t > finish else finish
        obs = self.obs
        if obs is not None:
            # One event per serviced batch (never per block): pulses the
            # telemetry sampler and tallies kernel activity.
            obs.emit("hw.batch", {
                "t": end, "core": core, "n": n,
                "hits": state[3], "misses": state[4],
            })
        return BatchResult(end - now, finish, counts, state[2], n)

    def _service_segment(
        self,
        core: int,
        region: Region,
        chiplet: int,
        my_node: int,
        seq: Sequence[int],
        arr: np.ndarray,
        keys: np.ndarray,
        keys_list: List[int],
        i0: int,
        i1: int,
        pos: int,
        req_bytes: int,
        write: bool,
        per_issue_ns: float,
        mlp: float,
        lats: Tuple[float, float, float, float],
        counts: List[int],
        state: list,
    ) -> int:
        """Classify and dispatch one duplicate-free segment ``[i0, i1)``.

        Splits the segment into maximal runs of equal service class and
        routes each long run to its kernel — miss runs to
        :func:`repro.hw.vector.dram_fill_segment`, hit runs to
        :func:`~repro.hw.vector.local_hit_segment`, one-peer read runs to
        :func:`~repro.hw.vector.peer_fill_segment` — leaving short and
        scalar-classified runs pending for the caller's merged scalar
        spans.  Returns the new ``pos`` (start of the pending scalar
        region).

        Classifying the whole segment up front is sound because the
        segment is duplicate-free: servicing one block cannot change a
        *different* block's miss label (fills only add the requester as a
        holder of its own blocks) or peer label (the requester's fills and
        evictions never touch a peer's slice, and write batches classify
        every sharer-invalidating shape as scalar).  The single hazard is
        a fill *evicting* a later hit run's block from the requester's own
        slice — guarded below by re-checking the slice's eviction counter
        at dispatch time and demoting the run to scalar if it moved.
        """
        caches = self.caches
        dir_slot = caches._dir_slot
        cache = caches.caches[chiplet]
        whole_seg = i0 == 0 and i1 == len(keys_list)
        seg_keys = keys_list if whole_seg else keys_list[i0:i1]
        lru = cache._slot
        n_seg = i1 - i0
        # Hot re-read steady state: the slice's most-recent entries are
        # exactly this segment in batch order, so it is all-HIT *and* the
        # bulk touch would reorder nothing.  Probed O(1) via the last
        # recency key before paying the O(len(lru)) tail compare.
        if (not write and len(lru) >= n_seg
                and next(reversed(lru)) == seg_keys[-1]
                and list(lru)[len(lru) - n_seg:] == seg_keys):
            runs: Sequence[Tuple[int, int, int]] = ((_HIT, i0, i1),)
            touch_noop = True
        else:
            touch_noop = False
            # Fast paths for the two other homogeneous steady states: a
            # streaming segment resident nowhere (one C-level disjointness
            # check) and a hot read segment fully resident in the
            # requester's slice (one C-level superset check).
            if not dir_slot or dir_slot.keys().isdisjoint(seg_keys):
                runs = ((_MISS, i0, i1),)
            elif not write and lru.keys() >= set(seg_keys):
                runs = ((_HIT, i0, i1),)
            else:
                runs = self._classify_runs(chiplet, seg_keys, i0, write)
        ev0 = cache.evictions
        prof = self.profiler
        for lab, r0, r1 in runs:
            n_run = r1 - r0
            if (n_run < VECTOR_MIN or lab == _SCALAR
                    or (lab == _HIT and cache.evictions != ev0)):
                continue
            if pos < r0:
                self._scalar_span(core, region, seq, pos, r0, req_bytes,
                                  write, per_issue_ns, mlp, counts, state)
            whole = r0 == 0 and r1 == len(keys_list)
            kl = keys_list if whole else keys_list[r0:r1]
            pt0 = perf_counter() if prof is not None else 0.0
            if lab == _MISS:
                t_end, fin, n_local, n_remote = vector.dram_fill_segment(
                    self, region, chiplet, my_node,
                    arr if whole else arr[r0:r1],
                    keys if whole else keys[r0:r1],
                    kl, state[0], req_bytes, per_issue_ns, mlp,
                    lats[0], lats[1],
                )
                counts[IDX_DRAM_LOCAL] += n_local
                counts[IDX_DRAM_REMOTE] += n_remote
                state[4] += n_run
                if prof is not None:
                    prof.add("vec_miss", n_run, perf_counter() - pt0)
            elif lab == _HIT:
                t_end, fin = vector.local_hit_segment(
                    self, chiplet, kl, state[0], per_issue_ns, mlp,
                    touch_noop=touch_noop,
                )
                # touch_run counted the hits on the slice directly; the
                # span state must not double-count them in the finale.
                counts[IDX_LOCAL_CHIPLET] += n_run
                if prof is not None:
                    prof.add("vec_hit", n_run, perf_counter() - pt0)
            else:
                t_end, fin, same = vector.peer_fill_segment(
                    self, region, chiplet, lab, kl, state[0], req_bytes,
                    per_issue_ns, mlp, lats[2], lats[3],
                )
                counts[IDX_REMOTE_CHIPLET if same
                       else IDX_REMOTE_NUMA_CHIPLET] += n_run
                state[4] += n_run
                if prof is not None:
                    prof.add("vec_peer", n_run, perf_counter() - pt0)
            state[0] = t_end
            if fin > state[1]:
                state[1] = fin
            pos = r1
        return pos

    def _classify_runs(
        self, chiplet: int, seg_keys: List[int], base: int, write: bool,
    ) -> List[Tuple[int, int, int]]:
        """Classify a duplicate-free segment into maximal same-class runs.

        Returns ``(label, start, end)`` tuples in batch order — ``_HIT``
        (resident in the requester's slice; for writes only when the
        requester is the sole holder, so invalidation is a no-op),
        ``_MISS`` (resident nowhere), a peer chiplet id >= 0 (read fill
        whose deterministic min-id holder is that chiplet), or
        ``_SCALAR`` (everything the kernels don't model: writes that
        invalidate sharers, peer-fill writes).  One directory lookup per
        key; the holder choice repeats ``CacheSystem.find_holder``'s
        min-id-per-distance-class rule exactly.
        """
        caches = self.caches
        dir_slot_get = caches._dir_slot.get
        mask_col = caches._dir_mask
        bit = 1 << chiplet
        my_socket = self._socket_of_chiplet[chiplet]
        smask = caches._socket_mask[my_socket]
        runs: List[Tuple[int, int, int]] = []
        cur = _SCALAR - 1  # sentinel unequal to every real label
        r0 = base
        i = base
        for k in seg_keys:
            s = dir_slot_get(k)
            if s is None:
                lab = _MISS
            else:
                m = int(mask_col[s])
                if m & bit:
                    lab = _HIT if not write or m == bit else _SCALAR
                elif write or not m:
                    lab = _SCALAR
                else:
                    # Min-id holder per distance class: lowest set bit of
                    # the same-socket subset, else of the whole mask.
                    same = m & smask
                    cand = same if same else m
                    lab = (cand & -cand).bit_length() - 1
            if lab != cur:
                if i > base:
                    runs.append((cur, r0, i))
                cur = lab
                r0 = i
            i += 1
        runs.append((cur, r0, i))
        return runs

    def _scalar_span(
        self,
        core: int,
        region: Region,
        blocks: Sequence[int],
        i0: int,
        i1: int,
        req_bytes: int,
        write: bool,
        per_issue_ns: float,
        mlp: float,
        counts: List[int],
        state: list,
    ) -> None:
        """Scalar servicing of ``blocks[i0:i1]`` with hoisted invariants.

        The per-block loop of the original fast path: handles every access
        shape (hits, peer fills, invalidations, REPLICATED homes).  Reads
        and writes the shared span ``state`` so vector segments and scalar
        spans interleave on one virtual-time line.
        """
        prof = self.profiler
        span_t0 = perf_counter() if prof is not None else 0.0
        n_blocks = region.n_blocks
        resident_bytes = region.block_bytes
        key_base = region.region_id << Region._KEY_SHIFT

        chiplet = self._chiplet_of_core[core]
        my_node = self._numa_of_core[core]
        socket_of = self._socket_of_chiplet
        my_socket = socket_of[chiplet]

        lat = self.latency
        l3_hit_ns = lat.l3_hit
        invalidate_ns = lat.invalidate
        fill_same_ns = lat.fill_same_socket
        fill_cross_ns = lat.fill_cross_socket
        dram_local_ns = lat.dram_local
        dram_remote_ns = lat.dram_remote
        # Pure-latency constants (base + service times, in server-visit
        # order) — the same expressions the vector kernel broadcasts.
        s_chan = req_bytes / self.channels.bytes_per_ns
        s_link = req_bytes / self.links.bytes_per_ns
        s_xlink = req_bytes / self.xlinks.bytes_per_ns
        lat_dram_local = (dram_local_ns + s_chan) + s_link
        lat_dram_remote = ((dram_remote_ns + s_chan) + s_link) + s_xlink
        lat_peer_same = (fill_same_ns + s_link) + s_link
        lat_peer_cross = ((fill_cross_ns + s_link) + s_link) + s_xlink

        caches = self.caches
        cache = caches.caches[chiplet]
        lru = cache._slot
        lru_pop = lru.pop
        fill_lat = self._fill_lat
        dir_slot_get = caches._dir_slot.get
        my_bit = 1 << chiplet
        smask = caches._socket_mask[my_socket]
        cache_fill = caches.fill
        invalidate_others = caches.invalidate_others
        links_service = self.links.service
        xlinks_service = self.xlinks.service
        channels_service = self.channels.service
        # BIND regions have one home node for every block; resolve it once.
        bind_home = region.home_node if region.policy is MemPolicy.BIND else None
        node_of_block = region.node_of_block

        t, finish, inval_total, hits, misses = state
        span = blocks if i0 == 0 and i1 == len(blocks) else blocks[i0:i1]
        for block in span:
            if not 0 <= block < n_blocks:
                raise ValueError(
                    f"block {block} outside region '{region.name}' ({n_blocks} blocks)"
                )
            key = key_base | block

            slot = lru_pop(key, None)
            if slot is not None:
                # Local L3 hit; re-inserting refreshes recency.
                lru[key] = slot
                hits += 1
                if write:
                    inval = invalidate_others(chiplet, key)
                    inval_total += inval
                    ns = l3_hit_ns + inval * invalidate_ns
                else:
                    ns = l3_hit_ns
                counts[IDX_LOCAL_CHIPLET] += 1
                fill_lat[IDX_LOCAL_CHIPLET] += ns
                completion = t + ns
                if completion > finish:
                    finish = completion
                step = ns / mlp  # hits have no queue wait: latency == ns
                t += step if step > per_issue_ns else per_issue_ns
                continue
            misses += 1

            # Directory lookup: minimum-id holder per distance class, the
            # same deterministic rule as CacheSystem.find_holder — lowest
            # set bit of the same-socket subset, else of the whole mask.
            ds = dir_slot_get(key)
            holder = None
            if ds is not None:
                # Re-fetch the column per access: fills in this loop may
                # grow (reallocate) the directory's mask array.
                m = int(caches._dir_mask[ds]) & ~my_bit
                if m:
                    same = m & smask
                    cand = same if same else m
                    holder = (cand & -cand).bit_length() - 1

            if holder is not None:
                # Fill from a peer chiplet's L3.
                holder_socket = socket_of[holder]
                same_socket = holder_socket == my_socket
                ns = fill_same_ns if same_socket else fill_cross_ns
                latency = lat_peer_same if same_socket else lat_peer_cross
                d, _ = links_service(holder, req_bytes, t)
                ns += d
                d, _ = links_service(chiplet, req_bytes, t)
                ns += d
                d, _ = xlinks_service(my_socket, holder_socket, req_bytes, t)
                ns += d
                cache_fill(chiplet, key, resident_bytes)
                if write:
                    inval = invalidate_others(chiplet, key)
                    inval_total += inval
                    ns += inval * invalidate_ns
                    latency = latency + inval * invalidate_ns
                counts[IDX_REMOTE_CHIPLET if same_socket else IDX_REMOTE_NUMA_CHIPLET] += 1
                fill_lat[IDX_REMOTE_CHIPLET if same_socket
                         else IDX_REMOTE_NUMA_CHIPLET] += latency
            else:
                # Fill from DRAM on the block's home node.
                home = bind_home if bind_home is not None else \
                    node_of_block(block, requester_node=my_node)
                local = home == my_node
                ns = dram_local_ns if local else dram_remote_ns
                latency = lat_dram_local if local else lat_dram_remote
                d, _ = channels_service(home, key, req_bytes, t)
                ns += d
                d, _ = links_service(chiplet, req_bytes, t)
                ns += d
                if not local:
                    d, _ = xlinks_service(my_node, home, req_bytes, t)
                    ns += d
                cache_fill(chiplet, key, resident_bytes)
                counts[IDX_DRAM_LOCAL if local else IDX_DRAM_REMOTE] += 1
                fill_lat[IDX_DRAM_LOCAL if local else IDX_DRAM_REMOTE] += latency

            completion = t + ns
            if completion > finish:
                finish = completion
            step = latency / mlp  # overlap pure latency, not queue waits
            t += step if step > per_issue_ns else per_issue_ns

        state[0] = t
        state[1] = finish
        state[2] = inval_total
        state[3] = hits
        state[4] = misses
        if prof is not None:
            prof.add("scalar", i1 - i0, perf_counter() - span_t0)

    # -- Synchronisation latency ---------------------------------------------

    def cas_ns(self, core_a: int, core_b: int) -> float:
        """Latency of a CAS ping-pong between two cores (Fig. 3 probe)."""
        return self.latency.core_to_core_ns(self.topo, core_a, core_b)

    def sync_span_ns(self, cores) -> float:
        """Cost of one barrier round over ``cores``: the worst pairwise hop.

        A tree barrier's critical path is dominated by the slowest
        core-to-core link among participants, which this returns (plus a
        fixed arbitration cost per participant handled by the caller).

        Barriers are re-entered many times by the same frozen participant
        set, so the all-pairs max is memoized per core tuple.  The runtime
        invalidates the memo on migration (:meth:`invalidate_sync_cache`),
        which also bounds its size over long runs with churning placements.
        """
        key = tuple(cores)
        if len(key) < 2:
            return 0.0
        cached = self._span_cache.get(key)
        if cached is None:
            ref = key[0]
            cas = self.cas_ns
            cached = max(cas(ref, c) for c in key[1:])
            self._span_cache[key] = cached
        return cached

    def invalidate_sync_cache(self) -> None:
        """Drop memoized barrier spans (call when worker placement changes)."""
        self._span_cache.clear()

    # -- Introspection ---------------------------------------------------------

    def fill_latency_histogram(self) -> Dict:
        """Per-source fill histogram: count, summed pure latency, average.

        Shared by :meth:`bandwidth_stats` and ``RunReport.fill_latency``
        so every run — not just perf scenarios — carries the breakdown.
        """
        fills = self.counters.totals()
        flat = self._fill_lat
        return {
            src.value: {
                "fills": fills[i],
                "latency_ns": flat[i],
                "avg_ns": flat[i] / fills[i] if fills[i] else 0.0,
            }
            for src, i in SOURCE_INDEX.items()
        }

    def bandwidth_stats(self) -> Dict:
        """Utilization of every modelled bandwidth resource.

        Per-server ``busy_ns`` / ``wait_ns`` / ``requests`` rows for the
        memory channels (aggregated per socket), the per-chiplet fabric
        links, and the cross-socket links, plus machine-wide totals.
        ``fill_latency`` adds a per-source histogram — fill count, summed
        pure latency (no queue waits), and the average — so scenarios can
        assert *where* accesses were served against Fig. 3's local /
        remote-chiplet / remote-NUMA / DRAM hierarchy.  Recorded into the
        ``repro.bench.perf`` JSON so saturation experiments (fig04/fig07)
        can be debugged from data instead of rerun with print statements.
        """
        channels = self.channels.stats()
        links = self.links.stats()
        xlinks = self.xlinks.stats()
        fill_latency = self.fill_latency_histogram()

        def _tot(rows):
            return {
                "busy_ns": sum(r["busy_ns"] for r in rows),
                "wait_ns": sum(r["wait_ns"] for r in rows),
                "requests": sum(r["requests"] for r in rows),
            }

        return {
            "channels": {
                "per_socket": channels,
                "peak_bytes_per_ns_per_socket": self.channels.peak_bandwidth(),
                "total": _tot(channels),
            },
            "links": {"per_chiplet": links, "total": _tot(links)},
            "xlinks": {"per_pair": xlinks, "total": _tot(xlinks)},
            "fill_latency": {"per_source": fill_latency},
        }

    def describe(self) -> str:
        t = self.topo
        return (
            f"{t.name}: {t.sockets} socket(s) x {t.chiplets_per_socket} chiplet(s) "
            f"x {t.cores_per_chiplet} core(s), "
            f"L3 {self.l3_bytes_per_chiplet // MIB} MiB/chiplet, "
            f"block {self.block_bytes} B, "
            f"{self.channels.channels_per_socket} mem channels/socket"
        )


def milan(scale: int = 1, block_bytes: int = 4 * KIB) -> Machine:
    """Dual-socket AMD EPYC Milan 7713 (paper testbed 1).

    ``scale`` divides the L3 capacity so experiments can shrink their
    datasets by the same factor and still straddle the same cache-capacity
    boundaries while simulating far fewer accesses.  Latencies and
    bandwidths are unscaled.
    """
    return Machine(
        topo=milan_topology(),
        latency=MILAN_LATENCY,
        l3_bytes_per_chiplet=max(32 * MIB // scale, block_bytes),
        block_bytes=block_bytes,
        mem_channels_per_socket=8,
        channel_bytes_per_ns=25.6,   # DDR4-3200
        link_bytes_per_ns=47.0,      # GMI2 read bandwidth
    )


def sapphire_rapids(scale: int = 1, block_bytes: int = 4 * KIB) -> Machine:
    """Dual-socket Intel Xeon Platinum 8488C (paper testbed 2).

    The 105 MB socket L3 is spread over four compute tiles; the mesh makes
    inter-tile fills far cheaper than on AMD, which is why CHARM's margin
    narrows on this machine (paper section 5.3).
    """
    return Machine(
        topo=sapphire_rapids_topology(),
        latency=SPR_LATENCY,
        l3_bytes_per_chiplet=max(int(105 * MIB / 4) // scale, block_bytes),
        block_bytes=block_bytes,
        mem_channels_per_socket=8,
        channel_bytes_per_ns=38.4,   # DDR5-4800
        link_bytes_per_ns=120.0,     # on-die mesh, much wider than GMI
    )


def genoa(scale: int = 1, block_bytes: int = 4 * KIB) -> Machine:
    """Dual-socket AMD EPYC Genoa 9654-style machine (96 cores/socket).

    The paper's Fig. 4 trend point: more chiplets (12 CCDs/socket) and
    DDR5 with 12 channels, same 8-core CCD granularity.  Not part of the
    paper's testbed — provided for what-if studies of the insights on a
    next-generation part.
    """
    topo = Topology(sockets=2, chiplets_per_socket=12, cores_per_chiplet=8,
                    smt=2, name="epyc-genoa-9654")
    return Machine(
        topo=topo,
        latency=MILAN_LATENCY,
        l3_bytes_per_chiplet=max(32 * MIB // scale, block_bytes),
        block_bytes=block_bytes,
        mem_channels_per_socket=12,
        channel_bytes_per_ns=38.4,   # DDR5-4800
        link_bytes_per_ns=52.0,      # GMI3
        xlink_bytes_per_ns=50.0,
    )


def custom_machine(
    sockets: int,
    chiplets_per_socket: int,
    cores_per_chiplet: int,
    l3_bytes_per_chiplet: int,
    latency: Optional[LatencyModel] = None,
    name: str = "custom",
    **kwargs,
) -> Machine:
    """Build an arbitrary chiplet machine for design-space exploration."""
    topo = Topology(sockets=sockets, chiplets_per_socket=chiplets_per_socket,
                    cores_per_chiplet=cores_per_chiplet, name=name)
    return Machine(topo=topo, latency=latency or MILAN_LATENCY,
                   l3_bytes_per_chiplet=l3_bytes_per_chiplet, **kwargs)


@dataclass(frozen=True)
class MachineGeometry:
    """One point in the chiplet design space, as first-class data.

    Where :func:`milan`/:func:`sapphire_rapids` are *fixed* presets,
    a geometry parameterizes the five axes the DSE sweep
    (:mod:`repro.bench.dse`) explores: chiplet count, cores per chiplet,
    L3 slice size, memory channel count, and an inter-chiplet link
    latency scale.  ``build`` turns it into a runnable :class:`Machine`;
    ``validate`` rejects nonsensical points before any simulation time
    is spent on them.

    ``l3_mib_per_chiplet`` is the *full-size* slice; like the named
    presets, ``build(scale=N)`` divides it so experiments can shrink
    datasets by the same factor and straddle the same capacity
    boundaries with far fewer simulated accesses.

    ``link_latency_scale`` multiplies every latency that crosses the
    inter-chiplet fabric (near/far intra-socket core-to-core, and peer
    L3 fills both intra- and cross-socket); 1.0 is Milan's Infinity
    Fabric, <1 models a tighter mesh (Sapphire-Rapids-like), >1 a
    cheaper/longer-reach interconnect.
    """

    chiplets_per_socket: int
    cores_per_chiplet: int
    l3_mib_per_chiplet: int
    mem_channels_per_socket: int
    link_latency_scale: float = 1.0
    sockets: int = 2
    name: str = ""

    # sanity bounds: generous enough for any plausible 2026-era part,
    # tight enough to catch transposed/typo'd axis values
    _MAX_CHIPLETS_PER_SOCKET = 16
    _MAX_CORES_PER_CHIPLET = 64
    _MAX_CHANNELS_PER_SOCKET = 24
    _MAX_LINK_SCALE = 16.0

    def validate(self) -> None:
        """Raise ``ValueError`` naming every out-of-range axis."""
        problems = []
        if self.sockets < 1:
            problems.append(f"sockets must be >= 1, got {self.sockets}")
        if not 1 <= self.chiplets_per_socket <= self._MAX_CHIPLETS_PER_SOCKET:
            problems.append(
                f"chiplets_per_socket must be in "
                f"[1, {self._MAX_CHIPLETS_PER_SOCKET}], "
                f"got {self.chiplets_per_socket}")
        if not 1 <= self.cores_per_chiplet <= self._MAX_CORES_PER_CHIPLET:
            problems.append(
                f"cores_per_chiplet must be in "
                f"[1, {self._MAX_CORES_PER_CHIPLET}], "
                f"got {self.cores_per_chiplet}")
        if self.l3_mib_per_chiplet <= 0:
            problems.append(
                f"l3_mib_per_chiplet must be > 0, got {self.l3_mib_per_chiplet}")
        if not 1 <= self.mem_channels_per_socket <= self._MAX_CHANNELS_PER_SOCKET:
            problems.append(
                f"mem_channels_per_socket must be in "
                f"[1, {self._MAX_CHANNELS_PER_SOCKET}], "
                f"got {self.mem_channels_per_socket}")
        if not 0.0 < self.link_latency_scale <= self._MAX_LINK_SCALE:
            problems.append(
                f"link_latency_scale must be in (0, {self._MAX_LINK_SCALE}], "
                f"got {self.link_latency_scale}")
        if problems:
            raise ValueError(f"invalid MachineGeometry: {'; '.join(problems)}")

    @property
    def total_cores(self) -> int:
        return self.sockets * self.chiplets_per_socket * self.cores_per_chiplet

    @property
    def total_l3_mib(self) -> int:
        return self.sockets * self.chiplets_per_socket * self.l3_mib_per_chiplet

    @property
    def total_channels(self) -> int:
        return self.sockets * self.mem_channels_per_socket

    @property
    def config_id(self) -> str:
        """Compact stable identity, used as the DSE row/cell key."""
        return (f"{self.chiplets_per_socket}x{self.cores_per_chiplet}"
                f"-l3_{self.l3_mib_per_chiplet}m"
                f"-ch{self.mem_channels_per_socket}"
                f"-lk{self.link_latency_scale:g}")

    def scaled_latency(self, base: LatencyModel = MILAN_LATENCY) -> LatencyModel:
        s = self.link_latency_scale
        if s == 1.0:
            return base
        return replace(
            base,
            c2c_same_socket_near=base.c2c_same_socket_near * s,
            c2c_same_socket_far=base.c2c_same_socket_far * s,
            fill_same_socket=base.fill_same_socket * s,
            fill_cross_socket=base.fill_cross_socket * s,
        )

    def build(self, scale: int = 1, block_bytes: int = 4 * KIB) -> Machine:
        """Materialize the geometry as a runnable :class:`Machine`.

        Bandwidths are held at the Milan baseline across the whole design
        space so the sweep isolates the *geometry* axes; latency scaling
        follows ``link_latency_scale``.
        """
        self.validate()
        topo = Topology(
            sockets=self.sockets,
            chiplets_per_socket=self.chiplets_per_socket,
            cores_per_chiplet=self.cores_per_chiplet,
            name=self.name or f"dse-{self.config_id}",
        )
        return Machine(
            topo=topo,
            latency=self.scaled_latency(),
            l3_bytes_per_chiplet=max(
                self.l3_mib_per_chiplet * MIB // scale, block_bytes),
            block_bytes=block_bytes,
            mem_channels_per_socket=self.mem_channels_per_socket,
            channel_bytes_per_ns=25.6,
            link_bytes_per_ns=47.0,
        )


#: The EPYC Milan testbed expressed as a geometry: 8 CCDs × 8 cores,
#: 32 MiB L3/CCD, 8 DDR4 channels/socket, Infinity-Fabric latency.
GEOMETRY_EPYC_MILAN = MachineGeometry(
    chiplets_per_socket=8, cores_per_chiplet=8, l3_mib_per_chiplet=32,
    mem_channels_per_socket=8, link_latency_scale=1.0,
    name="epyc-milan-anchor")

#: The Xeon Sapphire Rapids testbed as a geometry: 4 tiles × 12 cores,
#: ~26 MiB L3/tile, 8 DDR5 channels/socket; the 0.5 link scale stands in
#: for the mesh's much cheaper inter-tile hops (SPR_LATENCY's
#: fill_same_socket is ~half of Milan's).
GEOMETRY_XEON_SPR = MachineGeometry(
    chiplets_per_socket=4, cores_per_chiplet=12, l3_mib_per_chiplet=26,
    mem_channels_per_socket=8, link_latency_scale=0.5,
    name="xeon-spr-anchor")

#: real-hardware anchor points always included in a DSE lattice sample
GEOMETRY_ANCHORS = (GEOMETRY_EPYC_MILAN, GEOMETRY_XEON_SPR)


def small_test_machine(
    sockets: int = 2,
    chiplets_per_socket: int = 2,
    cores_per_chiplet: int = 2,
    l3_blocks_per_chiplet: int = 8,
    block_bytes: int = 64,
) -> Machine:
    """A tiny machine for unit tests: every structure is observable."""
    topo = Topology(
        sockets=sockets,
        chiplets_per_socket=chiplets_per_socket,
        cores_per_chiplet=cores_per_chiplet,
        name="test-machine",
    )
    return Machine(
        topo=topo,
        latency=MILAN_LATENCY,
        l3_bytes_per_chiplet=l3_blocks_per_chiplet * block_bytes,
        block_bytes=block_bytes,
        mem_channels_per_socket=2,
        channel_bytes_per_ns=25.6,
        link_bytes_per_ns=47.0,
    )
