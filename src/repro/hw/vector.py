"""Vectorized access kernels: batch servicing in O(channels + links) array ops.

Miss-heavy batches — the DRAM-bound streams behind the paper's Fig. 5/7
bandwidth-saturation results — used to crawl through a per-block Python
loop.  This module services an entire *vectorizable segment* of a batch
with numpy array operations instead:

- arrival times are one exact cumulative sum (issue steps depend only on
  pure latency, never on queue backpressure, so they are known up front);
- each memory channel / fabric link / cross-socket link replays its
  max-plus queue recurrence ``free = max(free, t_i) + s`` over the batch's
  arrivals grouped by server (:func:`serve_constant`);
- LRU insert/evict and directory updates are bulk operations
  (:meth:`repro.hw.cache.CacheSystem.fill_run`).

Everything here is **bit-identical** to the scalar path.  Floating-point
addition is not associative, so the kernels never substitute closed-form
products for the scalar path's sequential accumulation: every float chain
the scalar loop builds one ``+=`` at a time is rebuilt here with a seeded
``np.cumsum`` (numpy accumulates left-to-right in IEEE double, exactly
like the interpreter), and every comparison runs on those exact values.
The equivalence contract is enforced by the hypothesis property suite in
``tests/test_vector_kernels.py`` and ``tests/test_access_batch_equivalence.py``.

A segment is a maximal duplicate-free span of the batch (repeated blocks
cut segment boundaries), classified per *run* of equal service class by
``Machine._service_segment`` (see MODELING.md for the full table):

- **miss** runs — blocks resident in no L3 slice — go to
  :func:`dram_fill_segment` (pure DRAM fills; writes service like reads
  because there are no sharers to invalidate);
- **hit** runs — blocks resident in the requester's own slice — go to
  :func:`local_hit_segment` (one bulk LRU touch, no servers);
- **one-peer** runs — read fills whose deterministic min-id holder is
  the same remote slice — go to :func:`peer_fill_segment`;
- everything else (REPLICATED regions, non-uniform sizes, writes that
  invalidate sharers, mixed-holder spans, short runs) falls back to the
  scalar loop, with boundaries chosen conservatively.

The hot shape — a BIND-region arithmetic run (sequential or strided
scan) arriving at an idle machine — additionally takes a *joint* fast
path: when no server queues anywhere in the segment, every delay equals
its pure service expression, so the per-server grouping collapses into a
handful of whole-segment array ops plus O(channels) scalar accounting.
"""

from math import gcd
from typing import List, Tuple

import numpy as np

from repro.hw.counters import (
    IDX_DRAM_LOCAL,
    IDX_DRAM_REMOTE,
    IDX_LOCAL_CHIPLET,
    IDX_REMOTE_CHIPLET,
    IDX_REMOTE_NUMA_CHIPLET,
)
from repro.hw.memory import MemPolicy

# Above this many repeats, replaying a constant ``+= s`` chain with a
# seeded cumsum beats the interpreter loop; below it, the numpy call
# overhead dominates.
_CHAIN_LOOP_MAX = 48


def _chain(x0: float, m: int, s: float) -> float:
    """Endpoint of ``m`` sequential ``x0 += s`` updates, bit-exactly.

    Floating-point addition is not associative, so ``x0 + m * s`` would
    diverge from the scalar loop; a seeded ``np.cumsum`` accumulates
    left-to-right in IEEE double exactly like the interpreter.
    """
    if m <= _CHAIN_LOOP_MAX:
        for _ in range(m):
            x0 += s
        return x0
    acc = np.empty(m + 1)
    acc[0] = x0
    acc[1:] = s
    return float(acc.cumsum()[-1])


def _accumulate_busy(server, m: int, s: float) -> None:
    """Replay ``m`` sequential ``busy_ns += s`` updates, bit-exactly."""
    server.busy_ns = _chain(server.busy_ns, m, s)


def _per_row(mat, first: int, m: int, rem: int) -> list:
    """Per-channel chain endpoints from a seeded cumsum matrix.

    Row ``r`` of ``mat`` holds channel ``r``'s chain; channels ``r < rem``
    absorbed ``m`` arrivals (endpoint at column ``m``), the rest ``m - 1``.
    Two slices + ``tolist`` replace ``first`` scalar ``float(mat[r, k])``
    extractions.
    """
    out = mat[:rem, m].tolist()
    if rem < first:
        out += mat[rem:first, m - 1].tolist()
    return out


def serve_constant(server, t: np.ndarray, s: float) -> Tuple[np.ndarray, np.ndarray]:
    """Serve ``m`` arrivals at nondecreasing times ``t`` with constant service ``s``.

    Bit-exact replay of ``m`` sequential ``_Server.service(t[i], s)`` calls,
    including the server's ``free_at`` / ``busy_ns`` / ``wait_ns`` /
    ``requests`` updates.  Returns ``(total_delay, queue_wait)`` arrays.

    Within one busy period the scalar recurrence degenerates to repeated
    addition of ``s`` — reproduced exactly by a seeded ``np.cumsum`` — so
    the only sequential work left is locating busy-period boundaries:
    one numpy comparison per period (and a single vectorized check when
    the server never queues at all).
    """
    m = t.shape[0]
    if m == 0:
        return np.empty(0), np.empty(0)
    free = server.free_at
    # Fast path: no queueing anywhere in the batch (idle server at every
    # arrival).  ``t[i] >= t[i-1] + s`` uses the exact finish values the
    # scalar loop would compare against.
    if free <= t[0] and (m == 1 or bool(np.all(t[1:] >= t[:-1] + s))):
        f = t + s
        server.free_at = float(f[-1])
        server.requests += m
        _accumulate_busy(server, m, s)
        # Every wait is ``t[i] - t[i] == +0.0`` and the scalar chain
        # ``wait_ns += 0.0`` leaves a non-negative accumulator bit-unchanged.
        return f - t, np.zeros(m)
    f = np.empty(m)
    start = np.empty(m)
    i = 0
    while i < m:
        s0 = free if free > t[i] else t[i]
        seg = np.empty(m - i + 1)
        seg[0] = s0
        seg[1:] = s
        fc = np.cumsum(seg)[1:]  # candidate finishes for i .. m-1
        if i + 1 < m:
            # The busy period ends at the first arrival that finds the
            # server idle (strictly later than the previous finish;
            # equality keeps the same values either way).
            idle = t[i + 1:] > fc[:-1]
            j = i + 1 + int(np.argmax(idle)) if idle.any() else m
        else:
            j = m
        f[i:j] = fc[: j - i]
        start[i] = s0
        if j - i > 1:
            start[i + 1 : j] = fc[: j - i - 1]
        free = float(f[j - 1])
        i = j
    server.free_at = float(f[-1])
    server.requests += m
    _accumulate_busy(server, m, s)
    # wait_ns accumulates one += w per request; a seeded cumsum replays
    # that chain in order, bit-exactly.
    wait = start - t
    acc = np.empty(m + 1)
    acc[0] = server.wait_ns
    acc[1:] = wait
    server.wait_ns = float(np.cumsum(acc)[-1])
    return f - t, wait


def dram_fill_segment(
    machine,
    region,
    chiplet: int,
    my_node: int,
    blocks: np.ndarray,
    keys: np.ndarray,
    keys_list: List[int],
    t0: float,
    req_bytes: int,
    per_issue_ns: float,
    mlp: float,
    lat_local: float,
    lat_remote: float,
) -> Tuple[float, float, int, int]:
    """Service a vectorizable segment of pure DRAM fills.

    Preconditions (established by the caller): ``blocks`` are distinct,
    in range, resident in no slice, and the region is BIND or INTERLEAVE.
    Mutates channel/link/xlink servers, the requester's LRU slice, the
    directory, and the slice's eviction counter — all bit-identically to
    the scalar loop.

    Returns ``(t_end, finish, n_local, n_remote)`` where ``t_end`` is the
    issue clock after the segment and ``finish`` the segment's slowest
    completion.
    """
    n = blocks.shape[0]
    lat = machine.latency
    channels = machine.channels
    cps = channels.channels_per_socket
    s_chan = req_bytes / channels.bytes_per_ns
    s_link = req_bytes / machine.links.bytes_per_ns
    s_xlink = req_bytes / machine.xlinks.bytes_per_ns
    link = machine.links.server(chiplet)

    if region.policy is MemPolicy.BIND:
        home = region.home_node
        local = home == my_node
        base = lat.dram_local if local else lat.dram_remote
        # One scalar step for the whole segment: the issue clock is a
        # seeded cumsum of a constant.
        step = (lat_local if local else lat_remote) / mlp
        if per_issue_ns > 0.0 and step < per_issue_ns:
            step = per_issue_ns
        tf = np.empty(n + 1)
        tf[0] = t0
        tf[1:] = step
        tf = np.cumsum(tf)
        t = tf[:-1]
        t_end = float(tf[-1])

        res = _bind_arith_segment(
            machine, blocks, keys_list, t, base, home, local,
            my_node, cps, s_chan, s_link, s_xlink, link,
        )
        if res is not None:
            finish = res
            machine.caches.fill_run(chiplet, keys_list, region.block_bytes)
            fl = machine._fill_lat
            src = IDX_DRAM_LOCAL if local else IDX_DRAM_REMOTE
            fl[src] = _chain(fl[src], n, lat_local if local else lat_remote)
            return t_end, finish, n if local else 0, 0 if local else n

        homes = None
        remote_mask = None
    else:  # INTERLEAVE
        homes = blocks % region.numa_nodes
        local_mask = homes == my_node
        remote_mask = ~local_mask
        base = np.where(local_mask, lat.dram_local, lat.dram_remote)
        lat_arr = np.where(local_mask, lat_local, lat_remote)

        # Issue clock: steps depend only on pure latency, so every arrival
        # time is known before any queue is consulted.  Seeded cumsum ==
        # the scalar loop's sequential ``t += step``.
        step = lat_arr / mlp
        if per_issue_ns > 0.0:
            step = np.where(step > per_issue_ns, step, per_issue_ns)
        tf = np.empty(n + 1)
        tf[0] = t0
        tf[1:] = step
        tf = np.cumsum(tf)
        t = tf[:-1]
        t_end = float(tf[-1])

    # Per-channel max-plus recurrence, grouped by owning channel.
    d_chan = np.empty(n)
    chan_of = keys % cps
    if homes is None:
        sort_key = chan_of
    else:
        sort_key = homes * cps + chan_of
    order = np.argsort(sort_key, kind="stable")
    sorted_key = sort_key[order]
    group_bounds = [0, *(np.flatnonzero(sorted_key[1:] != sorted_key[:-1]) + 1).tolist(), n]
    for gi in range(len(group_bounds) - 1):
        b0 = group_bounds[gi]
        b1 = group_bounds[gi + 1]
        idx = order[b0:b1]
        sk = int(sorted_key[b0])
        socket = home if homes is None else sk // cps
        server = channels.server(socket, sk % cps)
        d, _ = serve_constant(server, t[idx], s_chan)
        d_chan[idx] = d

    # The requester's fabric link sees every access, in batch order.
    d_link, _ = serve_constant(link, t, s_link)

    ns = (base + d_chan) + d_link
    if homes is None:
        if not local:
            server = machine.xlinks.server(my_node, home)
            d_x, _ = serve_constant(server, t, s_xlink)
            ns = ns + d_x
        n_local = n if local else 0
    else:
        for h in np.unique(homes[remote_mask]) if remote_mask.any() else ():
            idx = np.flatnonzero(homes == h)
            server = machine.xlinks.server(my_node, int(h))
            d_x, _ = serve_constant(server, t[idx], s_xlink)
            ns[idx] = ns[idx] + d_x
        n_local = int(np.count_nonzero(local_mask))

    finish = float((t + ns).max())
    machine.caches.fill_run(chiplet, keys_list, region.block_bytes)
    # Per-source fill-latency histogram: within this segment each source's
    # accumulator receives its own pure-latency constant once per access,
    # so the scalar ``+=`` chain is order-independent across the interleave
    # and replays as one chain per source.
    fl = machine._fill_lat
    if n_local:
        fl[IDX_DRAM_LOCAL] = _chain(fl[IDX_DRAM_LOCAL], n_local, lat_local)
    if n - n_local:
        fl[IDX_DRAM_REMOTE] = _chain(fl[IDX_DRAM_REMOTE], n - n_local, lat_remote)
    return t_end, finish, n_local, n - n_local


def _bind_arith_segment(
    machine, blocks, keys_list, t, base, home, local,
    my_node, cps, s_chan, s_link, s_xlink, link,
):
    """Joint channel servicing for a BIND arithmetic run.

    When the segment's blocks form an arithmetic progression with stride
    ``q``, its arrivals hit the home socket's channels cyclically with
    period ``p = cps / gcd(|q|, cps)``: arrival ``i`` is the ``i // p``-th
    visit to channel ``(c0 + (i % p) * q) % cps``.  That structure
    collapses the per-channel grouping (argsort + fancy indexing) into
    strided views, and lets the two steady-state regimes be serviced for
    *all* channels jointly:

    - **idle** (no channel ever queues): every delay is its pure service
      expression ``(t + s) - t``, one whole-segment comparison proves
      idleness for every channel at once, and ``wait_ns`` accumulators
      are bit-unchanged (each wait is ``+0.0``);
    - **backlogged** (every channel busy at every arrival — the saturated
      stream the paper's bandwidth plots are built on): each channel's
      finish times are a pure ``free += s`` chain independent of the
      arrivals, so one 2-D seeded ``np.cumsum`` (row per channel, axis=1
      accumulates left-to-right like the interpreter) replays every
      chain, and one interleave/compare validates the regime.

    Anything in between falls back to per-channel
    :func:`serve_constant` over strided views.  The requester link (and
    cross-socket link when remote) always goes through
    :func:`serve_constant` — they are single servers, not banks.

    Returns the segment's ``finish`` time, or ``None`` when the blocks
    are not an arithmetic progression (caller uses the grouped path).
    """
    n = blocks.shape[0]
    if n < 2:
        return None
    q = int(blocks[1]) - int(blocks[0])
    if q == 0 or not bool((blocks[2:] - blocks[1:-1] == q).all()):
        return None
    p = cps // gcd(abs(q), cps)
    first = p if p < n else n  # number of distinct channels visited
    channels = machine.channels
    c0 = keys_list[0] % cps
    servers = [channels.server(home, (c0 + r * q) % cps) for r in range(first)]

    # Arrivals per channel: the first ``rem`` residues see ``m`` arrivals,
    # the rest ``m - 1`` (m_r == (n - 1 - r) // p + 1).
    m = (n + p - 1) // p
    rem = n - (m - 1) * p

    d_chan = None
    idle = True
    for r in range(first):
        if servers[r].free_at > t[r]:
            idle = False
            break
    if idle and n > p:
        idle = bool((t[p:] >= t[:-p] + s_chan).all())
    if idle:
        # Delays replay the scalar loop's ``(now + s) - now`` per access;
        # waits are identically +0.0, leaving wait_ns bit-unchanged.
        d_chan = (t + s_chan) - t
        # One seeded 2-D cumsum replays every channel's busy_ns chain.
        busy = np.empty((first, m + 1))
        busy[:, 0] = [srv.busy_ns for srv in servers]
        busy[:, 1:] = s_chan
        busy = np.cumsum(busy, axis=1)
        new_busy = _per_row(busy, first, m, rem)
        last = t.take([r + (((m if r < rem else m - 1)) - 1) * p
                       for r in range(first)]).tolist()
        for r in range(first):
            srv = servers[r]
            srv.requests += m if r < rem else m - 1
            srv.busy_ns = new_busy[r]
            srv.free_at = last[r] + s_chan
    else:
        # Candidate backlogged regime: chain every channel's finishes.
        # free_at and busy_ns advance by the same constant, so one 2-D
        # seeded cumsum replays both chains for every channel.
        mat = np.empty((2 * first, m + 1))
        mat[:first, 0] = [srv.free_at for srv in servers]
        mat[first:, 0] = [srv.busy_ns for srv in servers]
        mat[:, 1:] = s_chan
        mat = np.cumsum(mat, axis=1)
        chain = mat[:first]
        # chain[r, k] = channel r's free time before its k-th arrival;
        # interleave rows back into arrival order (i -> row i % p).
        free_before = chain[:, :-1].T.ravel()[:n]
        if bool((free_before >= t).all()):
            d_chan = chain[:, 1:].T.ravel()[:n] - t
            waits = free_before - t
            acc = np.empty((first, m + 1))
            acc[:, 0] = [srv.wait_ns for srv in servers]
            padded = np.zeros(first * m)
            padded[:n] = waits
            acc[:, 1:] = padded.reshape(m, first).T
            acc = np.cumsum(acc, axis=1)
            new_free = _per_row(chain, first, m, rem)
            new_busy = _per_row(mat[first:], first, m, rem)
            new_wait = _per_row(acc, first, m, rem)
            for r in range(first):
                srv = servers[r]
                srv.requests += m if r < rem else m - 1
                srv.free_at = new_free[r]
                srv.busy_ns = new_busy[r]
                srv.wait_ns = new_wait[r]
    if d_chan is None:
        # Mixed regime (e.g. the segment where a stream first saturates):
        # per-channel recurrence over strided views, no argsort needed.
        d_chan = np.empty(n)
        for r in range(first):
            sl = slice(r, None, p)
            d, _ = serve_constant(servers[r], t[sl], s_chan)
            d_chan[sl] = d

    d_link, _ = serve_constant(link, t, s_link)
    ns = (base + d_chan) + d_link
    if not local:
        xsrv = machine.xlinks.server(my_node, home)
        d_x, _ = serve_constant(xsrv, t, s_xlink)
        ns = ns + d_x
    return float((t + ns).max())


def local_hit_segment(
    machine,
    chiplet: int,
    keys_list: List[int],
    t0: float,
    per_issue_ns: float,
    mlp: float,
    touch_noop: bool = False,
) -> Tuple[float, float]:
    """Service a run of local L3 hits: one bulk LRU touch + a clock replay.

    ``touch_noop=True`` asserts the caller already proved the slice's
    recency tail equals ``keys_list`` (the hot re-read steady state), so
    the bulk touch would reorder nothing and only the hit counter moves.

    Preconditions (established by the caller's classification): every key
    is resident in ``chiplet``'s slice, and for write batches this chiplet
    is each block's *only* holder — so the scalar path's
    ``invalidate_others`` is a no-op and reads and writes service
    identically at the bare ``l3_hit`` latency.

    Hits touch no servers and carry no queue waits, so the whole run
    collapses to scalar arithmetic: the issue clock advances by one
    constant step (replayed bit-exactly with :func:`_chain`), the slowest
    completion is the last arrival plus the hit latency, and the LRU
    recency/hit-counter effects are one :meth:`CacheSystem.touch_run`.

    Returns ``(t_end, finish)``.
    """
    n = len(keys_list)
    ns = machine.latency.l3_hit
    step = ns / mlp  # hits have no queue wait: latency == ns
    if per_issue_ns > step:
        step = per_issue_ns
    t_last = _chain(t0, n - 1, step)
    if touch_noop:
        machine.caches.caches[chiplet].hits += n
    else:
        machine.caches.touch_run(chiplet, keys_list)
    fl = machine._fill_lat
    fl[IDX_LOCAL_CHIPLET] = _chain(fl[IDX_LOCAL_CHIPLET], n, ns)
    return t_last + step, t_last + ns


def peer_fill_segment(
    machine,
    region,
    chiplet: int,
    holder: int,
    keys_list: List[int],
    t0: float,
    req_bytes: int,
    per_issue_ns: float,
    mlp: float,
    lat_same: float,
    lat_cross: float,
) -> Tuple[float, float, bool]:
    """Service a run of read fills all served by one peer chiplet's L3.

    Preconditions (established by the caller's classification): the run is
    duplicate-free, no key is resident in the requester's slice, every key
    is held by ``holder``, and ``holder`` is the deterministic min-id
    choice (same socket preferred) for every key — i.e. the exact peer the
    scalar loop would pick per access.

    The issue clock is a seeded cumsum of one constant step (pure fill
    latency is uniform across the run), then each fabric link replays its
    max-plus recurrence over the run's arrivals with
    :func:`serve_constant` — the holder's link, the requester's link, and
    the cross-socket link when the peer is on the other socket (the scalar
    path's same-socket cross-link call adds ``+0.0`` without touching any
    server, so skipping it is bit-identical).  The requesting side's bulk
    insert/evict and directory transfer is one shared-mode
    :meth:`CacheSystem.fill_run`.

    Returns ``(t_end, finish, same_socket)``.
    """
    n = len(keys_list)
    socket_of = machine.topo.socket_of_chiplet_table
    my_socket = socket_of[chiplet]
    holder_socket = socket_of[holder]
    same = holder_socket == my_socket
    lat = machine.latency
    base = lat.fill_same_socket if same else lat.fill_cross_socket
    latency = lat_same if same else lat_cross
    step = latency / mlp  # overlap pure latency, not queue waits
    if per_issue_ns > step:
        step = per_issue_ns
    tf = np.empty(n + 1)
    tf[0] = t0
    tf[1:] = step
    tf = np.cumsum(tf)
    t = tf[:-1]
    t_end = float(tf[-1])

    links = machine.links
    s_link = req_bytes / links.bytes_per_ns
    d_holder, _ = serve_constant(links.server(holder), t, s_link)
    d_req, _ = serve_constant(links.server(chiplet), t, s_link)
    ns = (base + d_holder) + d_req
    if not same:
        s_xlink = req_bytes / machine.xlinks.bytes_per_ns
        xsrv = machine.xlinks.server(my_socket, holder_socket)
        d_x, _ = serve_constant(xsrv, t, s_xlink)
        ns = ns + d_x

    finish = float((t + ns).max())
    machine.caches.fill_run(chiplet, keys_list, region.block_bytes, shared=True)
    src = IDX_REMOTE_CHIPLET if same else IDX_REMOTE_NUMA_CHIPLET
    fl = machine._fill_lat
    fl[src] = _chain(fl[src], n, latency)
    return t_end, finish, same
