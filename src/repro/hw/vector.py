"""Vectorized access kernels: batch servicing in O(channels + links) array ops.

Miss-heavy batches — the DRAM-bound streams behind the paper's Fig. 5/7
bandwidth-saturation results — used to crawl through a per-block Python
loop.  This module services an entire *vectorizable segment* of a batch
with numpy array operations instead:

- arrival times are one exact cumulative sum (issue steps depend only on
  pure latency, never on queue backpressure, so they are known up front);
- each memory channel / fabric link / cross-socket link replays its
  max-plus queue recurrence ``free = max(free, t_i) + s`` over the batch's
  arrivals grouped by server (:func:`serve_constant`);
- LRU insert/evict and directory updates are bulk operations
  (:meth:`repro.hw.cache.CacheSystem.fill_run`).

Everything here is **bit-identical** to the scalar path.  Floating-point
addition is not associative, so the kernels never substitute closed-form
products for the scalar path's sequential accumulation: every float chain
the scalar loop builds one ``+=`` at a time is rebuilt here with a seeded
``np.cumsum`` (numpy accumulates left-to-right in IEEE double, exactly
like the interpreter), and every comparison runs on those exact values.
The equivalence contract is enforced by the hypothesis property suite in
``tests/test_vector_kernels.py`` and ``tests/test_access_batch_equivalence.py``.

A segment is a maximal duplicate-free span of the batch (repeated blocks
cut segment boundaries), classified per *run* of equal service class by
``Machine._service_segment`` (see MODELING.md for the full table):

- **miss** runs — blocks resident in no L3 slice — go to
  :func:`dram_fill_segment` (pure DRAM fills; writes service like reads
  because there are no sharers to invalidate);
- **hit** runs — blocks resident in the requester's own slice — go to
  :func:`local_hit_segment` (one bulk LRU touch, no servers);
- **one-peer** runs — read fills whose deterministic min-id holder is
  the same remote slice — go to :func:`peer_fill_segment`;
- everything else (REPLICATED regions, non-uniform sizes, writes that
  invalidate sharers, mixed-holder spans, short runs) falls back to the
  scalar loop, with boundaries chosen conservatively.

The hot shape — a BIND-region arithmetic run (sequential or strided
scan) arriving at an idle machine — additionally takes a *joint* fast
path: when no server queues anywhere in the segment, every delay equals
its pure service expression, so the per-server grouping collapses into a
handful of whole-segment array ops plus O(channels) scalar accounting.
"""

from bisect import bisect_left, insort
from itertools import islice, repeat
from math import gcd
from typing import List, Optional, Tuple

import numpy as np

from repro.hw.counters import (
    IDX_DRAM_LOCAL,
    IDX_DRAM_REMOTE,
    IDX_LOCAL_CHIPLET,
    IDX_REMOTE_CHIPLET,
    IDX_REMOTE_NUMA_CHIPLET,
)
from repro.hw.memory import MemPolicy

# Fill-source counter index per service-class code (0 resident hit,
# 1/2 local/remote DRAM, 3/4 same/cross-socket peer).
_LUT_SRC = np.array(
    (IDX_LOCAL_CHIPLET, IDX_DRAM_LOCAL, IDX_DRAM_REMOTE,
     IDX_REMOTE_CHIPLET, IDX_REMOTE_NUMA_CHIPLET),
    dtype=np.int64,
)

# Above this many repeats, replaying a constant ``+= s`` chain with a
# seeded cumsum beats the interpreter loop; below it, the numpy call
# overhead dominates.
_CHAIN_LOOP_MAX = 48

# A queueing batch is served either by an interpreter replay of
# ``_Server.service`` (~1 us per arrival) or by the busy-period cumsum
# replay (a handful of numpy passes per busy period).  The interpreter
# wins when periods are dense relative to arrivals: python_cost ~ m,
# numpy_cost ~ periods * this many arrival-equivalents per pass.
_SERVE_PERIOD_COST = 9

# The breadth-first period replay chains *all* busy periods at once with
# one vector add per queue position, so its cost is ~6 numpy ops per
# *longest* period instead of per period.  Past this depth a single
# dense period is cheaper through the per-period cumsum.
_SERVE_VEC_MAX_DEPTH = 32


def _chain(x0: float, m: int, s: float) -> float:
    """Endpoint of ``m`` sequential ``x0 += s`` updates, bit-exactly.

    Floating-point addition is not associative, so ``x0 + m * s`` would
    diverge from the scalar loop; a seeded ``np.cumsum`` accumulates
    left-to-right in IEEE double exactly like the interpreter.
    """
    if m <= _CHAIN_LOOP_MAX:
        for _ in range(m):
            x0 += s
        return x0
    acc = np.empty(m + 1)
    acc[0] = x0
    acc[1:] = s
    return float(acc.cumsum()[-1])


def _accumulate_busy(server, m: int, s: float) -> None:
    """Replay ``m`` sequential ``busy_ns += s`` updates, bit-exactly."""
    server.busy_ns = _chain(server.busy_ns, m, s)


def _per_row(mat, first: int, m: int, rem: int) -> list:
    """Per-channel chain endpoints from a seeded cumsum matrix.

    Row ``r`` of ``mat`` holds channel ``r``'s chain; channels ``r < rem``
    absorbed ``m`` arrivals (endpoint at column ``m``), the rest ``m - 1``.
    Two slices + ``tolist`` replace ``first`` scalar ``float(mat[r, k])``
    extractions.
    """
    out = mat[:rem, m].tolist()
    if rem < first:
        out += mat[rem:first, m - 1].tolist()
    return out


_ARANGE = np.arange(4096)


def _arange(k: int) -> np.ndarray:
    """Memoized ``np.arange(k)`` (read-only use only)."""
    global _ARANGE
    if k > _ARANGE.shape[0]:
        _ARANGE = np.arange(2 * k)
    return _ARANGE[:k]


def serve_groups(servers: list, t: np.ndarray, bounds: np.ndarray,
                 s_row: np.ndarray) -> np.ndarray:
    """Serve several independent servers' arrival groups in one matrix pass.

    ``t[bounds[g]:bounds[g+1]]`` holds group ``g``'s nondecreasing arrival
    times for ``servers[g]`` with constant service time ``s_row[g]`` —
    different rows may carry different service times, so DRAM channels,
    peer fabric links and cross-socket links all batch into *one* call.
    Equivalent to one :func:`serve_constant` call per group —
    bit-identically, including all server-state updates — but the cost
    is one set of numpy ops over a ``groups x longest-group`` matrix
    instead of ~a dozen ops *per group*.  The servers must be pairwise
    distinct (each row's state evolves independently).

    The matrix path requires a row to be head-drain shaped (arrivals
    spaced at least ``s_row[g]`` apart, so any queue backlog carried in
    from earlier batches only shrinks): the row chain is then a seeded
    row cumsum up to the drain point and plain ``t + s`` after it.
    Internally dense rows are served by :func:`serve_constant`
    individually; the returned delay vector always covers every group.
    """
    ng = len(servers)
    length = np.diff(bounds)
    max_l = int(length.max())
    col = _arange(max_l)
    valid = col < length[:, None]
    tm = np.full((ng, max_l), np.inf)
    tm[valid] = t
    sg = s_row[:, None]
    if max_l > 1:
        # +inf padding makes every pad gap trivially ok.
        ok = (tm[:, 1:] >= tm[:, :-1] + sg).all(axis=1)
        all_ok = bool(ok.all())
    else:
        all_ok = True
    d_out = None
    if not all_ok:
        # Dense rows replay through the sequential server; the matrix
        # path below then runs on the surviving head-drain rows only.
        d_out = np.empty(t.shape[0])
        for g in np.flatnonzero(~ok).tolist():
            lo, hi = int(bounds[g]), int(bounds[g + 1])
            d_out[lo:hi], _ = serve_constant(servers[g], t[lo:hi],
                                             float(s_row[g]))
        if not bool(ok.any()):
            return d_out
        keep = np.repeat(ok, length)
        servers = [sv for g, sv in enumerate(servers) if ok[g]]
        tm = tm[ok]
        valid = valid[ok]
        length = length[ok]
        sg = sg[ok]
        ng = len(servers)
        max_l = int(length.max())
        if max_l < tm.shape[1]:
            tm = tm[:, :max_l]
            valid = valid[:, :max_l]
            col = col[:max_l]
    rows = _arange(ng)
    heads = tm[:, 0]
    attrs = np.fromiter((x for sv in servers
                         for x in (sv.free_at, sv.busy_ns, sv.wait_ns)),
                        dtype=np.float64, count=3 * ng).reshape(ng, 3)
    if bool((attrs[:, 0] <= heads).all()):
        # Every row starts idle and stays idle (arrivals spaced >= s):
        # each arrival departs at ``t + s`` with zero wait, so the wait
        # chain adds +0.0 per arrival — a bitwise no-op on the
        # non-negative accumulator — and only the busy chain needs a
        # sequential replay.
        fm = tm + sg
        am = np.empty((ng, max_l + 1))
        am[:, 0] = attrs[:, 1]
        am[:, 1:] = sg
        np.cumsum(am, axis=1, out=am)
        busy_end = am[rows, length].tolist()
        free_end = fm[rows, length - 1].tolist()
        len_l = length.tolist()
        for g, sv in enumerate(servers):
            sv.free_at = free_end[g]
            sv.busy_ns = busy_end[g]
            sv.requests += len_l[g]
        if d_out is None:
            return fm[valid] - t
        d_out[keep] = fm[valid] - t[keep]
        return d_out
    start0 = np.maximum(attrs[:, 0], heads)
    # Candidate finishes assuming each row stays queued: the exact
    # sequential ``+= s`` chain, seeded per row, replayed left-to-right
    # by one row-wise cumsum — stacked with the busy_ns accumulator
    # chains, which replay the same ``+= s`` adds and whose seeds are
    # already known here (the wait chains below are not: they need
    # ``cm`` first).  ``cm``'s extra pad column sits past every row's
    # last arrival and is never read.
    big = np.empty((2 * ng, max_l + 1))
    big[:ng, 0] = attrs[:, 1]
    big[:ng, 1:] = sg
    big[ng:, 0] = start0 + sg[:, 0]
    big[ng:, 1:] = sg
    np.cumsum(big, axis=1, out=big)
    busy_end = big[rows, length].tolist()
    cm = big[ng:, :max_l]
    # First arrival that finds its server idle; +inf padding guarantees
    # a hit at the first pad cell, so rows without one drain at length.
    # (All-singleton groups have no drain candidates: the head IS the
    # row, and ``start0`` already folded its idle-vs-queued choice in.)
    if max_l > 1:
        drained = cm[:, : max_l - 1] <= tm[:, 1:]
        # A short row always drains at its first +inf pad cell, so only
        # a full-width all-False row needs the ``length`` fallback —
        # distinguishable from a first-column drain without a full
        # ``any`` scan.
        j = np.argmax(drained, axis=1) + 1
        j = np.where((j > 1) | drained[:, 0], j, length)
    else:
        j = length
    queued = col < j[:, None]
    fm = np.where(queued, cm, tm + sg)
    # Per-server wait_ns accumulator chains, seeded row cumsums with
    # endpoints at each row's true length; the wait values land directly
    # in the chain matrix (pad cells are +0.0 and sit past each
    # endpoint).
    am = np.empty((ng, max_l + 1))
    am[:, 0] = attrs[:, 2]
    am[:, 1] = start0 - heads
    if max_l > 1:
        am[:, 2:] = np.where(queued[:, 1:], cm[:, : max_l - 1] - tm[:, 1:],
                             0.0)
    np.cumsum(am, axis=1, out=am)
    wait_end = am[rows, length].tolist()
    free_end = fm[rows, length - 1].tolist()
    len_l = length.tolist()
    for g, sv in enumerate(servers):
        sv.free_at = free_end[g]
        sv.busy_ns = busy_end[g]
        sv.wait_ns = wait_end[g]
        sv.requests += len_l[g]
    if d_out is None:
        return fm[valid] - t
    d_out[keep] = fm[valid] - t[keep]
    return d_out


def serve_constant(server, t: np.ndarray, s: float) -> Tuple[np.ndarray, np.ndarray]:
    """Serve ``m`` arrivals at nondecreasing times ``t`` with constant service ``s``.

    Bit-exact replay of ``m`` sequential ``_Server.service(t[i], s)`` calls,
    including the server's ``free_at`` / ``busy_ns`` / ``wait_ns`` /
    ``requests`` updates.  Returns ``(total_delay, queue_wait)`` arrays.

    Within one busy period the scalar recurrence degenerates to repeated
    addition of ``s`` — reproduced exactly by a seeded ``np.cumsum`` — so
    the only sequential work left is locating busy-period boundaries:
    one numpy comparison per period (and a single vectorized check when
    the server never queues at all).
    """
    m = t.shape[0]
    if m == 0:
        return np.empty(0), np.empty(0)
    free = server.free_at
    # Fast path: no queueing anywhere in the batch (idle server at every
    # arrival).  ``t[i] >= t[i-1] + s`` uses the exact finish values the
    # scalar loop would compare against.
    n_gaps = 0
    if m > 1:
        gaps = t[1:] >= t[:-1] + s
        if bool(gaps.all()):
            if free <= t[0]:
                f = t + s
                server.free_at = float(f[-1])
                server.requests += m
                _accumulate_busy(server, m, s)
                # Every wait is ``t[i] - t[i] == +0.0`` and the scalar
                # chain ``wait_ns += 0.0`` leaves a non-negative
                # accumulator bit-unchanged.
                return f - t, np.zeros(m)
            # Head-drain: the server starts busy (carryover from an
            # earlier batch) but arrivals are spaced >= s apart, so the
            # backlog only shrinks — once one arrival finds the server
            # idle, every later one does too.  The busy head is one
            # seeded cumsum (the exact ``+= s`` chain); everything after
            # the drain point is a plain idle ``t + s``.
            c = np.empty(m)
            c[0] = free + s
            c[1:] = s
            c = np.cumsum(c)
            drained = c[:-1] <= t[1:]
            # argmax == 0 is ambiguous (drain at 1 vs never): one scalar
            # probe resolves it without a second full scan.
            j0 = int(np.argmax(drained))
            j = j0 + 1 if (j0 or bool(drained[0])) else m
            f = np.empty(m)
            f[:j] = c[:j]
            w = np.empty(m)
            w[0] = free - t[0]
            w[1:j] = c[: j - 1] - t[1:j]
            if j < m:
                f[j:] = t[j:] + s
                w[j:] = 0.0
            server.free_at = float(f[-1])
            server.requests += m
            # One stacked cumsum replays both accumulator chains (the
            # busy ``+= s`` chain and the wait chain) row-by-row — the
            # same left-to-right float adds as two separate chains.
            acc = np.empty((2, m + 1))
            acc[0, 0] = server.busy_ns
            acc[0, 1:] = s
            acc[1, 0] = server.wait_ns
            acc[1, 1:] = w
            np.cumsum(acc, axis=1, out=acc)
            server.busy_ns = float(acc[0, -1])
            server.wait_ns = float(acc[1, -1])
            return f - t, w
        # Idle gaps under the no-queue assumption estimate busy-period
        # starts (queue carryover only merges periods, never adds any).
        n_gaps = int(np.count_nonzero(gaps))
    elif free <= t[0]:
        f = t + s
        server.free_at = float(f[-1])
        server.requests += 1
        _accumulate_busy(server, 1, s)
        return f - t, np.zeros(1)
    if n_gaps and m >= 10:
        # Breadth-first period replay: chain every provisional busy
        # period simultaneously, one ``+= s`` vector add per queue depth
        # — the same left-to-right float accumulation as the scalar loop,
        # applied to all period heads at once.  Provisional starts (idle
        # gaps) are a superset of true starts, so the result is valid iff
        # every provisional start really found the server idle; that is
        # checked before any state is touched, falling back to the exact
        # sequential paths below when queue backlog carried across a gap.
        ps = np.empty(n_gaps + 1, dtype=np.int64)
        ps[0] = 0
        ps[1:] = np.flatnonzero(gaps) + 1
        ends = np.empty(n_gaps + 1, dtype=np.int64)
        ends[:-1] = ps[1:]
        ends[-1] = m
        if int((ends - ps).max()) <= _SERVE_VEC_MAX_DEPTH:
            bases = t[ps]
            if free > t[0]:
                bases[0] = free
            curq = bases + s
            f = np.empty(m)
            w = np.zeros(m)
            f[ps] = curq
            if free > t[0]:
                w[0] = free - t[0]
            pos = ps + 1
            en = ends
            while True:
                alive = pos < en
                if not bool(alive.all()):
                    pos = pos[alive]
                    if not pos.size:
                        break
                    en = en[alive]
                    curq = curq[alive]
                prev = curq           # = free before this arrival (queued)
                curq = curq + s
                f[pos] = curq
                w[pos] = prev - t[pos]
                pos = pos + 1
            if bool((f[ps[1:] - 1] <= t[ps[1:]]).all()):
                server.free_at = float(f[-1])
                server.requests += m
                _accumulate_busy(server, m, s)
                acc = np.empty(m + 1)
                acc[0] = server.wait_ns
                acc[1:] = w
                server.wait_ns = float(np.cumsum(acc)[-1])
                return f - t, w
    if m < _SERVE_PERIOD_COST * (n_gaps + 1):
        # Dense busy periods (scattered arrivals, short queues): an
        # interpreter replay of ``_Server.service`` — same float ops,
        # same order — beats per-busy-period numpy passes.
        busy = server.busy_ns
        waits = server.wait_ns
        d_l: List[float] = []
        w_l: List[float] = []
        for now in t.tolist():
            start = free if free > now else now
            free = start + s
            busy += s
            w = start - now
            waits += w
            d_l.append(free - now)
            w_l.append(w)
        server.free_at = free
        server.busy_ns = busy
        server.wait_ns = waits
        server.requests += m
        return np.asarray(d_l), np.asarray(w_l)
    f = np.empty(m)
    start = np.empty(m)
    i = 0
    while i < m:
        s0 = free if free > t[i] else t[i]
        seg = np.empty(m - i + 1)
        seg[0] = s0
        seg[1:] = s
        fc = np.cumsum(seg)[1:]  # candidate finishes for i .. m-1
        if i + 1 < m:
            # The busy period ends at the first arrival that finds the
            # server idle (strictly later than the previous finish;
            # equality keeps the same values either way).
            idle = t[i + 1:] > fc[:-1]
            j = i + 1 + int(np.argmax(idle)) if idle.any() else m
        else:
            j = m
        f[i:j] = fc[: j - i]
        start[i] = s0
        if j - i > 1:
            start[i + 1 : j] = fc[: j - i - 1]
        free = float(f[j - 1])
        i = j
    server.free_at = float(f[-1])
    server.requests += m
    _accumulate_busy(server, m, s)
    # wait_ns accumulates one += w per request; a seeded cumsum replays
    # that chain in order, bit-exactly.
    wait = start - t
    acc = np.empty(m + 1)
    acc[0] = server.wait_ns
    acc[1:] = wait
    server.wait_ns = float(np.cumsum(acc)[-1])
    return f - t, wait


def dram_fill_segment(
    machine,
    region,
    chiplet: int,
    my_node: int,
    blocks: np.ndarray,
    keys: np.ndarray,
    keys_list: List[int],
    t0: float,
    req_bytes: int,
    per_issue_ns: float,
    mlp: float,
    lat_local: float,
    lat_remote: float,
) -> Tuple[float, float, int, int]:
    """Service a vectorizable segment of pure DRAM fills.

    Preconditions (established by the caller): ``blocks`` are distinct,
    in range, resident in no slice, and the region is BIND or INTERLEAVE.
    Mutates channel/link/xlink servers, the requester's LRU slice, the
    directory, and the slice's eviction counter — all bit-identically to
    the scalar loop.

    Returns ``(t_end, finish, n_local, n_remote)`` where ``t_end`` is the
    issue clock after the segment and ``finish`` the segment's slowest
    completion.
    """
    n = blocks.shape[0]
    lat = machine.latency
    channels = machine.channels
    cps = channels.channels_per_socket
    s_chan = req_bytes / channels.bytes_per_ns
    s_link = req_bytes / machine.links.bytes_per_ns
    s_xlink = req_bytes / machine.xlinks.bytes_per_ns
    link = machine.links.server(chiplet)

    if region.policy is MemPolicy.BIND:
        home = region.home_node
        local = home == my_node
        base = lat.dram_local if local else lat.dram_remote
        # One scalar step for the whole segment: the issue clock is a
        # seeded cumsum of a constant.
        step = (lat_local if local else lat_remote) / mlp
        if per_issue_ns > 0.0 and step < per_issue_ns:
            step = per_issue_ns
        tf = np.empty(n + 1)
        tf[0] = t0
        tf[1:] = step
        tf = np.cumsum(tf)
        t = tf[:-1]
        t_end = float(tf[-1])

        res = _bind_arith_segment(
            machine, blocks, keys_list, t, base, home, local,
            my_node, cps, s_chan, s_link, s_xlink, link,
        )
        if res is not None:
            finish = res
            machine.caches.fill_run(chiplet, keys_list, region.block_bytes)
            fl = machine._fill_lat
            src = IDX_DRAM_LOCAL if local else IDX_DRAM_REMOTE
            fl[src] = _chain(fl[src], n, lat_local if local else lat_remote)
            return t_end, finish, n if local else 0, 0 if local else n

        homes = None
        remote_mask = None
    else:  # INTERLEAVE
        homes = blocks % region.numa_nodes
        local_mask = homes == my_node
        remote_mask = ~local_mask
        base = np.where(local_mask, lat.dram_local, lat.dram_remote)
        lat_arr = np.where(local_mask, lat_local, lat_remote)

        # Issue clock: steps depend only on pure latency, so every arrival
        # time is known before any queue is consulted.  Seeded cumsum ==
        # the scalar loop's sequential ``t += step``.
        step = lat_arr / mlp
        if per_issue_ns > 0.0:
            step = np.where(step > per_issue_ns, step, per_issue_ns)
        tf = np.empty(n + 1)
        tf[0] = t0
        tf[1:] = step
        tf = np.cumsum(tf)
        t = tf[:-1]
        t_end = float(tf[-1])

    # Per-channel max-plus recurrence, grouped by owning channel.
    d_chan = np.empty(n)
    chan_of = keys % cps
    if homes is None:
        sort_key = chan_of
    else:
        sort_key = homes * cps + chan_of
    order = np.argsort(sort_key, kind="stable")
    sorted_key = sort_key[order]
    group_bounds = [0, *(np.flatnonzero(sorted_key[1:] != sorted_key[:-1]) + 1).tolist(), n]
    for gi in range(len(group_bounds) - 1):
        b0 = group_bounds[gi]
        b1 = group_bounds[gi + 1]
        idx = order[b0:b1]
        sk = int(sorted_key[b0])
        socket = home if homes is None else sk // cps
        server = channels.server(socket, sk % cps)
        d, _ = serve_constant(server, t[idx], s_chan)
        d_chan[idx] = d

    # The requester's fabric link sees every access, in batch order.
    d_link, _ = serve_constant(link, t, s_link)

    ns = (base + d_chan) + d_link
    if homes is None:
        if not local:
            server = machine.xlinks.server(my_node, home)
            d_x, _ = serve_constant(server, t, s_xlink)
            ns = ns + d_x
        n_local = n if local else 0
    else:
        for h in np.unique(homes[remote_mask]) if remote_mask.any() else ():
            idx = np.flatnonzero(homes == h)
            server = machine.xlinks.server(my_node, int(h))
            d_x, _ = serve_constant(server, t[idx], s_xlink)
            ns[idx] = ns[idx] + d_x
        n_local = int(np.count_nonzero(local_mask))

    finish = float((t + ns).max())
    machine.caches.fill_run(chiplet, keys_list, region.block_bytes)
    # Per-source fill-latency histogram: within this segment each source's
    # accumulator receives its own pure-latency constant once per access,
    # so the scalar ``+=`` chain is order-independent across the interleave
    # and replays as one chain per source.
    fl = machine._fill_lat
    if n_local:
        fl[IDX_DRAM_LOCAL] = _chain(fl[IDX_DRAM_LOCAL], n_local, lat_local)
    if n - n_local:
        fl[IDX_DRAM_REMOTE] = _chain(fl[IDX_DRAM_REMOTE], n - n_local, lat_remote)
    return t_end, finish, n_local, n - n_local


def _bind_arith_segment(
    machine, blocks, keys_list, t, base, home, local,
    my_node, cps, s_chan, s_link, s_xlink, link,
):
    """Joint channel servicing for a BIND arithmetic run.

    When the segment's blocks form an arithmetic progression with stride
    ``q``, its arrivals hit the home socket's channels cyclically with
    period ``p = cps / gcd(|q|, cps)``: arrival ``i`` is the ``i // p``-th
    visit to channel ``(c0 + (i % p) * q) % cps``.  That structure
    collapses the per-channel grouping (argsort + fancy indexing) into
    strided views, and lets the two steady-state regimes be serviced for
    *all* channels jointly:

    - **idle** (no channel ever queues): every delay is its pure service
      expression ``(t + s) - t``, one whole-segment comparison proves
      idleness for every channel at once, and ``wait_ns`` accumulators
      are bit-unchanged (each wait is ``+0.0``);
    - **backlogged** (every channel busy at every arrival — the saturated
      stream the paper's bandwidth plots are built on): each channel's
      finish times are a pure ``free += s`` chain independent of the
      arrivals, so one 2-D seeded ``np.cumsum`` (row per channel, axis=1
      accumulates left-to-right like the interpreter) replays every
      chain, and one interleave/compare validates the regime.

    Anything in between falls back to per-channel
    :func:`serve_constant` over strided views.  The requester link (and
    cross-socket link when remote) always goes through
    :func:`serve_constant` — they are single servers, not banks.

    Returns the segment's ``finish`` time, or ``None`` when the blocks
    are not an arithmetic progression (caller uses the grouped path).
    """
    n = blocks.shape[0]
    if n < 2:
        return None
    q = int(blocks[1]) - int(blocks[0])
    if q == 0 or not bool((blocks[2:] - blocks[1:-1] == q).all()):
        return None
    p = cps // gcd(abs(q), cps)
    first = p if p < n else n  # number of distinct channels visited
    channels = machine.channels
    c0 = keys_list[0] % cps
    servers = [channels.server(home, (c0 + r * q) % cps) for r in range(first)]

    # Arrivals per channel: the first ``rem`` residues see ``m`` arrivals,
    # the rest ``m - 1`` (m_r == (n - 1 - r) // p + 1).
    m = (n + p - 1) // p
    rem = n - (m - 1) * p

    d_chan = None
    idle = True
    for r in range(first):
        if servers[r].free_at > t[r]:
            idle = False
            break
    if idle and n > p:
        idle = bool((t[p:] >= t[:-p] + s_chan).all())
    if idle:
        # Delays replay the scalar loop's ``(now + s) - now`` per access;
        # waits are identically +0.0, leaving wait_ns bit-unchanged.
        d_chan = (t + s_chan) - t
        # One seeded 2-D cumsum replays every channel's busy_ns chain.
        busy = np.empty((first, m + 1))
        busy[:, 0] = [srv.busy_ns for srv in servers]
        busy[:, 1:] = s_chan
        busy = np.cumsum(busy, axis=1)
        new_busy = _per_row(busy, first, m, rem)
        last = t.take([r + (((m if r < rem else m - 1)) - 1) * p
                       for r in range(first)]).tolist()
        for r in range(first):
            srv = servers[r]
            srv.requests += m if r < rem else m - 1
            srv.busy_ns = new_busy[r]
            srv.free_at = last[r] + s_chan
    else:
        # Candidate backlogged regime: chain every channel's finishes.
        # free_at and busy_ns advance by the same constant, so one 2-D
        # seeded cumsum replays both chains for every channel.
        mat = np.empty((2 * first, m + 1))
        mat[:first, 0] = [srv.free_at for srv in servers]
        mat[first:, 0] = [srv.busy_ns for srv in servers]
        mat[:, 1:] = s_chan
        mat = np.cumsum(mat, axis=1)
        chain = mat[:first]
        # chain[r, k] = channel r's free time before its k-th arrival;
        # interleave rows back into arrival order (i -> row i % p).
        free_before = chain[:, :-1].T.ravel()[:n]
        if bool((free_before >= t).all()):
            d_chan = chain[:, 1:].T.ravel()[:n] - t
            waits = free_before - t
            acc = np.empty((first, m + 1))
            acc[:, 0] = [srv.wait_ns for srv in servers]
            padded = np.zeros(first * m)
            padded[:n] = waits
            acc[:, 1:] = padded.reshape(m, first).T
            acc = np.cumsum(acc, axis=1)
            new_free = _per_row(chain, first, m, rem)
            new_busy = _per_row(mat[first:], first, m, rem)
            new_wait = _per_row(acc, first, m, rem)
            for r in range(first):
                srv = servers[r]
                srv.requests += m if r < rem else m - 1
                srv.free_at = new_free[r]
                srv.busy_ns = new_busy[r]
                srv.wait_ns = new_wait[r]
    if d_chan is None:
        # Mixed regime (e.g. the segment where a stream first saturates):
        # per-channel recurrence over strided views, no argsort needed.
        d_chan = np.empty(n)
        for r in range(first):
            sl = slice(r, None, p)
            d, _ = serve_constant(servers[r], t[sl], s_chan)
            d_chan[sl] = d

    d_link, _ = serve_constant(link, t, s_link)
    ns = (base + d_chan) + d_link
    if not local:
        xsrv = machine.xlinks.server(my_node, home)
        d_x, _ = serve_constant(xsrv, t, s_xlink)
        ns = ns + d_x
    return float((t + ns).max())


def gather_segment(
    machine,
    region,
    chiplet: int,
    my_node: int,
    arr: np.ndarray,
    keys: np.ndarray,
    t0: float,
    req_bytes: int,
    write: bool,
    per_issue_ns: float,
    mlp: float,
    lats: Tuple[float, float, float, float],
    counts: List[int],
    state: list,
) -> Optional[bool]:
    """Service a whole unsorted, duplicate-laden batch in array ops.

    The irregular-access kernel: where the segment kernels above need a
    long run of one service class, this one takes the batch exactly as
    the workload issued it — random order, repeats and all — and
    services every class at once:

    1. **argsort** the block vector (stable) and classify each *unique*
       block in sorted order from the directory's bitmask column: local
       hit, hit-with-sharers (write), DRAM miss, or peer fill with the
       min-id holder extracted as a lowest-set-bit;
    2. **replay duplicates as hits**: within one batch the first touch of
       a block services as its classified fill/hit, every repeat is a
       local L3 hit (after a write's first touch the requester is the
       block's sole holder, so repeat writes invalidate nothing);
    3. service the per-access arrival times — one seeded cumsum over the
       per-access issue steps — through the shared servers, with each
       bank's arrivals **merged across classes in batch order** (the
       requester link sees misses and peer fills interleaved exactly as
       the scalar loop would present them);
    4. **inverse-permute** nothing at the end: arrival times are built in
       batch order directly (the inverse permutation of the argsort maps
       each access to its unique's classification), so per-access
       completions land in place and the slowest one is the batch finish.

    Duplicate-replay clock math: a repeat contributes a plain-hit issue
    step ``max(l3_hit / mlp, per_issue_ns)`` and a completion at
    ``t + l3_hit``; its LRU effect is a recency refresh, so the slice's
    final tail is the batch's unique blocks in *last*-occurrence order.

    Preconditions (checked here, not by the caller): BIND or INTERLEAVE
    region, uniformly-sized resident entries matching the region's block
    size, and a classification-stability certificate obtained by
    *simulating the eviction interleaving* at the unique-block level —
    if any block classified as a hit would be evicted by earlier fills
    before its first touch, the kernel declines.  Returns ``None`` (with
    **no state mutated**) when it declines — the caller falls back to
    the segment/scalar path — else ``True`` when duplicates were
    replayed, ``False`` for a duplicate-free batch.
    """
    caches = machine.caches
    cache = caches.caches[chiplet]
    nb = region.block_bytes
    cap = cache.capacity_bytes
    if nb > cap:
        return None
    slot_map = cache._slot
    len0 = len(slot_map)
    if len0 and cache._uniform_nb != nb:
        return None
    if cache.used_bytes != len0 * nb:
        return None
    n = arr.shape[0]

    # -- 1. argsort -> unique blocks + inverse permutation ------------------
    perm = np.argsort(arr, kind="stable")
    sorted_arr = arr[perm]
    newgrp = np.empty(n, dtype=bool)
    newgrp[0] = True
    np.not_equal(sorted_arr[1:], sorted_arr[:-1], out=newgrp[1:])
    starts = np.flatnonzero(newgrp)
    nu = starts.shape[0]
    has_dups = nu < n
    # Stable sort keeps equal blocks in batch order, so a group's first
    # and last members are its first/last occurrence positions.
    first_pos = perm[starts]
    ends = np.empty(nu, dtype=np.int64)
    ends[:-1] = starts[1:]
    ends[-1] = n
    last_pos = perm[ends - 1]
    ublocks = sorted_arr[starts]
    ukeys = keys[perm[starts]]
    ukeys_list = ukeys.tolist()

    # -- classify uniques from the directory bitmask column -----------------
    dir_slot = caches._dir_slot
    dslots = np.fromiter(map(dir_slot.get, ukeys_list, repeat(-1)),
                         dtype=np.int64, count=nu)
    present = dslots >= 0
    masks = np.zeros(nu, dtype=np.int64)
    masks[present] = caches._dir_mask[dslots[present]]
    bit = 1 << chiplet
    nbit = np.int64(bit)
    res_u = (masks & nbit) != 0  # resident in requester's slice (invariant)
    others = masks & ~nbit

    # -- eviction interleaving: victims + hit reclassification --------------
    # Fills evict from the LRU front; a block classified as a hit whose
    # first touch comes *after* its eviction would be re-missed by the
    # scalar loop.  Replay the exact interleaving of touches and
    # evictions at the unique level (touches in first-occurrence order;
    # each overflowing fill pops the oldest surviving untouched original)
    # and *reclassify* such blocks as the fill the scalar loop performs —
    # the extra fill cascades naturally into further evictions.  Victims
    # come out of the simulation in scalar eviction order; reclassified
    # keys appear both as victims (their old residency) and as fills.
    maxlen = cap // nb
    n_res0 = int(np.count_nonzero(res_u))
    victims: List[int] = []
    if len0 + (nu - n_res0) > maxlen:
        if n_res0 == 0:
            # No resident batch block can be disturbed: victims are
            # exactly the E oldest entries.
            E = len0 + nu - maxlen
            if E > len0:
                return None  # fills would evict the batch's own blocks
            victims = list(islice(slot_map, E))
        else:
            # Only resident uniques interact with the eviction frontier:
            # every other unique just advances it by one (once ``room``
            # runs out).  Walk the residents alone — in first-touch
            # order, tracking how many fills (including reclassified
            # re-misses) precede each touch — instead of simulating all
            # ``nu`` touches.  A resident whose depth the frontier has
            # already passed was evicted before its first touch: the
            # scalar loop re-misses it, so reclassify it as a fill.
            # Touch order = ascending first_pos (unique values, so the
            # unstable default sort is deterministic); a resident's
            # fills-before count is its touch rank minus how many
            # residents were touched before it.  ``n_res0`` is batch-
            # bounded and small, so per-resident C-level ``list.index``
            # scans beat building sorted numpy key arrays (every
            # resident key is in the slice by the directory invariant).
            kl = list(slot_map)
            ord1 = np.argsort(first_pos)
            rpos = res_u[ord1].nonzero()[0]
            r_idx_o = ord1[rpos]
            d_seq = [kl.index(k) for k in ukeys[r_idx_o].tolist()]
            fb_seq = (rpos - np.arange(n_res0)).tolist()
            room = maxlen - len0
            touched: List[int] = []  # depths of successfully touched
            tsorted: List[int] = []  # the same depths, kept sorted
            reclass: List[int] = []
            extra = 0  # reclassified re-misses so far (each is a fill)
            for i in range(n_res0):
                e = fb_seq[i] + extra - room
                if e > 0:
                    # Frontier position after ``e`` evictions: the e-th
                    # untouched depth (touched entries are skipped).
                    p = e
                    while True:
                        c = bisect_left(tsorted, p)
                        if p == e + c:
                            break
                        p = e + c
                    if p > len0:
                        return None  # fills would evict batch blocks
                    if d_seq[i] < p:
                        reclass.append(int(r_idx_o[i]))
                        extra += 1
                        continue
                touched.append(d_seq[i])
                insort(tsorted, d_seq[i])
            E = len0 + (nu - n_res0 + extra) - maxlen
            if E > len0 - len(touched):
                return None  # fills would evict the batch's own blocks
            # Victims: the first E *untouched* insertion-order keys.
            # The scan cutoff is the same fixpoint as the frontier (how
            # deep E untouched entries reach past the touched ones);
            # deleting the few touched positions back-to-front leaves
            # exactly the E victims in order.
            c = E
            while True:
                k2 = E + bisect_left(tsorted, c)
                if k2 == c:
                    break
                c = k2
            victims = kl[:c]
            for d in reversed(tsorted):
                if d < c:
                    del victims[d]
            if reclass:
                # The scalar loop re-misses these: directory-wise their
                # residency bit falls with the victims and the refill
                # restores it, so the pre-batch ``others`` masks still
                # classify the replacement fill (DRAM vs peer).
                res_u[reclass] = False

    peer_u = ~res_u & (others != 0)
    miss_u = ~res_u & ~peer_u

    lat = machine.latency
    l3 = lat.l3_hit
    if write:
        # Miss rows have ``others == 0`` (no directory entry or no
        # sharers), so the unmasked popcount already charges them zero.
        inval_u = np.bitwise_count(others).astype(np.int64)
        iv_ns = inval_u * lat.invalidate
    n_res = int(np.count_nonzero(res_u))
    nfills = nu - n_res

    # -- per-access latency / issue-step arrays via one class-code LUT ------
    # Five service classes: 0 resident hit, 1/2 local/remote DRAM fill,
    # 3/4 same/cross-socket peer fill.  One int code per unique, then
    # ``lat/base/src`` become three LUT gathers instead of per-class
    # masked stores.
    code = np.zeros(nu, dtype=np.int64)
    mi = np.flatnonzero(miss_u)
    homes_mi = None
    if mi.size:
        if region.policy is MemPolicy.BIND:
            code[mi] = 1 if region.home_node == my_node else 2
        else:  # INTERLEAVE
            homes_mi = ublocks[mi] % region.numa_nodes
            code[mi] = np.where(homes_mi == my_node, 1, 2)
    pi = np.flatnonzero(peer_u)
    if pi.size:
        socket_of = machine.topo.socket_of_chiplet_arr
        my_socket = int(socket_of[chiplet])
        o = others[pi]
        same_cand = o & np.int64(caches._socket_mask[my_socket])
        cand = np.where(same_cand != 0, same_cand, o)
        low = cand & -cand
        # Min-id holder == lowest set bit; log2 of an exact power of two
        # is exact in float64.
        holders_p = np.log2(low.astype(np.float64)).astype(np.int64)
        same_p = socket_of[holders_p] == my_socket
        code[pi] = np.where(same_p, 3, 4)
    lut_lat = np.array((l3, lats[0], lats[1], lats[2], lats[3]))
    lut_base = np.array((l3, lat.dram_local, lat.dram_remote,
                         lat.fill_same_socket, lat.fill_cross_socket))
    lat_u = lut_lat[code]
    base_u = lut_base[code]
    if write:
        # Resident hits and peer fills add their invalidation term here;
        # fills have no sharers, so their ``+ 0.0`` is a bitwise no-op
        # on the (positive) pure latencies.  Resident write hits charge
        # the invalidation in ``base`` too (it is their service, not
        # queueing); peer fills keep ``base`` at the pure fill path.
        lat_u += iv_ns
        ri = np.flatnonzero(res_u)
        base_u[ri] = lat_u[ri]
    src_u = _LUT_SRC[code]

    # Duplicate replay: every repeat is a plain local hit (the first
    # touch made — or kept — the requester a holder; after a write's
    # first touch it is the *sole* holder, so repeats invalidate 0).
    # Pre-filling with the hit values and scattering the uniques onto
    # their first occurrences covers both the dup and dup-free cases.
    lat_a = np.full(n, l3)
    lat_a[first_pos] = lat_u
    base_a = np.full(n, l3)
    base_a[first_pos] = base_u
    src_a = np.full(n, IDX_LOCAL_CHIPLET, dtype=np.int64)
    src_a[first_pos] = src_u

    steps = lat_a / mlp  # overlap pure latency, not queue waits
    np.maximum(steps, per_issue_ns, out=steps)
    tf = np.empty(n + 1)
    tf[0] = t0
    tf[1:] = steps
    tf = np.cumsum(tf)
    t = tf[:-1]
    t_end = float(tf[-1])

    # -- servers: arrivals merged per bank in batch order -------------------
    # (Mutation starts here; every decline happens above.)
    s_chan = req_bytes / machine.channels.bytes_per_ns
    s_link = req_bytes / machine.links.bytes_per_ns
    s_xlink = req_bytes / machine.xlinks.bytes_per_ns
    dz = np.zeros((3, n))  # rows: bank (channel/holder link), requester
    d_srv, d_req, d_x = dz  # fabric link, cross-socket link delays

    nonhit = np.zeros(n, dtype=bool)
    nonhit[first_pos[miss_u]] = True
    nonhit[first_pos[peer_u]] = True
    svc_pos = np.flatnonzero(nonhit)

    # One serve_groups call covers every server class — DRAM channels,
    # peer fabric links, and cross-socket links — as rows of a single
    # matrix with per-row service times.  Every server gets a global id
    # (channels, then fabric links, then socket pairs); ONE argsort on a
    # (server id, position) composite key groups arrivals by server
    # while keeping batch order inside each group.  Keys are unique —
    # the same position may wait on a channel AND a cross-socket link,
    # but never twice on one server — so the unstable default sort is
    # deterministic.  All these servers are pairwise distinct (the
    # requester's link is served separately below and can never collide
    # with a holder-link row because ``others`` masks out the
    # requester's own directory bit); distinct rows evolve
    # independently, so row order is free.
    n_sockets = machine.xlinks.sockets
    cps = machine.channels.channels_per_socket
    sid_C = len(machine.channels._servers) * cps
    sid_CL = sid_C + machine.topo.total_chiplets
    g_pos: List[np.ndarray] = []
    g_sid: List[np.ndarray] = []
    if mi.size:
        miss_pos = first_pos[miss_u]
        mk = keys[miss_pos]
        if homes_mi is None:
            homes = np.full(mi.size, region.home_node, dtype=np.int64)
        else:
            homes = homes_mi
        g_pos.append(miss_pos)
        g_sid.append(homes * cps + mk % cps)
        remote = homes != my_node
        if remote.any():
            rh = homes[remote]
            lo = np.minimum(rh, my_node)
            hi = np.maximum(rh, my_node)
            g_pos.append(miss_pos[remote])
            g_sid.append(sid_CL + lo * n_sockets + hi)
    if pi.size:
        peer_pos = first_pos[peer_u]
        g_pos.append(peer_pos)
        g_sid.append(sid_C + holders_p)
        psock = socket_of[holders_p]
        cross = psock != my_socket
        if cross.any():
            cs = psock[cross]
            lo = np.minimum(cs, my_socket)
            hi = np.maximum(cs, my_socket)
            g_pos.append(peer_pos[cross])
            g_sid.append(sid_CL + lo * n_sockets + hi)
    if svc_pos.size:
        # The requester's own link sees every non-hit access once.  It is
        # pairwise-distinct from every matrix row (``others`` masks out
        # the requester's bit), but folding it in as a row would inflate
        # the matrix width to the whole non-hit count — it is served
        # separately through the single-server fast paths instead.
        d, _ = serve_constant(machine.links.server(chiplet), t[svc_pos],
                              s_link)
        d_req[svc_pos] = d
    if g_pos:
        pos_cat = g_pos[0] if len(g_pos) == 1 else np.concatenate(g_pos)
        sid_cat = g_sid[0] if len(g_sid) == 1 else np.concatenate(g_sid)
        order = np.argsort(sid_cat * np.int64(n) + pos_cat)
        pos_s = pos_cat[order]
        sid_s = sid_cat[order]
        cuts = (np.flatnonzero(sid_s[1:] != sid_s[:-1]) + 1).tolist()
        bounds = [0, *cuts, int(pos_s.shape[0])]
        hs = [int(sid_s[b]) for b in bounds[:-1]]
        chan_sv = machine.channels.server
        link_sv = machine.links.server
        x_sv = machine.xlinks.server
        g_servers = [
            chan_sv(sid // cps, sid % cps) if sid < sid_C
            else link_sv(sid - sid_C) if sid < sid_CL
            else x_sv((sid - sid_CL) // n_sockets,
                      (sid - sid_CL) % n_sockets)
            for sid in hs
        ]
        g_s = np.asarray([s_chan if sid < sid_C
                          else s_link if sid < sid_CL else s_xlink
                          for sid in hs])
        d_all = serve_groups(g_servers, t[pos_s], np.asarray(bounds), g_s)
        isx = sid_s >= sid_CL
        nonx = ~isx
        d_srv[pos_s[nonx]] = d_all[nonx]
        d_x[pos_s[isx]] = d_all[isx]

    # Compose per-access totals in the scalar loop's addition order; every
    # class's unused delay terms are +0.0, which leaves positive IEEE
    # doubles bit-unchanged.  Peer writes add their invalidation term
    # after the cross-link delay, exactly like the scalar loop.
    ns_a = base_a + d_srv
    ns_a += d_req
    ns_a += d_x
    if write and pi.size:
        inv_a = np.zeros(n)
        inv_a[first_pos[pi]] = iv_ns[pi]
        ns_a += inv_a
    ns_a += t
    fin = float(ns_a.max())
    state[0] = t_end
    if fin > state[1]:
        state[1] = fin
    state[3] += n - nfills
    state[4] += nfills
    if write:
        state[2] += int(inval_u.sum())

    # Per-source fill-latency chains and counters, in batch order: one
    # stable sort groups accesses by source while preserving batch order
    # inside each group (the order the scalar loop accumulates in); the
    # chains of different sources are independent accumulators, so the
    # group iteration order is free.
    fl = machine._fill_lat
    sorder = np.argsort(src_a, kind="stable")
    ssrc = src_a[sorder]
    slat = lat_a[sorder]
    sb = [0, *(np.flatnonzero(ssrc[1:] != ssrc[:-1]) + 1).tolist(), n]
    for gi in range(len(sb) - 1):
        b0, b1 = sb[gi], sb[gi + 1]
        s_idx = int(ssrc[b0])
        k = b1 - b0
        acc = np.empty(k + 1)
        acc[0] = fl[s_idx]
        acc[1:] = slat[b0:b1]
        fl[s_idx] = float(np.cumsum(acc)[-1])
        counts[s_idx] += k

    # -- cache + directory writeback ----------------------------------------
    caches_l = caches.caches
    mask_col = caches._dir_mask
    recycled = None  # victims' directory rows reusable for the miss fills
    nv = len(victims)
    vict_slots = None
    if victims:
        vict_slots = np.fromiter(map(slot_map.pop, victims),
                                 dtype=np.int64, count=nv)
        cache.used_bytes -= nv * nb
        cache.evictions += nv
        # Pop every victim's directory row in one C pass.  In the steady
        # state no peer holds any victim, so each row already carries this
        # chiplet's singleton mask — exactly what the miss fills below
        # mint — and is recycled wholesale.  Shared victims get their row
        # back with this chiplet's bit cleared.
        vslots = np.fromiter(map(dir_slot.pop, victims), dtype=np.int64,
                             count=nv)
        if not np.bitwise_and(mask_col[vslots], ~nbit).any():
            recycled = vslots
        else:
            rec: List[int] = []
            for v, sl, m in zip(victims, vslots.tolist(),
                                mask_col[vslots].tolist()):
                m &= ~bit
                if m:
                    mask_col[sl] = m
                    dir_slot[v] = sl
                else:
                    rec.append(sl)  # mask is already this chiplet's bit
            recycled = np.asarray(rec, dtype=np.int64)
    if write:
        # Invalidation drops on peer slices (hit-with-sharers and peer
        # fills); the survivors' masks collapse to this chiplet below.
        for j in np.flatnonzero(inval_u > 0).tolist():
            key = ukeys_list[j]
            m = int(others[j])
            while m:
                lowb = m & -m
                caches_l[lowb.bit_length() - 1].drop(key)
                m ^= lowb
    # Directory slot allocation may grow the mask column: take first,
    # then fetch the (possibly new) column for every mask write.
    n_mi = int(mi.size)
    if n_mi:
        if recycled is not None:
            r = recycled.size
            if r >= n_mi:
                if r > n_mi:
                    tail_r = recycled[n_mi:]
                    mask_col[tail_r] = 0
                    caches._dir_free.extend(tail_r.tolist())
                mi_slots = recycled[:n_mi].tolist()
            else:
                extra = caches._dir_take_slots(n_mi - r)
                mask_col = caches._dir_mask
                mask_col[extra] = nbit
                mi_slots = recycled.tolist() + extra
        else:
            mi_slots = caches._dir_take_slots(n_mi)
            mask_col = caches._dir_mask
            mask_col[mi_slots] = nbit
        dir_slot.update(zip(ukeys[mi].tolist(), mi_slots))
    elif recycled is not None and recycled.size:
        mask_col[recycled] = 0
        caches._dir_free.extend(recycled.tolist())
    if pi.size:
        if write:
            mask_col[dslots[pi]] = nbit
        else:
            mask_col[dslots[pi]] |= nbit
    if write and n_res:
        hs = res_u & (inval_u > 0)
        if hs.any():
            mask_col[dslots[hs]] = nbit

    # LRU writeback: untouched originals keep their order; the batch's
    # unique blocks re-enter at the tail in last-occurrence order (hits
    # carry their slot along, fills take fresh slots sized nb).
    cache_slot_u = np.empty(nu, dtype=np.int64)
    if n_res:
        for j in np.flatnonzero(res_u).tolist():
            cache_slot_u[j] = slot_map.pop(ukeys_list[j])
    if nfills:
        # Fills reuse the victims' cache slots directly (slot identity
        # is unobservable; victim rows already read ``nb`` because the
        # slice was uniformly ``nb``-sized on entry) and only overflow
        # into the free stack.
        if nfills <= nv:
            cache_slot_u[~res_u] = vict_slots[:nfills]
            if nfills < nv:
                cache._free.extend(vict_slots[nfills:].tolist())
        else:
            extra = cache._take_slots(nfills - nv)
            cache._sizes[extra] = nb
            if nv:
                fill_slots = np.empty(nfills, dtype=np.int64)
                fill_slots[:nv] = vict_slots
                fill_slots[nv:] = extra
                cache_slot_u[~res_u] = fill_slots
            else:
                cache_slot_u[~res_u] = extra
        cache.used_bytes += nfills * nb
    elif vict_slots is not None:
        cache._free.extend(vict_slots.tolist())
    cache._uniform_nb = nb
    tail = np.argsort(last_pos)  # unique values: unstable is deterministic
    slot_map.update(zip(ukeys[tail].tolist(), cache_slot_u[tail].tolist()))
    return has_dups


def local_hit_segment(
    machine,
    chiplet: int,
    keys_list: List[int],
    t0: float,
    per_issue_ns: float,
    mlp: float,
    touch_noop: bool = False,
) -> Tuple[float, float]:
    """Service a run of local L3 hits: one bulk LRU touch + a clock replay.

    ``touch_noop=True`` asserts the caller already proved the slice's
    recency tail equals ``keys_list`` (the hot re-read steady state), so
    the bulk touch would reorder nothing and only the hit counter moves.

    Preconditions (established by the caller's classification): every key
    is resident in ``chiplet``'s slice, and for write batches this chiplet
    is each block's *only* holder — so the scalar path's
    ``invalidate_others`` is a no-op and reads and writes service
    identically at the bare ``l3_hit`` latency.

    Hits touch no servers and carry no queue waits, so the whole run
    collapses to scalar arithmetic: the issue clock advances by one
    constant step (replayed bit-exactly with :func:`_chain`), the slowest
    completion is the last arrival plus the hit latency, and the LRU
    recency/hit-counter effects are one :meth:`CacheSystem.touch_run`.

    Returns ``(t_end, finish)``.
    """
    n = len(keys_list)
    ns = machine.latency.l3_hit
    step = ns / mlp  # hits have no queue wait: latency == ns
    if per_issue_ns > step:
        step = per_issue_ns
    t_last = _chain(t0, n - 1, step)
    if touch_noop:
        machine.caches.caches[chiplet].hits += n
    else:
        machine.caches.touch_run(chiplet, keys_list)
    fl = machine._fill_lat
    fl[IDX_LOCAL_CHIPLET] = _chain(fl[IDX_LOCAL_CHIPLET], n, ns)
    return t_last + step, t_last + ns


def peer_fill_segment(
    machine,
    region,
    chiplet: int,
    holder: int,
    keys_list: List[int],
    t0: float,
    req_bytes: int,
    per_issue_ns: float,
    mlp: float,
    lat_same: float,
    lat_cross: float,
) -> Tuple[float, float, bool]:
    """Service a run of read fills all served by one peer chiplet's L3.

    Preconditions (established by the caller's classification): the run is
    duplicate-free, no key is resident in the requester's slice, every key
    is held by ``holder``, and ``holder`` is the deterministic min-id
    choice (same socket preferred) for every key — i.e. the exact peer the
    scalar loop would pick per access.

    The issue clock is a seeded cumsum of one constant step (pure fill
    latency is uniform across the run), then each fabric link replays its
    max-plus recurrence over the run's arrivals with
    :func:`serve_constant` — the holder's link, the requester's link, and
    the cross-socket link when the peer is on the other socket (the scalar
    path's same-socket cross-link call adds ``+0.0`` without touching any
    server, so skipping it is bit-identical).  The requesting side's bulk
    insert/evict and directory transfer is one shared-mode
    :meth:`CacheSystem.fill_run`.

    Returns ``(t_end, finish, same_socket)``.
    """
    n = len(keys_list)
    socket_of = machine.topo.socket_of_chiplet_table
    my_socket = socket_of[chiplet]
    holder_socket = socket_of[holder]
    same = holder_socket == my_socket
    lat = machine.latency
    base = lat.fill_same_socket if same else lat.fill_cross_socket
    latency = lat_same if same else lat_cross
    step = latency / mlp  # overlap pure latency, not queue waits
    if per_issue_ns > step:
        step = per_issue_ns
    tf = np.empty(n + 1)
    tf[0] = t0
    tf[1:] = step
    tf = np.cumsum(tf)
    t = tf[:-1]
    t_end = float(tf[-1])

    links = machine.links
    s_link = req_bytes / links.bytes_per_ns
    d_holder, _ = serve_constant(links.server(holder), t, s_link)
    d_req, _ = serve_constant(links.server(chiplet), t, s_link)
    ns = (base + d_holder) + d_req
    if not same:
        s_xlink = req_bytes / machine.xlinks.bytes_per_ns
        xsrv = machine.xlinks.server(my_socket, holder_socket)
        d_x, _ = serve_constant(xsrv, t, s_xlink)
        ns = ns + d_x

    finish = float((t + ns).max())
    machine.caches.fill_run(chiplet, keys_list, region.block_bytes, shared=True)
    src = IDX_REMOTE_CHIPLET if same else IDX_REMOTE_NUMA_CHIPLET
    fl = machine._fill_lat
    fl[src] = _chain(fl[src], n, latency)
    return t_end, finish, same
