"""Partitioned L3 cache model.

Each chiplet owns a private L3 slice, modelled as a byte-budgeted LRU over
*blocks*.  A block is a region-specific modelling granule (a group of
consecutive cache lines — e.g. 512 B for sparse CSR adjacency data, 4 KiB
for dense arrays); capacity accounting is in bytes so regions with
different granularities coexist honestly in one slice.

A global directory records which chiplets currently hold a copy of each
block so that fills can be served from a peer chiplet's L3 (at
inter-chiplet latency) instead of DRAM, and so that writes can invalidate
remote sharers — the two effects that give chiplet-aware placement its
performance edge in the paper.
"""

from collections import deque
from itertools import islice, repeat
from typing import Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.hw.topology import Topology


class ChipletCache:
    """One chiplet's L3 slice: a byte-budgeted LRU of block keys."""

    __slots__ = ("chiplet", "capacity_bytes", "used_bytes", "_lru", "hits",
                 "misses", "evictions", "_uniform_nb")

    def __init__(self, chiplet: int, capacity_bytes: int):
        if capacity_bytes < 64:
            raise ValueError("cache capacity must hold at least one line")
        self.chiplet = chiplet
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0
        # block -> resident bytes; insertion-ordered (least recent first).
        # A plain dict gives the same LRU order as an OrderedDict —
        # recency refresh is a C-level pop + reinsert — but with much
        # cheaper bulk update()/clear(), which the batch kernels lean on.
        self._lru: Dict[int, int] = {}
        # Resident-entry size summary: 0 = empty slice, an int = every
        # entry is that many bytes, None = mixed sizes.  Lets fill_run
        # compute eviction prefixes with integer arithmetic instead of a
        # cumulative sum over the whole slice.
        self._uniform_nb: Optional[int] = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, block: int) -> bool:
        return block in self._lru

    def touch(self, block: int) -> bool:
        """Look up ``block``; on hit, refresh its LRU position."""
        nbytes = self._lru.pop(block, None)
        if nbytes is not None:
            self._lru[block] = nbytes
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, block: int, nbytes: int) -> List[int]:
        """Insert ``block`` (``nbytes`` resident); return evicted block keys."""
        if nbytes <= 0:
            raise ValueError(f"cannot insert block with nbytes={nbytes}; must be positive")
        resident = self._lru.pop(block, None)
        if resident is not None:
            self._lru[block] = resident  # refresh recency
            return []
        evicted: List[int] = []
        nbytes = min(nbytes, self.capacity_bytes)
        lru = self._lru
        while self.used_bytes + nbytes > self.capacity_bytes and lru:
            victim = next(iter(lru))
            vbytes = lru.pop(victim)
            self.used_bytes -= vbytes
            self.evictions += 1
            evicted.append(victim)
        if not lru:
            self._uniform_nb = nbytes
        elif self._uniform_nb != nbytes:
            self._uniform_nb = None
        lru[block] = nbytes
        self.used_bytes += nbytes
        return evicted

    def drop(self, block: int) -> bool:
        """Remove ``block`` without counting it as an eviction (invalidate)."""
        nbytes = self._lru.pop(block, None)
        if nbytes is None:
            return False
        self.used_bytes -= nbytes
        if not self._lru:
            self._uniform_nb = 0
        return True

    def blocks(self) -> Iterable[int]:
        return self._lru.keys()

    def clear(self) -> None:
        self._lru.clear()
        self.used_bytes = 0
        self._uniform_nb = 0


class CacheSystem:
    """All chiplet L3 slices plus the cross-chiplet sharing directory.

    The directory maps ``block -> set of chiplet ids`` currently caching the
    block.  It is the model-level stand-in for the hardware coherence
    directory on the IO die.
    """

    def __init__(self, topo: Topology, capacity_bytes_per_chiplet: int):
        self.topo = topo
        self.caches: List[ChipletCache] = [
            ChipletCache(ch, capacity_bytes_per_chiplet) for ch in range(topo.total_chiplets)
        ]
        self.directory: Dict[int, Set[int]] = {}
        self._socket_of = topo.socket_of_chiplet_table
        # Telemetry event bus (repro.obs) or None.  The bulk entry points
        # below emit one event per *run* (the vector kernels' granularity),
        # guarded by a single None check — nothing fires per block.
        self.obs = None

    @property
    def capacity_bytes_per_chiplet(self) -> int:
        return self.caches[0].capacity_bytes

    def lookup_local(self, chiplet: int, block: int) -> bool:
        """Local-slice lookup with LRU refresh."""
        return self.caches[chiplet].touch(block)

    def find_holder(self, chiplet: int, block: int) -> Optional[int]:
        """Find a peer chiplet holding ``block``, preferring the same socket.

        Within each distance class the *minimum-id* holder wins, so the
        chosen fill source is a pure function of the directory contents —
        not of set iteration order, which varies with the history of
        insertions and removals.

        Returns ``None`` when no L3 slice holds the block (DRAM fill needed).
        """
        holders = self.directory.get(block)
        if not holders:
            return None
        socket_of = self._socket_of
        my_socket = socket_of[chiplet]
        best_same: Optional[int] = None
        best_remote: Optional[int] = None
        for h in holders:
            if h == chiplet:
                continue
            if socket_of[h] == my_socket:
                if best_same is None or h < best_same:
                    best_same = h
            elif best_remote is None or h < best_remote:
                best_remote = h
        return best_same if best_same is not None else best_remote

    def fill(self, chiplet: int, block: int, nbytes: int) -> List[int]:
        """Install ``block`` into ``chiplet``'s slice; return evicted keys."""
        evicted = self.caches[chiplet].insert(block, nbytes)
        for victim in evicted:
            self._dir_remove(victim, chiplet)
        self.directory.setdefault(block, set()).add(chiplet)
        return evicted

    def touch_run(self, chiplet: int, blocks: Sequence[int]) -> None:
        """Bulk LRU touch: refresh the recency of ``blocks`` in batch order.

        Exact equivalent of calling ``caches[chiplet].touch(b)`` once per
        block in order — including the hit counter — under the local-hit
        kernel's precondition that every block is resident.  A touched
        block moves to the back of the LRU ordered by its *last*
        occurrence, so the scalar pop/reinsert loop collapses into one
        bulk delete plus one bulk re-insert.  If any block turns out
        non-resident the whole run falls back to the scalar touch loop
        (counting its misses exactly), so callers may probe with it.
        """
        obs = self.obs
        if obs is not None:
            obs.emit("cache.touch_run", {"chiplet": chiplet, "n": len(blocks)})
        cache = self.caches[chiplet]
        lru = cache._lru
        n = len(blocks)
        # Steady-state fast path: when the slice's most-recent entries are
        # exactly ``blocks`` in run order (the cache-resident re-read loop,
        # where every pass replays the same run), re-touching them is an
        # order no-op — each block already sits where its touch would move
        # it.  One C-level list compare proves it, and only the hit counter
        # needs updating.  A key sequence equal to distinct dict keys is
        # itself distinct, so duplicates can never take this path.
        if len(lru) >= n and list(lru)[len(lru) - n:] == blocks:
            cache.hits += n
            return
        try:
            sizes = [lru[b] for b in blocks]
        except KeyError:
            touch = cache.touch
            for b in blocks:
                touch(b)
            return
        # Last-occurrence wins: the dict dedupe over the reversed run keeps
        # each block's final occurrence, and reversing the items again
        # restores ascending last-occurrence order for the re-insert.
        uniq = dict(zip(reversed(blocks), reversed(sizes)))
        deque(map(lru.__delitem__, uniq), maxlen=0)
        lru.update(reversed(uniq.items()))
        cache.hits += len(blocks)

    def fill_run(self, chiplet: int, blocks: Sequence[int], nbytes: int,
                 shared: bool = False) -> int:
        """Bulk-install ``blocks`` into ``chiplet``'s slice; return evictions.

        Exact equivalent of calling :meth:`fill` once per block *in order*,
        under the preconditions the vectorized batch kernels guarantee:
        the blocks are distinct, uniformly ``nbytes`` large, and absent
        from ``chiplet``'s slice (so no LRU refreshes).  With
        ``shared=False`` (the DRAM-fill kernel) the blocks are resident in
        **no** slice, so inserts create fresh singleton directory entries.
        With ``shared=True`` (the peer-fill kernel) each block is already
        held by at least one other chiplet: inserts *join* the existing
        holder set instead, and no holder sets are recycled.

        Because every insert is the same size and evictions pop from the
        LRU front, the victim set is a *prefix* of the current LRU order —
        possibly followed by a prefix of ``blocks`` itself when the run
        overflows the slice capacity.  When the slice's resident entries
        are uniformly sized (the streaming steady state, tracked by
        ``_uniform_nb``) the prefix is pure integer arithmetic; mixed
        slices pay one integer cumulative sum.
        """
        obs = self.obs
        if obs is not None:
            obs.emit("cache.fill_run", {
                "chiplet": chiplet, "n": len(blocks), "shared": shared,
            })
        cache = self.caches[chiplet]
        cap = cache.capacity_bytes
        if nbytes <= 0:
            raise ValueError(f"cannot insert block with nbytes={nbytes}; must be positive")
        nb = min(nbytes, cap)
        k = len(blocks)
        lru = cache._lru
        len0 = len(lru)
        used0 = cache.used_bytes
        overflow = used0 + k * nb - cap
        n_evicted = 0
        first_kept = 0  # blocks[:first_kept] are self-evicted by later inserts
        if overflow > 0:
            uni = cache._uniform_nb
            if uni is not None and len0 * (uni or 0) == used0:
                # Every resident entry is `uni` bytes (used0 == len0*uni
                # re-checks the bookkeeping): prefix math is integer-only.
                if len0 and overflow <= used0:
                    n_evicted = -(-overflow // uni)
                    evicted_bytes = n_evicted * uni
                else:
                    n_evicted = len0
                    evicted_bytes = used0
                    first_kept = -(-(overflow - evicted_bytes) // nb)
            else:
                sizes = np.fromiter(lru.values(), dtype=np.int64, count=len0)
                cum = np.cumsum(sizes)
                if sizes.size and overflow <= int(cum[-1]):
                    # A prefix of the existing entries covers the overflow.
                    n_evicted = int(np.searchsorted(cum, overflow, side="left")) + 1
                    evicted_bytes = int(cum[n_evicted - 1])
                else:
                    # Everything resident goes, plus a prefix of this run.
                    n_evicted = sizes.size
                    evicted_bytes = int(cum[-1]) if sizes.size else 0
                    first_kept = -(-(overflow - evicted_bytes) // nb)
            directory = self.directory
            if n_evicted == len0:
                # Whole-slice turnover: one C-level clear instead of a
                # per-victim delete loop.
                victims = list(lru)
                lru.clear()
            else:
                victims = list(islice(lru, n_evicted))
                deque(map(lru.__delitem__, victims), maxlen=0)
            # Inlined _dir_remove: eviction is the per-block hot path.
            # Optimistically pop every victim's holder set in one C pass —
            # residency guarantees each victim has an entry.  When all of
            # them are singletons (no peer holds any victim — the steady
            # state), each popped set is exactly ``{chiplet}`` and is
            # recycled below for the inserted blocks, so no sets are
            # allocated at all.  Otherwise reinsert the shared ones.
            popped = list(map(directory.pop, victims))
            if shared:
                # Peer-fill mode: the inserted blocks already have holder
                # sets, so victims' singleton sets cannot be recycled.
                # Shared victims lose this chiplet but keep their entry.
                recycled = []
                for v, holders in zip(victims, popped):
                    if len(holders) > 1:
                        holders.discard(chiplet)
                        directory[v] = holders
            elif sum(map(len, popped)) == len(popped):
                recycled = popped
            else:
                recycled = []
                rec_append = recycled.append
                for v, holders in zip(victims, popped):
                    if len(holders) == 1:  # invariant: chiplet is a holder
                        rec_append(holders)
                    else:
                        holders.discard(chiplet)
                        directory[v] = holders
            cache.used_bytes = used0 - evicted_bytes
        else:
            recycled = []
        cache.evictions += n_evicted + first_kept
        if n_evicted == len0 or cache._uniform_nb == 0:
            cache._uniform_nb = nb
        elif cache._uniform_nb != nb:
            cache._uniform_nb = None
        cache.used_bytes += (k - first_kept) * nb
        survivors = blocks[first_kept:] if first_kept else blocks
        lru.update(zip(survivors, repeat(nb)))
        if shared:
            # Peer-fill mode: every inserted block is held by the serving
            # peer, so the requester *joins* the existing holder set.  A
            # self-evicted prefix (blocks[:first_kept]) is a net directory
            # no-op — scalar fill adds this chiplet then eviction removes
            # it while the peer's copy keeps the entry alive — so only the
            # survivors are touched, matching the scalar end state.
            directory = self.directory
            for b in survivors:
                directory[b].add(chiplet)
            return n_evicted + first_kept
        # Precondition (blocks resident in no slice) + the directory
        # invariant (membership == residency in some slice) guarantee none
        # of the inserted blocks has a directory entry yet, so both inserts
        # are plain C-level dict updates in batch order.
        n_rec = len(recycled)
        if n_rec:
            self.directory.update(zip(survivors, recycled))
        if n_rec < len(survivors):
            self.directory.update(
                (b, {chiplet}) for b in (survivors[n_rec:] if n_rec else survivors)
            )
        return n_evicted + first_kept

    def invalidate_others(self, chiplet: int, block: int) -> int:
        """Drop every copy of ``block`` except ``chiplet``'s; return count."""
        holders = self.directory.get(block)
        if not holders:
            return 0
        victims = [h for h in holders if h != chiplet]
        for h in victims:
            self.caches[h].drop(block)
            holders.discard(h)
        if not holders:
            del self.directory[block]
        return len(victims)

    def drop_everywhere(self, block: int) -> int:
        """Flush a block from all slices (used by region free)."""
        holders = self.directory.pop(block, set())
        for h in holders:
            self.caches[h].drop(block)
        return len(holders)

    def resident_bytes(self, chiplet: int) -> int:
        return self.caches[chiplet].used_bytes

    def stats(self) -> Dict:
        """Hit/miss/eviction statistics per slice plus machine-wide totals.

        Consumed by the sim-throughput perf report (``repro.bench.perf``)
        and handy for debugging capacity effects in experiments.
        """
        per_chiplet = []
        hits = misses = evictions = resident = blocks = 0
        for c in self.caches:
            per_chiplet.append({
                "chiplet": c.chiplet,
                "hits": c.hits,
                "misses": c.misses,
                "evictions": c.evictions,
                "resident_bytes": c.used_bytes,
                "blocks": len(c),
            })
            hits += c.hits
            misses += c.misses
            evictions += c.evictions
            resident += c.used_bytes
            blocks += len(c)
        lookups = hits + misses
        return {
            "per_chiplet": per_chiplet,
            "total": {
                "hits": hits,
                "misses": misses,
                "evictions": evictions,
                "resident_bytes": resident,
                "blocks": blocks,
                "hit_rate": hits / lookups if lookups else 0.0,
            },
        }

    def check_directory_consistent(self) -> bool:
        """Invariant: directory and per-slice contents agree exactly."""
        for block, holders in self.directory.items():
            for h in holders:
                if block not in self.caches[h]:
                    return False
        for cache in self.caches:
            for block in cache.blocks():
                if cache.chiplet not in self.directory.get(block, set()):
                    return False
        return True

    def _dir_remove(self, block: int, chiplet: int) -> None:
        holders = self.directory.get(block)
        if holders is None:
            return
        holders.discard(chiplet)
        if not holders:
            del self.directory[block]
