"""Partitioned L3 cache model, stored structure-of-arrays.

Each chiplet owns a private L3 slice, modelled as a byte-budgeted LRU over
*blocks*.  A block is a region-specific modelling granule (a group of
consecutive cache lines — e.g. 512 B for sparse CSR adjacency data, 4 KiB
for dense arrays); capacity accounting is in bytes so regions with
different granularities coexist honestly in one slice.

A global directory records which chiplets currently hold a copy of each
block so that fills can be served from a peer chiplet's L3 (at
inter-chiplet latency) instead of DRAM, and so that writes can invalidate
remote sharers — the two effects that give chiplet-aware placement its
performance edge in the paper.

Layout.  Both structures are split into an *index map* (a plain dict,
whose C-level insertion order doubles as the LRU order for slices) and
numpy ``int64`` columns addressed by slot number:

* ``ChipletCache._slot``: ``block -> slot`` (least recent first), with
  resident sizes in the ``_sizes`` column and a free-slot stack.
* ``CacheSystem._dir_slot``: ``block -> slot`` into the ``_dir_mask``
  column, where bit *c* set means chiplet *c* holds the block.

The columns are what make the gather kernel in :mod:`repro.hw.vector`
possible: classification of an arbitrary unsorted batch is one C-level
``dict.get`` map plus fancy indexing into ``_dir_mask`` — no per-block
set objects to walk.  The min-id-holder rule becomes a lowest-set-bit
extraction, and a holder set costs 8 bytes instead of a ``set`` object.
The public API is unchanged; ``directory`` and ``_lru`` remain available
as read-only snapshot properties.
"""

import sys
from collections import deque
from itertools import islice
from typing import Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.hw.topology import Topology


class ChipletCache:
    """One chiplet's L3 slice: a byte-budgeted LRU of block keys.

    State is a slot map (``_slot``, insertion-ordered: least recent
    first) plus an ``int64`` size column (``_sizes``) indexed by slot.
    Slot numbers are recycled through ``_free`` and carry no meaning
    beyond addressing a row; LRU order lives entirely in the dict.
    """

    __slots__ = ("chiplet", "capacity_bytes", "used_bytes", "_slot", "_sizes",
                 "_free", "hits", "misses", "evictions", "_uniform_nb")

    _GROW = 256

    def __init__(self, chiplet: int, capacity_bytes: int):
        if capacity_bytes < 64:
            raise ValueError("cache capacity must hold at least one line")
        self.chiplet = chiplet
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0
        self._slot: Dict[int, int] = {}
        self._sizes = np.zeros(self._GROW, dtype=np.int64)
        self._free: List[int] = list(range(self._GROW - 1, -1, -1))
        # Resident-entry size summary: 0 = empty slice, an int = every
        # entry is that many bytes, None = mixed sizes.  Lets fill_run
        # and the gather kernel compute eviction prefixes with integer
        # arithmetic instead of a cumulative sum over the whole slice.
        self._uniform_nb: Optional[int] = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._slot)

    def __contains__(self, block: int) -> bool:
        return block in self._slot

    @property
    def _lru(self) -> Dict[int, int]:
        """Snapshot ``{block: resident bytes}`` in LRU order (compat view)."""
        sizes = self._sizes
        return {b: int(sizes[s]) for b, s in self._slot.items()}

    def _grow(self) -> None:
        n = self._sizes.size
        self._sizes = np.concatenate([self._sizes, np.zeros(n, dtype=np.int64)])
        self._free.extend(range(2 * n - 1, n - 1, -1))

    def _take_slots(self, k: int) -> List[int]:
        """Pop ``k`` free slot numbers (grows the column as needed)."""
        free = self._free
        while len(free) < k:
            self._grow()
            free = self._free
        taken = free[len(free) - k:]
        del free[len(free) - k:]
        return taken

    def touch(self, block: int) -> bool:
        """Look up ``block``; on hit, refresh its LRU position."""
        s = self._slot.pop(block, None)
        if s is not None:
            self._slot[block] = s
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, block: int, nbytes: int) -> List[int]:
        """Insert ``block`` (``nbytes`` resident); return evicted block keys."""
        if nbytes <= 0:
            raise ValueError(f"cannot insert block with nbytes={nbytes}; must be positive")
        slot_map = self._slot
        s = slot_map.pop(block, None)
        if s is not None:
            slot_map[block] = s  # refresh recency
            return []
        evicted: List[int] = []
        nbytes = min(nbytes, self.capacity_bytes)
        sizes = self._sizes
        free = self._free
        while self.used_bytes + nbytes > self.capacity_bytes and slot_map:
            victim = next(iter(slot_map))
            vs = slot_map.pop(victim)
            self.used_bytes -= int(sizes[vs])
            free.append(vs)
            self.evictions += 1
            evicted.append(victim)
        if not slot_map:
            self._uniform_nb = nbytes
        elif self._uniform_nb != nbytes:
            self._uniform_nb = None
        s = self._take_slots(1)[0]
        self._sizes[s] = nbytes
        slot_map[block] = s
        self.used_bytes += nbytes
        return evicted

    def drop(self, block: int) -> bool:
        """Remove ``block`` without counting it as an eviction (invalidate)."""
        s = self._slot.pop(block, None)
        if s is None:
            return False
        self.used_bytes -= int(self._sizes[s])
        self._free.append(s)
        if not self._slot:
            self._uniform_nb = 0
        return True

    def blocks(self) -> Iterable[int]:
        return self._slot.keys()

    def clear(self) -> None:
        self._slot.clear()
        self._free = list(range(self._sizes.size - 1, -1, -1))
        self.used_bytes = 0
        self._uniform_nb = 0


class CacheSystem:
    """All chiplet L3 slices plus the cross-chiplet sharing directory.

    The directory is the model-level stand-in for the hardware coherence
    directory on the IO die.  It is stored as ``block -> slot`` into an
    ``int64`` bitmask column: bit *c* set means chiplet *c* caches the
    block.  ``directory`` exposes the classic ``{block: set}`` view as a
    snapshot for tests and tooling; mutation goes through the methods
    below (e.g. :meth:`remove_holder`).
    """

    _DIR_GROW = 1024

    def __init__(self, topo: Topology, capacity_bytes_per_chiplet: int):
        if topo.total_chiplets > 63:
            raise ValueError("bitmask directory supports at most 63 chiplets")
        self.topo = topo
        self.caches: List[ChipletCache] = [
            ChipletCache(ch, capacity_bytes_per_chiplet) for ch in range(topo.total_chiplets)
        ]
        self._dir_slot: Dict[int, int] = {}
        self._dir_mask = np.zeros(self._DIR_GROW, dtype=np.int64)
        self._dir_free: List[int] = list(range(self._DIR_GROW - 1, -1, -1))
        self._socket_of = topo.socket_of_chiplet_table
        # Per-socket chiplet bitmasks: the same-socket-preferred holder
        # rule is two AND operations against these.
        n_sockets = max(self._socket_of) + 1
        self._socket_mask: List[int] = [0] * n_sockets
        for ch in range(topo.total_chiplets):
            self._socket_mask[self._socket_of[ch]] |= 1 << ch
        # Telemetry event bus (repro.obs) or None.  The bulk entry points
        # below emit one event per *run* (the vector kernels' granularity),
        # guarded by a single None check — nothing fires per block.
        self.obs = None

    @property
    def capacity_bytes_per_chiplet(self) -> int:
        return self.caches[0].capacity_bytes

    @property
    def directory(self) -> Dict[int, Set[int]]:
        """Snapshot of the directory as ``{block: {chiplet ids}}``.

        Built fresh on each access from the bitmask column; mutating the
        returned dict does not change the directory.  Use
        :meth:`remove_holder` / :meth:`fill` / :meth:`drop_everywhere`
        to mutate.
        """
        mask = self._dir_mask
        out: Dict[int, Set[int]] = {}
        for block, s in self._dir_slot.items():
            m = int(mask[s])
            holders = set()
            while m:
                low = m & -m
                holders.add(low.bit_length() - 1)
                m ^= low
            out[block] = holders
        return out

    def holders_mask(self, block: int) -> int:
        """Holder bitmask for ``block`` (0 when uncached)."""
        s = self._dir_slot.get(block)
        return 0 if s is None else int(self._dir_mask[s])

    def _dir_grow(self) -> None:
        n = self._dir_mask.size
        self._dir_mask = np.concatenate([self._dir_mask, np.zeros(n, dtype=np.int64)])
        self._dir_free.extend(range(2 * n - 1, n - 1, -1))

    def _dir_take_slots(self, k: int) -> List[int]:
        free = self._dir_free
        while len(free) < k:
            self._dir_grow()
            free = self._dir_free
        taken = free[len(free) - k:]
        del free[len(free) - k:]
        return taken

    def _dir_set_bit(self, block: int, bit: int) -> None:
        s = self._dir_slot.get(block)
        if s is None:
            s = self._dir_take_slots(1)[0]
            self._dir_mask[s] = bit
            self._dir_slot[block] = s
        else:
            self._dir_mask[s] |= bit

    def _dir_clear_bit(self, block: int, bit: int) -> None:
        s = self._dir_slot.get(block)
        if s is None:
            return
        m = int(self._dir_mask[s]) & ~bit
        self._dir_mask[s] = m
        if not m:
            del self._dir_slot[block]
            self._dir_free.append(s)

    def remove_holder(self, block: int, chiplet: int) -> None:
        """Drop ``chiplet``'s copy of ``block`` from its slice and the
        directory (not counted as an eviction)."""
        self.caches[chiplet].drop(block)
        self._dir_clear_bit(block, 1 << chiplet)

    def lookup_local(self, chiplet: int, block: int) -> bool:
        """Local-slice lookup with LRU refresh."""
        return self.caches[chiplet].touch(block)

    def find_holder(self, chiplet: int, block: int) -> Optional[int]:
        """Find a peer chiplet holding ``block``, preferring the same socket.

        Within each distance class the *minimum-id* holder wins, so the
        chosen fill source is a pure function of the directory contents —
        with the bitmask encoding that is simply the lowest set bit of
        the same-socket candidates (falling back to all remote ones).

        Returns ``None`` when no L3 slice holds the block (DRAM fill needed).
        """
        s = self._dir_slot.get(block)
        if s is None:
            return None
        m = int(self._dir_mask[s]) & ~(1 << chiplet)
        if not m:
            return None
        same = m & self._socket_mask[self._socket_of[chiplet]]
        cand = same if same else m
        return ((cand & -cand).bit_length()) - 1

    def fill(self, chiplet: int, block: int, nbytes: int) -> List[int]:
        """Install ``block`` into ``chiplet``'s slice; return evicted keys."""
        evicted = self.caches[chiplet].insert(block, nbytes)
        bit = 1 << chiplet
        for victim in evicted:
            self._dir_clear_bit(victim, bit)
        self._dir_set_bit(block, bit)
        return evicted

    def touch_run(self, chiplet: int, blocks: Sequence[int]) -> None:
        """Bulk LRU touch: refresh the recency of ``blocks`` in batch order.

        Exact equivalent of calling ``caches[chiplet].touch(b)`` once per
        block in order — including the hit counter — under the local-hit
        kernel's precondition that every block is resident.  A touched
        block moves to the back of the LRU ordered by its *last*
        occurrence, so the scalar pop/reinsert loop collapses into one
        bulk delete plus one bulk re-insert (slot numbers ride along
        unchanged — recency lives in the dict, not the column).  If any
        block turns out non-resident the whole run falls back to the
        scalar touch loop (counting its misses exactly), so callers may
        probe with it.
        """
        obs = self.obs
        if obs is not None:
            obs.emit("cache.touch_run", {"chiplet": chiplet, "n": len(blocks)})
        cache = self.caches[chiplet]
        lru = cache._slot
        n = len(blocks)
        # Steady-state fast path: when the slice's most-recent entries are
        # exactly ``blocks`` in run order (the cache-resident re-read loop,
        # where every pass replays the same run), re-touching them is an
        # order no-op — each block already sits where its touch would move
        # it.  One C-level list compare proves it, and only the hit counter
        # needs updating.  A key sequence equal to distinct dict keys is
        # itself distinct, so duplicates can never take this path.
        if len(lru) >= n and list(lru)[len(lru) - n:] == blocks:
            cache.hits += n
            return
        try:
            slots = [lru[b] for b in blocks]
        except KeyError:
            touch = cache.touch
            for b in blocks:
                touch(b)
            return
        # Last-occurrence wins: the dict dedupe over the reversed run keeps
        # each block's final occurrence, and reversing the items again
        # restores ascending last-occurrence order for the re-insert.
        uniq = dict(zip(reversed(blocks), reversed(slots)))
        deque(map(lru.__delitem__, uniq), maxlen=0)
        lru.update(reversed(uniq.items()))
        cache.hits += len(blocks)

    def _evict_prefix_dir(self, chiplet: int, victims: List[int]) -> None:
        """Clear ``chiplet``'s bit on every victim's directory entry,
        freeing entries that empty.  Vectorized for the steady state where
        no peer holds any victim (every mask is exactly this chiplet's
        bit): one fancy-indexed compare, one bulk delete."""
        dir_slot = self._dir_slot
        mask_col = self._dir_mask
        bit = 1 << chiplet
        vslots = np.fromiter(map(dir_slot.__getitem__, victims), dtype=np.int64,
                             count=len(victims))
        vmasks = mask_col[vslots]
        if not np.bitwise_and(vmasks, ~bit).any():
            mask_col[vslots] = 0
            deque(map(dir_slot.__delitem__, victims), maxlen=0)
            self._dir_free.extend(vslots.tolist())
        else:
            dir_free = self._dir_free
            for v, s, m in zip(victims, vslots.tolist(), vmasks.tolist()):
                m &= ~bit
                mask_col[s] = m
                if not m:
                    del dir_slot[v]
                    dir_free.append(s)

    def fill_run(self, chiplet: int, blocks: Sequence[int], nbytes: int,
                 shared: bool = False) -> int:
        """Bulk-install ``blocks`` into ``chiplet``'s slice; return evictions.

        Exact equivalent of calling :meth:`fill` once per block *in order*,
        under the preconditions the vectorized batch kernels guarantee:
        the blocks are distinct, uniformly ``nbytes`` large, and absent
        from ``chiplet``'s slice (so no LRU refreshes).  With
        ``shared=False`` (the DRAM-fill kernel) the blocks are resident in
        **no** slice, so inserts create fresh singleton directory entries.
        With ``shared=True`` (the peer-fill kernel) each block is already
        held by at least one other chiplet: inserts *join* the existing
        holder set (OR this chiplet's bit in) instead.

        Because every insert is the same size and evictions pop from the
        LRU front, the victim set is a *prefix* of the current LRU order —
        possibly followed by a prefix of ``blocks`` itself when the run
        overflows the slice capacity.  When the slice's resident entries
        are uniformly sized (the streaming steady state, tracked by
        ``_uniform_nb``) the prefix is pure integer arithmetic; mixed
        slices pay one integer cumulative sum over the size column.
        """
        obs = self.obs
        if obs is not None:
            obs.emit("cache.fill_run", {
                "chiplet": chiplet, "n": len(blocks), "shared": shared,
            })
        cache = self.caches[chiplet]
        cap = cache.capacity_bytes
        if nbytes <= 0:
            raise ValueError(f"cannot insert block with nbytes={nbytes}; must be positive")
        nb = min(nbytes, cap)
        k = len(blocks)
        lru = cache._slot
        len0 = len(lru)
        used0 = cache.used_bytes
        # Streaming steady-state fast path: a uniformly-sized full slice
        # whose contents turn over exactly (k inserts evict the len0
        # residents, none of the run self-evicts — guaranteed by
        # cap - nb < k*nb <= cap with k == len0).  Slot rows are reused
        # verbatim: the size column already reads ``nb`` everywhere, and
        # when no victim is shared every directory row already holds this
        # chiplet's singleton mask, so the whole fill is four C-level
        # dict passes plus one vectorized sharing check — no slot
        # free/take round-trip, no column writes.
        if (not shared and k == len0 and nb == cache._uniform_nb
                and len0 * nb == used0 and cap - nb < k * nb <= cap):
            victims = list(lru)
            vals = list(lru.values())
            lru.clear()
            dir_slot = self._dir_slot
            popped = list(map(dir_slot.pop, victims))
            bit = 1 << chiplet
            if np.bitwise_and(self._dir_mask[popped], ~bit).any():
                # Rare: a victim is shared with a peer.  Restore both
                # maps (same keys in the same order → identical state)
                # and take the general path below.
                lru.update(zip(victims, vals))
                dir_slot.update(zip(victims, popped))
            else:
                cache.evictions += len0
                cache.used_bytes = k * nb
                lru.update(zip(blocks, vals))
                dir_slot.update(zip(blocks, popped))
                return len0
        overflow = used0 + k * nb - cap
        n_evicted = 0
        first_kept = 0  # blocks[:first_kept] are self-evicted by later inserts
        recycled = None  # victims' directory rows reusable for the fills
        if overflow > 0:
            uni = cache._uniform_nb
            if uni is not None and len0 * (uni or 0) == used0:
                # Every resident entry is `uni` bytes (used0 == len0*uni
                # re-checks the bookkeeping): prefix math is integer-only.
                if len0 and overflow <= used0:
                    n_evicted = -(-overflow // uni)
                    evicted_bytes = n_evicted * uni
                else:
                    n_evicted = len0
                    evicted_bytes = used0
                    first_kept = -(-(overflow - evicted_bytes) // nb)
            else:
                slots = np.fromiter(lru.values(), dtype=np.int64, count=len0)
                cum = np.cumsum(cache._sizes[slots])
                if slots.size and overflow <= int(cum[-1]):
                    # A prefix of the existing entries covers the overflow.
                    n_evicted = int(np.searchsorted(cum, overflow, side="left")) + 1
                    evicted_bytes = int(cum[n_evicted - 1])
                else:
                    # Everything resident goes, plus a prefix of this run.
                    n_evicted = slots.size
                    evicted_bytes = int(cum[-1]) if slots.size else 0
                    first_kept = -(-(overflow - evicted_bytes) // nb)
            if n_evicted == len0:
                # Whole-slice turnover: one C-level clear instead of a
                # per-victim delete loop.
                victims = list(lru)
                cache._free.extend(lru.values())
                lru.clear()
            else:
                victims = list(islice(lru, n_evicted))
                cache._free.extend(map(lru.pop, victims))
            if shared:
                self._evict_prefix_dir(chiplet, victims)
            else:
                # Steady-state recycling: when no peer holds any victim,
                # every victim row is exactly this chiplet's singleton
                # mask — the same row the fills below would mint.  Keep
                # the rows (masks unchanged), swap the dict keys.
                dir_slot = self._dir_slot
                vslots = np.fromiter(map(dir_slot.__getitem__, victims),
                                     dtype=np.int64, count=len(victims))
                bit_ = 1 << chiplet
                if not np.bitwise_and(self._dir_mask[vslots], ~bit_).any():
                    deque(map(dir_slot.__delitem__, victims), maxlen=0)
                    recycled = vslots
                else:
                    dir_free = self._dir_free
                    mask_col = self._dir_mask
                    for v, s, m in zip(victims, vslots.tolist(),
                                       self._dir_mask[vslots].tolist()):
                        m &= ~bit_
                        mask_col[s] = m
                        if not m:
                            del dir_slot[v]
                            dir_free.append(s)
            cache.used_bytes = used0 - evicted_bytes
        cache.evictions += n_evicted + first_kept
        if n_evicted == len0 or cache._uniform_nb == 0:
            cache._uniform_nb = nb
        elif cache._uniform_nb != nb:
            cache._uniform_nb = None
        n_ins = k - first_kept
        cache.used_bytes += n_ins * nb
        survivors = blocks[first_kept:] if first_kept else blocks
        if n_ins:
            new_slots = cache._take_slots(n_ins)
            cache._sizes[new_slots] = nb
            lru.update(zip(survivors, new_slots))
        bit = 1 << chiplet
        if shared:
            # Peer-fill mode: every inserted block is held by the serving
            # peer, so the requester *joins* the existing holder mask.  A
            # self-evicted prefix (blocks[:first_kept]) is a net directory
            # no-op — scalar fill adds this chiplet then eviction removes
            # it while the peer's copy keeps the entry alive — so only the
            # survivors are touched, matching the scalar end state.
            if n_ins:
                dir_slot = self._dir_slot
                ss = np.fromiter(map(dir_slot.__getitem__, survivors),
                                 dtype=np.int64, count=n_ins)
                self._dir_mask[ss] |= bit
            return n_evicted + first_kept
        # Precondition (blocks resident in no slice) + the directory
        # invariant (membership == residency in some slice) guarantee none
        # of the inserted blocks has a directory entry yet: mint fresh
        # singleton-mask rows in one bulk update (recycled victim rows
        # already hold this chiplet's singleton mask).
        if n_ins:
            if recycled is not None:
                r = recycled.size
                if r >= n_ins:
                    if r > n_ins:
                        tail = recycled[n_ins:]
                        self._dir_mask[tail] = 0
                        self._dir_free.extend(tail.tolist())
                    self._dir_slot.update(
                        zip(survivors, recycled[:n_ins].tolist()))
                else:
                    extra = self._dir_take_slots(n_ins - r)
                    self._dir_mask[extra] = bit
                    self._dir_slot.update(
                        zip(survivors, recycled.tolist() + extra))
            else:
                dslots = self._dir_take_slots(n_ins)
                self._dir_mask[dslots] = bit
                self._dir_slot.update(zip(survivors, dslots))
        elif recycled is not None:
            self._dir_mask[recycled] = 0
            self._dir_free.extend(recycled.tolist())
        return n_evicted + first_kept

    def invalidate_others(self, chiplet: int, block: int) -> int:
        """Drop every copy of ``block`` except ``chiplet``'s; return count."""
        s = self._dir_slot.get(block)
        if s is None:
            return 0
        bit = 1 << chiplet
        m = int(self._dir_mask[s])
        others = m & ~bit
        count = others.bit_count()
        caches = self.caches
        while others:
            low = others & -others
            caches[low.bit_length() - 1].drop(block)
            others ^= low
        if m & bit:
            self._dir_mask[s] = bit
        else:
            self._dir_mask[s] = 0
            del self._dir_slot[block]
            self._dir_free.append(s)
        return count

    def drop_everywhere(self, block: int) -> int:
        """Flush a block from all slices (used by region free)."""
        s = self._dir_slot.pop(block, None)
        if s is None:
            return 0
        m = int(self._dir_mask[s])
        self._dir_mask[s] = 0
        self._dir_free.append(s)
        count = m.bit_count()
        caches = self.caches
        while m:
            low = m & -m
            caches[low.bit_length() - 1].drop(block)
            m ^= low
        return count

    def resident_bytes(self, chiplet: int) -> int:
        return self.caches[chiplet].used_bytes

    def stats(self) -> Dict:
        """Hit/miss/eviction statistics per slice plus machine-wide totals.

        Consumed by the sim-throughput perf report (``repro.bench.perf``)
        and handy for debugging capacity effects in experiments.
        """
        per_chiplet = []
        hits = misses = evictions = resident = blocks = 0
        for c in self.caches:
            per_chiplet.append({
                "chiplet": c.chiplet,
                "hits": c.hits,
                "misses": c.misses,
                "evictions": c.evictions,
                "resident_bytes": c.used_bytes,
                "blocks": len(c),
            })
            hits += c.hits
            misses += c.misses
            evictions += c.evictions
            resident += c.used_bytes
            blocks += len(c)
        lookups = hits + misses
        return {
            "per_chiplet": per_chiplet,
            "total": {
                "hits": hits,
                "misses": misses,
                "evictions": evictions,
                "resident_bytes": resident,
                "blocks": blocks,
                "hit_rate": hits / lookups if lookups else 0.0,
            },
        }

    def state_nbytes(self) -> int:
        """Resident footprint of the SoA cache state, in bytes.

        Counts the index-map dicts, the numpy columns, and the free-slot
        stacks — everything the cache/directory state owns.  Compared by
        the memory smoke test against :meth:`dict_layout_nbytes`.
        """
        total = (sys.getsizeof(self._dir_slot) + self._dir_mask.nbytes
                 + sys.getsizeof(self._dir_free))
        for c in self.caches:
            total += (sys.getsizeof(c._slot) + c._sizes.nbytes
                      + sys.getsizeof(c._free))
        return total

    def dict_layout_nbytes(self) -> int:
        """Modelled footprint of the pre-SoA dict-of-objects layout for the
        same contents *and churn history*: a ``{block: set(holders)}``
        directory plus one ``{block: nbytes}`` dict per slice.  The SoA
        index dicts see the identical insert/delete sequence the old
        containers did (same keys, same order), so their measured size
        doubles as the old containers' size; the per-entry holder sets —
        the objects the bitmask column replaces — are materialized and
        measured with ``sys.getsizeof``.  Keys and small-int values are
        shared either way and counted by neither."""
        total = sys.getsizeof(self._dir_slot)
        total += sum(sys.getsizeof(h) for h in self.directory.values())
        for c in self.caches:
            total += sys.getsizeof(c._slot)
        return total

    def check_directory_consistent(self) -> bool:
        """Invariant: directory and per-slice contents agree exactly."""
        caches = self.caches
        for block, s in self._dir_slot.items():
            m = int(self._dir_mask[s])
            if not m:
                return False
            while m:
                low = m & -m
                if block not in caches[low.bit_length() - 1]:
                    return False
                m ^= low
        dir_slot = self._dir_slot
        mask_col = self._dir_mask
        for cache in caches:
            bit = 1 << cache.chiplet
            for block in cache.blocks():
                s = dir_slot.get(block)
                if s is None or not (int(mask_col[s]) & bit):
                    return False
        return True
