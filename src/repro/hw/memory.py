"""DRAM, memory channels, fabric links, and memory regions.

Models the two bandwidth bottlenecks that drive the paper's results:

1. **Per-socket memory channels** (section 2.2, Fig. 4): each socket has a
   small fixed number of DDR channels.  Every DRAM fill is serialised on
   the channel that owns the block (address-interleaved), so concurrent
   DRAM traffic from many cores queues up and throughput saturates — the
   mechanism behind baseline saturation at 48-56 cores in Fig. 7.

2. **Per-chiplet fabric links** (GMI on AMD): all traffic between a chiplet
   and the IO die (DRAM fills *and* remote-L3 fills) is serialised on that
   chiplet's link.  Packing many cores onto one chiplet caps their
   aggregate memory bandwidth at one link — the mechanism behind the
   DistributedCache win for huge working sets in Fig. 5.

Both are modelled as deterministic single-server (per channel / per link)
queues in virtual time: a request arriving at ``now`` waits until the
server is free, then occupies it for ``bytes / bandwidth``.
"""

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

import numpy as np


class MemPolicy(Enum):
    """NUMA memory placement policy for a region (mbind-style)."""

    BIND = "bind"            # all blocks on one home node
    INTERLEAVE = "interleave"  # blocks round-robin across nodes
    REPLICATED = "replicated"  # read-only copy on every node (SHOAL-style)


@dataclass
class Region:
    """A contiguous allocation charged against the simulated memory system.

    Blocks within a region are identified by a dense index; the globally
    unique block key packs ``(region_id, block_index)`` into one integer so
    cache and directory structures can use plain ints.
    """

    region_id: int
    size_bytes: int
    block_bytes: int
    policy: MemPolicy
    home_node: int
    numa_nodes: int
    name: str = ""

    _KEY_SHIFT = 40  # supports regions up to 2**40 blocks

    @property
    def n_blocks(self) -> int:
        return max(1, -(-self.size_bytes // self.block_bytes))

    def block_of_offset(self, offset: int) -> int:
        if not 0 <= offset < max(self.size_bytes, 1):
            raise ValueError(
                f"offset {offset} outside region '{self.name}' of {self.size_bytes} bytes"
            )
        return offset // self.block_bytes

    def block_key(self, block_index: int) -> int:
        if not 0 <= block_index < self.n_blocks:
            raise ValueError(
                f"block {block_index} outside region '{self.name}' ({self.n_blocks} blocks)"
            )
        return (self.region_id << self._KEY_SHIFT) | block_index

    def node_of_block(self, block_index: int, requester_node: Optional[int] = None) -> int:
        """NUMA node that services a DRAM fill for this block."""
        if self.policy is MemPolicy.INTERLEAVE:
            return block_index % self.numa_nodes
        if self.policy is MemPolicy.REPLICATED and requester_node is not None:
            return requester_node
        return self.home_node


class RegionTable:
    """Allocator and registry of live regions, stored structure-of-arrays.

    Region metadata lives in four parallel int64 columns (size, block
    size, policy code, home node) indexed by a compact row number; an
    insertion-ordered ``region_id -> row`` map and a free-row stack give
    O(1) alloc/free with rows recycled in place.  :class:`Region`
    dataclass handles are minted on demand (``alloc``/``get``/
    ``live_regions``) — the public API is unchanged, but bulk consumers
    can scan the columns without touching per-region Python objects.
    """

    _COL_SIZE, _COL_BLOCK, _COL_POLICY, _COL_HOME = range(4)
    _POLICY_BY_CODE = (MemPolicy.BIND, MemPolicy.INTERLEAVE,
                       MemPolicy.REPLICATED)
    _CODE_BY_POLICY = {p: c for c, p in enumerate(_POLICY_BY_CODE)}

    def __init__(self, numa_nodes: int, default_block_bytes: int):
        self.numa_nodes = numa_nodes
        self.default_block_bytes = default_block_bytes
        self._next_id = 1
        self._row_of: Dict[int, int] = {}  # insertion order == alloc order
        self._cols = np.zeros((4, 8), dtype=np.int64)
        self._free_rows: List[int] = list(range(7, -1, -1))
        self._names: Dict[int, str] = {}
        self.allocated_bytes_per_node = [0] * numa_nodes

    def _take_row(self) -> int:
        if not self._free_rows:
            old = self._cols
            cap = old.shape[1]
            self._cols = np.zeros((4, 2 * cap), dtype=np.int64)
            self._cols[:, :cap] = old
            self._free_rows = list(range(2 * cap - 1, cap - 1, -1))
        return self._free_rows.pop()

    def _mint(self, region_id: int, row: int) -> Region:
        c = self._cols
        return Region(
            region_id=region_id,
            size_bytes=int(c[self._COL_SIZE, row]),
            block_bytes=int(c[self._COL_BLOCK, row]),
            policy=self._POLICY_BY_CODE[int(c[self._COL_POLICY, row])],
            home_node=int(c[self._COL_HOME, row]),
            numa_nodes=self.numa_nodes,
            name=self._names[region_id],
        )

    def alloc(
        self,
        size_bytes: int,
        node: int = 0,
        policy: MemPolicy = MemPolicy.BIND,
        name: str = "",
        block_bytes: Optional[int] = None,
    ) -> Region:
        if size_bytes < 0:
            raise ValueError("region size must be non-negative")
        if not 0 <= node < self.numa_nodes:
            raise ValueError(f"NUMA node {node} out of range")
        region_id = self._next_id
        self._next_id += 1
        row = self._take_row()
        col = self._cols
        col[self._COL_SIZE, row] = size_bytes
        col[self._COL_BLOCK, row] = block_bytes or self.default_block_bytes
        col[self._COL_POLICY, row] = self._CODE_BY_POLICY[policy]
        col[self._COL_HOME, row] = node
        self._row_of[region_id] = row
        self._names[region_id] = name or f"region{region_id}"
        if policy is MemPolicy.REPLICATED:
            for n in range(self.numa_nodes):
                self.allocated_bytes_per_node[n] += size_bytes
        elif policy is MemPolicy.INTERLEAVE:
            share = size_bytes // self.numa_nodes
            for n in range(self.numa_nodes):
                self.allocated_bytes_per_node[n] += share
        else:
            self.allocated_bytes_per_node[node] += size_bytes
        return self._mint(region_id, row)

    def free(self, region: Region) -> None:
        """Release a region, returning its bytes to the per-node accounting.

        Freeing is idempotent: only the first call for a live region
        decrements ``allocated_bytes_per_node`` (mirroring the increments
        made by :meth:`alloc` for each placement policy).
        """
        row = self._row_of.pop(region.region_id, None)
        if row is None:
            return
        self._cols[:, row] = 0
        self._free_rows.append(row)
        self._names.pop(region.region_id, None)
        if region.policy is MemPolicy.REPLICATED:
            for n in range(self.numa_nodes):
                self.allocated_bytes_per_node[n] -= region.size_bytes
        elif region.policy is MemPolicy.INTERLEAVE:
            share = region.size_bytes // self.numa_nodes
            for n in range(self.numa_nodes):
                self.allocated_bytes_per_node[n] -= share
        else:
            self.allocated_bytes_per_node[region.home_node] -= region.size_bytes

    def get(self, region_id: int) -> Region:
        return self._mint(region_id, self._row_of[region_id])

    def live_regions(self) -> List[Region]:
        return [self._mint(rid, row) for rid, row in self._row_of.items()]


class _Server:
    """Deterministic single-server queue in virtual time.

    The recurrence is max-plus: ``free = max(free, now) + service``.  The
    vectorized kernels in :mod:`repro.hw.vector` reproduce this recurrence
    bit-exactly for a whole batch of arrivals (see ``serve_constant``);
    any change to the arithmetic here must be mirrored there.
    """

    __slots__ = ("free_at", "busy_ns", "wait_ns", "requests")

    def __init__(self) -> None:
        self.free_at = 0.0
        self.busy_ns = 0.0
        self.wait_ns = 0.0
        self.requests = 0

    def service(self, now: float, service_ns: float) -> "Tuple[float, float]":
        """Serve a request arriving at ``now``.

        Returns ``(total_delay, queue_wait)``: total is wait + service,
        wait is the backpressure component (time spent queued behind
        earlier requests).  Callers that model memory-level parallelism
        overlap the *service* part but let queue waits extend the batch.
        """
        start = self.free_at if self.free_at > now else now
        self.free_at = start + service_ns
        self.busy_ns += service_ns
        self.wait_ns += start - now
        self.requests += 1
        return self.free_at - now, start - now

    def stats(self) -> Dict[str, float]:
        return {
            "busy_ns": self.busy_ns,
            "wait_ns": self.wait_ns,
            "requests": self.requests,
        }


class ChannelBank:
    """Per-socket DDR memory channels with address interleaving."""

    def __init__(self, sockets: int, channels_per_socket: int, bytes_per_ns_per_channel: float):
        if channels_per_socket < 1:
            raise ValueError("need at least one memory channel per socket")
        self.channels_per_socket = channels_per_socket
        self.bytes_per_ns = bytes_per_ns_per_channel
        self._servers = [[_Server() for _ in range(channels_per_socket)] for _ in range(sockets)]

    def service(self, socket: int, block_key: int, nbytes: int, now: float) -> "Tuple[float, float]":
        """Serialise a DRAM transfer on the owning channel.

        Returns ``(total_delay, queue_wait)``.
        """
        chan = self._servers[socket][block_key % self.channels_per_socket]
        return chan.service(now, nbytes / self.bytes_per_ns)

    def busy_ns(self, socket: int) -> float:
        return sum(s.busy_ns for s in self._servers[socket])

    def peak_bandwidth(self) -> float:
        """Bytes/ns a single socket can sustain."""
        return self.channels_per_socket * self.bytes_per_ns

    def server(self, socket: int, channel: int) -> _Server:
        """Direct server handle (used by the vectorized batch kernels)."""
        return self._servers[socket][channel]

    def stats(self) -> List[Dict[str, float]]:
        """Per-socket utilization, aggregated over the socket's channels."""
        out = []
        for socket, servers in enumerate(self._servers):
            out.append({
                "socket": socket,
                "busy_ns": sum(s.busy_ns for s in servers),
                "wait_ns": sum(s.wait_ns for s in servers),
                "requests": sum(s.requests for s in servers),
            })
        return out


class CrossSocketLinks:
    """Inter-socket (xGMI-style) links, one per unordered socket pair.

    All cross-socket traffic — peer-L3 fills from the other socket and
    remote-node DRAM fills — serialises here.  Saturation of this link is
    what makes chiplet-oblivious schedulers collapse beyond ~48-56 cores
    when they scatter sharers across sockets (paper Fig. 7).
    """

    def __init__(self, sockets: int, bytes_per_ns_per_link: float):
        self.sockets = sockets
        self.bytes_per_ns = bytes_per_ns_per_link
        self._servers: Dict[Tuple[int, int], _Server] = {}
        for a in range(sockets):
            for b in range(a + 1, sockets):
                self._servers[(a, b)] = _Server()

    def service(self, socket_a: int, socket_b: int, nbytes: int, now: float) -> "Tuple[float, float]":
        """Returns ``(total_delay, queue_wait)``; zero for same-socket."""
        if socket_a == socket_b:
            return 0.0, 0.0
        pair = (min(socket_a, socket_b), max(socket_a, socket_b))
        return self._servers[pair].service(now, nbytes / self.bytes_per_ns)

    def busy_ns(self, socket_a: int, socket_b: int) -> float:
        pair = (min(socket_a, socket_b), max(socket_a, socket_b))
        return self._servers[pair].busy_ns

    def server(self, socket_a: int, socket_b: int) -> Optional[_Server]:
        """Direct server handle, or ``None`` for a same-socket pair."""
        if socket_a == socket_b:
            return None
        return self._servers[(min(socket_a, socket_b), max(socket_a, socket_b))]

    def stats(self) -> List[Dict[str, float]]:
        out = []
        for (a, b), s in self._servers.items():
            row = {"sockets": [a, b]}
            row.update(s.stats())
            out.append(row)
        return out


class LinkBank:
    """Per-chiplet fabric links (chiplet <-> IO die)."""

    def __init__(self, chiplets: int, bytes_per_ns_per_link: float):
        self.bytes_per_ns = bytes_per_ns_per_link
        self._servers = [_Server() for _ in range(chiplets)]

    def service(self, chiplet: int, nbytes: int, now: float) -> "Tuple[float, float]":
        """Returns ``(total_delay, queue_wait)``."""
        return self._servers[chiplet].service(now, nbytes / self.bytes_per_ns)

    def busy_ns(self, chiplet: int) -> float:
        return self._servers[chiplet].busy_ns

    def requests(self, chiplet: int) -> int:
        return self._servers[chiplet].requests

    def server(self, chiplet: int) -> _Server:
        """Direct server handle (used by the vectorized batch kernels)."""
        return self._servers[chiplet]

    def stats(self) -> List[Dict[str, float]]:
        out = []
        for chiplet, s in enumerate(self._servers):
            row = {"chiplet": chiplet}
            row.update(s.stats())
            out.append(row)
        return out
