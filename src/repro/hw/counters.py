"""PMU-like cache-fill event counters.

The real CHARM uses libpfm to read ``ANY_DATA_CACHE_FILLS_FROM_SYSTEM`` (AMD)
or ``OFFCORE_RESPONSE`` (Intel), classifying fills by source: local chiplet,
another chiplet on the same NUMA node, a chiplet on a remote NUMA node, or
main memory.  This module exposes the same signal for the simulated machine:
every serviced access increments a per-core counter keyed by fill source.

Counters are array-backed: each core holds one flat ``int`` vector indexed
by the dense source index (``SOURCE_INDEX``), because counter updates happen
once per simulated access and dict-keyed updates were a measurable fraction
of simulator time.  The batched access path accumulates a whole batch into
a local vector and commits it with one :meth:`CounterBoard.record_batch`.

Alg. 1's policy input — "cache fill events from beyond the local chiplet" —
is :meth:`FillCounters.remote_fills`.
"""

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Sequence


class FillSource(Enum):
    """Where a memory access was serviced from."""

    LOCAL_CHIPLET = "local_chiplet"          # local L3 slice hit
    REMOTE_CHIPLET = "remote_chiplet"        # peer L3, same NUMA node
    REMOTE_NUMA_CHIPLET = "remote_numa_chiplet"  # peer L3, other NUMA node
    DRAM_LOCAL = "dram_local"                # main memory, local node
    DRAM_REMOTE = "dram_remote"              # main memory, remote node


#: Dense index of each source in the per-core count vector, in declaration
#: order.  Fast paths index count vectors with these instead of enum keys.
SOURCE_INDEX: Dict[FillSource, int] = {s: i for i, s in enumerate(FillSource)}
N_SOURCES = len(FillSource)

IDX_LOCAL_CHIPLET = SOURCE_INDEX[FillSource.LOCAL_CHIPLET]
IDX_REMOTE_CHIPLET = SOURCE_INDEX[FillSource.REMOTE_CHIPLET]
IDX_REMOTE_NUMA_CHIPLET = SOURCE_INDEX[FillSource.REMOTE_NUMA_CHIPLET]
IDX_DRAM_LOCAL = SOURCE_INDEX[FillSource.DRAM_LOCAL]
IDX_DRAM_REMOTE = SOURCE_INDEX[FillSource.DRAM_REMOTE]


class FillCounters:
    """Fill-event counts for one core, as a flat vector (``SOURCE_INDEX``)."""

    __slots__ = ("v",)

    def __init__(self) -> None:
        self.v: List[int] = [0] * N_SOURCES

    def record(self, source: FillSource, n: int = 1) -> None:
        self.v[SOURCE_INDEX[source]] += n

    def record_counts(self, counts: Sequence[int]) -> None:
        """Add a whole per-source count vector (one batched access op)."""
        v = self.v
        for i, n in enumerate(counts):
            if n:
                v[i] += n

    @property
    def counts(self) -> Dict[FillSource, int]:
        """Enum-keyed view of the vector (compatibility accessor)."""
        v = self.v
        return {s: v[i] for s, i in SOURCE_INDEX.items()}

    def total(self) -> int:
        return sum(self.v)

    def remote_fills(self) -> int:
        """Fills serviced from beyond the local chiplet.

        This is the simulated equivalent of AMD's
        ``ANY_DATA_CACHE_FILLS_FROM_SYSTEM`` remote-source mask — the event
        counter read by Alg. 1.
        """
        v = self.v
        return v[IDX_REMOTE_CHIPLET] + v[IDX_REMOTE_NUMA_CHIPLET] + \
            v[IDX_DRAM_LOCAL] + v[IDX_DRAM_REMOTE]

    def dram_fills(self) -> int:
        v = self.v
        return v[IDX_DRAM_LOCAL] + v[IDX_DRAM_REMOTE]

    def snapshot(self) -> Dict[FillSource, int]:
        return self.counts

    def reset(self) -> None:
        self.v = [0] * N_SOURCES


@dataclass
class CounterSnapshot:
    """Aggregate counter totals, used for the paper's Tab. 1 / Tab. 2 rows."""

    local_chiplet: int = 0
    remote_chiplet: int = 0
    remote_numa_chiplet: int = 0
    dram: int = 0

    def as_row(self) -> Dict[str, int]:
        return {
            "local_chiplet": self.local_chiplet,
            "remote_chiplet": self.remote_chiplet,
            "remote_numa_chiplet": self.remote_numa_chiplet,
            "main_memory": self.dram,
        }


class CounterBoard:
    """Per-core fill counters for the whole machine."""

    __slots__ = ("per_core",)

    def __init__(self, total_cores: int):
        self.per_core: List[FillCounters] = [FillCounters() for _ in range(total_cores)]

    def record(self, core: int, source: FillSource, n: int = 1) -> None:
        self.per_core[core].record(source, n)

    def record_batch(self, core: int, counts: Sequence[int]) -> None:
        """Commit one batch's per-source count vector to ``core``."""
        self.per_core[core].record_counts(counts)

    def core(self, core: int) -> FillCounters:
        return self.per_core[core]

    def aggregate(self, cores: Iterable[int] = ()) -> CounterSnapshot:
        """Sum counters over ``cores`` (all cores when empty)."""
        sel = list(cores) or range(len(self.per_core))
        snap = CounterSnapshot()
        for c in sel:
            v = self.per_core[c].v
            snap.local_chiplet += v[IDX_LOCAL_CHIPLET]
            snap.remote_chiplet += v[IDX_REMOTE_CHIPLET]
            snap.remote_numa_chiplet += v[IDX_REMOTE_NUMA_CHIPLET]
            snap.dram += v[IDX_DRAM_LOCAL] + v[IDX_DRAM_REMOTE]
        return snap

    def totals(self) -> List[int]:
        """Machine-wide per-source fill totals (dense ``SOURCE_INDEX`` order).

        Pairs with ``Machine._fill_lat`` to form the per-source
        fill-latency histogram in :meth:`Machine.bandwidth_stats`.
        """
        out = [0] * N_SOURCES
        for c in self.per_core:
            v = c.v
            for i in range(N_SOURCES):
                out[i] += v[i]
        return out

    def reset(self) -> None:
        for c in self.per_core:
            c.reset()
