"""PMU-like cache-fill event counters.

The real CHARM uses libpfm to read ``ANY_DATA_CACHE_FILLS_FROM_SYSTEM`` (AMD)
or ``OFFCORE_RESPONSE`` (Intel), classifying fills by source: local chiplet,
another chiplet on the same NUMA node, a chiplet on a remote NUMA node, or
main memory.  This module exposes the same signal for the simulated machine:
every serviced access increments a per-core counter keyed by fill source.

Alg. 1's policy input — "cache fill events from beyond the local chiplet" —
is :meth:`FillCounters.remote_fills`.
"""

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List


class FillSource(Enum):
    """Where a memory access was serviced from."""

    LOCAL_CHIPLET = "local_chiplet"          # local L3 slice hit
    REMOTE_CHIPLET = "remote_chiplet"        # peer L3, same NUMA node
    REMOTE_NUMA_CHIPLET = "remote_numa_chiplet"  # peer L3, other NUMA node
    DRAM_LOCAL = "dram_local"                # main memory, local node
    DRAM_REMOTE = "dram_remote"              # main memory, remote node


_REMOTE_SOURCES = (
    FillSource.REMOTE_CHIPLET,
    FillSource.REMOTE_NUMA_CHIPLET,
    FillSource.DRAM_LOCAL,
    FillSource.DRAM_REMOTE,
)


class FillCounters:
    """Fill-event counts for one core."""

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Dict[FillSource, int] = {s: 0 for s in FillSource}

    def record(self, source: FillSource, n: int = 1) -> None:
        self.counts[source] += n

    def total(self) -> int:
        return sum(self.counts.values())

    def remote_fills(self) -> int:
        """Fills serviced from beyond the local chiplet.

        This is the simulated equivalent of AMD's
        ``ANY_DATA_CACHE_FILLS_FROM_SYSTEM`` remote-source mask — the event
        counter read by Alg. 1.
        """
        c = self.counts
        return sum(c[s] for s in _REMOTE_SOURCES)

    def dram_fills(self) -> int:
        return self.counts[FillSource.DRAM_LOCAL] + self.counts[FillSource.DRAM_REMOTE]

    def snapshot(self) -> Dict[FillSource, int]:
        return dict(self.counts)

    def reset(self) -> None:
        for s in FillSource:
            self.counts[s] = 0


@dataclass
class CounterSnapshot:
    """Aggregate counter totals, used for the paper's Tab. 1 / Tab. 2 rows."""

    local_chiplet: int = 0
    remote_chiplet: int = 0
    remote_numa_chiplet: int = 0
    dram: int = 0

    def as_row(self) -> Dict[str, int]:
        return {
            "local_chiplet": self.local_chiplet,
            "remote_chiplet": self.remote_chiplet,
            "remote_numa_chiplet": self.remote_numa_chiplet,
            "main_memory": self.dram,
        }


class CounterBoard:
    """Per-core fill counters for the whole machine."""

    def __init__(self, total_cores: int):
        self.per_core: List[FillCounters] = [FillCounters() for _ in range(total_cores)]

    def record(self, core: int, source: FillSource, n: int = 1) -> None:
        self.per_core[core].record(source, n)

    def core(self, core: int) -> FillCounters:
        return self.per_core[core]

    def aggregate(self, cores: Iterable[int] = ()) -> CounterSnapshot:
        """Sum counters over ``cores`` (all cores when empty)."""
        sel = list(cores) or range(len(self.per_core))
        snap = CounterSnapshot()
        for c in sel:
            counts = self.per_core[c].counts
            snap.local_chiplet += counts[FillSource.LOCAL_CHIPLET]
            snap.remote_chiplet += counts[FillSource.REMOTE_CHIPLET]
            snap.remote_numa_chiplet += counts[FillSource.REMOTE_NUMA_CHIPLET]
            snap.dram += counts[FillSource.DRAM_LOCAL] + counts[FillSource.DRAM_REMOTE]
        return snap

    def reset(self) -> None:
        for c in self.per_core:
            c.reset()
