"""Command-line interface: ``python -m repro <command>``.

Commands
--------

- ``list``                      — list all reproducible experiments;
- ``run <experiment> [--full]`` — run one experiment and print its table
  (and an ASCII chart for series-shaped results);
- ``all [--full]``              — run the whole evaluation in order;
- ``machine [--preset X]``      — describe a machine preset and its
  latency hierarchy.

``run`` and ``all`` accept ``--jobs N`` to shard the experiment cells
across N worker processes (``0`` = auto-size to the host), backed by the
on-disk result cache of :mod:`repro.bench.sweep`; ``--no-cache`` forces
every cell to execute.  Without ``--jobs`` the experiment runs inline in
this process, uncached.  Either way the output is bit-identical.

Examples
--------

::

    python -m repro list
    python -m repro run fig05_local_vs_distributed
    python -m repro run fig07_amd_scalability --full --jobs 4
    python -m repro all --jobs 0
    python -m repro machine --preset sapphire-rapids
"""

import argparse
import inspect
import sys
from typing import Dict, List

from repro.bench import experiments
from repro.bench.plot import ascii_plot

#: experiments in paper order
EXPERIMENT_ORDER = [
    "fig01_summary",
    "fig03_latency_cdf",
    "fig04_channels",
    "fig05_local_vs_distributed",
    "fig07_amd_scalability",
    "tab1_chiplet_accesses",
    "fig08_intel_scalability",
    "fig09_streamcluster",
    "tab2_streamcluster_accesses",
    "fig10_datasize",
    "fig11_sgd",
    "fig12_concurrency",
    "fig13_tpch",
    "fig14_oltp",
    "sens_threshold",
    "abl_stealing",
    "abl_spread",
    "ext_genoa_whatif",
    "ext_colocation",
]


def _experiments() -> Dict[str, object]:
    return {name: getattr(experiments, name) for name in EXPERIMENT_ORDER}


def _render(name: str, rows, text: str) -> None:
    print(text)
    if isinstance(rows, dict):
        numeric = {
            k: v for k, v in rows.items()
            if isinstance(v, list) and v and isinstance(v[0], tuple)
        }
        if numeric:
            print()
            print(ascii_plot(numeric, title=f"{name} (series view)", x_label="cores"))
    print()


def _run_one(name: str, full: bool, jobs=None, use_cache: bool = True) -> None:
    if jobs is not None:
        from repro.bench import sweep

        rows, text, stats = sweep.run_experiment(
            name, quick=not full, jobs=jobs, use_cache=use_cache,
            progress=sweep._progress)
        _render(name, rows, text)
        _print_sweep_stats(stats)
        return
    fn = _experiments()[name]
    kwargs = {}
    if "quick" in inspect.signature(fn).parameters:
        kwargs["quick"] = not full
    rows, text = fn(**kwargs)
    _render(name, rows, text)


def _print_sweep_stats(stats) -> None:
    print(f"[sweep] {stats.total} cells: {stats.executed} executed, "
          f"{stats.cache_hits} from cache, {stats.wall_s:.1f}s "
          f"(jobs={stats.jobs})", file=sys.stderr)


def cmd_list(_args) -> int:
    exps = _experiments()
    width = max(len(n) for n in exps)
    for name, fn in exps.items():
        doc = (fn.__doc__ or "").strip().splitlines()
        print(f"{name:<{width}}  {doc[0] if doc else ''}")
    return 0


def cmd_run(args) -> int:
    if args.experiment not in _experiments():
        print(f"unknown experiment {args.experiment!r}; see `python -m repro list`",
              file=sys.stderr)
        return 2
    _run_one(args.experiment, args.full, jobs=args.jobs,
             use_cache=not args.no_cache)
    return 0


def cmd_all(args) -> int:
    if args.jobs is not None:
        from repro.bench import sweep

        sections, stats = sweep.run_many(
            EXPERIMENT_ORDER, quick=not args.full, jobs=args.jobs,
            use_cache=not args.no_cache, progress=sweep._progress)
        for name, rows, text in sections:
            print(f"### {name}")
            _render(name, rows, text)
        _print_sweep_stats(stats)
        return 0
    for name in EXPERIMENT_ORDER:
        print(f"### {name}")
        _run_one(name, args.full)
    return 0


def cmd_machine(args) -> int:
    from repro.hw.machine import genoa, milan, sapphire_rapids

    presets = {
        "milan": milan,
        "sapphire-rapids": sapphire_rapids,
        "genoa": genoa,
    }
    if args.preset not in presets:
        print(f"unknown preset {args.preset!r}; have {sorted(presets)}", file=sys.stderr)
        return 2
    m = presets[args.preset](scale=args.scale)
    print(m.describe())
    topo, lat = m.topo, m.latency
    probes: List[tuple] = [("same chiplet", 0, 1)]
    if topo.chiplets_per_socket > 1:
        probes.append(("cross chiplet, same socket", 0, topo.cores_per_chiplet))
    if topo.sockets > 1:
        probes.append(("cross socket", 0, topo.cores_per_socket))
    print("core-to-core latencies:")
    for label, a, b in probes:
        print(f"  {label:<28s} {lat.core_to_core_ns(topo, a, b):7.1f} ns")
    print(f"  local L3 hit                 {lat.l3_hit:7.1f} ns")
    print(f"  DRAM (local / remote node)   {lat.dram_local:7.1f} / {lat.dram_remote:.1f} ns")
    return 0


def _add_sweep_args(p) -> None:
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="shard cells across N worker processes with the "
                        "on-disk result cache (0 = auto-size; omit to run "
                        "inline, uncached)")
    p.add_argument("--no-cache", action="store_true",
                   help="with --jobs: ignore and don't write the result cache")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="CHARM reproduction experiment runner")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(fn=cmd_list)

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment")
    run_p.add_argument("--full", action="store_true", help="full paper-shaped sweep")
    _add_sweep_args(run_p)
    run_p.set_defaults(fn=cmd_run)

    all_p = sub.add_parser("all", help="run the whole evaluation")
    all_p.add_argument("--full", action="store_true")
    _add_sweep_args(all_p)
    all_p.set_defaults(fn=cmd_all)

    m_p = sub.add_parser("machine", help="describe a machine preset")
    m_p.add_argument("--preset", default="milan")
    m_p.add_argument("--scale", type=int, default=32)
    m_p.set_defaults(fn=cmd_machine)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
