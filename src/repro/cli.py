"""Command-line interface: ``python -m repro <command>``.

Commands
--------

- ``list``                      — list all reproducible experiments;
- ``run <experiment> [--full]`` — run one experiment and print its table
  (and an ASCII chart for series-shaped results);
- ``all [--full]``              — run the whole evaluation in order;
- ``machine [--preset X]``      — describe a machine preset and its
  latency hierarchy;
- ``trace <experiment>``        — run one cell of an experiment with full
  telemetry attached and export a merged Chrome-trace JSON (loadable in
  Perfetto / ``chrome://tracing``) plus a text digest;
- ``dse [--budget N]``          — budget-driven design-space exploration
  over machine geometry, reduced to Pareto frontiers and a CHARM-vs-
  baselines summary (:mod:`repro.bench.dse`);
- ``serve [--port P --jobs N]`` — the placement-advisor service: an
  asyncio HTTP/JSON server answering what-if placement queries through
  a hot cache, the shared result store, and a warm simulation pool
  (:mod:`repro.serve.app`);
- ``cache stats|gc``            — inspect or garbage-collect the sweep
  result store (``gc --older-than DAYS`` also age-trims live entries).

``run`` and ``all`` accept ``--jobs N`` to shard the experiment cells
across N worker processes (``0`` = auto-size to the host), backed by the
on-disk result cache of :mod:`repro.bench.sweep`; ``--no-cache`` forces
every cell to execute.  Without ``--jobs`` the experiment runs inline in
this process, uncached.  Either way the output is bit-identical.

Examples
--------

::

    python -m repro list
    python -m repro run fig05_local_vs_distributed
    python -m repro run fig07_amd_scalability --full --jobs 4
    python -m repro run fig07_amd_scalability --jobs 1 --telemetry
    python -m repro all --jobs 0
    python -m repro machine --preset sapphire-rapids
    python -m repro trace fig07_amd_scalability
"""

import argparse
import inspect
import sys
from typing import Dict, List

from repro.bench import experiments
from repro.bench.plot import ascii_plot

#: experiments in paper order
EXPERIMENT_ORDER = [
    "fig01_summary",
    "fig03_latency_cdf",
    "fig04_channels",
    "fig05_local_vs_distributed",
    "fig07_amd_scalability",
    "tab1_chiplet_accesses",
    "fig08_intel_scalability",
    "fig09_streamcluster",
    "tab2_streamcluster_accesses",
    "fig10_datasize",
    "fig11_sgd",
    "fig12_concurrency",
    "fig13_tpch",
    "fig14_oltp",
    "sens_threshold",
    "abl_stealing",
    "abl_spread",
    "ext_genoa_whatif",
    "ext_colocation",
]


def _experiments() -> Dict[str, object]:
    return {name: getattr(experiments, name) for name in EXPERIMENT_ORDER}


def _render(name: str, rows, text: str) -> None:
    print(text)
    if isinstance(rows, dict):
        numeric = {
            k: v for k, v in rows.items()
            if isinstance(v, list) and v and isinstance(v[0], tuple)
        }
        if numeric:
            print()
            print(ascii_plot(numeric, title=f"{name} (series view)", x_label="cores"))
    print()


def _run_one(name: str, full: bool, jobs=None, use_cache: bool = True,
             telemetry: bool = False) -> None:
    if telemetry and jobs is None:
        jobs = 1  # telemetry summaries ride on the sweep path
    if jobs is not None:
        from repro.bench import sweep

        rows, text, stats = sweep.run_experiment(
            name, quick=not full, jobs=jobs, use_cache=use_cache,
            progress=sweep._progress, telemetry=telemetry)
        _render(name, rows, text)
        _print_sweep_stats(stats)
        return
    fn = _experiments()[name]
    kwargs = {}
    if "quick" in inspect.signature(fn).parameters:
        kwargs["quick"] = not full
    rows, text = fn(**kwargs)
    _render(name, rows, text)


def _print_sweep_stats(stats) -> None:
    print(f"[sweep] {stats.total} cells: {stats.executed} executed, "
          f"{stats.cache_hits} from cache, {stats.wall_s:.1f}s "
          f"(jobs={stats.jobs})", file=sys.stderr)


def cmd_list(_args) -> int:
    exps = _experiments()
    width = max(len(n) for n in exps)
    for name, fn in exps.items():
        doc = (fn.__doc__ or "").strip().splitlines()
        print(f"{name:<{width}}  {doc[0] if doc else ''}")
    return 0


def cmd_run(args) -> int:
    if args.experiment not in _experiments():
        print(f"unknown experiment {args.experiment!r}; see `python -m repro list`",
              file=sys.stderr)
        return 2
    _run_one(args.experiment, args.full, jobs=args.jobs,
             use_cache=not args.no_cache, telemetry=args.telemetry)
    return 0


def cmd_all(args) -> int:
    jobs = args.jobs
    if args.telemetry and jobs is None:
        jobs = 1
    if jobs is not None:
        from repro.bench import sweep

        sections, stats = sweep.run_many(
            EXPERIMENT_ORDER, quick=not args.full, jobs=jobs,
            use_cache=not args.no_cache, progress=sweep._progress,
            telemetry=args.telemetry)
        for name, rows, text in sections:
            print(f"### {name}")
            _render(name, rows, text)
        _print_sweep_stats(stats)
        return 0
    for name in EXPERIMENT_ORDER:
        print(f"### {name}")
        _run_one(name, args.full)
    return 0


def cmd_machine(args) -> int:
    from repro.hw.machine import genoa, milan, sapphire_rapids

    presets = {
        "milan": milan,
        "sapphire-rapids": sapphire_rapids,
        "genoa": genoa,
    }
    if args.preset not in presets:
        print(f"unknown preset {args.preset!r}; have {sorted(presets)}", file=sys.stderr)
        return 2
    m = presets[args.preset](scale=args.scale)
    print(m.describe())
    topo, lat = m.topo, m.latency
    probes: List[tuple] = [("same chiplet", 0, 1)]
    if topo.chiplets_per_socket > 1:
        probes.append(("cross chiplet, same socket", 0, topo.cores_per_chiplet))
    if topo.sockets > 1:
        probes.append(("cross socket", 0, topo.cores_per_socket))
    print("core-to-core latencies:")
    for label, a, b in probes:
        print(f"  {label:<28s} {lat.core_to_core_ns(topo, a, b):7.1f} ns")
    print(f"  local L3 hit                 {lat.l3_hit:7.1f} ns")
    print(f"  DRAM (local / remote node)   {lat.dram_local:7.1f} / {lat.dram_remote:.1f} ns")
    return 0


def _pick_trace_cell(cells, selector):
    """Choose the cell to trace: ``--cell`` substring match, else the
    first CHARM cell (so the exported trace shows the Alg. 1 decision
    loop), else the first cell."""
    if selector:
        for cell in cells:
            if selector in cell.cell_id:
                return cell
        return None
    for cell in cells:
        if "charm" in cell.strategy:
            return cell
    return cells[0]


def cmd_trace(args) -> int:
    from pathlib import Path

    from repro.bench.cells import REGISTRY, execute_cell
    from repro.obs import capture
    from repro.obs.export import text_summary, write_chrome_trace, write_metrics_csv, \
        write_metrics_json

    if args.experiment not in REGISTRY:
        known = sorted(n for n in REGISTRY if n in EXPERIMENT_ORDER)
        print(f"unknown experiment {args.experiment!r}; celled experiments: {known}",
              file=sys.stderr)
        return 2
    cells = REGISTRY[args.experiment].cells(not args.full)
    cell = _pick_trace_cell(cells, args.cell)
    if cell is None:
        print(f"no cell of {args.experiment!r} matches --cell {args.cell!r}; "
              f"have: {[c.cell_id for c in cells]}", file=sys.stderr)
        return 2

    print(f"[trace] {cell.cell_id}", file=sys.stderr)
    with capture(interval_ns=args.interval) as cap:
        execute_cell(cell)
    if not cap.telemetries:
        print("no runtime was constructed while tracing this cell", file=sys.stderr)
        return 1

    serve_doc = None
    if args.serve:
        import json as _json

        with open(args.serve) as fh:
            serve_doc = _json.load(fh)

    out = Path(args.out or f"results/trace_{args.experiment}.json")
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as fh:
        n_events = write_chrome_trace(cap.telemetries, fh, serve_doc=serve_doc)

    print(text_summary(cap.primary()))
    print(f"trace: {n_events} events from {len(cap.telemetries)} runtime(s) -> {out}")
    if serve_doc is not None:
        print(f"merged {len(serve_doc.get('traceEvents', []))} serve events "
              f"from {args.serve}")
    print("open in https://ui.perfetto.dev or chrome://tracing")

    if args.metrics:
        mpath = Path(args.metrics)
        mpath.parent.mkdir(parents=True, exist_ok=True)
        tel = cap.primary()
        if mpath.suffix == ".csv":
            with open(mpath, "w") as fh:
                rows = write_metrics_csv(tel, fh)
            print(f"metrics: {rows} samples -> {mpath}")
        else:
            with open(mpath, "w") as fh:
                write_metrics_json(tel, fh)
            print(f"metrics: json -> {mpath}")
    return 0


def cmd_dse(args) -> int:
    from repro.bench import dse

    argv = ["--budget", str(args.budget), "--jobs", str(args.jobs),
            "--out", str(args.out), "--order", args.order]
    if args.no_cache:
        argv.append("--no-cache")
    return dse.main(argv)


def cmd_cache(args) -> int:
    import json

    from repro.bench import sweep

    if args.action == "stats":
        print(json.dumps(sweep.cache_stats(), indent=2))
        return 0
    # gc: stale (code-version-mismatched) entries always go; --older-than
    # additionally trims live entries by age.
    removed = sweep.cache_gc(older_than_days=args.older_than)
    print(json.dumps(removed, indent=2))
    return 0


def _add_sweep_args(p) -> None:
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="shard cells across N worker processes with the "
                        "on-disk result cache (0 = auto-size; omit to run "
                        "inline, uncached)")
    p.add_argument("--no-cache", action="store_true",
                   help="with --jobs: ignore and don't write the result cache")
    p.add_argument("--telemetry", action="store_true",
                   help="attach a per-cell telemetry summary to every result "
                        "(cached under separate keys; implies --jobs 1 when "
                        "--jobs is omitted)")


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # the advisor service owns its own argparse (--port/--jobs/--store/...);
    # hand everything after `serve` straight through
    if argv and argv[0] == "serve":
        from repro.serve import app

        return app.main(list(argv[1:]))
    parser = argparse.ArgumentParser(
        prog="repro", description="CHARM reproduction experiment runner")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(fn=cmd_list)

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment")
    run_p.add_argument("--full", action="store_true", help="full paper-shaped sweep")
    _add_sweep_args(run_p)
    run_p.set_defaults(fn=cmd_run)

    all_p = sub.add_parser("all", help="run the whole evaluation")
    all_p.add_argument("--full", action="store_true")
    _add_sweep_args(all_p)
    all_p.set_defaults(fn=cmd_all)

    dse_p = sub.add_parser(
        "dse", help="design-space exploration: budget-driven geometry sweep "
                    "reduced to Pareto frontiers")
    dse_p.add_argument("--budget", type=int, default=1000, metavar="N",
                       help="max cells (configs × workloads × policies); "
                            "default 1000")
    dse_p.add_argument("--jobs", type=int, default=0, metavar="N",
                       help="worker processes (0 = auto from CPU affinity)")
    dse_p.add_argument("--out", default="results/dse", metavar="DIR",
                       help="output directory (cells.csv, frontier_*.csv, "
                            "summary.txt)")
    dse_p.add_argument("--order", choices=("ljf", "fifo"), default="ljf",
                       help="scheduling order (fifo = pre-cost-model engine, "
                            "for comparison)")
    dse_p.add_argument("--no-cache", action="store_true",
                       help="ignore and don't write the result store")
    dse_p.set_defaults(fn=cmd_dse)

    # `serve` is dispatched before parsing (its flags are owned by
    # repro.serve.app); registered here only so `repro -h` lists it
    sub.add_parser(
        "serve", help="run the placement-advisor HTTP service "
                      "(hot cache + result store + warm simulation pool); "
                      "see `python -m repro serve --help`")

    cache_p = sub.add_parser(
        "cache", help="inspect or garbage-collect the sweep result store")
    cache_p.add_argument("action", choices=("stats", "gc"),
                         help="stats: size/entries/hits; gc: drop entries "
                              "whose code version no longer matches")
    cache_p.add_argument("--older-than", type=float, default=None,
                         metavar="DAYS",
                         help="with gc: only collect entries last used more "
                              "than DAYS ago (also trims live entries by age)")
    cache_p.set_defaults(fn=cmd_cache)

    m_p = sub.add_parser("machine", help="describe a machine preset")
    m_p.add_argument("--preset", default="milan")
    m_p.add_argument("--scale", type=int, default=32)
    m_p.set_defaults(fn=cmd_machine)

    t_p = sub.add_parser(
        "trace", help="trace one experiment cell and export a Chrome trace")
    t_p.add_argument("experiment")
    t_p.add_argument("--cell", default=None, metavar="SUBSTR",
                     help="select the cell whose id contains SUBSTR "
                          "(default: first CHARM cell, else first cell)")
    t_p.add_argument("--full", action="store_true",
                     help="pick from the full paper-shaped cell list")
    t_p.add_argument("--out", default=None, metavar="PATH",
                     help="trace output path "
                          "(default: results/trace_<experiment>.json)")
    t_p.add_argument("--metrics", default=None, metavar="PATH",
                     help="also dump sampled metric series + decisions "
                          "(.csv -> wide CSV, otherwise JSON)")
    t_p.add_argument("--interval", type=float, default=None, metavar="NS",
                     help="sampling interval in virtual ns "
                          "(default: the strategy's scheduler timer)")
    t_p.add_argument("--serve", default=None, metavar="PATH",
                     help="merge a serve-side trace (GET /debug/trace "
                          "JSON, or loadgen --trace-out) into the output")
    t_p.set_defaults(fn=cmd_trace)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
