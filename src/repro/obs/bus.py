"""Telemetry event bus with a null-sink fast path.

Instrumented objects (``Machine``, ``CacheSystem``, ``Worker`` via the
runtime, ``CharmStrategy`` via the runtime) hold an ``obs`` attribute that
is ``None`` by default, so the *detached* cost of every instrumentation
point is one attribute load plus one ``is None`` branch.  When telemetry
is attached but a topic has no subscribers, :meth:`EventBus.emit` is one
dict lookup and a falsy check — the "null sink" the perf gate measures.

Events are plain keyword dicts.  Every emit site sits at *batch* or
*decision* granularity (one event per serviced access batch, per cache
bulk operation, per policy evaluation, per steal/migration), never inside
per-block hot loops, so even a fully subscribed bus stays cheap relative
to the work it annotates.

The bus is observation-only by contract: subscribers receive references
to already-updated state and must not mutate simulator state.  The
bit-identity property test (tests/test_obs_equivalence.py) enforces the
contract end to end.
"""

from typing import Callable, Dict, List

Subscriber = Callable[[str, dict], None]


class EventBus:
    """Topic -> subscriber fan-out; no-op when a topic has no subscribers."""

    __slots__ = ("subs", "counts")

    def __init__(self) -> None:
        self.subs: Dict[str, List[Subscriber]] = {}
        # Per-topic emit tallies.  Counting happens only when the topic has
        # at least one subscriber, so the null sink stays count-free too.
        self.counts: Dict[str, int] = {}

    def subscribe(self, topic: str, fn: Subscriber) -> None:
        self.subs.setdefault(topic, []).append(fn)

    def emit(self, topic: str, fields: dict) -> None:
        subs = self.subs.get(topic)
        if not subs:
            return
        counts = self.counts
        counts[topic] = counts.get(topic, 0) + 1
        for fn in subs:
            fn(topic, fields)

    def topics(self) -> List[str]:
        return sorted(self.subs)
