"""Performance profiling utilities (paper section 4.5).

Historically ``repro.runtime.profiler``; that path re-exports this
module.  The virtual-time *interval* sampler built on the same signals
lives in :mod:`repro.obs.sampler`.

The low-level signal — per-worker fill counters classified by source — is
collected inline by the workers (zero extra simulation cost, mirroring the
paper's user-space PMU reads).  This module adds the analysis layer:

- :class:`WorkerSample` / :func:`sample_workers` — point-in-time snapshots
  of each worker's counters, spread rate and core;
- :func:`utilization` — busy fraction per worker from a run report;
- :class:`ProfileLog` — an append-only record of samples that examples and
  experiments use to inspect adaptation over time (e.g. spread-rate
  convergence, Fig. 12-style concurrency curves).
"""

from dataclasses import dataclass
from typing import Dict, List, TYPE_CHECKING

from repro.hw.counters import FillSource

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import Runtime, RunReport


@dataclass(frozen=True)
class WorkerSample:
    """Snapshot of one worker's state at a virtual time."""

    time_ns: float
    worker_id: int
    core: int
    chiplet: int
    spread_rate: int
    local_fills: int
    remote_fills: int
    dram_fills: int
    tasks_done: int


def sample_workers(runtime: "Runtime") -> List[WorkerSample]:
    """Snapshot every worker (callable between or after runs)."""
    topo = runtime.machine.topo
    out = []
    for w in runtime.workers:
        c = w.fills.counts
        out.append(
            WorkerSample(
                time_ns=w.clock,
                worker_id=w.worker_id,
                core=w.core,
                chiplet=topo.chiplet_of_core(w.core),
                spread_rate=w.spread_rate,
                local_fills=c[FillSource.LOCAL_CHIPLET],
                remote_fills=w.fills.remote_fills(),
                dram_fills=w.fills.dram_fills(),
                tasks_done=w.tasks_done,
            )
        )
    return out


def utilization(report: "RunReport") -> List[float]:
    """Per-worker busy fraction over the run."""
    if report.wall_ns <= 0:
        return [0.0] * report.n_workers
    return [min(1.0, b / report.wall_ns) for b in report.per_worker_busy_ns]


def fill_breakdown(report: "RunReport") -> Dict[str, int]:
    """Aggregate fill counts by source (Tab. 1 / Tab. 2 shape)."""
    return report.counters.as_row()


def concurrency_series(report: "RunReport", buckets: int = 40):
    """Bucketed average concurrency over the run (the Fig. 12 curves).

    Returns ``[(bucket_end_ns, avg_running_tasks), ...]`` computed from the
    report's concurrency timeline (requires ``collect_timeline=True``).
    """
    tl = report.cumulative_concurrency()
    if len(tl) < 2 or buckets < 1:
        return []
    t0, t1 = tl[0][0], tl[-1][0]
    if t1 <= t0:
        return []
    width = (t1 - t0) / buckets
    out = []
    area = 0.0
    edge = t0 + width
    prev_t, prev_c = tl[0]
    idx = 0
    for t, c in tl[1:]:
        while t > edge:
            area += prev_c * (edge - prev_t)
            out.append((edge, area / width))
            area = 0.0
            prev_t = edge
            edge += width
        area += prev_c * (t - prev_t)
        prev_t, prev_c = t, c
    area += prev_c * max(0.0, edge - prev_t)
    out.append((edge, area / width))
    return out


class ProfileLog:
    """Append-only sample log for adaptation studies."""

    def __init__(self) -> None:
        self.samples: List[WorkerSample] = []

    def record(self, runtime: "Runtime") -> None:
        self.samples.extend(sample_workers(runtime))

    def spread_of(self, worker_id: int) -> List[int]:
        return [s.spread_rate for s in self.samples if s.worker_id == worker_id]

    def last_by_worker(self) -> Dict[int, WorkerSample]:
        out: Dict[int, WorkerSample] = {}
        for s in self.samples:
            out[s.worker_id] = s
        return out
