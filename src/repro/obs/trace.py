"""Execution tracing: per-task and per-worker event timelines.

The paper's profiler (section 4.5) can "monitor only specific code
segments, providing detailed and accurate results for individual tasks or
threads".  This module is that facility for the simulated runtime: an
opt-in tracer that records dispatch/pause/finish/migration events with
virtual timestamps, plus analysis helpers (per-task latency breakdowns,
per-worker occupancy, a Chrome-trace-format exporter for visual
inspection).

Tracing costs nothing in virtual time (the real CHARM's claim of 5-10%
polling overhead applies to hardware PMU reads, which the simulation gets
for free) and is off by default.

Events carry the worker's chiplet and NUMA node at event time, so a
migration is a *pair* of locations (``src_core``/``src_chiplet`` ->
``core``/``chiplet``) and the merged exporter in :mod:`repro.obs.export`
can draw it as a cross-lane arrow between chiplet lanes in Perfetto.

Historically ``repro.runtime.trace``; that path re-exports this module.
"""

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, TextIO

from enum import Enum

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import Runtime
    from repro.runtime.task import Task
    from repro.runtime.worker import Worker


class EventKind(Enum):
    DISPATCH = "dispatch"
    PAUSE = "pause"
    FINISH = "finish"
    MIGRATE = "migrate"


@dataclass(frozen=True)
class TraceEvent:
    time_ns: float
    kind: EventKind
    worker_id: int
    core: int
    task_id: Optional[int] = None
    task_name: str = ""
    detail: str = ""
    # Location fields (PR 5): -1 means "not recorded" so events built by
    # older callers/tests stay constructible unchanged.
    chiplet: int = -1
    numa: int = -1
    src_core: int = -1
    src_chiplet: int = -1


@dataclass
class TaskSummary:
    """Aggregated view of one task's lifetime."""

    task_id: int
    name: str
    spans: List[tuple] = field(default_factory=list)  # (start, end, worker)

    @property
    def run_ns(self) -> float:
        return sum(e - s for s, e, _ in self.spans)

    @property
    def first_start(self) -> float:
        return self.spans[0][0] if self.spans else 0.0

    @property
    def last_end(self) -> float:
        return self.spans[-1][1] if self.spans else 0.0

    @property
    def workers_used(self) -> List[int]:
        return sorted({w for _, _, w in self.spans})


class Tracer:
    """Attach to a runtime before ``run()`` to record its timeline.

    Works by wrapping the runtime's dispatch/pause/finish callbacks, so it
    composes with any strategy and never perturbs virtual time.
    """

    def __init__(self, runtime: "Runtime"):
        self.runtime = runtime
        self.events: List[TraceEvent] = []
        self._open_span: Dict[int, tuple] = {}  # task_id -> (start, worker)
        self._summaries: Dict[int, TaskSummary] = {}
        self._chiplet_of = runtime.machine.topo.chiplet_of_core_table
        self._numa_of = runtime.machine.topo.numa_of_core_table
        self._installed = False
        self.install()

    # -- Hook installation ------------------------------------------------------

    def install(self) -> None:
        if self._installed:
            return
        rt = self.runtime
        orig_dispatch = rt.on_dispatch
        orig_paused = rt.on_task_paused
        orig_done = rt.task_done
        orig_migrate = rt.request_migration

        def on_dispatch(worker: "Worker", task: "Task"):
            self._record(EventKind.DISPATCH, worker, task)
            self._open_span[task.task_id] = (worker.clock, worker.worker_id)
            orig_dispatch(worker, task)

        def on_task_paused(worker: "Worker"):
            task = worker.current
            self._close_span(task, worker.clock)
            self._record(EventKind.PAUSE, worker, task)
            orig_paused(worker)

        def task_done(task: "Task", worker: "Worker"):
            self._close_span(task, worker.clock)
            self._record(EventKind.FINISH, worker, task)
            orig_done(task, worker)

        def request_migration(worker: "Worker", target_core: int) -> bool:
            before = worker.core
            granted = orig_migrate(worker, target_core)
            if granted and worker.core != before:
                self.events.append(TraceEvent(
                    worker.clock, EventKind.MIGRATE, worker.worker_id, worker.core,
                    detail=f"core {before} -> {worker.core}",
                    chiplet=self._chiplet_of[worker.core],
                    numa=self._numa_of[worker.core],
                    src_core=before,
                    src_chiplet=self._chiplet_of[before],
                ))
            return granted

        rt.on_dispatch = on_dispatch
        rt.on_task_paused = on_task_paused
        rt.task_done = task_done
        rt.request_migration = request_migration
        self._installed = True

    # -- Recording ----------------------------------------------------------------

    def _record(self, kind: EventKind, worker: "Worker", task: Optional["Task"]) -> None:
        self.events.append(TraceEvent(
            worker.clock, kind, worker.worker_id, worker.core,
            task_id=task.task_id if task else None,
            task_name=task.name if task else "",
            chiplet=self._chiplet_of[worker.core],
            numa=self._numa_of[worker.core],
        ))

    def _close_span(self, task: Optional["Task"], end: float) -> None:
        if task is None:
            return
        span = self._open_span.pop(task.task_id, None)
        if span is None:
            return
        start, worker_id = span
        summary = self._summaries.setdefault(
            task.task_id, TaskSummary(task.task_id, task.name))
        summary.spans.append((start, end, worker_id))

    # -- Analysis -------------------------------------------------------------------

    def task_summaries(self) -> List[TaskSummary]:
        return sorted(self._summaries.values(), key=lambda s: s.task_id)

    def migrations(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind is EventKind.MIGRATE]

    def worker_occupancy(self, wall_ns: float) -> Dict[int, float]:
        """Fraction of the run each worker spent executing task spans."""
        busy: Dict[int, float] = {}
        for s in self._summaries.values():
            for start, end, wid in s.spans:
                busy[wid] = busy.get(wid, 0.0) + (end - start)
        if wall_ns <= 0:
            return {w: 0.0 for w in busy}
        return {w: min(1.0, b / wall_ns) for w, b in busy.items()}

    def longest_tasks(self, n: int = 10) -> List[TaskSummary]:
        return sorted(self._summaries.values(), key=lambda s: -s.run_ns)[:n]

    # -- Export ---------------------------------------------------------------------

    def to_chrome_trace(self, fh: TextIO) -> int:
        """Write Chrome trace-event JSON (load in chrome://tracing / Perfetto).

        Returns the number of events written.  Durations use the task
        spans; instant events mark migrations.  The *merged* exporter
        (task spans + policy decisions + counter series) lives in
        :func:`repro.obs.export.write_chrome_trace`.
        """
        out = []
        for s in self._summaries.values():
            for start, end, wid in s.spans:
                out.append({
                    "name": s.name, "ph": "X", "ts": start / 1000.0,
                    "dur": max(end - start, 1.0) / 1000.0,
                    "pid": 0, "tid": wid, "args": {"task_id": s.task_id},
                })
        for e in self.migrations():
            out.append({
                "name": "migrate", "ph": "i", "ts": e.time_ns / 1000.0,
                "pid": 0, "tid": e.worker_id, "s": "t",
                "args": {"detail": e.detail},
            })
        json.dump({"traceEvents": out}, fh)
        return len(out)
