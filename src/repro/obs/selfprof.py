"""Wall-clock self-profiler: where does *simulator* time go?

Unlike everything else in ``repro.obs`` — which observes the simulated
machine in virtual time — this profiler observes the simulator itself in
host wall-clock time, attributing it to the kernel paths introduced by
the perf PRs:

- ``scalar``         — the per-access fallback loop (``Machine._scalar_span``)
- ``vec_miss``       — vectorized DRAM-fill segments (``dram_fill_segment``)
- ``vec_hit``        — vectorized local-hit segments (``local_hit_segment``)
- ``vec_peer``       — vectorized peer-fill segments (``peer_fill_segment``)
- ``vec_gather``     — whole-batch gather kernel on unsorted unique
  batches (``gather_segment``, no duplicates present)
- ``vec_dup_replay`` — the same kernel when repeats were replayed as hits
- ``hot_replay``     — the O(1) cached re-read fast path in ``access_run``
- ``access``         — single-access ``Machine.access`` calls
- ``program``        — the worker's compiled op-program walk
  (``Worker._run_program``), net of the kernel time above
- ``orchestration``  — everything else inside a worker step: generator
  re-entry, op dispatch, scheduling bookkeeping (net of kernels and the
  program walk)

Attach with ``machine.profiler = KernelProfiler()`` before running.
Timing uses ``perf_counter`` around the kernel call only; it reads no
simulator state and feeds nothing back, so virtual time is unchanged by
construction (asserted by ``repro.bench.perf --profile``, which checks
the profiled re-run reproduces ``sim_wall_ns`` bit-identically).

The report lands in ``BENCH_simperf.json`` under ``kernel_profile`` so
the perf trajectory is self-explaining: a regression shows up as share
shifting between paths, not just as a lower accesses/sec number.
"""

from typing import Dict

PATHS = ("scalar", "vec_miss", "vec_hit", "vec_peer", "vec_gather",
         "vec_dup_replay", "hot_replay", "access", "program",
         "orchestration")


class KernelProfiler:
    """Per-path call/access/wall-clock tallies for the access kernels."""

    __slots__ = ("calls", "accesses", "wall_s")

    def __init__(self) -> None:
        self.calls: Dict[str, int] = {p: 0 for p in PATHS}
        self.accesses: Dict[str, int] = {p: 0 for p in PATHS}
        self.wall_s: Dict[str, float] = {p: 0.0 for p in PATHS}

    def add(self, path: str, n_accesses: int, wall_s: float) -> None:
        self.calls[path] += 1
        self.accesses[path] += n_accesses
        self.wall_s[path] += wall_s

    def total_wall_s(self) -> float:
        return sum(self.wall_s.values())

    def report(self) -> Dict[str, Dict]:
        """JSON-native per-path breakdown with wall-clock shares."""
        total = self.total_wall_s()
        out: Dict[str, Dict] = {}
        for p in PATHS:
            if self.calls[p] == 0:
                continue
            wall = self.wall_s[p]
            out[p] = {
                "calls": self.calls[p],
                "accesses": self.accesses[p],
                "wall_s": round(wall, 6),
                "share": round(wall / total, 4) if total > 0 else 0.0,
            }
        return out
