"""Virtual-time interval sampler: periodic machine/runtime snapshots.

Ticks are driven by the instrumented virtual-time stream itself (runtime
hook wrappers and ``hw.batch`` bus events feed :meth:`maybe_sample`); at
most one sample is taken per ``interval_ns`` of virtual time, stamped
with the actual trigger time.  Because a sample is only taken when
``now >= next`` and ``next`` then jumps past ``now``, recorded
timestamps are strictly increasing even though per-worker clocks are not
globally ordered.

Sampling reads state (cache occupancy/hit counters, server busy/backlog,
worker spread and fill vectors) and writes only to its own ring buffer —
it never touches clocks, counters, or LRU order, which is the
zero-perturbation argument (MODELING.md "Observability") enforced by
tests/test_obs_equivalence.py.

Columns (cumulative unless noted):

- ``l3_occ.ch<i>``       — instantaneous occupancy fraction per chiplet
- ``l3_hits.ch<i>`` / ``l3_misses.ch<i>``
- ``chan_busy.s<i>`` / ``chan_wait.s<i>`` — per-socket channel totals (ns)
- ``chan_backlog.s<i>``  — instantaneous queued-work ns across channels
- ``link_busy.ch<i>`` / ``link_backlog.ch<i>`` — per-chiplet fabric link
- ``xlink_busy`` / ``xlink_backlog`` — cross-socket links, summed
- ``spread.w<i>``        — instantaneous per-worker spread rate
- ``fills.w<i>.<source>``— per-worker per-source fill counts
- ``migrations``         — granted migrations, summed over workers

Rate-style views (hit rate, remote-fill rate per interval) are derived
from the cumulative columns at export time (:mod:`repro.obs.export`).
"""

from typing import TYPE_CHECKING, List

from repro.hw.counters import FillSource, N_SOURCES
from repro.obs.series import RingSeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import Runtime

_SOURCE_NAMES = [s.value for s in FillSource]


class IntervalSampler:
    """Columnar snapshots of one runtime at virtual-time intervals."""

    def __init__(self, runtime: "Runtime", interval_ns: float = 50_000.0,
                 capacity: int = 4096) -> None:
        if interval_ns <= 0:
            raise ValueError("interval_ns must be > 0")
        self.runtime = runtime
        self.machine = runtime.machine
        self.interval_ns = float(interval_ns)
        self._next = 0.0
        self.ring = RingSeries(self._column_names(), capacity)
        self.maybe_sample(0.0)  # baseline row at t=0

    def _column_names(self) -> List[str]:
        topo = self.machine.topo
        names: List[str] = []
        for c in range(topo.total_chiplets):
            names += [f"l3_occ.ch{c}", f"l3_hits.ch{c}", f"l3_misses.ch{c}"]
        for s in range(topo.sockets):
            names += [f"chan_busy.s{s}", f"chan_wait.s{s}", f"chan_backlog.s{s}"]
        for c in range(topo.total_chiplets):
            names += [f"link_busy.ch{c}", f"link_backlog.ch{c}"]
        names += ["xlink_busy", "xlink_backlog"]
        for w in self.runtime.workers:
            names.append(f"spread.w{w.worker_id}")
            names += [f"fills.w{w.worker_id}.{src}" for src in _SOURCE_NAMES]
        names.append("migrations")
        return names

    def maybe_sample(self, now: float) -> None:
        """Take a sample if the current interval has elapsed."""
        if now < self._next:
            return
        self._sample(now)
        self._next = now + self.interval_ns

    def _sample(self, now: float) -> None:
        row: List[float] = []
        append = row.append
        m = self.machine
        for cache in m.caches.caches:
            append(cache.used_bytes / cache.capacity_bytes if cache.capacity_bytes else 0.0)
            append(cache.hits)
            append(cache.misses)
        for servers in m.channels._servers:
            busy = wait = backlog = 0.0
            for s in servers:
                busy += s.busy_ns
                wait += s.wait_ns
                free = s.free_at - now
                if free > 0.0:
                    backlog += free
            append(busy)
            append(wait)
            append(backlog)
        for s in m.links._servers:
            append(s.busy_ns)
            free = s.free_at - now
            append(free if free > 0.0 else 0.0)
        xbusy = xbacklog = 0.0
        for s in m.xlinks._servers.values():
            xbusy += s.busy_ns
            free = s.free_at - now
            if free > 0.0:
                xbacklog += free
        append(xbusy)
        append(xbacklog)
        migrations = 0
        for w in self.runtime.workers:
            append(w.spread_rate)
            v = w.fills.v
            for i in range(N_SOURCES):
                append(v[i])
            migrations += w.migrations
        append(migrations)
        self.ring.append(now, row)

    # -- Convenience reads -----------------------------------------------------

    @property
    def count(self) -> int:
        return len(self.ring)

    def finish(self, now: float) -> None:
        """Force a final sample at end of run (captures the last interval)."""
        if self.ring.count == 0 or now > self.ring.times[(self.ring.count - 1) % self.ring.capacity]:
            self._sample(now)
            self._next = now + self.interval_ns
