"""Telemetry facade: one object that wires the whole observability stack.

``Telemetry(runtime)`` attaches, in one call:

- the :class:`~repro.obs.bus.EventBus` to ``runtime``, ``machine`` and
  ``machine.caches`` (instrumentation points fire into it);
- the :class:`~repro.obs.trace.Tracer` (task/migration timeline);
- the :class:`~repro.obs.sampler.IntervalSampler` (columnar metric
  series, pulsed by ``hw.batch`` events and runtime hooks);
- the :class:`~repro.obs.decisions.DecisionLog` (Alg. 1 evaluations,
  fed by ``CharmStrategy`` through :meth:`Telemetry.on_policy_decision`).

``mode="null"`` attaches only the bus with zero subscribers — every
instrumentation guard is taken but every event falls into the null sink.
That configuration is what the perf gate measures: the *cost of the
hooks themselves* must stay under 2% on stream/gups
(``repro.bench.perf --telemetry-gate``), and virtual time must be
bit-identical either way (tests/test_obs_equivalence.py).
"""

from typing import TYPE_CHECKING, Dict, Optional

from repro.hw.counters import FillSource
from repro.obs.bus import EventBus
from repro.obs.decisions import DecisionLog, PolicyDecision
from repro.obs.sampler import IntervalSampler
from repro.obs.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import Runtime
    from repro.runtime.worker import Worker

DEFAULT_INTERVAL_NS = 50_000.0


class Telemetry:
    """Attached observability for one runtime (full or null mode)."""

    def __init__(self, runtime: "Runtime", interval_ns: Optional[float] = None,
                 ring_capacity: int = 4096, mode: str = "full") -> None:
        if mode not in ("full", "null"):
            raise ValueError(f"unknown telemetry mode: {mode!r}")
        if runtime.obs is not None:
            raise RuntimeError("runtime already has telemetry attached")
        self.runtime = runtime
        self.mode = mode
        self.bus = EventBus()
        runtime.obs = self
        machine = runtime.machine
        machine.obs = self.bus
        machine.caches.obs = self.bus
        self.tracer: Optional[Tracer] = None
        self.sampler: Optional[IntervalSampler] = None
        self.decisions: Optional[DecisionLog] = None
        self._finished = False
        if mode == "null":
            return
        if interval_ns is None:
            # Default to the policy's own evaluation cadence so samples
            # line up with decision intervals.
            cfg = getattr(runtime.strategy, "config", None)
            interval_ns = getattr(cfg, "scheduler_timer_ns", DEFAULT_INTERVAL_NS)
        self.tracer = Tracer(runtime)
        self.sampler = IntervalSampler(runtime, interval_ns, ring_capacity)
        self.decisions = DecisionLog()
        sampler = self.sampler

        def pulse(topic: str, fields: dict) -> None:
            sampler.maybe_sample(fields["t"])

        def tally(topic: str, fields: dict) -> None:
            # Subscribing at all makes the bus count the topic; kernel
            # activity tallies surface in summary()["events"].
            pass

        self.bus.subscribe("hw.batch", pulse)
        self.bus.subscribe("cache.fill_run", tally)
        self.bus.subscribe("cache.touch_run", tally)
        self.bus.subscribe("worker.steal", tally)
        self._install_pulse_hooks()

    @classmethod
    def null(cls, runtime: "Runtime") -> "Telemetry":
        """Attach hooks-only telemetry (the perf gate's measured config)."""
        return cls(runtime, mode="null")

    # -- Hook plumbing ---------------------------------------------------------

    def _install_pulse_hooks(self) -> None:
        """Pulse the sampler from dispatch/done so compute-only phases
        (no memory batches) still get sampled."""
        rt = self.runtime
        sampler = self.sampler
        orig_dispatch = rt.on_dispatch
        orig_done = rt.task_done

        def on_dispatch(worker, task):
            sampler.maybe_sample(worker.clock)
            orig_dispatch(worker, task)

        def task_done(task, worker):
            sampler.maybe_sample(worker.clock)
            orig_done(task, worker)

        rt.on_dispatch = on_dispatch
        rt.task_done = task_done

    # -- Policy instrumentation (called by CharmStrategy.on_tick) --------------

    def on_policy_decision(self, now: float, worker: "Worker", elapsed_ns: float,
                           counter: int, rate: float, threshold: float,
                           spread_before: int, core_before: int) -> None:
        if self.decisions is None:
            return
        after = worker.spread_rate
        if after > spread_before:
            action = "spread"
        elif after < spread_before:
            action = "compact"
        else:
            action = "hold"
        decision = PolicyDecision(
            time_ns=now, worker_id=worker.worker_id, elapsed_ns=elapsed_ns,
            counter=counter, rate=rate, threshold=threshold, action=action,
            spread_before=spread_before, spread_after=after,
            core_before=core_before, core_after=worker.core,
        )
        self.decisions.record(decision)
        self.sampler.maybe_sample(now)
        self.bus.emit("policy.decision", decision.as_dict())

    # -- Finalization / views --------------------------------------------------

    def finish(self) -> None:
        """Take the final sample (idempotent; called by the exporters)."""
        if self._finished or self.sampler is None:
            self._finished = True
            return
        end = max((w.clock for w in self.runtime.workers), default=0.0)
        self.sampler.finish(end)
        self._finished = True

    def summary(self) -> Dict:
        """Compact JSON-native digest (what sweep --telemetry attaches)."""
        self.finish()
        rt = self.runtime
        machine = rt.machine
        totals = machine.counters.totals()
        out: Dict = {
            "mode": self.mode,
            "events": dict(sorted(self.bus.counts.items())),
            "fills": {s.value: totals[i] for i, s in enumerate(FillSource)},
            "migrations": sum(w.migrations for w in rt.workers),
            "steals": sum(w.steals_ok for w in rt.workers),
            "wall_ns": max((w.clock for w in rt.workers), default=0.0),
        }
        cache_stats = machine.caches.stats()
        out["l3"] = {
            "hit_rate": round(cache_stats["total"]["hit_rate"], 4),
            "occupancy": round(
                sum(c.used_bytes for c in machine.caches.caches)
                / max(1, sum(c.capacity_bytes for c in machine.caches.caches)), 4),
        }
        if self.mode == "null":
            return out
        out["samples"] = self.sampler.count
        out["samples_dropped"] = self.sampler.ring.dropped()
        out["sample_interval_ns"] = self.sampler.interval_ns
        by_action = self.decisions.by_action()
        out["decisions"] = {
            "total": len(self.decisions),
            "spread": by_action.get("spread", 0),
            "compact": by_action.get("compact", 0),
            "hold": by_action.get("hold", 0),
            "migrated": self.decisions.migrations(),
        }
        out["tasks_traced"] = len(self.tracer.task_summaries())
        return out

    def metrics(self) -> Dict:
        """Full JSON-native metrics: summary + every series + decisions."""
        summary = self.summary()  # also finalizes the sampler
        out: Dict = {"summary": summary}
        if self.mode == "null":
            return out
        series: Dict = {}
        ring = self.sampler.ring
        times = [float(t) for t in ring.timestamps()]
        for name, (_, vals) in ring.series().items():
            series[name] = [float(v) for v in vals]
        out["series"] = {"time_ns": times, "columns": series}
        out["decisions"] = [d.as_dict() for d in self.decisions.rows]
        return out
