"""Wall-clock observability primitives for the serving stack.

:mod:`repro.obs` (PR 5) observes *virtual* time under a bit-identity
contract; this module is its wall-clock twin for the code that runs in
real time — the advisor service, the load generator, the sweep engine.
Everything here is stdlib-only (the container carries no prometheus
client, no tracing SDK) and obeys the same contract translated to wall
time: **off means off** — with sampling disabled and nothing scraping,
the per-request cost is a few comparisons and integer adds, gated to
<2% of serve throughput by ``repro.bench.perf --gate``.

Four subsystems, composed by :mod:`repro.serve.observe`:

- **request-scoped span tracing** — :class:`WallClockTracer` samples
  requests (off by default; forceable per request); a sampled request
  carries a :class:`RequestTrace` through the whole answer path, and
  finished traces export as Chrome-trace JSON (``ph:"X"`` spans) that
  merges with the simulator's virtual-time traces in one Perfetto
  timeline;
- **metrics** — :class:`MetricsRegistry` with :class:`Counter` /
  :class:`Gauge` / :class:`Histogram`, rendered in the Prometheus text
  exposition format (``GET /metrics``).  Gauges and counters can be
  callback-backed so live server state (queue depths, store stats) is
  read only at scrape time;
- **SLO monitoring** — :class:`SlidingWindows` keeps per-slot latency
  histograms over 1m/5m/1h windows; :class:`SLOMonitor` computes
  windowed p50/p99, error rate, and multi-window burn rates against an
  error budget, surfacing ``degraded`` into ``/healthz``;
- **flight recorder** — :class:`FlightRecorder`, a bounded ring of
  structured events (slow requests, errors, store journal fallbacks,
  pool restarts) dumped via ``GET /debug/flight`` and on shutdown.
"""

import bisect
import itertools
import math
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "LATENCY_BUCKETS_S",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACE",
    "RequestTrace",
    "SLOConfig",
    "SLOMonitor",
    "SlidingWindows",
    "WallClockTracer",
    "bucket_quantile",
    "process_stats",
    "serve_chrome_events",
]

#: fixed latency histogram boundaries in seconds (Prometheus-style
#: upper bounds; the implicit final bucket is +Inf).  Spans the advisor's
#: regimes: sub-ms hot hits through multi-second cold simulation bursts.
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


# -- metrics registry (Prometheus text exposition) -----------------------------


def _format_value(v: float) -> str:
    if v != v:  # NaN
        return "NaN"
    if v == math.inf:
        return "+Inf"
    if v == -math.inf:
        return "-Inf"
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{str(v).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
        for k, v in sorted(labels.items()))
    return "{" + inner + "}"


class Metric:
    """Base: a named family with HELP/TYPE and one or more samples."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str):
        self.name = name
        self.help = help_text

    def samples(self) -> List[Tuple[str, Dict[str, str], float]]:
        """``(name_suffix, labels, value)`` rows."""
        raise NotImplementedError

    def expose(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} {self.kind}"]
        for suffix, labels, value in self.samples():
            lines.append(
                f"{self.name}{suffix}{_format_labels(labels)} {_format_value(value)}")
        return lines


class Counter(Metric):
    """Monotone counter, optionally labelled, optionally callback-backed.

    ``fn`` (when given) is called at scrape time and must return either a
    number (unlabelled) or a ``{label_value: number}`` dict over
    ``label`` — that is how the registry exposes counts the server
    already keeps exactly (e.g. :class:`~repro.serve.stats.ServerStats`
    per-tier cells) without double bookkeeping on the hot path.
    """

    kind = "counter"

    def __init__(self, name: str, help_text: str, label: Optional[str] = None,
                 fn: Optional[Callable[[], Union[float, Dict[str, float]]]] = None):
        super().__init__(name, help_text)
        self.label = label
        self.fn = fn
        self._values: Dict[str, float] = {}

    def inc(self, amount: float = 1.0, label_value: str = "") -> None:
        self._values[label_value] = self._values.get(label_value, 0.0) + amount

    def value(self, label_value: str = "") -> float:
        return self._values.get(label_value, 0.0)

    def samples(self) -> List[Tuple[str, Dict[str, str], float]]:
        source: Union[float, Dict[str, float]]
        source = self.fn() if self.fn is not None else self._values
        if isinstance(source, dict):
            if self.label is None and source == {"": source.get("", 0.0)}:
                return [("", {}, source.get("", 0.0))]
            return [("", {self.label or "label": k}, float(v))
                    for k, v in sorted(source.items())]
        return [("", {}, float(source))]


class Gauge(Metric):
    """Instantaneous value; callback-backed gauges read at scrape time."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, label: Optional[str] = None,
                 fn: Optional[Callable[[], Union[float, Dict[str, float]]]] = None):
        super().__init__(name, help_text)
        self.label = label
        self.fn = fn
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def samples(self) -> List[Tuple[str, Dict[str, str], float]]:
        source = self.fn() if self.fn is not None else self._value
        if isinstance(source, dict):
            return [("", {self.label or "label": k}, float(v))
                    for k, v in sorted(source.items())]
        return [("", {}, float(source))]


class Histogram(Metric):
    """Cumulative fixed-bucket histogram (Prometheus semantics).

    ``observe`` costs one bisect over the boundaries plus three adds —
    cheap enough for the request hot path.  Bucket counts are exposed
    cumulatively with ``le`` labels, closed by ``le="+Inf"`` equal to
    ``_count``, alongside ``_sum``.
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 buckets: Sequence[float] = LATENCY_BUCKETS_S):
        super().__init__(name, help_text)
        self.bounds: Tuple[float, ...] = tuple(buckets)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)  # +Inf last
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> int:
        """Record ``value``; returns the bucket index (reusable by callers
        that feed the same observation into a sliding window)."""
        idx = bisect.bisect_left(self.bounds, value)
        self.counts[idx] += 1
        self.total += 1
        self.sum += value
        return idx

    def samples(self) -> List[Tuple[str, Dict[str, str], float]]:
        out: List[Tuple[str, Dict[str, str], float]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append(("_bucket", {"le": _format_value(bound)}, float(running)))
        out.append(("_bucket", {"le": "+Inf"}, float(self.total)))
        out.append(("_sum", {}, self.sum))
        out.append(("_count", {}, float(self.total)))
        return out


class MetricsRegistry:
    """An ordered set of metric families rendered as one exposition page."""

    def __init__(self) -> None:
        self._metrics: "Dict[str, Metric]" = {}

    def register(self, metric: Metric) -> Metric:
        if metric.name in self._metrics:
            raise ValueError(f"duplicate metric {metric.name!r}")
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help_text: str, **kw) -> Counter:
        return self.register(Counter(name, help_text, **kw))  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str, **kw) -> Gauge:
        return self.register(Gauge(name, help_text, **kw))  # type: ignore[return-value]

    def histogram(self, name: str, help_text: str, **kw) -> Histogram:
        return self.register(Histogram(name, help_text, **kw))  # type: ignore[return-value]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str) -> Metric:
        return self._metrics[name]

    def expose(self) -> str:
        """The full Prometheus text exposition page (trailing newline)."""
        lines: List[str] = []
        for metric in self._metrics.values():
            lines.extend(metric.expose())
        return "\n".join(lines) + "\n"


# -- sliding-window latency histograms ------------------------------------------


def bucket_quantile(bounds: Sequence[float], counts: Sequence[int],
                    q: float) -> float:
    """Quantile from cumulative-able bucket counts, Prometheus-style.

    ``counts`` are per-bucket (not cumulative) with the +Inf bucket last;
    within the located bucket the value is linearly interpolated between
    its bounds.  The +Inf bucket clamps to the largest finite bound.
    Returns 0.0 for an empty histogram.
    """
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    running = 0.0
    for i, count in enumerate(counts):
        running += count
        if running >= rank and count > 0:
            if i >= len(bounds):  # +Inf bucket
                return float(bounds[-1])
            lo = bounds[i - 1] if i > 0 else 0.0
            hi = bounds[i]
            frac = (rank - (running - count)) / count
            return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
    return float(bounds[-1])


@dataclass
class _Slot:
    """One time slot of the sliding ring: a latency histogram + counts."""

    epoch: int = -1
    count: int = 0
    errors: int = 0
    bad: int = 0  # errors + over-latency-SLO requests (burn-rate numerator)
    sum: float = 0.0
    buckets: List[int] = field(default_factory=list)

    def reset(self, epoch: int, n_buckets: int) -> None:
        self.epoch = epoch
        self.count = self.errors = self.bad = 0
        self.sum = 0.0
        self.buckets = [0] * n_buckets


class SlidingWindows:
    """Latency/error accounting over sliding windows, O(1) per record.

    Time is cut into ``slot_s``-second slots kept in a ring sized for the
    longest window; recording touches exactly one slot (a stale slot is
    reset in place when its epoch comes around again — no timers, no
    background thread).  Window queries merge the live slots on demand,
    so the per-request cost is one bisect plus a handful of adds no
    matter how many windows are configured.

    ``clock`` is injectable so tests can drive hours of traffic in
    microseconds.
    """

    def __init__(self, windows_s: Sequence[float] = (60.0, 300.0, 3600.0),
                 slot_s: float = 5.0,
                 buckets: Sequence[float] = LATENCY_BUCKETS_S,
                 clock: Callable[[], float] = time.monotonic):
        if slot_s <= 0:
            raise ValueError(f"slot_s must be positive, got {slot_s}")
        self.windows_s = tuple(sorted(windows_s))
        if not self.windows_s:
            raise ValueError("need at least one window")
        self.slot_s = slot_s
        self.bounds = tuple(buckets)
        self.clock = clock
        n_slots = int(math.ceil(self.windows_s[-1] / slot_s)) + 1
        self._slots = [_Slot() for _ in range(n_slots)]
        self._n_buckets = len(self.bounds) + 1
        self.recorded_total = 0

    def record(self, seconds: float, error: bool = False,
               bad: Optional[bool] = None,
               bucket_idx: Optional[int] = None) -> None:
        """Record one request.  ``bad`` defaults to ``error``;
        ``bucket_idx`` (from a paired :meth:`Histogram.observe`) skips
        the second bisect when the caller already located the bucket."""
        epoch = int(self.clock() // self.slot_s)
        slot = self._slots[epoch % len(self._slots)]
        if slot.epoch != epoch:
            slot.reset(epoch, self._n_buckets)
        if bucket_idx is None:
            bucket_idx = bisect.bisect_left(self.bounds, seconds)
        slot.buckets[bucket_idx] += 1
        slot.count += 1
        slot.sum += seconds
        if error:
            slot.errors += 1
        if bad if bad is not None else error:
            slot.bad += 1
        self.recorded_total += 1

    def _merge(self, window_s: float) -> _Slot:
        now = self.clock()
        min_epoch = int((now - window_s) // self.slot_s) + 1
        max_epoch = int(now // self.slot_s)
        merged = _Slot()
        merged.reset(0, self._n_buckets)
        for slot in self._slots:
            if min_epoch <= slot.epoch <= max_epoch and slot.count:
                merged.count += slot.count
                merged.errors += slot.errors
                merged.bad += slot.bad
                merged.sum += slot.sum
                for i, c in enumerate(slot.buckets):
                    merged.buckets[i] += c
        return merged

    def window(self, window_s: float) -> Dict[str, float]:
        """Aggregate one window: count/error_rate/bad_rate/mean/p50/p99."""
        m = self._merge(window_s)
        out = {
            "window_s": float(window_s),
            "count": float(m.count),
            "errors": float(m.errors),
            "error_rate": m.errors / m.count if m.count else 0.0,
            "bad_rate": m.bad / m.count if m.count else 0.0,
            "mean_ms": 1e3 * m.sum / m.count if m.count else 0.0,
            "p50_ms": 1e3 * bucket_quantile(self.bounds, m.buckets, 0.50),
            "p99_ms": 1e3 * bucket_quantile(self.bounds, m.buckets, 0.99),
        }
        return out

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Every configured window, keyed by a human label (60 → "1m")."""
        return {_window_label(w): self.window(w) for w in self.windows_s}


def _window_label(seconds: float) -> str:
    if seconds % 3600 == 0:
        return f"{int(seconds // 3600)}h"
    if seconds % 60 == 0:
        return f"{int(seconds // 60)}m"
    return f"{int(seconds)}s"


# -- SLO monitor with multi-window burn-rate alerting ---------------------------


@dataclass(frozen=True)
class SLOConfig:
    """What "healthy" means for the advisor service.

    A request is **bad** when it errors or exceeds ``latency_slo_s``;
    the SLO allows a ``budget`` fraction of bad requests.  The burn rate
    over a window is ``bad_rate / budget`` — 1.0 means exactly eating
    the budget, 10x means eating it ten times as fast.  An alert rule
    ``(short_s, long_s, factor)`` fires only when *both* windows burn
    above ``factor`` — the standard multi-window guard: the long window
    keeps one latency spike from paging, the short window ends the alert
    promptly once the regression stops.
    """

    latency_slo_s: float = 0.5
    budget: float = 0.05
    windows_s: Tuple[float, ...] = (60.0, 300.0, 3600.0)
    slot_s: float = 5.0
    #: (short window, long window, burn-rate factor) alert rules
    burn_rules: Tuple[Tuple[float, float, float], ...] = (
        (60.0, 300.0, 10.0),
        (300.0, 3600.0, 4.0),
    )
    #: ignore burn rates until a window holds at least this many requests
    min_requests: int = 10


class SLOMonitor:
    """Sliding-window SLO accounting + burn-rate alerting for one server."""

    def __init__(self, config: SLOConfig = SLOConfig(),
                 clock: Callable[[], float] = time.monotonic):
        self.config = config
        windows = set(config.windows_s)
        for short, long_, _ in config.burn_rules:
            windows.update((short, long_))
        self.windows = SlidingWindows(
            windows_s=sorted(windows), slot_s=config.slot_s, clock=clock)

    def record(self, seconds: float, error: bool = False,
               bucket_idx: Optional[int] = None) -> None:
        bad = error or seconds > self.config.latency_slo_s
        self.windows.record(seconds, error=error, bad=bad,
                            bucket_idx=bucket_idx)

    def burn_rate(self, window_s: float) -> float:
        w = self.windows.window(window_s)
        if w["count"] < self.config.min_requests:
            return 0.0
        return w["bad_rate"] / self.config.budget if self.config.budget > 0 else 0.0

    def evaluate(self) -> Dict[str, Any]:
        """The SLO snapshot: windowed stats, burn rates, firing alerts."""
        cfg = self.config
        alerts = []
        for short, long_, factor in cfg.burn_rules:
            short_burn = self.burn_rate(short)
            long_burn = self.burn_rate(long_)
            if short_burn >= factor and long_burn >= factor:
                alerts.append({
                    "rule": f"{_window_label(short)}+{_window_label(long_)}"
                            f">={factor}x",
                    "short_burn": round(short_burn, 2),
                    "long_burn": round(long_burn, 2),
                })
        return {
            "latency_slo_ms": cfg.latency_slo_s * 1e3,
            "budget": cfg.budget,
            "degraded": bool(alerts),
            "alerts": alerts,
            "burn_rates": {
                _window_label(w): round(self.burn_rate(w), 3)
                for w in cfg.windows_s},
            "windows": {
                label: {k: (round(v, 3) if isinstance(v, float) else v)
                        for k, v in stats.items()}
                for label, stats in (
                    (_window_label(w), self.windows.window(w))
                    for w in cfg.windows_s)},
        }

    @property
    def degraded(self) -> bool:
        return self.evaluate()["degraded"]


# -- flight recorder -------------------------------------------------------------


class FlightRecorder:
    """A bounded ring of structured events for postmortems.

    Everything notable but rare lands here — requests over the slow
    threshold, error responses, store journal-mode fallbacks, pool
    restarts — so "what happened just before that error" is answerable
    from ``GET /debug/flight`` or the shutdown dump without grepping
    logs.  Oldest events are evicted first; ``dropped`` counts how many
    fell off the ring so a dump is honest about truncation.

    Thread-safe: the io/persist threads record store events while the
    event loop records request events.
    """

    def __init__(self, capacity: int = 512,
                 clock: Callable[[], float] = time.time):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._ring: "deque[Dict[str, Any]]" = deque(maxlen=capacity)
        self._seq = itertools.count()
        self._clock = clock
        self._lock = threading.Lock()
        self.recorded_total = 0

    def record(self, kind: str, **fields: Any) -> Dict[str, Any]:
        event = {"seq": next(self._seq), "t": round(self._clock(), 6),
                 "kind": kind, **fields}
        with self._lock:
            self._ring.append(event)
            self.recorded_total += 1
        return event

    def __len__(self) -> int:
        return len(self._ring)

    def dump(self) -> Dict[str, Any]:
        """Oldest → newest events plus honest truncation accounting."""
        with self._lock:
            events = list(self._ring)
        return {
            "capacity": self.capacity,
            "recorded_total": self.recorded_total,
            "dropped": self.recorded_total - len(events),
            "events": events,
        }


# -- process stats ---------------------------------------------------------------


def process_stats() -> Dict[str, float]:
    """Resident set size and cumulative CPU seconds of this process.

    Reads ``/proc/self/statm`` where available (Linux), falling back to
    ``resource.getrusage`` peak RSS; CPU comes from ``os.times()``.
    """
    rss = 0.0
    try:
        with open("/proc/self/statm") as fh:
            rss = float(fh.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        try:
            import resource

            rss = float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024.0
        except Exception:
            rss = 0.0
    t = os.times()
    return {"rss_bytes": rss, "cpu_seconds": t.user + t.system}


# -- request-scoped span tracing -------------------------------------------------


class RequestTrace:
    """All spans of one sampled request, rooted at span id 0.

    Spans are ``[span_id, parent_id, name, t0, t1, args]`` rows against
    a shared ``perf_counter`` origin (the tracer's), so traces from one
    server render on one timeline.  ``begin``/``end`` bracket work on
    the event loop; ``add`` records an externally timed span (io-thread
    store writes, pool chunk walls) — list appends are atomic under the
    GIL, so thread-side adds need no lock.
    """

    __slots__ = ("trace_id", "origin", "wall0", "spans", "_next_id", "finished")

    enabled = True

    def __init__(self, trace_id: str, origin: float):
        self.trace_id = trace_id
        self.origin = origin
        self.wall0 = time.time()
        now = time.perf_counter()
        #: span rows: [span_id, parent_id, name, t0, t1, args]
        self.spans: List[List[Any]] = [[0, -1, "request", now, None, {}]]
        self._next_id = 1
        self.finished = False

    def begin(self, name: str, parent: int = 0, **args: Any) -> int:
        sid = self._next_id
        self._next_id += 1
        self.spans.append([sid, parent, name, time.perf_counter(), None, args])
        return sid

    def end(self, span_id: int) -> None:
        self.spans[span_id][4] = time.perf_counter()

    def add(self, name: str, t0: float, t1: float, parent: int = 0,
            **args: Any) -> int:
        """Record an externally timed span (perf_counter endpoints)."""
        sid = self._next_id
        self._next_id += 1
        self.spans.append([sid, parent, name, t0, t1, args])
        return sid

    def annotate(self, span_id: int, **args: Any) -> None:
        self.spans[span_id][5].update(args)

    def finish(self) -> None:
        root = self.spans[0]
        if root[4] is None:
            root[4] = time.perf_counter()
        self.finished = True

    @property
    def duration_s(self) -> float:
        root = self.spans[0]
        return (root[4] - root[3]) if root[4] is not None else 0.0


class _NullTrace:
    """The not-sampled request: every tracing call is a cheap no-op."""

    __slots__ = ()

    enabled = False

    def begin(self, name: str, parent: int = 0, **args: Any) -> int:
        return 0

    def end(self, span_id: int) -> None:
        pass

    def add(self, name: str, t0: float, t1: float, parent: int = 0,
            **args: Any) -> int:
        return 0

    def annotate(self, span_id: int, **args: Any) -> None:
        pass

    def finish(self) -> None:
        pass


#: the shared no-op trace handed to every unsampled request
NULL_TRACE = _NullTrace()


class WallClockTracer:
    """Samples requests and keeps a bounded ring of finished traces.

    ``sample_rate`` is the probability a request is traced (0.0 —
    **off** — by default); a request can also be force-sampled (the
    ``X-Repro-Trace: 1`` header path the load generator uses).  The
    disabled fast path is one float compare.  Sampling uses a cheap
    deterministic LCG, not ``random`` — no global-RNG contention, and a
    seeded tracer yields a reproducible sample set.
    """

    def __init__(self, sample_rate: float = 0.0, capacity: int = 64,
                 seed: int = 1):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        self.sample_rate = sample_rate
        self.origin = time.perf_counter()
        self._ring: "deque[RequestTrace]" = deque(maxlen=capacity)
        self._seq = itertools.count()
        self._lcg = (seed * 2 + 1) & 0xFFFFFFFF
        self.sampled_total = 0

    def _coin(self) -> float:
        self._lcg = (self._lcg * 1664525 + 1013904223) & 0xFFFFFFFF
        return self._lcg / 4294967296.0

    def sample(self, force: bool = False) -> Union[RequestTrace, _NullTrace]:
        """A live :class:`RequestTrace`, or :data:`NULL_TRACE` when not
        sampled.  Callers never branch on sampling — they call the same
        methods on whatever comes back."""
        if not force and (self.sample_rate <= 0.0
                          or self._coin() >= self.sample_rate):
            return NULL_TRACE
        self.sampled_total += 1
        return RequestTrace(f"req-{next(self._seq)}", self.origin)

    def finish(self, trace: Union[RequestTrace, _NullTrace]) -> None:
        if isinstance(trace, RequestTrace):
            trace.finish()
            self._ring.append(trace)

    def traces(self) -> List[RequestTrace]:
        return list(self._ring)

    def chrome_trace_doc(self) -> Dict[str, Any]:
        """The sampled-request ring as one Chrome-trace JSON document."""
        return {"traceEvents": serve_chrome_events(self.traces()),
                "displayTimeUnit": "ns"}


#: pid block used for serve-side request lanes in merged Chrome traces —
#: far above the per-runtime blocks of :func:`repro.obs.export.chrome_trace_events`
SERVE_TRACE_PID = 1000


def serve_chrome_events(traces: Sequence[RequestTrace],
                        pid_base: int = SERVE_TRACE_PID) -> List[Dict[str, Any]]:
    """Chrome-trace events for sampled requests: one lane per request.

    Timestamps are wall microseconds relative to the earliest sampled
    request's origin, so concurrent requests line up on one timeline.
    The schema matches the simulator exporter's (``ph:"X"`` with
    name/ts/dur/pid/tid/args), so the existing trace schema tests load
    these events unchanged.
    """
    if not traces:
        return []
    t_origin = min(t.spans[0][3] for t in traces)
    out: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": pid_base,
         "args": {"name": "advisor requests (wall clock)"}},
    ]
    for tid, trace in enumerate(traces):
        out.append({"name": "thread_name", "ph": "M", "pid": pid_base,
                    "tid": tid, "args": {"name": trace.trace_id}})
        for sid, parent, name, t0, t1, args in trace.spans:
            if t1 is None:
                continue  # span never closed (request died mid-flight)
            ev_args = {"trace_id": trace.trace_id, "span_id": sid,
                       "parent_id": parent}
            if args:
                ev_args.update(args)
            out.append({
                "name": name, "ph": "X", "cat": "serve",
                "ts": max((t0 - t_origin) * 1e6, 0.0),
                "dur": max((t1 - t0) * 1e6, 0.001),
                "pid": pid_base, "tid": tid, "args": ev_args,
            })
    return out
