"""Policy decision log: every Alg. 1 evaluation, explainable after the fact.

CHARM's scheduling loop (paper Alg. 1) compares a per-worker remote-fill
*rate* — fill events normalized to the scheduler timer — against
``rmt_chip_access_rate`` and spreads, compacts, or holds.  The outcome
(final placement, migration counts) has always been visible; *why* each
step happened was not.  :class:`DecisionLog` records one row per
evaluation with the exact operands the policy saw, so any spread or
migration in a trace can be traced back to its counter-vs-threshold
comparison.

``CharmStrategy.on_tick`` calls ``runtime.obs.on_policy_decision(...)``
(guarded by one ``obs is not None`` check) which lands here; the merged
Chrome-trace exporter renders each row as an instant event with the
operands in ``args``.
"""

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class PolicyDecision:
    """One Alg. 1 evaluation (including "hold" — no spread change)."""

    time_ns: float
    worker_id: int
    elapsed_ns: float       # interval the counter was accumulated over
    counter: int            # remote fill events observed in the interval
    rate: float             # counter normalized to the scheduler timer
    threshold: float        # rmt_chip_access_rate the rate was compared to
    action: str             # "spread" | "compact" | "hold"
    spread_before: int
    spread_after: int
    core_before: int
    core_after: int

    @property
    def migrated(self) -> bool:
        return self.core_after != self.core_before

    def as_dict(self) -> Dict:
        return {
            "time_ns": self.time_ns,
            "worker": self.worker_id,
            "elapsed_ns": self.elapsed_ns,
            "counter": self.counter,
            "rate": round(self.rate, 4),
            "threshold": self.threshold,
            "action": self.action,
            "spread_before": self.spread_before,
            "spread_after": self.spread_after,
            "core_before": self.core_before,
            "core_after": self.core_after,
            "migrated": self.migrated,
        }


class DecisionLog:
    """Append-only record of policy decisions for one run."""

    __slots__ = ("rows",)

    def __init__(self) -> None:
        self.rows: List[PolicyDecision] = []

    def record(self, decision: PolicyDecision) -> None:
        self.rows.append(decision)

    def __len__(self) -> int:
        return len(self.rows)

    def by_action(self) -> Dict[str, int]:
        out: Dict[str, int] = {"spread": 0, "compact": 0, "hold": 0}
        for r in self.rows:
            out[r.action] = out.get(r.action, 0) + 1
        return out

    def migrations(self) -> int:
        return sum(1 for r in self.rows if r.migrated)

    def for_worker(self, worker_id: int) -> List[PolicyDecision]:
        return [r for r in self.rows if r.worker_id == worker_id]
