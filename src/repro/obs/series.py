"""Columnar metric series on a numpy ring buffer.

One shared timestamp vector plus a dense float64 matrix, one column per
metric, one row per sample tick.  Appends are a row write at
``count % capacity``; once the buffer wraps, the oldest rows are
overwritten, bounding memory for arbitrarily long runs.

Columns are declared once at attach time (names are stable for the life
of the store), so a sample is a single preallocated-row fill — no dict
churn on the sampling path.
"""

from typing import Dict, List, Sequence, Tuple

import numpy as np


class RingSeries:
    """Fixed-capacity columnar store: times + one float64 column per name."""

    __slots__ = ("capacity", "names", "_index", "times", "values", "count")

    def __init__(self, names: Sequence[str], capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.names: List[str] = list(names)
        self._index: Dict[str, int] = {n: i for i, n in enumerate(self.names)}
        self.times = np.zeros(capacity, dtype=np.float64)
        self.values = np.zeros((capacity, len(self.names)), dtype=np.float64)
        self.count = 0

    def __len__(self) -> int:
        return min(self.count, self.capacity)

    def append(self, t: float, row: Sequence[float]) -> None:
        i = self.count % self.capacity
        self.times[i] = t
        self.values[i, :] = row
        self.count += 1

    # -- Reads ----------------------------------------------------------------

    def _order(self) -> np.ndarray:
        """Row indices in chronological order (handles wraparound)."""
        n = len(self)
        if self.count <= self.capacity:
            return np.arange(n)
        head = self.count % self.capacity
        return np.concatenate([np.arange(head, self.capacity), np.arange(head)])

    def timestamps(self) -> np.ndarray:
        return self.times[self._order()]

    def column(self, name: str) -> np.ndarray:
        return self.values[self._order(), self._index[name]]

    def series(self) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        """``name -> (times, values)`` for every column, in order."""
        order = self._order()
        t = self.times[order]
        vals = self.values[order]
        return {n: (t, vals[:, i]) for n, i in self._index.items()}

    def dropped(self) -> int:
        """Samples overwritten by wraparound (0 until the buffer fills)."""
        return max(0, self.count - self.capacity)
