"""Capture context: attach telemetry to runtimes built deep inside helpers.

Experiment cell runners construct their :class:`Runtime` internally, so
callers that want telemetry (the ``repro trace`` verb, the sweep's
``--telemetry`` mode) cannot reach the instance to attach to.  The
:func:`capture` context manager solves this the same way the dataset
cache does: a module-level hook.  ``Runtime.__init__`` ends with a call
to :func:`attach_if_active`, which is a single global load and ``None``
check when no capture is active — the same null-sink discipline as the
event bus.

This module must stay import-light: ``repro.runtime.runtime`` imports it
at module scope, so nothing here may import the runtime (or anything that
does) at import time.  The Telemetry class is imported lazily inside
:meth:`_Capture._attach`.
"""

from contextlib import contextmanager
from typing import Iterator, List, Optional

_ACTIVE: Optional["_Capture"] = None


class _Capture:
    """Collects one Telemetry per Runtime constructed while active."""

    def __init__(self, **kwargs) -> None:
        self.kwargs = kwargs
        self.telemetries: List[object] = []

    def _attach(self, runtime) -> None:
        from repro.obs.telemetry import Telemetry

        self.telemetries.append(Telemetry(runtime, **self.kwargs))

    def primary(self):
        """The telemetry whose runtime did the most memory traffic.

        Cell runners may build warm-up or baseline runtimes; the one that
        serviced the most accesses is the run worth exporting.
        """
        if not self.telemetries:
            return None
        return max(
            self.telemetries,
            key=lambda t: sum(t.runtime.machine.counters.totals()),
        )


def attach_if_active(runtime) -> None:
    """Called by ``Runtime.__init__``; no-op unless a capture is active."""
    if _ACTIVE is not None:
        _ACTIVE._attach(runtime)


@contextmanager
def capture(**kwargs) -> Iterator[_Capture]:
    """Attach a :class:`Telemetry` to every Runtime built inside the block.

    Keyword arguments are forwarded to ``Telemetry`` (``interval_ns``,
    ``ring_capacity``, ``mode``).  Not reentrant and not thread-safe —
    the sweep's process pool gives each cell its own interpreter, which
    is the only concurrency this repo uses.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("telemetry capture is already active")
    cap = _Capture(**kwargs)
    _ACTIVE = cap
    try:
        yield cap
    finally:
        _ACTIVE = None
