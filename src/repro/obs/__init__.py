"""repro.obs — observability for the simulated machine and runtime.

Subsystems (PR 5):

- :mod:`repro.obs.bus`       — event bus with a null-sink fast path
- :mod:`repro.obs.trace`     — task/migration timeline (ex runtime.trace)
- :mod:`repro.obs.profiler`  — worker snapshots (ex runtime.profiler)
- :mod:`repro.obs.sampler`   — virtual-time interval metric series
- :mod:`repro.obs.decisions` — Alg. 1 policy decision log
- :mod:`repro.obs.selfprof`  — wall-clock kernel-path self-profiler
- :mod:`repro.obs.telemetry` — facade attaching all of the above
- :mod:`repro.obs.export`    — merged Chrome trace / JSON / CSV / text
- :mod:`repro.obs.context`   — ``capture()`` for runtimes built in helpers

Attribute access is lazy (PEP 562): ``repro.runtime.runtime`` imports
``repro.obs.context`` at module scope (executing this ``__init__``), so
eagerly importing :mod:`repro.obs.telemetry` here — whose annotations
reference the runtime — would create an import cycle.
"""

from repro.obs.context import attach_if_active, capture

_LAZY = {
    "EventBus": "repro.obs.bus",
    "Telemetry": "repro.obs.telemetry",
    "Tracer": "repro.obs.trace",
    "TraceEvent": "repro.obs.trace",
    "EventKind": "repro.obs.trace",
    "TaskSummary": "repro.obs.trace",
    "IntervalSampler": "repro.obs.sampler",
    "RingSeries": "repro.obs.series",
    "DecisionLog": "repro.obs.decisions",
    "PolicyDecision": "repro.obs.decisions",
    "KernelProfiler": "repro.obs.selfprof",
    # wall-clock twins (serve/sweep observability)
    "MetricsRegistry": "repro.obs.wallclock",
    "WallClockTracer": "repro.obs.wallclock",
    "SlidingWindows": "repro.obs.wallclock",
    "SLOMonitor": "repro.obs.wallclock",
    "SLOConfig": "repro.obs.wallclock",
    "FlightRecorder": "repro.obs.wallclock",
    "NULL_TRACE": "repro.obs.wallclock",
    "RequestTrace": "repro.obs.wallclock",
}

__all__ = ["attach_if_active", "capture"] + sorted(_LAZY)


def __getattr__(name):
    mod = _LAZY.get(name)
    if mod is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(mod), name)
