"""Exporters: merged Chrome trace, metrics JSON/CSV, text summary.

The Chrome trace merges three views of one run into a single
Perfetto-loadable JSON (https://ui.perfetto.dev):

- **pid 0 "tasks"** — task execution spans per worker lane (``ph:"X"``)
  plus the metric counter series (``ph:"C"``) overlaid on the same
  process so cache/channel pressure lines up with the task timeline;
- **pid 1 "chiplets"** — migration arrows: a ``migrate-out`` sliver on
  the source chiplet lane flow-linked (``ph:"s"``/``ph:"f"``) to a
  ``migrate-in`` sliver on the destination chiplet lane, using the
  chiplet/NUMA ids carried by :class:`~repro.obs.trace.TraceEvent`;
- **pid 2 "policy"** — one instant event (``ph:"i"``) per Alg. 1
  evaluation with the observed counter, rate, and threshold in ``args``.

Timestamps are virtual nanoseconds scaled to Chrome's microseconds.
Counter-series timestamps come from the interval sampler's ring, which
guarantees strict monotonicity (tests/test_obs_trace_schema.py).
"""

import csv
import json
from typing import TYPE_CHECKING, Dict, List, Sequence, TextIO

from repro.hw.counters import FillSource

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.telemetry import Telemetry

_US = 1 / 1000.0  # ns -> Chrome trace microseconds


def chrome_trace_events(tel: "Telemetry", pid_base: int = 0) -> List[Dict]:
    """All trace events for one telemetry, pids offset by ``pid_base``."""
    tel.finish()
    if tel.mode != "full":
        return []
    pid_tasks, pid_chiplets, pid_policy = pid_base, pid_base + 1, pid_base + 2
    topo = tel.runtime.machine.topo
    out: List[Dict] = [
        {"name": "process_name", "ph": "M", "pid": pid_tasks,
         "args": {"name": "tasks+metrics"}},
        {"name": "process_name", "ph": "M", "pid": pid_chiplets,
         "args": {"name": "chiplets (migrations)"}},
        {"name": "process_name", "ph": "M", "pid": pid_policy,
         "args": {"name": "policy (Alg. 1)"}},
    ]
    for w in tel.runtime.workers:
        out.append({"name": "thread_name", "ph": "M", "pid": pid_tasks,
                    "tid": w.worker_id, "args": {"name": f"worker {w.worker_id}"}})
        out.append({"name": "thread_name", "ph": "M", "pid": pid_policy,
                    "tid": w.worker_id, "args": {"name": f"worker {w.worker_id}"}})
    for c in range(topo.total_chiplets):
        out.append({"name": "thread_name", "ph": "M", "pid": pid_chiplets,
                    "tid": c, "args": {"name": f"chiplet {c}"}})

    # Task spans.
    for s in tel.tracer.task_summaries():
        for start, end, wid in s.spans:
            out.append({
                "name": s.name, "ph": "X", "ts": start * _US,
                "dur": max(end - start, 1.0) * _US,
                "pid": pid_tasks, "tid": wid, "args": {"task_id": s.task_id},
            })

    # Migration arrows between chiplet lanes.
    for idx, e in enumerate(tel.tracer.migrations()):
        ts = e.time_ns * _US
        flow_id = f"mig{pid_base}_{idx}"
        args = {"worker": e.worker_id, "detail": e.detail,
                "src_chiplet": e.src_chiplet, "dst_chiplet": e.chiplet,
                "numa": e.numa}
        out.append({"name": "migrate-out", "ph": "X", "ts": ts, "dur": 1.0,
                    "pid": pid_chiplets, "tid": max(e.src_chiplet, 0),
                    "cat": "migration", "args": args})
        out.append({"name": "migrate-in", "ph": "X", "ts": ts + 1.0, "dur": 1.0,
                    "pid": pid_chiplets, "tid": max(e.chiplet, 0),
                    "cat": "migration", "args": args})
        out.append({"name": "migrate", "ph": "s", "id": flow_id, "ts": ts + 0.5,
                    "pid": pid_chiplets, "tid": max(e.src_chiplet, 0),
                    "cat": "migration"})
        out.append({"name": "migrate", "ph": "f", "bp": "e", "id": flow_id,
                    "ts": ts + 1.5, "pid": pid_chiplets,
                    "tid": max(e.chiplet, 0), "cat": "migration"})
        # Keep the instant on the worker lane too (matches Tracer's export).
        out.append({"name": "migrate", "ph": "i", "ts": ts, "s": "t",
                    "pid": pid_tasks, "tid": e.worker_id, "args": args})

    # Policy decision instants with the operands Alg. 1 actually compared.
    for d in tel.decisions.rows:
        out.append({
            "name": f"alg1:{d.action}", "ph": "i", "s": "t",
            "ts": d.time_ns * _US, "pid": pid_policy, "tid": d.worker_id,
            "args": d.as_dict(),
        })

    out.extend(_counter_events(tel, pid_tasks))
    return out


def _counter_events(tel: "Telemetry", pid: int) -> List[Dict]:
    """Metric series as Chrome counter (``ph:"C"``) events."""
    ring = tel.sampler.ring
    n = len(ring)
    if n == 0:
        return []
    topo = tel.runtime.machine.topo
    times = ring.timestamps()
    order = ring._order()
    vals = ring.values[order]
    idx = ring._index
    out: List[Dict] = []

    def counter(name: str, ts: float, args: Dict) -> Dict:
        return {"name": name, "ph": "C", "ts": ts * _US, "pid": pid, "args": args}

    occ_cols = [idx[f"l3_occ.ch{c}"] for c in range(topo.total_chiplets)]
    hit_cols = [idx[f"l3_hits.ch{c}"] for c in range(topo.total_chiplets)]
    miss_cols = [idx[f"l3_misses.ch{c}"] for c in range(topo.total_chiplets)]
    chan_cols = [idx[f"chan_busy.s{s}"] for s in range(topo.sockets)]
    mig_col = idx["migrations"]
    remote_src = [s.value for s in FillSource if s is not FillSource.LOCAL_CHIPLET]
    remote_cols = [idx[f"fills.w{w.worker_id}.{src}"]
                   for w in tel.runtime.workers for src in remote_src]

    hits = vals[:, hit_cols].sum(axis=1)
    total = hits + vals[:, miss_cols].sum(axis=1)
    chan_busy = vals[:, chan_cols]
    remote = vals[:, remote_cols].sum(axis=1)
    migrations = vals[:, mig_col]

    for i in range(n):
        ts = float(times[i])
        out.append(counter("l3_occupancy_pct", ts, {
            f"ch{c}": round(float(vals[i, col]) * 100.0, 2)
            for c, col in enumerate(occ_cols)}))
        out.append(counter("migrations", ts, {"count": float(migrations[i])}))
        if i == 0:
            continue
        # Delta-based rates over the sample interval.
        dt = float(times[i] - times[i - 1])
        d_total = float(total[i] - total[i - 1])
        d_hits = float(hits[i] - hits[i - 1])
        out.append(counter("l3_hit_rate_pct", ts, {
            "hit_rate": round(100.0 * d_hits / d_total, 2) if d_total > 0 else 0.0}))
        out.append(counter("mem_channel_busy_pct", ts, {
            f"s{s}": round(100.0 * float(chan_busy[i, j] - chan_busy[i - 1, j]) / dt, 2)
            if dt > 0 else 0.0
            for s, j in enumerate(range(chan_busy.shape[1]))}))
        out.append(counter("remote_fill_rate", ts, {
            "fills_per_us": round(1000.0 * float(remote[i] - remote[i - 1]) / dt, 3)
            if dt > 0 else 0.0}))
    return out


def merge_serve_events(events: List[Dict], serve_doc: Dict,
                       pid_base: int = 1000) -> int:
    """Append wall-clock serve spans (a ``GET /debug/trace`` document)
    onto a simulation event list; returns how many events were added.

    The serve exporter (:func:`repro.obs.wallclock.serve_chrome_events`)
    emits the same span schema as the simulator — the only merge work is
    re-basing serve pids into a disjoint block so request lanes never
    collide with the per-runtime pid blocks of
    :func:`chrome_trace_events`.  Time axes differ by design (virtual ns
    vs wall µs, both starting near zero), which is exactly the Perfetto
    view the tentpole wants: the sampled request and the simulation it
    triggered, side by side from t=0.
    """
    added = serve_doc.get("traceEvents", [])
    pids = sorted({e.get("pid", 0) for e in added})
    remap = {p: pid_base + i for i, p in enumerate(pids)}
    for event in added:
        event = dict(event)
        event["pid"] = remap.get(event.get("pid", 0), pid_base)
        events.append(event)
    return len(added)


def write_chrome_trace(telemetries: Sequence["Telemetry"], fh: TextIO,
                       serve_doc: Dict = None) -> int:
    """Merged Chrome trace for one or more runtimes; returns event count.

    Multiple runtimes (a cell that builds warm-up + measured runs) land
    in disjoint pid blocks of 10.  ``serve_doc`` (a ``/debug/trace``
    JSON document) merges sampled advisor requests into the same file.
    """
    events: List[Dict] = []
    for i, tel in enumerate(telemetries):
        events.extend(chrome_trace_events(tel, pid_base=10 * i))
    if serve_doc is not None:
        merge_serve_events(events, serve_doc)
    json.dump({"traceEvents": events, "displayTimeUnit": "ns"}, fh)
    return len(events)


# -- Metrics dumps -------------------------------------------------------------


def write_metrics_json(tel: "Telemetry", fh: TextIO) -> None:
    json.dump(tel.metrics(), fh)


def write_metrics_csv(tel: "Telemetry", fh: TextIO) -> int:
    """Wide CSV: one row per sample, one column per metric. Returns rows."""
    tel.finish()
    if tel.sampler is None:
        return 0
    ring = tel.sampler.ring
    writer = csv.writer(fh)
    writer.writerow(["time_ns"] + ring.names)
    times = ring.timestamps()
    order = ring._order()
    vals = ring.values[order]
    for i in range(len(ring)):
        writer.writerow([repr(float(times[i]))]
                        + [repr(float(v)) for v in vals[i]])
    return len(ring)


def text_summary(tel: "Telemetry") -> str:
    """Human-readable digest printed by ``repro trace``."""
    s = tel.summary()
    lines = [
        f"virtual wall time : {s['wall_ns'] / 1e6:.3f} ms",
        f"l3 hit rate       : {100.0 * s['l3']['hit_rate']:.1f}%  "
        f"(occupancy {100.0 * s['l3']['occupancy']:.1f}%)",
        "fills             : " + "  ".join(
            f"{k}={v}" for k, v in s["fills"].items()),
        f"migrations        : {s['migrations']}   steals: {s['steals']}",
    ]
    if tel.mode == "full":
        d = s["decisions"]
        lines.append(
            f"policy decisions  : {d['total']} "
            f"(spread {d['spread']}, compact {d['compact']}, hold {d['hold']}, "
            f"migrated {d['migrated']})")
        lines.append(
            f"samples           : {s['samples']} @ {s['sample_interval_ns']:.0f} ns"
            + (f" ({s['samples_dropped']} dropped)" if s["samples_dropped"] else ""))
        lines.append(f"tasks traced      : {s['tasks_traced']}")
        if s["events"]:
            lines.append("bus events        : " + "  ".join(
                f"{k}={v}" for k, v in s["events"].items()))
    return "\n".join(lines)
