"""CHARM reproduction: Chiplet Heterogeneity-Aware Runtime Mapping System.

A production-quality Python reproduction of the EuroSys 2026 paper on a
simulated chiplet machine.  The top-level namespace re-exports the pieces
most users need:

- machine presets (:func:`milan`, :func:`sapphire_rapids`),
- the runtime facade (:class:`Charm`) and strategy classes,
- task op types for writing workloads.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.hw import (
    Machine,
    MemPolicy,
    Region,
    Topology,
    milan,
    sapphire_rapids,
    small_test_machine,
)
from repro.runtime import (
    Access,
    AccessBatch,
    AccessRun,
    AdaptiveController,
    Approach,
    Barrier,
    Charm,
    CharmPolicyConfig,
    CharmStrategy,
    Compute,
    Future,
    Runtime,
    RunReport,
    SchedulingStrategy,
    SpawnOp,
    StaticSpreadStrategy,
    Task,
    TaskState,
    WaitBarrier,
    WaitFuture,
    YieldPoint,
)

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "MemPolicy",
    "Region",
    "Topology",
    "milan",
    "sapphire_rapids",
    "small_test_machine",
    "Access",
    "AccessBatch",
    "AccessRun",
    "AdaptiveController",
    "Approach",
    "Barrier",
    "Charm",
    "CharmPolicyConfig",
    "CharmStrategy",
    "Compute",
    "Future",
    "Runtime",
    "RunReport",
    "SchedulingStrategy",
    "SpawnOp",
    "StaticSpreadStrategy",
    "Task",
    "TaskState",
    "WaitBarrier",
    "WaitFuture",
    "YieldPoint",
    "__version__",
]
