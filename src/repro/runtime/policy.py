"""Chiplet-aware scheduling policy: Algorithms 1 and 2 of the paper.

``chiplet_scheduling`` (Alg. 1) runs decentralised, per worker: at most
once per ``SCHEDULER_TIMER`` the worker compares its remote cache-fill
rate against ``RMT_CHIP_ACCESS_RATE`` and widens (``spread_rate + 1``) or
narrows (``spread_rate - 1``) its chiplet footprint.

``update_location`` (Alg. 2) deterministically maps a worker's unique id
and its ``spread_rate`` to a (chiplet, slot) pair and hence a physical
core, after a bounds check that rejects configurations without enough
dedicated cores.  The arithmetic is a line-for-line translation of the
paper's pseudocode.

The module also defines :class:`SchedulingStrategy`, the interface through
which CHARM and every baseline plug into the shared runtime, plus the
CHARM strategy itself and static LocalCache/DistributedCache-style
strategies.
"""

import math
from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

from repro.hw.machine import Machine
from repro.runtime.queues import flat_steal_order, hierarchical_steal_order

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import Runtime
    from repro.runtime.worker import Worker


@dataclass
class CharmPolicyConfig:
    """Tunables of Alg. 1 (paper section 4.6, re-calibrated to this machine).

    The paper uses a 500 ms timer and a threshold of 300 fill events per
    interval, calibrated by a sensitivity sweep on their hardware.
    Simulated workloads run for virtual milliseconds, so the default timer
    is scaled down correspondingly, and the threshold is re-calibrated by
    the same kind of sweep (reproduced in ``benchmarks/test_sens_threshold``)
    against the scaled machine's fill rates.

    ``compact_hysteresis`` implements the paper's "only when significant
    inefficiency is detected" guard: a worker narrows its footprint only
    when the remote-fill rate drops well below the spread threshold,
    preventing spread/compact oscillation at the boundary.
    """

    scheduler_timer_ns: float = 50_000.0
    rmt_chip_access_rate: float = 24.0
    min_spread: int = 1
    compact_hysteresis: float = 0.5

    def __post_init__(self) -> None:
        if self.scheduler_timer_ns <= 0:
            raise ValueError("scheduler timer must be positive")
        if self.rmt_chip_access_rate < 0:
            raise ValueError("threshold must be non-negative")
        if not 0.0 <= self.compact_hysteresis <= 1.0:
            raise ValueError("compact_hysteresis must be in [0, 1]")


def update_location(
    worker_id: int,
    spread_rate: int,
    n_workers: int,
    cores_per_chiplet: int,
    chiplets: int,
) -> Optional[int]:
    """Alg. 2: map ``worker_id`` to a core given ``spread_rate``.

    Returns the target core id *within one socket's core namespace*
    (``0 .. chiplets * cores_per_chiplet - 1``) or ``None`` when the
    bounds check fails (the migration is skipped and retried next cycle,
    as in the paper).

    Collision-freedom note: the paper claims unique worker ids yield
    unique cores.  The property tests show this holds exactly when
    ``spread_rate`` divides ``cores_per_chiplet`` and either all workers
    fit before the wrap (``n <= chiplets * cpc/spread``) or each chiplet
    takes one slot per wrap band (``spread >= cpc``) — satisfied by the
    paper's 8-chiplet x 8-core testbed configurations.  In the remaining
    corners the runtime's core ledger arbitrates, denying the losing
    migration (retried next timer cycle).
    """
    # Line 2: bounds check.
    if not 0 < spread_rate <= chiplets:
        return None
    if n_workers > spread_rate * cores_per_chiplet:
        return None
    per = cores_per_chiplet // spread_rate
    if per == 0:
        # Degenerate case the paper's formula cannot express: spread_rate
        # above CORES_PER_CHIPLET (possible on parts with more chiplets
        # than cores per chiplet, e.g. a 12-CCD Genoa socket of 8-core
        # CCDs).  Round-robin one worker per chiplet per band, the
        # formula's evident intent.
        chiplet = worker_id % chiplets
        slot = worker_id // chiplets
        if slot >= cores_per_chiplet:
            return None
        return chiplet * cores_per_chiplet + slot
    # Lines 5-6: provisional chiplet and slot.
    chiplet = worker_id // per
    slot = worker_id % per
    # Lines 7-10: wrap around when the provisional chiplet overflows.
    if chiplet >= chiplets:
        chiplet = chiplet % chiplets
        slot = slot + worker_id // cores_per_chiplet
    if slot >= cores_per_chiplet:  # defensive: cannot dedicate a real core
        return None
    # Line 11: final core id.
    return chiplet * cores_per_chiplet + slot


def min_valid_spread(n_workers: int, cores_per_chiplet: int, chiplets: int) -> int:
    """Smallest ``spread_rate`` passing Alg. 2's bounds check."""
    s = max(1, math.ceil(n_workers / cores_per_chiplet))
    if s > chiplets:
        raise ValueError(
            f"{n_workers} workers cannot get dedicated cores on "
            f"{chiplets} chiplets x {cores_per_chiplet} cores"
        )
    return s


class SchedulingStrategy:
    """Pluggable scheduler personality.

    The shared runtime (:class:`repro.runtime.runtime.Runtime`) delegates
    every placement decision to its strategy: initial worker pinning,
    task placement, steal-victim order, NUMA allocation node, context
    switch costs, and the periodic adaptation hook.  CHARM and all paper
    baselines are implementations of this interface over the *same*
    machine and task model, so measured differences come only from policy.
    """

    name = "base"
    #: user-space coroutine switch (CHARM-style runtimes)
    switch_cost_ns = 60.0
    #: per-task startup cost (OS-thread runtimes pay thread creation here)
    task_create_cost_ns = 0.0
    #: cost of probing one steal victim
    steal_probe_ns = 90.0
    #: cost of re-pinning a worker to another core
    migration_cost_ns = 2_500.0
    #: chiplet-first steal order (True) vs flat random (False)
    hierarchical_stealing = True
    #: True for OS-thread runtimes where synchronisation blocks the worker
    #: (std::async baseline); False for coroutine runtimes where only the
    #: task parks and the worker keeps executing other tasks.
    blocking_sync = False

    def initial_core(self, worker_id: int, n_workers: int, machine: Machine) -> int:
        raise NotImplementedError

    def alloc_node(self, worker: "Worker", machine: Machine) -> int:
        """NUMA node for new allocations by ``worker`` (default: local)."""
        return machine.topo.numa_of_core(worker.core)

    def shared_policy(self, read_only: bool = False, runtime: "Runtime" = None):
        """Placement policy for large shared workload data.

        NUMA-aware baselines interleave shared data across nodes (their
        defining optimisation); CHARM binds it to the socket its workers
        occupy (socket-aware policy, section 4.6).  SHOAL overrides this
        to replicate read-only arrays.
        """
        from repro.hw.memory import MemPolicy

        return MemPolicy.INTERLEAVE

    def place_task(self, spawner: Optional["Worker"], runtime: "Runtime") -> int:
        """Worker id that receives a newly spawned (unpinned) task.

        Round-robin across workers: initial distribution is uniform and
        locality comes from *where the workers sit* (the strategy's core
        placement); work stealing corrects imbalance afterwards.
        """
        return runtime.rr_next_worker()

    def steal_order(self, worker: "Worker", runtime: "Runtime") -> List[int]:
        if self.hierarchical_stealing:
            return hierarchical_steal_order(
                runtime.machine.topo, worker.core, runtime.worker_cores(), worker.rng
            )
        return flat_steal_order(worker.worker_id, len(runtime.workers), worker.rng)

    def on_tick(self, worker: "Worker", runtime: "Runtime") -> None:
        """Periodic adaptation hook, called at yield points and task ends."""

    def initial_spread(self, worker_id: int, n_workers: int, machine: Machine) -> int:
        """The ``spread_rate`` matching :meth:`initial_core`'s placement."""
        return 1

    def describe(self) -> str:
        return self.name


class CharmStrategy(SchedulingStrategy):
    """CHARM: decentralised adaptive chiplet-aware scheduling (Alg. 1 + 2)."""

    name = "charm"

    def __init__(self, config: Optional[CharmPolicyConfig] = None):
        self.config = config or CharmPolicyConfig()

    def initial_core(self, worker_id: int, n_workers: int, machine: Machine) -> int:
        """Socket-aware compact start: fill socket 0's chiplets first.

        Workers start with the smallest valid ``spread_rate`` (maximum
        locality); Alg. 1 widens the footprint only when the observed
        remote-fill rate shows that the working set does not fit.
        """
        topo = machine.topo
        cps = topo.cores_per_socket
        socket = worker_id // cps
        local_id = worker_id % cps
        local_workers = min(n_workers - socket * cps, cps)
        spread = min_valid_spread(local_workers, topo.cores_per_chiplet, topo.chiplets_per_socket)
        core = update_location(
            local_id, spread, local_workers, topo.cores_per_chiplet, topo.chiplets_per_socket
        )
        if core is None:  # pragma: no cover - min_valid_spread guarantees validity
            raise RuntimeError("initial placement failed bounds check")
        return socket * cps + core

    def initial_spread(self, worker_id: int, n_workers: int, machine: Machine) -> int:
        topo = machine.topo
        cps = topo.cores_per_socket
        socket = worker_id // cps
        local_workers = min(n_workers - socket * cps, cps)
        return min_valid_spread(local_workers, topo.cores_per_chiplet, topo.chiplets_per_socket)

    def shared_policy(self, read_only: bool = False, runtime: "Runtime" = None):
        """Socket-aware allocation (section 4.6).

        While the workers fit in one socket, shared data is bound there
        (all fills stay in-socket); once execution spans sockets the
        memory manager interleaves so both sockets' channels serve the
        load.
        """
        from repro.hw.memory import MemPolicy

        if runtime is not None:
            topo = runtime.machine.topo
            sockets = {topo.socket_of_core(w.core) for w in runtime.workers}
            if len(sockets) > 1:
                return MemPolicy.INTERLEAVE
        return MemPolicy.BIND

    def on_tick(self, worker: "Worker", runtime: "Runtime") -> None:
        """Alg. 1 (ChipletScheduling), executed per worker."""
        cfg = self.config
        now = worker.clock
        elapsed = now - worker.policy_time
        if elapsed < cfg.scheduler_timer_ns:
            return
        counter = worker.remote_fills_since_mark()            # cache fill events
        rate = counter * cfg.scheduler_timer_ns / elapsed
        topo = runtime.machine.topo
        chiplets = topo.chiplets_per_socket
        spread_before = worker.spread_rate
        core_before = worker.core
        if rate >= cfg.rmt_chip_access_rate:
            if worker.spread_rate < chiplets:
                worker.spread_rate += 1
        elif rate < cfg.rmt_chip_access_rate * cfg.compact_hysteresis:
            if worker.spread_rate > cfg.min_spread:
                worker.spread_rate -= 1
        self._update_location(worker, runtime)                # spread or compact
        worker.policy_time = now
        worker.mark_fill_counters()                           # resetEventCounter()
        obs = runtime.obs
        if obs is not None:
            # Observation only: records the operands Alg. 1 just compared.
            obs.on_policy_decision(
                now=now, worker=worker, elapsed_ns=elapsed, counter=counter,
                rate=rate, threshold=cfg.rmt_chip_access_rate,
                spread_before=spread_before, core_before=core_before,
            )

    def _update_location(self, worker: "Worker", runtime: "Runtime") -> None:
        """Alg. 2, within the worker's socket, via the runtime's core ledger."""
        topo = runtime.machine.topo
        cps = topo.cores_per_socket
        socket = worker.worker_id // cps
        local_id = worker.worker_id % cps
        local_workers = min(len(runtime.workers) - socket * cps, cps)
        core = update_location(
            local_id,
            worker.spread_rate,
            local_workers,
            topo.cores_per_chiplet,
            topo.chiplets_per_socket,
        )
        if core is None:
            return  # bounds check failed: skip, retry next timer cycle
        target = socket * cps + core
        runtime.request_migration(worker, target)


class StaticSpreadStrategy(SchedulingStrategy):
    """Fixed ``spread_rate`` placement with no adaptation.

    ``spread=1`` is the paper's **LocalCache** policy (pack workers onto
    as few chiplets as possible); ``spread=chiplets_per_socket`` is
    **DistributedCache** (one worker per chiplet round-robin).  Also used
    by the spread-rate ablation.
    """

    def __init__(self, spread: int, name: Optional[str] = None):
        if spread < 1:
            raise ValueError("spread must be >= 1")
        self.spread = spread
        self.name = name or f"static-spread-{spread}"

    def initial_core(self, worker_id: int, n_workers: int, machine: Machine) -> int:
        topo = machine.topo
        cps = topo.cores_per_socket
        socket = worker_id // cps
        local_id = worker_id % cps
        local_workers = min(n_workers - socket * cps, cps)
        spread = max(
            self.spread,
            min_valid_spread(local_workers, topo.cores_per_chiplet, topo.chiplets_per_socket),
        )
        spread = min(spread, topo.chiplets_per_socket)
        core = update_location(
            local_id, spread, local_workers, topo.cores_per_chiplet, topo.chiplets_per_socket
        )
        if core is None:
            raise RuntimeError(
                f"static spread {self.spread} invalid for {n_workers} workers"
            )
        return socket * cps + core

    def shared_policy(self, read_only: bool = False, runtime: "Runtime" = None):
        """Static policies pin shared data to the occupied socket."""
        from repro.hw.memory import MemPolicy

        return MemPolicy.BIND


def local_cache_strategy() -> StaticSpreadStrategy:
    """Paper's LocalCache static policy (sections 2.3, 5.7)."""
    return StaticSpreadStrategy(1, name="local-cache")


def distributed_cache_strategy(machine: Machine) -> StaticSpreadStrategy:
    """Paper's DistributedCache static policy (sections 2.3, 5.7)."""
    return StaticSpreadStrategy(machine.topo.chiplets_per_socket, name="distributed-cache")
