"""Paper-style public API (section 4.6).

The C++ CHARM exposes ``CHARM_Init()``/``CHARM_Finalize()``, ``run()``
with lambda tasks, ``all_do()`` for every core, ``call()`` for sync/async
RPC and ``barrier()``.  :class:`Charm` mirrors that surface over the
simulated runtime:

>>> charm = Charm.init(machine=milan(scale=64), workers=16)
>>> data = charm.alloc(1 << 20, name="data")
>>> def body(wid):
...     yield Compute(1000.0)
...     return wid
>>> tasks = charm.all_do(body)
>>> report = charm.run()
>>> charm.finalize()

Tasks themselves are generator functions; *inside* a task the ``co_*``
helper generators provide spawning, synchronous RPC and barrier waits
(``yield from co_call_sync(charm, core, fn)``).
"""

from typing import Any, Callable, Generator, List, Optional

from repro.hw.machine import Machine, milan
from repro.hw.memory import MemPolicy, Region
from repro.runtime.ops import SpawnOp, WaitBarrier, WaitFuture
from repro.runtime.policy import CharmStrategy, SchedulingStrategy
from repro.runtime.runtime import Runtime, RunReport
from repro.runtime.sync import Barrier, Future
from repro.runtime.task import Task


class Charm:
    """Facade owning a machine + runtime pair, in the paper's API shape."""

    def __init__(self, runtime: Runtime):
        self.runtime = runtime
        self.report: Optional[RunReport] = None
        self._finalized = False

    # -- Lifecycle (CHARM_Init / CHARM_Finalize) -------------------------------

    @classmethod
    def init(
        cls,
        machine: Optional[Machine] = None,
        workers: Optional[int] = None,
        strategy: Optional[SchedulingStrategy] = None,
        seed: int = 7,
        collect_timeline: bool = False,
    ) -> "Charm":
        """CHARM_Init(): build the runtime over a (default: Milan) machine."""
        machine = machine or milan(scale=64)
        workers = workers or machine.topo.cores_per_socket
        strategy = strategy or CharmStrategy()
        return cls(Runtime(machine, workers, strategy, seed=seed, collect_timeline=collect_timeline))

    def finalize(self) -> Optional[RunReport]:
        """CHARM_Finalize(): tear down; returns the last run report."""
        self._finalized = True
        return self.report

    # -- Memory ------------------------------------------------------------------

    def alloc(
        self,
        size_bytes: int,
        node: Optional[int] = None,
        policy: MemPolicy = MemPolicy.BIND,
        name: str = "",
    ) -> Region:
        return self.runtime.alloc(size_bytes, node=node, policy=policy, name=name)

    # -- Task creation --------------------------------------------------------------

    def spawn(self, fn: Callable, *args: Any, name: str = "") -> Task:
        """Queue one task (placed by the active strategy)."""
        self._check_live()
        return self.runtime.spawn(fn, *args, name=name)

    def all_do(self, fn: Callable, *args: Any) -> List[Task]:
        """Execute ``fn(worker_id, *args)`` on every worker (paper all_do)."""
        self._check_live()
        return [
            self.runtime.spawn(fn, wid, *args, pin_worker=wid, name=f"all_do-{wid}")
            for wid in range(len(self.runtime.workers))
        ]

    def call(self, target_worker: int, fn: Callable, *args: Any) -> Future:
        """Asynchronous RPC onto a specific worker; resolves with the result."""
        self._check_live()
        task = self.runtime.spawn(fn, *args, pin_worker=target_worker, name="call")
        return self.runtime.completion_future(task)

    def barrier(self, parties: Optional[int] = None, name: str = "barrier") -> Barrier:
        """A barrier over ``parties`` tasks (default: all workers)."""
        return Barrier(parties or len(self.runtime.workers), name=name)

    # -- Execution --------------------------------------------------------------------

    def run(self) -> RunReport:
        """Run all queued work to completion; returns the run report."""
        self._check_live()
        self.report = self.runtime.run()
        return self.report

    def _check_live(self) -> None:
        if self._finalized:
            raise RuntimeError("Charm instance already finalized")


# -- In-task combinators -------------------------------------------------------------
#
# These are generator helpers used *inside* task bodies with ``yield from``.


def co_spawn(fn: Callable, *args: Any, pin_worker: Optional[int] = None) -> Generator:
    """Spawn a child task from within a task; returns the child Task."""
    child = yield SpawnOp(fn, args, pin_worker=pin_worker)
    return child


def co_call_sync(charm: Charm, target_worker: int, fn: Callable, *args: Any) -> Generator:
    """Synchronous RPC: spawn on ``target_worker`` and wait for the result."""
    child = yield SpawnOp(fn, args, pin_worker=target_worker, name="call-sync")
    fut = charm.runtime.completion_future(child)
    if fut.done:
        return fut.value
    value = yield WaitFuture(fut)
    return value


def co_wait_all(charm: Charm, tasks: List[Task]) -> Generator:
    """Wait for every task; returns their results in order."""
    results = []
    for t in tasks:
        fut = charm.runtime.completion_future(t)
        if fut.done:
            results.append(fut.value)
        else:
            results.append((yield WaitFuture(fut)))
    return results


def co_barrier(barrier: Barrier) -> Generator:
    """Wait at a barrier from within a task."""
    yield WaitBarrier(barrier)
