"""Compiled op programs: columnar straight-line op sequences.

A :class:`OpProgram` is the compiled form of a straight-line section of a
task generator: instead of yielding one op dataclass per step — paying a
generator ``send()`` round trip and a ``type()`` dispatch per op — the
producer appends rows to a program and yields the whole program once.
The worker walks the columns directly (:meth:`Worker._run_program`)
without re-entering the generator until the program is exhausted.

Row format is columnar: an int8-packable *kind* column plus parallel
operand columns — int64 operands (``a``/``b``/``c`` for block / start /
count / stride, ``d`` for nbytes with 0 meaning "region default"),
bool flag columns (``wr`` write, ``dep`` dependent), a float64 ``ns``
column (compute ns, per-block compute ns, or critical-section hold ns),
and a per-row Python reference column ``objs`` (region, ``(region,
blocks)``, or lock).  During construction the columns are plain Python
lists — row-wise CPython list indexing beats numpy scalar unboxing in
the interpreter — and :meth:`packed_columns` materializes the compact
int8/int64/float64 array form when something wants to store or inspect a
program as data.

Build-time fusion (the only fusion — both execution paths see the fused
rows, so bit-identity between them holds by construction):

- consecutive :meth:`compute` rows merge into one row charging the sum;
- a :meth:`run` row that starts exactly where the previous run row ended
  (same region, stride, flags, nbytes, per-block ns) extends the
  previous row instead of appending — the shapes segment classification
  already services as one machine call.

Nothing else fuses: critical sections keep their per-acquisition lock
accounting, batches keep their duplicate semantics, and yields keep
their scheduling side effects.

Programs cover only the straight-line op kinds: compute, access, batch,
run, critical section, and yield.  Control transfers (spawn, barrier,
future waits) stay in the generator — a producer emits a program up to
the transfer, yields the plain op, and may emit another program after.

``FORCE_GENERATOR`` is the equivalence-test hook: when true, a worker
receiving a program splices ``to_ops()`` into the task's generator and
interprets the rows through the exact per-op dispatch path, one
``send()`` per row — the forced-generator twin the hypothesis suite
diffs against the compiled path.
"""

from typing import Iterator, List, Optional

import numpy as np

from repro.hw.memory import Region
from repro.runtime.ops import (
    Access,
    AccessBatch,
    AccessRun,
    Compute,
    CriticalSection,
    SimLock,
    YieldPoint,
)

#: row kinds (values fit int8; order is frozen — packed programs are data)
K_COMPUTE = 0
K_ACCESS = 1
K_BATCH = 2
K_RUN = 3
K_CRITICAL = 4
K_YIELD = 5

KIND_NAMES = ("compute", "access", "batch", "run", "critical", "yield")

#: test hook: expand programs through the generator dispatch path
#: (the forced-generator twin of the equivalence suite)
FORCE_GENERATOR = False


class OpProgram:
    """A compiled straight-line op sequence, stored as parallel columns."""

    __slots__ = ("kinds", "a", "b", "c", "d", "wr", "dep", "ns", "objs",
                 "n", "n_ops")

    def __init__(self) -> None:
        self.kinds: List[int] = []   # kind column (int8 range)
        self.a: List[int] = []       # block / run start
        self.b: List[int] = []       # run count
        self.c: List[int] = []       # run stride
        self.d: List[int] = []       # nbytes (0 = region default)
        self.wr: List[bool] = []     # write flag
        self.dep: List[bool] = []    # dependent (no-MLP) flag
        self.ns: List[float] = []    # compute / per-block / hold ns
        self.objs: List[object] = []  # region | (region, blocks) | lock
        self.n = 0        # rows after fusion
        self.n_ops = 0    # ops represented (pre-fusion count)

    # -- Builder (appenders with build-time fusion) ---------------------------

    def _append(self, kind: int, a: int, b: int, c: int, d: int,
                wr: bool, dep: bool, ns: float, obj) -> None:
        self.kinds.append(kind)
        self.a.append(a)
        self.b.append(b)
        self.c.append(c)
        self.d.append(d)
        self.wr.append(wr)
        self.dep.append(dep)
        self.ns.append(ns)
        self.objs.append(obj)
        self.n += 1

    def compute(self, ns: float) -> "OpProgram":
        """Charge ``ns`` of pure compute; fuses with a preceding compute row."""
        if ns < 0:
            raise ValueError("compute time must be non-negative")
        self.n_ops += 1
        if self.n and self.kinds[-1] == K_COMPUTE:
            self.ns[-1] += ns
        else:
            self._append(K_COMPUTE, 0, 0, 0, 0, False, False, ns, None)
        return self

    def access(self, region: Region, block: int, write: bool = False,
               nbytes: Optional[int] = None) -> "OpProgram":
        """One block access (the :class:`~repro.runtime.ops.Access` shape)."""
        self.n_ops += 1
        self._append(K_ACCESS, block, 0, 0, nbytes or 0, write, False,
                     0.0, region)
        return self

    def batch(self, region: Region, blocks, write: bool = False,
              nbytes: Optional[int] = None, compute_ns_per_block: float = 0.0,
              dependent: bool = False) -> "OpProgram":
        """A block batch (the :class:`~repro.runtime.ops.AccessBatch` shape)."""
        self.n_ops += 1
        self._append(K_BATCH, 0, 0, 0, nbytes or 0, write, dependent,
                     compute_ns_per_block, (region, blocks))
        return self

    def run(self, region: Region, start: int, count: int, stride: int = 1,
            write: bool = False, nbytes: Optional[int] = None,
            compute_ns_per_block: float = 0.0,
            dependent: bool = False) -> "OpProgram":
        """A run-compressed batch; extends a preceding exactly-contiguous run.

        Fusion requires the previous row to be a run over the same region
        with identical stride/flags/nbytes/per-block-ns ending exactly
        where this one starts — the one shape where one machine call is
        bit-identical to two by construction (a longer arithmetic run).
        """
        if count < 0:
            raise ValueError("run count must be non-negative")
        if stride < 1:
            raise ValueError("run stride must be >= 1")
        self.n_ops += 1
        nb = nbytes or 0
        if (self.n and self.kinds[-1] == K_RUN
                and self.objs[-1] is region
                and self.c[-1] == stride
                and self.a[-1] + self.b[-1] * stride == start
                and self.wr[-1] == write
                and self.dep[-1] == dependent
                and self.d[-1] == nb
                and self.ns[-1] == compute_ns_per_block):
            self.b[-1] += count
        else:
            self._append(K_RUN, start, count, stride, nb, write, dependent,
                         compute_ns_per_block, region)
        return self

    def critical(self, lock: SimLock, ns: float) -> "OpProgram":
        """A critical section; never fused (per-acquisition lock accounting)."""
        self.n_ops += 1
        self._append(K_CRITICAL, 0, 0, 0, 0, False, False, ns, lock)
        return self

    def yield_(self) -> "OpProgram":
        """A cooperative yield point (requeue + policy tick, as YieldPoint)."""
        self.n_ops += 1
        self._append(K_YIELD, 0, 0, 0, 0, False, False, 0.0, None)
        return self

    # -- Introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OpProgram {self.n} rows / {self.n_ops} ops>"

    def packed_columns(self) -> dict:
        """The compact array form: int8 kinds, int64 operands, float64 ns.

        ``objs`` stays a Python reference column (regions/locks/block
        arrays are simulator objects, not scalars); everything else packs
        into three dtype-homogeneous arrays.  Flags pack as bits into the
        int64 operand matrix (row 4: bit0 write, bit1 dependent).
        """
        flags = [int(w) | (int(dp) << 1) for w, dp in zip(self.wr, self.dep)]
        return {
            "kinds": np.array(self.kinds, dtype=np.int8),
            "i64": np.array([self.a, self.b, self.c, self.d, flags],
                            dtype=np.int64),
            "f64": np.array(self.ns, dtype=np.float64),
            "objs": list(self.objs),
        }

    def to_ops(self) -> Iterator[object]:
        """Expand rows back into op dataclasses (post-fusion, row for row).

        This is the forced-generator twin's view: exactly the rows the
        compiled interpreter executes, one dataclass per row, dispatched
        through the ordinary per-op path.
        """
        for i in range(self.n):
            k = self.kinds[i]
            if k == K_COMPUTE:
                yield Compute(self.ns[i])
            elif k == K_ACCESS:
                yield Access(self.objs[i], self.a[i], write=self.wr[i],
                             nbytes=self.d[i] or None)
            elif k == K_BATCH:
                region, blocks = self.objs[i]
                yield AccessBatch(region, blocks, write=self.wr[i],
                                  nbytes=self.d[i] or None,
                                  compute_ns_per_block=self.ns[i],
                                  dependent=self.dep[i])
            elif k == K_RUN:
                yield AccessRun(self.objs[i], self.a[i], self.b[i],
                                stride=self.c[i], write=self.wr[i],
                                nbytes=self.d[i] or None,
                                compute_ns_per_block=self.ns[i],
                                dependent=self.dep[i])
            elif k == K_CRITICAL:
                yield CriticalSection(self.objs[i], self.ns[i])
            elif k == K_YIELD:
                yield YieldPoint()
            else:  # pragma: no cover - defensive
                raise ValueError(f"bad program row kind {k}")


def splice(program: OpProgram, gen):
    """Wrap ``gen`` so ``program`` (and any later programs it yields) expand
    into per-op yields — the forced-generator twin execution mode.

    The worker swaps the task's generator for this wrapper the moment it
    receives a program while :data:`FORCE_GENERATOR` is set; from then on
    every program row travels through the ordinary ``send()`` dispatch,
    and non-program ops (spawns, waits) pass through untouched with their
    send values intact.
    """
    for sub in program.to_ops():
        yield sub
    send_value = None
    while True:
        try:
            op = gen.send(send_value)
        except StopIteration as stop:
            return stop.value
        if type(op) is OpProgram:
            for sub in op.to_ops():
                yield sub
            send_value = None
        else:
            send_value = yield op
