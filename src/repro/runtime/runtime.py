"""The assembled runtime: workers + strategy + machine + bookkeeping.

:class:`Runtime` wires a scheduling strategy (CHARM or a baseline) to the
simulated machine, creates one worker per requested core, and drives the
virtual-time event loop to completion.  It owns the global pieces of the
paper's architecture (Fig. 6): the global scheduler's core ledger and
migration path, spawn/completion bookkeeping, barrier release, and the
run-level profiling record.
"""

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.hw.counters import CounterSnapshot, FillSource
from repro.hw.machine import Machine
from repro.hw.memory import MemPolicy, Region
from repro.obs.context import attach_if_active
from repro.runtime.policy import SchedulingStrategy
from repro.runtime.sync import Barrier, Future
from repro.runtime.task import Task, TaskState
from repro.runtime.worker import Worker
from repro.sim.engine import EventLoop, SimulationError
from repro.sim.rng import stream_rng


@dataclass
class RunReport:
    """Everything measured during one runtime execution."""

    strategy: str
    n_workers: int
    wall_ns: float
    tasks_completed: int
    tasks_created: int
    migrations: int
    steals: int
    counters: CounterSnapshot
    per_worker_busy_ns: List[float] = field(default_factory=list)
    spread_history: List[Tuple[float, int, int]] = field(default_factory=list)
    #: raw (virtual time, +1/-1) task start/stop deltas; see cumulative_concurrency()
    concurrency_timeline: List[Tuple[float, int]] = field(default_factory=list)
    total_accesses: int = 0
    #: machine-wide per-source fill totals (``FillSource.value`` keyed)
    fill_totals: Dict[str, int] = field(default_factory=dict)
    #: per-source fill-latency histogram (count / summed ns / average ns)
    fill_latency: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def wall_seconds(self) -> float:
        return self.wall_ns * 1e-9

    def throughput(self, work_items: float) -> float:
        """Work items per virtual second."""
        if self.wall_ns <= 0:
            return 0.0
        return work_items / self.wall_seconds

    def cumulative_concurrency(self) -> List[Tuple[float, int]]:
        """Time-sorted (time, running-task count) curve from the raw deltas.

        Workers record start/stop deltas at their own clocks, so the raw
        timeline is not globally time-ordered; this sorts and accumulates.
        """
        events = sorted(self.concurrency_timeline)
        out = []
        count = 0
        for t, delta in events:
            count += delta
            out.append((t, count))
        return out

    def avg_concurrency(self) -> float:
        """Time-weighted average number of concurrently running tasks."""
        tl = self.cumulative_concurrency()
        if len(tl) < 2:
            return 0.0
        area = 0.0
        for (t0, c0), (t1, _) in zip(tl, tl[1:]):
            area += c0 * (t1 - t0)
        span = tl[-1][0] - tl[0][0]
        return area / span if span > 0 else 0.0


class Runtime:
    """Task runtime over a simulated chiplet machine.

    Parameters
    ----------
    machine:
        The hardware substrate.
    n_workers:
        Worker count; each worker gets a dedicated physical core
        (paper section 4.6 — hyperthread siblings are never co-scheduled).
    strategy:
        The scheduling personality (CHARM or a baseline).
    seed:
        Root seed for all stochastic decisions (steal victim order, etc.).
    step_slice_ns:
        Maximum virtual time a worker runs between event-loop turns.
    collect_timeline:
        Record the concurrency timeline (needed for Fig. 12).
    """

    def __init__(
        self,
        machine: Machine,
        n_workers: int,
        strategy: SchedulingStrategy,
        seed: int = 7,
        step_slice_ns: float = 5_000.0,
        collect_timeline: bool = False,
        max_steps: Optional[int] = None,
    ):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        if n_workers > machine.topo.total_cores:
            raise ValueError(
                f"{n_workers} workers exceed {machine.topo.total_cores} physical cores"
            )
        self.machine = machine
        self.strategy = strategy
        self.seed = seed
        self.step_slice_ns = step_slice_ns
        self.spawn_overhead_ns = 70.0
        self.collect_timeline = collect_timeline

        self.loop = EventLoop()
        self.loop.max_steps = max_steps
        self.workers: List[Worker] = []
        self.core_ledger: Dict[int, int] = {}  # core -> worker id
        for wid in range(n_workers):
            core = strategy.initial_core(wid, n_workers, machine)
            if core in self.core_ledger:
                # Alg. 2's (chiplet, slot) mapping is collision-free only
                # when spread_rate divides cores_per_chiplet; in the
                # remaining corner the global scheduler arbitrates by
                # assigning the nearest free core (same chiplet, then same
                # socket, then anywhere), mirroring the migration path.
                core = self._nearest_free_core(core)
            w = Worker(wid, core, self, stream_rng(seed, "worker", wid))
            w.policy_time = 0.0
            w.spread_rate = strategy.initial_spread(wid, n_workers, machine)
            self.core_ledger[core] = wid
            self.workers.append(w)

        self.outstanding = 0
        self.tasks_created = 0
        self.tasks_completed = 0
        self.total_steals = 0
        self.total_migrations = 0
        self._idle: List[Worker] = []
        self._rr = 0
        self._completion: Dict[int, Future] = {}
        self._running_tasks = 0
        self._timeline: List[Tuple[float, int]] = []
        self.spread_history: List[Tuple[float, int, int]] = []
        self._started = False
        #: attached Telemetry (repro.obs) or None; every instrumentation
        #: point guards on this so the detached cost is one None check.
        self.obs = None
        attach_if_active(self)

    def _nearest_free_core(self, wanted: int) -> int:
        """Closest unassigned core: same chiplet, same socket, then any."""
        topo = self.machine.topo
        candidates = (
            topo.cores_of_chiplet(topo.chiplet_of_core(wanted))
            + topo.cores_of_socket(topo.socket_of_core(wanted))
            + list(range(topo.total_cores))
        )
        for core in candidates:
            if core not in self.core_ledger:
                return core
        raise SimulationError("no free cores left for initial placement")

    # -- Allocation -------------------------------------------------------------

    def alloc(
        self,
        size_bytes: int,
        node: Optional[int] = None,
        policy: MemPolicy = MemPolicy.BIND,
        name: str = "",
        worker: Optional[Worker] = None,
        block_bytes: Optional[int] = None,
    ) -> Region:
        """Allocate a region; default node follows the strategy's NUMA rule."""
        if node is None:
            ref = worker or self.workers[0]
            node = self.strategy.alloc_node(ref, self.machine)
        return self.machine.alloc_region(
            size_bytes, node=node, policy=policy, name=name, block_bytes=block_bytes
        )

    def alloc_shared(
        self,
        size_bytes: int,
        read_only: bool = False,
        name: str = "",
        block_bytes: Optional[int] = None,
    ) -> Region:
        """Allocate workload-shared data under the strategy's NUMA policy.

        CHARM binds shared data to the socket its workers occupy; the
        NUMA-aware baselines interleave it; SHOAL replicates read-only
        arrays per node.
        """
        policy = self.strategy.shared_policy(read_only=read_only, runtime=self)
        node = self.strategy.alloc_node(self.workers[0], self.machine)
        return self.machine.alloc_region(
            size_bytes, node=node, policy=policy, name=name, block_bytes=block_bytes
        )

    # -- Spawning ----------------------------------------------------------------

    def spawn(
        self,
        fn: Callable,
        *args: Any,
        pin_worker: Optional[int] = None,
        name: str = "",
        spawner: Optional[Worker] = None,
    ) -> Task:
        """Create a task and enqueue it on its target worker."""
        task = Task(fn, args, name=name, pinned=pin_worker is not None)
        if pin_worker is not None:
            target = pin_worker
            if not 0 <= target < len(self.workers):
                raise ValueError(f"pin_worker {target} out of range")
        else:
            target = self.strategy.place_task(spawner, self)
        now = spawner.clock if spawner is not None else 0.0
        task.ready_at = now
        task.spawned_at = now
        task.state = TaskState.READY
        self.outstanding += 1
        self.tasks_created += 1
        self.workers[target].queue.push(task)
        # Wake the target if it idles; otherwise give one parked worker a
        # steal opportunity (cheap directed wakeup instead of a herd).
        if not self._wake_worker(target, now):
            self._wake_one_idle(now)
        return task

    def completion_future(self, task: Task) -> Future:
        """Future resolved with the task's return value at completion."""
        fut = self._completion.get(task.task_id)
        if fut is None:
            if task.state is TaskState.DONE:
                fut = Future(name=f"done-{task.task_id}")
                fut.resolve(task.result, task.finished_at)
            else:
                fut = Future(name=f"completion-{task.task_id}")
                self._completion[task.task_id] = fut
        return fut

    def rr_next_worker(self) -> int:
        self._rr = (self._rr + 1) % len(self.workers)
        return self._rr

    def worker_cores(self) -> List[int]:
        return [w.core for w in self.workers]

    # -- Execution ------------------------------------------------------------------

    def run(self) -> RunReport:
        """Drive the event loop until all tasks complete; return the report."""
        if self._started:
            raise SimulationError("Runtime.run() may only be called once")
        self._started = True
        if self.outstanding == 0:
            raise SimulationError("no tasks spawned before run()")
        for w in self.workers:
            self.loop.add(w)
        wall_ns = self.loop.run()
        return self._report(wall_ns)

    def _report(self, wall_ns: float) -> RunReport:
        used_cores = [w.core for w in self.workers]
        return RunReport(
            strategy=self.strategy.name,
            n_workers=len(self.workers),
            wall_ns=wall_ns,
            tasks_completed=self.tasks_completed,
            tasks_created=self.tasks_created,
            migrations=self.total_migrations,
            steals=self.total_steals,
            counters=self._aggregate_worker_counters(),
            per_worker_busy_ns=[w.busy_ns for w in self.workers],
            spread_history=list(self.spread_history),
            concurrency_timeline=list(self._timeline),
            total_accesses=self.machine.total_accesses,
            fill_totals={
                src.value: n
                for src, n in zip(FillSource, self.machine.counters.totals())
            },
            fill_latency=self.machine.fill_latency_histogram(),
        )

    def _aggregate_worker_counters(self) -> CounterSnapshot:
        from repro.hw.counters import (
            IDX_DRAM_LOCAL,
            IDX_DRAM_REMOTE,
            IDX_LOCAL_CHIPLET,
            IDX_REMOTE_CHIPLET,
            IDX_REMOTE_NUMA_CHIPLET,
        )

        snap = CounterSnapshot()
        for w in self.workers:
            v = w.fills.v
            snap.local_chiplet += v[IDX_LOCAL_CHIPLET]
            snap.remote_chiplet += v[IDX_REMOTE_CHIPLET]
            snap.remote_numa_chiplet += v[IDX_REMOTE_NUMA_CHIPLET]
            snap.dram += v[IDX_DRAM_LOCAL] + v[IDX_DRAM_REMOTE]
        return snap

    # -- Worker callbacks ---------------------------------------------------------------

    def park_idle(self, worker: Worker) -> None:
        self._idle.append(worker)

    def _wake_idle(self, now: float) -> None:
        while self._idle:
            w = self._idle.pop()
            self.loop.wake(w, now)

    def _wake_worker(self, worker_id: int, now: float) -> bool:
        """Wake a specific idle worker; returns False if it is not parked idle."""
        for i, w in enumerate(self._idle):
            if w.worker_id == worker_id:
                del self._idle[i]
                self.loop.wake(w, now)
                return True
        return False

    def _wake_one_idle(self, now: float) -> None:
        if self._idle:
            self.loop.wake(self._idle.pop(), now)

    def on_dispatch(self, worker: Worker, task: Task) -> None:
        self._record_concurrency(worker.clock, +1)

    def task_done(self, task: Task, worker: Worker) -> None:
        self.outstanding -= 1
        self.tasks_completed += 1
        self._record_concurrency(worker.clock, -1)
        fut = self._completion.pop(task.task_id, None)
        if fut is not None:
            for t in fut.resolve(task.result, worker.clock):
                self._requeue(t)
        if self.outstanding == 0:
            self._wake_idle(worker.clock)

    def task_failed(self, task: Task, worker: Worker) -> None:
        self.outstanding -= 1
        self._record_concurrency(worker.clock, -1)

    def on_worker_blocked(self, worker: Worker) -> None:
        self._record_concurrency(worker.clock, -1)

    def on_task_paused(self, worker: Worker) -> None:
        """A task yielded or parked without finishing."""
        self._record_concurrency(worker.clock, -1)

    def unblock_worker(self, worker: Worker, value: Any, now: float) -> None:
        """Resume a worker whose OS thread blocked on a future."""
        worker.blocked_current = False
        if worker.current is not None:
            worker.current.send_value = value
        self._record_concurrency(now, +1)
        self.loop.wake(worker, now)

    # -- Barriers -------------------------------------------------------------------------

    def release_barrier(
        self,
        barrier: Barrier,
        released: List[Tuple[Task, int, float]],
        releasing_worker: Optional[Worker] = None,
    ) -> Optional[float]:
        """Release all parties; returns the resume time for the caller if the
        releasing worker itself is among the released blocking workers."""
        last = max(t for _, _, t in released)
        cores = [self.workers[wid].core for _, wid, _ in released]
        release_time = last + self.machine.sync_span_ns(cores) + 50.0 * len(released) ** 0.5
        barrier.release_times.append(release_time)
        self_resume: Optional[float] = None
        if self.strategy.blocking_sync:
            for task, wid, _ in released:
                w = self.workers[wid]
                w.blocked_current = False
                task.send_value = None
                task.state = TaskState.RUNNING
                self._record_concurrency(release_time, +1)
                if releasing_worker is not None and wid == releasing_worker.worker_id:
                    self_resume = release_time
                else:
                    self.loop.wake(w, release_time)
            return self_resume
        for task, wid, _ in released:
            task.state = TaskState.READY
            task.ready_at = release_time
            task.send_value = None
            self.workers[wid].queue.push(task)
        self._wake_idle(release_time)
        return None

    def _requeue(self, task: Task) -> None:
        """Put a future-released task back on its owner's queue."""
        wid = task.owner_worker if task.owner_worker is not None else self.rr_next_worker()
        task.state = TaskState.READY
        self.workers[wid].queue.push(task)
        self._wake_idle(task.ready_at)

    # -- Migration (global scheduler + core ledger) ------------------------------------------

    def request_migration(self, worker: Worker, target_core: int) -> bool:
        """Grant a worker's affinity-change request if the core is free.

        The paper's Alg. 2 guarantees collision-freedom when all workers
        share one ``spread_rate``; during transients workers may disagree,
        so the global scheduler arbitrates via the core ledger and a loser
        simply retries next timer cycle.
        """
        if target_core == worker.core:
            return True
        holder = self.core_ledger.get(target_core)
        if holder is not None and holder != worker.worker_id:
            return False
        del self.core_ledger[worker.core]
        self.core_ledger[target_core] = worker.worker_id
        worker.core = target_core
        # Worker placement changed: memoized barrier spans are stale-keyed.
        self.machine.invalidate_sync_cache()
        # Alg. 2 lines 13-14: bind the worker's memory policy to the new node.
        worker.mem_node = self.machine.topo.numa_of_core(target_core)
        worker.clock += self.strategy.migration_cost_ns
        worker.busy_ns += self.strategy.migration_cost_ns
        worker.migrations += 1
        self.total_migrations += 1
        if self.collect_timeline:
            self.spread_history.append((worker.clock, worker.worker_id, worker.spread_rate))
        return True

    # -- Profiling ------------------------------------------------------------------------------

    def _record_concurrency(self, now: float, delta: int) -> None:
        self._running_tasks += delta
        if self.collect_timeline:
            self._timeline.append((now, delta))
