"""Compatibility shim: tracing moved to :mod:`repro.obs.trace` (PR 5).

Everything importable from here before the move still is; new code
should import from ``repro.obs`` directly.
"""

from repro.obs.trace import (  # noqa: F401
    EventKind,
    TaskSummary,
    TraceEvent,
    Tracer,
)

__all__ = ["EventKind", "TaskSummary", "TraceEvent", "Tracer"]
