"""Operations yielded by task coroutines.

CHARM tasks are Python generators.  Instead of performing work directly,
a task *yields* operation descriptors; the executing worker interprets
each one against the simulated machine and charges virtual time:

- :class:`Compute` — pure CPU work;
- :class:`Access` / :class:`AccessBatch` — memory accesses, serviced by the
  machine's cache/memory hierarchy;
- :class:`YieldPoint` — a developer-defined suspension point (the paper's
  coroutine yield): the task is re-queued, letting the worker interleave
  other tasks and the profiler/policy hook run;
- :class:`SpawnOp` — create a child task;
- :class:`WaitBarrier` / :class:`WaitFuture` — blocking synchronisation;
  the task parks without blocking its worker, which is exactly the
  advantage of coroutines over ``std::async`` shown in Fig. 12.
"""

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, TYPE_CHECKING

from repro.hw.memory import Region

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.sync import Barrier, Future
    from repro.runtime.task import Task


@dataclass(frozen=True)
class Compute:
    """Charge ``ns`` of pure compute time to the running worker."""

    ns: float

    def __post_init__(self) -> None:
        if self.ns < 0:
            raise ValueError("compute time must be non-negative")


@dataclass(frozen=True)
class Access:
    """One block access against a region."""

    region: Region
    block: int
    write: bool = False
    nbytes: Optional[int] = None


@dataclass(frozen=True)
class AccessBatch:
    """A batch of block accesses against one region.

    Batching many accesses into one yield keeps the simulation fast; the
    machine still serialises each block on its channel/link individually.
    ``compute_ns_per_block`` charges interleaved CPU work per block, as in
    a scan loop.
    """

    region: Region
    blocks: Sequence[int]
    write: bool = False
    nbytes: Optional[int] = None
    compute_ns_per_block: float = 0.0
    #: True for dependent chains (pointer chasing, atomic RMW sequences):
    #: each access pays its full latency with no MLP overlap.
    dependent: bool = False


@dataclass(frozen=True)
class AccessRun:
    """A run-compressed batch: blocks ``start + i*stride`` for ``i < count``.

    The streaming shape (sequential scans, strided column walks) that
    used to materialize million-entry block lists.  A run is
    duplicate-free by construction, so the machine can route it straight
    to the vectorized kernels (:mod:`repro.hw.vector`) without a
    distinctness check — and never builds a per-block Python list at all.
    Semantics are identical to ``AccessBatch(region, list(range(...)))``.
    """

    region: Region
    start: int
    count: int
    stride: int = 1
    write: bool = False
    nbytes: Optional[int] = None
    compute_ns_per_block: float = 0.0
    #: True for dependent chains: each access pays full latency, no MLP.
    dependent: bool = False


@dataclass(frozen=True)
class YieldPoint:
    """Cooperative suspension point; the profiler hook runs here."""


@dataclass(frozen=True)
class SpawnOp:
    """Spawn a child task running ``fn(*args)``.

    ``pin_worker`` forces placement on a specific worker (used by
    ``all_do``/``call``); otherwise the active strategy places the task.
    The spawned :class:`~repro.runtime.task.Task` is delivered back into
    the generator as the value of the ``yield``.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    pin_worker: Optional[int] = None
    name: str = ""


@dataclass(frozen=True)
class WaitBarrier:
    """Park the task until all barrier participants arrive."""

    barrier: "Barrier"


@dataclass(frozen=True)
class WaitFuture:
    """Park the task until the future resolves; its value is sent back."""

    future: "Future"


@dataclass(frozen=True)
class CriticalSection:
    """Execute ``ns`` of work under a mutex: waits for the lock, then holds it.

    Models the serialisation points real workloads have (streamcluster's
    center-opening lock, an OLTP engine's commit/log latch).  The wait
    time grows with contention, which is what makes such workloads
    insensitive to cache placement (paper section 5.7).
    """

    lock: "SimLock"
    ns: float


class SimLock:
    """A mutex in virtual time: a single-server queue over critical sections."""

    __slots__ = ("name", "free_at", "acquisitions", "contended_ns")

    def __init__(self, name: str = "lock"):
        self.name = name
        self.free_at = 0.0
        self.acquisitions = 0
        self.contended_ns = 0.0

    def acquire(self, now: float, hold_ns: float) -> float:
        """Serve one critical section arriving at ``now``; return total delay."""
        start = self.free_at if self.free_at > now else now
        self.free_at = start + hold_ns
        self.acquisitions += 1
        self.contended_ns += start - now
        return self.free_at - now
