"""Adaptive controller: approaches -> concrete scheduling policies.

Paper section 4.1: "An approach outlines the general method or guiding
principle, while a policy specifies the concrete actions the scheduler
follows based on that approach."  The controller turns a high-level
approach into a :class:`~repro.runtime.policy.CharmPolicyConfig` (and
hence a :class:`~repro.runtime.policy.CharmStrategy`):

- **LOCATION_CENTRIC** — minimise cross-chiplet communication: a high
  remote-fill threshold makes workers reluctant to spread, keeping tasks
  co-located;
- **CACHE_CENTRIC** — maximise aggregate cache: a low threshold makes
  workers eager to spread across chiplets for capacity;
- **ADAPTIVE** — the paper's default, balancing both with the calibrated
  threshold of 300 events per timer interval (section 4.6).
"""

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.runtime.policy import CharmPolicyConfig, CharmStrategy


class Approach(Enum):
    LOCATION_CENTRIC = "location-centric"
    CACHE_CENTRIC = "cache-centric"
    ADAPTIVE = "adaptive"


#: Paper-calibrated threshold (section 4.6 sensitivity analysis).
PAPER_THRESHOLD = 300.0

_THRESHOLDS = {
    Approach.LOCATION_CENTRIC: PAPER_THRESHOLD * 6.0,
    Approach.CACHE_CENTRIC: PAPER_THRESHOLD / 6.0,
    Approach.ADAPTIVE: PAPER_THRESHOLD,
}


@dataclass
class ControllerMetrics:
    """Profiler summary the controller reacts to between policy updates."""

    remote_fill_rate: float = 0.0
    dram_fill_rate: float = 0.0
    avg_task_ns: float = 0.0


class AdaptiveController:
    """Generates scheduling policies from approaches and profiler feedback."""

    def __init__(
        self,
        approach: Approach = Approach.ADAPTIVE,
        scheduler_timer_ns: float = 50_000.0,
        threshold_override: Optional[float] = None,
    ):
        self.approach = approach
        self.scheduler_timer_ns = scheduler_timer_ns
        self.threshold_override = threshold_override

    def policy_config(self) -> CharmPolicyConfig:
        threshold = (
            self.threshold_override
            if self.threshold_override is not None
            else _THRESHOLDS[self.approach]
        )
        return CharmPolicyConfig(
            scheduler_timer_ns=self.scheduler_timer_ns,
            rmt_chip_access_rate=threshold,
        )

    def make_strategy(self) -> CharmStrategy:
        """Instantiate the CHARM strategy under the current approach."""
        return CharmStrategy(self.policy_config())

    def refine(self, metrics: ControllerMetrics) -> "AdaptiveController":
        """Switch approach based on observed behaviour.

        A workload dominated by DRAM fills is capacity-starved and profits
        from the cache-size-centric approach; one dominated by
        chiplet-to-chiplet fills is sharing-bound and profits from the
        location-centric approach; otherwise stay adaptive.
        """
        if metrics.dram_fill_rate > 2.0 * metrics.remote_fill_rate:
            approach = Approach.CACHE_CENTRIC
        elif metrics.remote_fill_rate > 2.0 * metrics.dram_fill_rate:
            approach = Approach.LOCATION_CENTRIC
        else:
            approach = Approach.ADAPTIVE
        return AdaptiveController(
            approach=approach,
            scheduler_timer_ns=self.scheduler_timer_ns,
            threshold_override=self.threshold_override,
        )
