"""Worker threads: one per dedicated physical core.

A worker is the simulation actor that executes tasks.  It owns a local
task queue, steals hierarchically when idle, interprets the ops yielded by
task generators against the machine, and runs the decentralised policy
hook (Alg. 1) at yield points and task completions — exactly the
decentralised design of paper section 4.1: each worker monitors its own
fill counters and autonomously requests affinity changes.

Cooperative vs blocking synchronisation: with CHARM-style strategies a
blocked task parks while the worker picks up other tasks; with
``blocking_sync`` strategies (the ``std::async`` baseline) the *worker
itself* blocks, idling its core — reproducing the thread-blocking
behaviour the paper measures in Fig. 12.
"""

from time import perf_counter
from typing import List, Optional, TYPE_CHECKING

from repro.hw.counters import FillCounters
from repro.runtime import program as program_mod
from repro.runtime.program import (
    K_BATCH,
    K_COMPUTE,
    K_CRITICAL,
    K_RUN,
    K_YIELD,
    OpProgram,
)
from repro.runtime.ops import (
    Access,
    AccessBatch,
    AccessRun,
    Compute,
    CriticalSection,
    SpawnOp,
    WaitBarrier,
    WaitFuture,
    YieldPoint,
)
from repro.runtime.queues import LocalQueue
from repro.runtime.task import Task, TaskState
from repro.sim.engine import Actor, EventLoop, StepOutcome

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import Runtime


class Worker(Actor):
    """One worker pinned to (and migratable between) physical cores."""

    __slots__ = (
        "worker_id", "core", "runtime", "rng", "queue", "current",
        "blocked_current", "spread_rate", "policy_time", "fills",
        "_fill_mark", "_dram_mark", "mem_node", "busy_ns", "tasks_done",
        "steal_attempts", "steals_ok", "migrations", "switches",
    )

    def __init__(self, worker_id: int, core: int, runtime: "Runtime", rng):
        super().__init__(worker_id)
        self.worker_id = worker_id
        self.core = core
        self.runtime = runtime
        self.rng = rng
        self.queue = LocalQueue()
        self.current: Optional[Task] = None
        self.blocked_current = False  # blocking_sync: current task waits while worker parks

        # Decentralised policy state (Alg. 1).
        self.spread_rate = 1
        self.policy_time = 0.0
        self.fills = FillCounters()
        self._fill_mark = 0
        self._dram_mark = 0
        self.mem_node = runtime.machine.topo.numa_of_core(core)

        # Statistics.
        self.busy_ns = 0.0
        self.tasks_done = 0
        self.steal_attempts = 0
        self.steals_ok = 0
        self.migrations = 0
        self.switches = 0

    # -- Policy counter plumbing (Alg. 1 lines 5, 18) -------------------------

    def remote_fills_since_mark(self) -> int:
        return self.fills.remote_fills() - self._fill_mark

    def dram_fills_since_mark(self) -> int:
        return self.fills.dram_fills() - self._dram_mark

    def mark_fill_counters(self) -> None:
        self._fill_mark = self.fills.remote_fills()
        self._dram_mark = self.fills.dram_fills()

    # -- Actor interface -------------------------------------------------------

    def step(self, loop: EventLoop) -> StepOutcome:
        rt = self.runtime
        if self.current is None:
            task = self.queue.pop_local() or self._try_steal()
            if task is None:
                if rt.outstanding == 0:
                    return StepOutcome.FINISHED
                rt.park_idle(self)
                return StepOutcome.PARKED
            self._dispatch(task)
        prof = rt.machine.profiler
        if prof is None:
            return self._run_slice(loop)
        # Self-profiled run: attribute the slice's wall clock to the
        # "orchestration" bucket net of whatever the kernel paths (and the
        # program interpreter) charged themselves during the slice.
        t0 = perf_counter()
        k0 = prof.total_wall_s()
        out = self._run_slice(loop)
        prof.add("orchestration", 0,
                 (perf_counter() - t0) - (prof.total_wall_s() - k0))
        return out

    # -- Task acquisition --------------------------------------------------------

    def _try_steal(self) -> Optional[Task]:
        rt = self.runtime
        strategy = rt.strategy
        for victim_id in strategy.steal_order(self, rt):
            self.steal_attempts += 1
            victim = rt.workers[victim_id]
            self._charge(strategy.steal_probe_ns)
            task = victim.queue.steal()
            if task is not None:
                # Moving the task pays half a round trip to the victim's core.
                self._charge(rt.machine.cas_ns(self.core, victim.core) / 2.0)
                self.steals_ok += 1
                rt.total_steals += 1
                obs = rt.obs
                if obs is not None:  # rare path: one event per successful steal
                    obs.bus.emit("worker.steal", {
                        "t": self.clock, "thief": self.worker_id,
                        "victim": victim_id, "task": task.task_id,
                    })
                return task
        return None

    def _dispatch(self, task: Task) -> None:
        strategy = self.runtime.strategy
        if task.ready_at > self.clock:
            self.clock = task.ready_at
        if not task.started:
            task.ensure_started()
        self._charge(strategy.switch_cost_ns)
        task.owner_worker = self.worker_id
        task.state = TaskState.RUNNING
        task.switches += 1
        self.switches += 1
        self.current = task
        self.runtime.on_dispatch(self, task)

    # -- Op interpretation ---------------------------------------------------------

    def _run_slice(self, loop: EventLoop) -> StepOutcome:
        """Run the current task until it yields control or the slice expires.

        Bounding the slice keeps globally shared queueing models (memory
        channels, fabric links) close to true time order while avoiding a
        heap operation per memory access.
        """
        rt = self.runtime
        deadline = self.clock + rt.step_slice_ns
        task = self.current
        if task.program is not None:
            # Resume an in-flight compiled program (slice expired mid-walk).
            outcome = self._run_program(task, deadline)
            if outcome is not None:
                return outcome
            if self.clock >= deadline:
                return StepOutcome.RESCHEDULE
        gen = task.gen
        send = gen.send
        # Bind op classes locally: the dispatch below runs once per yielded
        # op, and module-global lookups are measurable at that frequency.
        compute_op, access_op, batch_op = Compute, Access, AccessBatch
        critical_op, yield_op, spawn_op = CriticalSection, YieldPoint, SpawnOp
        barrier_op, future_op, run_op = WaitBarrier, WaitFuture, AccessRun
        program_cls = OpProgram
        while True:
            try:
                op = send(task.send_value)
                task.send_value = None
            except StopIteration as stop:
                self._finish_task(task, stop.value)
                return StepOutcome.RESCHEDULE
            except Exception as err:  # task crashed: record and propagate
                task.fail(err, self.clock)
                self.current = None
                rt.task_failed(task, self)
                raise

            kind = type(op)
            if kind is program_cls:
                if program_mod.FORCE_GENERATOR:
                    # Equivalence-twin mode: splice the program's rows into
                    # the generator so each row pays the full per-op
                    # send()/dispatch path below.
                    task.gen = gen = program_mod.splice(op, gen)
                    send = gen.send
                    continue
                task.program = op
                task.program_pc = 0
                outcome = self._run_program(task, deadline)
                if outcome is not None:
                    return outcome
                if self.clock >= deadline:
                    return StepOutcome.RESCHEDULE
                continue
            if kind is batch_op:
                self._do_batch(op, task)
            elif kind is run_op:
                self._do_run(op, task)
            elif kind is compute_op:
                self._charge(op.ns)
            elif kind is access_op:
                self._do_access(op.region, op.block, op.write, op.nbytes, task)
            elif kind is critical_op:
                self._charge(op.lock.acquire(self.clock, op.ns))
            elif kind is yield_op:
                task.state = TaskState.READY
                self.queue.push(task)
                rt.on_task_paused(self)  # before clearing current: hooks see the task
                self.current = None
                rt.strategy.on_tick(self, rt)
                return StepOutcome.RESCHEDULE
            elif kind is spawn_op:
                # Creation cost is paid by the *spawner*: ~nothing for
                # coroutines, a full pthread_create for std::async-style
                # runtimes — which serialises task creation on the caller,
                # the flat-scaling bottleneck of Fig. 11's native schemes.
                self._charge(rt.spawn_overhead_ns + rt.strategy.task_create_cost_ns)
                child = rt.spawn(
                    op.fn, *op.args, pin_worker=op.pin_worker, name=op.name, spawner=self
                )
                task.send_value = child
            elif kind is barrier_op:
                return self._wait_barrier(op, task, loop)
            elif kind is future_op:
                if op.future.done:
                    task.send_value = op.future.value
                else:
                    if rt.strategy.blocking_sync and len(self.queue) == 0:
                        # No other runnable thread on this CPU: the OS
                        # thread blocks and the core idles (std::async).
                        self.blocked_current = True
                        op.future.on_resolve(
                            lambda fut, now: rt.unblock_worker(self, fut.value, now)
                        )
                        rt.on_worker_blocked(self)
                        return StepOutcome.PARKED
                    # Runnable threads exist: the OS preempts to them (at
                    # kernel switch cost, charged on next dispatch); a
                    # coroutine runtime just parks the task.
                    op.future.add_waiter(task)
                    rt.on_task_paused(self)
                    self.current = None
                    return StepOutcome.RESCHEDULE
            else:
                raise TypeError(f"task {task.name!r} yielded unknown op {op!r}")

            if self.clock >= deadline:
                return StepOutcome.RESCHEDULE

    def _run_program(self, task: Task, deadline: float) -> Optional[StepOutcome]:
        """Walk the current compiled program's columns until it ends, a
        yield row hands control back, or the slice expires.

        Returns a :class:`StepOutcome` when the walk released the slice
        (yield row, or deadline with rows remaining) and ``None`` when the
        program completed — the caller then resumes the task's generator.
        Row semantics are exactly the per-op dispatch of
        :meth:`_run_slice` minus the generator ``send()`` round trips;
        errors raised by the machine propagate raw, as they do from the
        per-op dispatch.  Program state lives on the task, so a slice
        split mid-program survives steals and migrations.
        """
        prog = task.program
        rt = self.runtime
        machine = rt.machine
        prof = machine.profiler
        pc0 = task.program_pc
        if prof is not None:
            t0 = perf_counter()
            k0 = prof.total_wall_s()
        kinds, a, b, c, d = prog.kinds, prog.a, prog.b, prog.c, prog.d
        wr, dep, ns_col, objs = prog.wr, prog.dep, prog.ns, prog.objs
        n = prog.n
        i = task.program_pc
        core = self.core
        fills = self.fills
        tfills = task.fills
        issue = self.BATCH_ISSUE_NS
        mlp = self.MLP
        outcome: Optional[StepOutcome] = None
        while i < n:
            k = kinds[i]
            if k == K_RUN:
                res = machine.access_run(
                    core, objs[i], a[i], b[i], now=self.clock, stride=c[i],
                    nbytes=d[i] or None, write=wr[i],
                    per_issue_ns=issue + ns_col[i],
                    mlp=1.0 if dep[i] else mlp,
                )
                ns = res.ns
                if ns:
                    self.clock += ns
                    self.busy_ns += ns
                fills.record_counts(res.fill_counts)
                tfills.record_counts(res.fill_counts)
            elif k == K_BATCH:
                region, blocks = objs[i]
                res = machine.access_batch(
                    core, region, blocks, now=self.clock,
                    nbytes=d[i] or None, write=wr[i],
                    per_issue_ns=issue + ns_col[i],
                    mlp=1.0 if dep[i] else mlp,
                )
                ns = res.ns
                if ns:
                    self.clock += ns
                    self.busy_ns += ns
                fills.record_counts(res.fill_counts)
                tfills.record_counts(res.fill_counts)
            elif k == K_COMPUTE:
                ns = ns_col[i]
                if ns:
                    self.clock += ns
                    self.busy_ns += ns
            elif k == K_YIELD:
                task.program_pc = i + 1
                task.state = TaskState.READY
                self.queue.push(task)
                rt.on_task_paused(self)  # before clearing current: hooks see the task
                self.current = None
                rt.strategy.on_tick(self, rt)
                outcome = StepOutcome.RESCHEDULE
                i += 1
                break
            elif k == K_CRITICAL:
                ns = objs[i].acquire(self.clock, ns_col[i])
                if ns:
                    self.clock += ns
                    self.busy_ns += ns
            else:  # K_ACCESS
                res = machine.access(
                    core, objs[i], a[i], now=self.clock,
                    nbytes=d[i] or None, write=wr[i],
                )
                ns = res.ns
                if ns:
                    self.clock += ns
                    self.busy_ns += ns
                fills.record(res.source)
                tfills.record(res.source)
            i += 1
            if self.clock >= deadline and i < n:
                task.program_pc = i
                outcome = StepOutcome.RESCHEDULE
                break
        if i >= n:
            task.program = None
            task.program_pc = 0
        if prof is not None:
            prof.add("program", i - pc0,
                     (perf_counter() - t0) - (prof.total_wall_s() - k0))
        return outcome

    def _wait_barrier(self, op: WaitBarrier, task: Task, loop: EventLoop) -> StepOutcome:
        rt = self.runtime
        if rt.strategy.blocking_sync and len(self.queue) == 0:
            # std::async-style: the OS thread blocks, idling this core.
            self.blocked_current = True
            released = op.barrier.arrive(task, self.worker_id, self.clock)
            rt.on_worker_blocked(self)
            if released is not None:
                resume = rt.release_barrier(op.barrier, released, releasing_worker=self)
                if resume is not None:
                    if resume > self.clock:
                        self.clock = resume
                    return StepOutcome.RESCHEDULE
            return StepOutcome.PARKED
        task.state = TaskState.BLOCKED
        rt.on_task_paused(self)
        self.current = None
        released = op.barrier.arrive(task, self.worker_id, self.clock)
        if released is not None:
            rt.release_barrier(op.barrier, released)
        return StepOutcome.RESCHEDULE

    def _do_access(self, region, block, write, nbytes, task: Task) -> None:
        res = self.runtime.machine.access(
            self.core, region, block, now=self.clock, nbytes=nbytes, write=write
        )
        self._charge(res.ns)
        self.fills.record(res.source)
        task.fills.record(res.source)

    #: per-request issue overhead within a pipelined batch (address
    #: generation + load/store queue slot), ns
    BATCH_ISSUE_NS = 4.0
    #: memory-level parallelism: outstanding misses a core can sustain
    MLP = 10.0

    def _do_batch(self, op: AccessBatch, task: Task) -> None:
        """Pipelined (memory-level-parallel) batch access.

        Requests in a batch are independent streaming accesses: the core
        overlaps up to :attr:`MLP` outstanding misses, so each request
        advances time by ``max(issue interval, latency / MLP)`` rather
        than its full latency.  Queueing on channels/links still
        serialises the requests themselves (bandwidth saturation under
        contention), and the MLP cap keeps *fill latency* relevant: a
        batch of cross-socket fills runs ~2x slower than intra-socket
        ones, exactly the penalty chiplet-oblivious placement pays.
        Dependent (pointer-chasing) accesses should use single
        :class:`Access` ops, which serialise fully.

        The whole batch is serviced by one
        :meth:`~repro.hw.machine.Machine.access_batch` call — the
        simulator's batched fast path — which applies the same MLP rule
        with bit-identical virtual-time results.
        """
        res = self.runtime.machine.access_batch(
            self.core,
            op.region,
            op.blocks,
            now=self.clock,
            nbytes=op.nbytes,
            write=op.write,
            per_issue_ns=self.BATCH_ISSUE_NS + op.compute_ns_per_block,
            mlp=1.0 if op.dependent else self.MLP,
        )
        self._charge(res.ns)
        self.fills.record_counts(res.fill_counts)
        task.fills.record_counts(res.fill_counts)

    def _do_run(self, op: AccessRun, task: Task) -> None:
        """Pipelined access to a run-compressed batch.

        Same MLP rule as :meth:`_do_batch`, but the block list never
        exists as a Python sequence — the machine services the arithmetic
        run directly (:meth:`~repro.hw.machine.Machine.access_run`), with
        bit-identical virtual-time results.
        """
        res = self.runtime.machine.access_run(
            self.core,
            op.region,
            op.start,
            op.count,
            now=self.clock,
            stride=op.stride,
            nbytes=op.nbytes,
            write=op.write,
            per_issue_ns=self.BATCH_ISSUE_NS + op.compute_ns_per_block,
            mlp=1.0 if op.dependent else self.MLP,
        )
        self._charge(res.ns)
        self.fills.record_counts(res.fill_counts)
        task.fills.record_counts(res.fill_counts)

    def _finish_task(self, task: Task, value) -> None:
        rt = self.runtime
        task.finish(value, self.clock)
        self.tasks_done += 1
        self.current = None
        rt.task_done(task, self)
        rt.strategy.on_tick(self, rt)

    def _charge(self, ns: float) -> None:
        if ns:
            self.clock += ns
            self.busy_ns += ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Worker {self.worker_id} core={self.core} t={self.clock:.0f}ns>"
